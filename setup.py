"""Legacy setup shim: lets ``pip install -e . --no-use-pep517`` work on
environments whose setuptools predates PEP 660 editable installs."""

from setuptools import setup

setup()
