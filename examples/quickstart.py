"""Quickstart: assemble a routine, run it on all three cores, compare.

This walks the library's core loop in ~40 lines: write assembly (or IR),
build a simulated MCU around it, execute, and read cycles/size back.

Run:  python examples/quickstart.py
"""

from repro.core import FLASH_BASE, build_arm7, build_cortexm3
from repro.isa import ISA_ARM, ISA_THUMB, ISA_THUMB2, assemble

CHECKSUM = {
    # the same routine in each instruction set's idiom
    ISA_ARM: """
checksum:                  ; r0 = words ptr, r1 = count
    mov r2, #0
loop:
    ldr r3, [r0], #4       ; post-indexed walk
    eor r2, r2, r3
    subs r1, r1, #1
    bne loop
    mov r0, r2
    bx lr
""",
    ISA_THUMB: """
checksum:
    movs r2, #0
loop:
    ldr r3, [r0]
    adds r0, r0, #4
    eors r2, r2, r3
    subs r1, r1, #1
    bne loop
    movs r0, r2
    bx lr
""",
}
CHECKSUM[ISA_THUMB2] = CHECKSUM[ISA_THUMB]  # narrow encodings throughout


def main() -> None:
    words = [0xDEADBEEF, 0x12345678, 0xA5A5A5A5, 0x0F0F0F0F]
    payload = b"".join(w.to_bytes(4, "little") for w in words)
    expected = 0
    for word in words:
        expected ^= word

    print(f"{'config':22} {'result':>10} {'cycles':>7} {'code bytes':>11}")
    for isa, core_builder in ((ISA_ARM, build_arm7), (ISA_THUMB, build_arm7),
                              (ISA_THUMB2, build_cortexm3)):
        program = assemble(CHECKSUM[isa], isa, base=FLASH_BASE)
        machine = core_builder(program)
        machine.load_data(0x2000_0000, payload)
        result = machine.call("checksum", 0x2000_0000, len(words))
        assert result == expected, hex(result)
        label = f"{machine.cpu.name} ({isa})"
        print(f"{label:22} {result:>10x} {machine.cpu.cycles:>7} "
              f"{program.code_bytes:>11}")
    print(f"\nexpected checksum: {expected:#x} - all configurations agree")


if __name__ == "__main__":
    main()
