"""Campaign-as-a-service: two overlapping sweeps, one shared computation.

Starts the resident campaign service in-process, connects two clients
whose sweeps overlap, and submits both while the dispatcher is paused -
so the overlap is visible as *joined* cells (computed once, delivered to
both) rather than cache replays.  Each client streams its records to a
JSONL file; the example then proves both files byte-identical to local
pooled runs of the same requests, and that the server computed exactly
the union of cells.

The same service runs standalone for real cross-process traffic::

    python -m repro.sim.service --port 0 --port-file port.txt --workers 4
    python -m repro.sim.campaign --matrix smoke --connect 127.0.0.1:$(cat port.txt) --stream out.jsonl

Run:  python examples/campaign_service.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro.sim import CampaignRequest, ScenarioSpec, execute_request
from repro.sim.service import CampaignClient, CampaignService, serve_tcp

POOL = [
    ScenarioSpec(label="osek A", domain="osek",
                 params=(("tasks", 4), ("utilisation", 0.6))),
    ScenarioSpec(label="osek B", domain="osek", seed=9,
                 params=(("tasks", 5), ("utilisation", 0.8))),
    ScenarioSpec(label="can A", domain="can",
                 params=(("messages", 5), ("load", 0.4))),
    ScenarioSpec(label="can B", domain="can", seed=13,
                 params=(("messages", 6), ("load", 0.6))),
]

#: the two clients' sweeps share the middle two cells
SWEEP_ONE = CampaignRequest(specs=tuple(POOL[:3]))
SWEEP_TWO = CampaignRequest(specs=tuple(POOL[1:]))


async def run_service(tmp: Path) -> tuple[dict, dict, int]:
    service = CampaignService(workers=1)
    await service.start()
    server = await serve_tcp(service)
    port = server.sockets[0].getsockname()[1]
    print(f"service up on 127.0.0.1:{port} "
          f"(workers={service.workers}, in-memory cache)")
    try:
        one = await CampaignClient.connect(port=port)
        two = await CampaignClient.connect(port=port)
        try:
            # pause the dispatcher so both submits land before any cell
            # starts: the overlap joins in-flight work instead of hitting
            # the cache (either way it computes once)
            service.pause()
            rid_one = await one.submit(SWEEP_ONE)
            rid_two = await two.submit(SWEEP_TWO)
            print(f"submitted {rid_one} ({len(SWEEP_ONE.specs)} cells) and "
                  f"{rid_two} ({len(SWEEP_TWO.specs)} cells), 2 shared")
            service.resume()
            done_one, done_two = await asyncio.gather(
                one.stream(rid_one, stream_path=tmp / "one.jsonl"),
                two.stream(rid_two, stream_path=tmp / "two.jsonl"))
        finally:
            await one.close()
            await two.close()
    finally:
        server.close()
        await server.wait_closed()
        await service.shutdown()
    return done_one, done_two, service.computed


def main() -> None:
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        done_one, done_two, computed = asyncio.run(run_service(tmp))

        for name, done in (("one", done_one), ("two", done_two)):
            print(f"client {name}: {done['ran']} records "
                  f"({done['verified']} verified) - {done['replayed']} "
                  f"replayed, {done['joined']} joined, "
                  f"{done['computed']} computed")
        union = {s.key() for s in SWEEP_ONE.specs + SWEEP_TWO.specs}
        print(f"server computed {computed} cells for "
              f"{len(SWEEP_ONE.specs) + len(SWEEP_TWO.specs)} requested "
              f"(union of both sweeps: {len(union)})")

        # the determinism claim: each streamed file is byte-identical to
        # a local run of the same request
        execute_request(SWEEP_ONE, stream_path=tmp / "local_one.jsonl")
        execute_request(SWEEP_TWO, stream_path=tmp / "local_two.jsonl")
        for name in ("one", "two"):
            streamed = (tmp / f"{name}.jsonl").read_bytes()
            local = (tmp / f"local_{name}.jsonl").read_bytes()
            print(f"client {name} stream == local run: {streamed == local}")


if __name__ == "__main__":
    main()
