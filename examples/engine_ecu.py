"""Engine-controller scenario: tooth-to-spark on the high-end core.

The paper's running automotive example (section 3.1.2): the tooth-to-spark
function needs "regular and timely action" even on a cached, 200 MHz-class
core.  This example runs the ttsprk kernel on the ARM1156 model, fires a
crank-synchronous interrupt at it, and shows how the interruptible LDM
keeps worst-case latency bounded while caches stay enabled.

Run:  python examples/engine_ecu.py
"""

from repro.codegen import compile_program
from repro.core import FLASH_BASE, SRAM_BASE, build_arm1156
from repro.isa import ISA_THUMB2, assemble
from repro.sim import DeterministicRng
from repro.workloads import WORKLOADS_BY_NAME

CRANK_HANDLER = """
crank_isr:
    push {r0, r1, lr}      ; software preamble: save EVERYTHING we touch
    movw r1, #0x0800
    movt r1, #0x2000
    ldr r0, [r1]
    adds r0, r0, #1
    str r0, [r1]
    pop {r0, r1, pc}       ; software postamble + return
"""


def run(interruptible_ldm: bool) -> tuple[int, int]:
    workload = WORKLOADS_BY_NAME["ttsprk"]
    fn = workload.build()
    kernel_program = compile_program([fn], ISA_THUMB2, base=FLASH_BASE)
    isr_program = assemble(CRANK_HANDLER, ISA_THUMB2,
                           base=FLASH_BASE + 0x4000)
    # merge both images into one machine
    machine = build_arm1156(kernel_program, interruptible_ldm=interruptible_ldm,
                            flash_access_cycles=4, sram_wait_states=2)
    machine.load_program(isr_program)
    # the core executes instructions from either program object
    merged = dict(kernel_program._by_address)
    merged.update(isr_program._by_address)
    kernel_program._by_address = merged

    prepared = workload.make_input(DeterministicRng(7), scale=4)
    machine.load_data(SRAM_BASE, prepared.data)
    machine.cpu.vic.raise_irq(0, handler=isr_program.symbols["crank_isr"],
                              at_cycle=400)
    result = machine.call(fn.name, *prepared.args(SRAM_BASE))
    expected = workload.reference(prepared.data, *prepared.args(0))
    assert result == expected, "kernel corrupted by interrupt handling!"
    latency = machine.cpu.vic.stats.records[0].latency
    return machine.cpu.cycles, latency


def main() -> None:
    print("engine ECU: ttsprk under a crank-synchronous interrupt (ARM1156)")
    for interruptible in (False, True):
        cycles, latency = run(interruptible)
        mode = "restartable LDM/STM" if interruptible else "blocking LDM/STM  "
        print(f"  {mode}: kernel={cycles} cycles, "
              f"crank IRQ latency={latency} cycles")
    print("the spark advance result is identical either way - the paper's")
    print("predictability feature changes *when*, never *what*.")
    print("(ttsprk has no long LDMs, so latencies match here; the worst-case")
    print(" contrast is measured in benchmarks/bench_ldm_latency.py)")


if __name__ == "__main__":
    main()
