"""Fault campaigns: injected failures judged by per-claim safety verdicts.

Every other sweep in this repo runs *healthy* vehicles; real automotive
qualification is about behavior under faults.  The ``vehicle_fault``
domain arms one classic failure mode per cell - a babbling idiot, a
bus-off storm, a gateway RX overload, a wedged or dead LIN slave, a
firmware soft error - onto a co-simulated body network, runs the same
cell's fault-free twin alongside, and judges four safety claims:
latency bounds held, frame conservation, fail-silence of the faulted
node, recovery within the scenario deadline.

A cell *verifies* when the verdicts match what fault confinement
specifies for that kind: the babbling idiot is EXPECTED to break a
latency bound its twin meets (that's the demonstration), the bus-off
storm is expected to confine its victim, the soft error is expected to
trip the checksum mirror.  The same matrix is available from the CLI::

    python -m repro.sim.campaign --matrix vehicle-fault --stream faults.jsonl

Run:  python examples/fault_campaign.py
"""

from repro.sim.campaign import run_scenario
from repro.sim.domains.vehicle_fault import vehicle_fault_matrix
from repro.vehicle import VERDICT_CLAIMS


def main() -> None:
    specs = vehicle_fault_matrix(seed=2005)
    print(f"fault matrix: {len(specs)} cells, claims: "
          f"{', '.join(VERDICT_CLAIMS)}\n")

    header = (f"{'cell':34} {'window':>15} "
              + " ".join(f"{claim[:7]:>7}" for claim in VERDICT_CLAIMS)
              + f" {'verified':>8}")
    print(header)
    records = []
    for spec in specs:
        record = run_scenario(spec)
        records.append(record)
        window = f"{record.fault_start_us}-{record.fault_end_us}us"
        cells = " ".join(
            f"{'PASS' if record.verdicts[claim] else 'FAIL':>7}"
            for claim in VERDICT_CLAIMS)
        print(f"{record.label:34} {window:>15} {cells} "
              f"{str(record.verified):>8}")

    babbler = next(r for r in records if r.fault_kind == "babbling-idiot")
    print(f"\nthe babbling idiot's demonstration: worst latency "
          f"{babbler.worst_latency_us}us > bound {babbler.worst_bound_us}us "
          f"while its fault-free twin stayed at "
          f"{babbler.twin_worst_latency_us}us "
          f"({babbler.twin_bound_violations} twin violations)")
    storm = next(r for r in records if r.fault_kind == "bus-off-storm")
    print(f"the storm's confinement: {storm.errors_injected} forced errors "
          f"drove {storm.fault_node!r} through {storm.bus_off_events} "
          f"bus-off event(s), and it recovered in deadline")
    soft = next(r for r in records if r.fault_kind == "soft-error")
    print(f"the soft error: one SRAM flip at a WFI boundary, detected "
          f"(checksum_ok={soft.checksum_ok}) with zero latency violations")

    verified = sum(1 for r in records if r.verified)
    print(f"\n{verified}/{len(records)} cells verified: every fault's "
          "consequences were bounded, specified, and demonstrated - "
          "FAIL verdicts above are expected outcomes, not failures.")


if __name__ == "__main__":
    main()
