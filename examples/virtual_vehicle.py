"""A three-ECU virtual vehicle, executed end to end.

The paper's vision - the vehicle's ECU network "harnessed as a single
compute resource" - run rather than analysed: a wheel-speed sensor ECU
(Cortex-M3), a door module (ARM7), and a seat module (ARM1156) publish
periodic CAN signals; a gateway ECU receives them over a memory-mapped
CAN controller (real MMIO + ISR work in assembled guest firmware),
transforms the window-lift command, and publishes it onto the LIN
sub-bus, where the window-lift slave ECU applies it to its actuator
register.  Everything shares one discrete-event clock; the guest cores
execute their firmware under the trace-superblock engine between bus
events.

Every observed latency is then cross-checked against the composed
analytic bound: per-ECU response-time analysis over measured handler
WCETs, the Tindell/Davis CAN response-time bound, and the LIN
schedule-table worst case.

Run:  python examples/virtual_vehicle.py
"""

from repro.vehicle import BodyNetworkSpec, SensorNode, build_body_network


def main() -> None:
    spec = BodyNetworkSpec(sensors=(
        SensorNode("wheel", "m3", 80, 0x120, 20_000),
        SensorNode("seat", "arm1156", 160, 0x180, 25_000, raw_salt=7),
        SensorNode("door", "arm7", 48, 0x200, 50_000, raw_salt=3),
    ))
    network = build_body_network(spec)
    print("virtual vehicle: 3 sensor/actuator legs on one clock")
    for node in spec.sensors:
        forwarded = " -> LIN window-lift" if node.can_id == network.forward_id \
            else ""
        print(f"  {node.name:6} {node.core:8} @{node.mhz:>3} MHz  "
              f"CAN id {node.can_id:#05x} every {node.period_us // 1000} ms"
              f"{forwarded}")
    print(f"  gateway {spec.gateway_core} @{spec.gateway_mhz} MHz, "
          f"actuator {spec.actuator_core} @{spec.actuator_mhz} MHz, "
          f"CAN {spec.can_bitrate // 1000} kbit/s, "
          f"LIN {spec.lin_baud} baud\n")

    network.run(horizon_us=400_000)
    report = network.report()

    print(f"{report.generated} samples generated, "
          f"{report.gateway_applied} gateway receipts, "
          f"{report.actuator_applied} actuator applications")
    conservation = network.vehicle.frame_conservation()
    print(f"CAN: {conservation['queued']} queued = "
          f"{conservation['delivered']} delivered + "
          f"{conservation['backlog']} in flight "
          f"(conserved: {conservation['conserved']})")
    print(f"LIN: {report.lin_deliveries} schedule-table frames, "
          f"{report.lin_no_response} silent slots\n")

    print("signal            worst observed   analytic bound")
    worst: dict[str, tuple[int, int]] = {}
    for obs in report.observations:
        seen = worst.get(obs.signal, (0, 0))
        worst[obs.signal] = (max(seen[0], obs.latency_us), obs.bound_us)
    for signal, (latency, bound) in sorted(worst.items()):
        print(f"  {signal:14} {latency:9d} us   <= {bound:8d} us")

    print(f"\nbound violations: {report.bound_violations}, "
          f"value errors: {report.value_errors}, "
          f"checksum ok: {report.checksum_ok}")
    for ecu in network.vehicle.ecus:
        stats = ecu.stats()
        print(f"  {stats['name']:8} {stats['core']:9} "
              f"{stats['instructions']:6d} instructions, "
              f"{stats['irqs_serviced']:3d} IRQs, "
              f"{stats['fused_blocks']} fused superblocks")
    print("\nhealthy:", report.healthy)


if __name__ == "__main__":
    main()
