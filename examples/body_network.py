"""Body-electronics network: ECUs, CAN traffic, and the virtual multi-core.

Builds the paper's end-state (sections 1 & 4): window lifts, seat
controllers, and lamp monitors spread over a small ECU fleet on one CAN
bus.  Shows message response times from both the analysis and the bus
simulator, then compares task placement before and after ISA
harmonization.

Run:  python examples/body_network.py
"""

from repro.network import (
    CanBus,
    DistributedTask,
    Ecu,
    MessageSpec,
    PeriodicSender,
    allocate_tasks,
    analyse_system,
    can_response_times,
    count_binaries,
    harmonize,
)
from repro.sim import DeterministicRng

SIGNALS = [
    MessageSpec(can_id=0x050, payload_bytes=2, period_us=10_000),   # wheel speed
    MessageSpec(can_id=0x120, payload_bytes=4, period_us=20_000),   # door status
    MessageSpec(can_id=0x200, payload_bytes=8, period_us=50_000),   # seat position
    MessageSpec(can_id=0x310, payload_bytes=1, period_us=100_000),  # lamp health
]

TASKS = [
    DistributedTask("window_lift", wcet_us=900, period_us=20_000,
                    binaries=frozenset({"thumb"})),
    DistributedTask("seat_memory", wcet_us=20_000, period_us=50_000,
                    binaries=frozenset({"arm"})),
    DistributedTask("lamp_check", wcet_us=400, period_us=100_000,
                    binaries=frozenset({"thumb"})),
    DistributedTask("wiper_ctrl", wcet_us=700, period_us=10_000,
                    binaries=frozenset({"thumb2"})),
    DistributedTask("mirror_fold", wcet_us=18_000, period_us=50_000,
                    binaries=frozenset({"arm"})),
    DistributedTask("speed_gw", wcet_us=600, period_us=10_000,
                    binaries=frozenset({"thumb2"}),
                    produces=(SIGNALS[0],)),
]

FLEET = [
    Ecu("door_fl", isa="thumb", speed=0.8),
    Ecu("door_fr", isa="thumb", speed=0.8),
    Ecu("seat", isa="arm", speed=1.0),
    Ecu("gateway", isa="thumb2", speed=1.5),
]


def main() -> None:
    print("== CAN bus: analysis vs simulation (125 kbit/s) ==")
    analysis = can_response_times(SIGNALS, bitrate_bps=125_000)
    bus = CanBus(bitrate_bps=125_000)
    rng = DeterministicRng(4)
    for spec in SIGNALS:
        PeriodicSender(bus, can_id=spec.can_id,
                       payload=b"\x00" * spec.payload_bytes,
                       period_us=spec.period_us,
                       node=f"ecu{spec.can_id:03x}").start(
            offset_us=rng.randint(0, 500))
    bus.scheduler.run(until=1_000_000)
    print(f"{'id':>5} {'period us':>10} {'worst sim us':>13} {'RTA bound us':>13}")
    for spec in SIGNALS:
        observed = bus.worst_response(spec.can_id)
        bound = analysis.response_of(spec.can_id).response_us
        print(f"{spec.can_id:#5x} {spec.period_us:>10} {observed:>13} {bound:>13}")
        assert observed <= bound
    print(f"bus utilisation: {bus.utilisation(1_000_000):.1%}\n")

    print("== task placement: heterogeneous fleet vs harmonized ISA ==")
    placement = allocate_tasks(TASKS, FLEET)
    system = analyse_system(TASKS, FLEET, placement)
    print(f"heterogeneous: unplaced={placement.unplaced} "
          f"binaries={count_binaries(TASKS)} schedulable={system.schedulable}")

    harmonized = harmonize(TASKS, "thumb2")
    fleet2 = [Ecu(e.name, isa="thumb2", speed=e.speed) for e in FLEET]
    placement2 = allocate_tasks(harmonized, fleet2)
    system2 = analyse_system(harmonized, fleet2, placement2)
    print(f"harmonized   : unplaced={placement2.unplaced} "
          f"binaries={count_binaries(harmonized)} schedulable={system2.schedulable}")
    for task, ecu in sorted(placement2.assignments.items()):
        print(f"  {task:13} -> {ecu}")


if __name__ == "__main__":
    main()
