"""Live dashboard over a chaos-injected supervised fleet.

Starts the campaign service as a real subprocess with telemetry on
(``--obs``), a supervised two-worker fleet, and a deterministic chaos
schedule that kills a worker mid-run - then submits a sweep and renders
dashboard frames while the fleet absorbs the fault: watch ``lost`` and
``respawns`` tick up while the stream still completes with every
record, because at-most-once compute plus content-addressed dedup makes
records exactly-once regardless of worker deaths.

Everything here is the real operational surface, no in-process
shortcuts: the service CLI, the campaign ``--connect`` client, and
``python -m repro.sim.service.dashboard`` all run as subprocesses.

Run:  python examples/dashboard_demo.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
ENV = dict(os.environ, PYTHONPATH=str(HERE.parent / "src"))


def wait_for_port(path: Path, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise TimeoutError(f"service never wrote {path}")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        port_file = tmp / "port.txt"
        service = subprocess.Popen(
            [sys.executable, "-m", "repro.sim.service",
             "--port", "0", "--port-file", str(port_file),
             "--workers-proc", "2", "--obs",
             "--heartbeat", "0.2",
             # one scheduled worker kill; strikes above the fault count so
             # chaos alone can never quarantine a healthy spec
             "--chaos", "seed=7,kills=1", "--quarantine-strikes", "3"],
            env=ENV)
        try:
            port = wait_for_port(port_file)
            address = f"127.0.0.1:{port}"
            print(f"service up at {address} (2 supervised workers, "
                  f"1 chaos kill scheduled)\n")

            sweep = subprocess.Popen(
                [sys.executable, "-m", "repro.sim.campaign",
                 "--matrix", "smoke", "--connect", address,
                 "--stream", str(tmp / "records.jsonl")],
                env=ENV, stdout=subprocess.DEVNULL)
            # render frames from a second thread while the sweep runs -
            # exactly what an operator terminal would show
            dashboard = threading.Thread(target=subprocess.run, kwargs=dict(
                args=[sys.executable, "-m", "repro.sim.service.dashboard",
                      address, "--interval", "0.5", "--frames", "8"],
                env=ENV))
            dashboard.start()
            sweep_rc = sweep.wait(timeout=300)
            dashboard.join()

            final = subprocess.run(
                [sys.executable, "-m", "repro.sim.service.dashboard",
                 address, "--once", "--json"],
                env=ENV, capture_output=True, text=True, timeout=60)
            sample = json.loads(final.stdout)
            records = (tmp / "records.jsonl").read_text().splitlines()
            fleet = sample["supervisor"]
            print(f"sweep finished rc={sweep_rc}: {len(records)} records "
                  f"streamed, {sample['cells_resolved']} cells resolved "
                  f"({sample['cells_by_domain']})")
            print(f"fleet absorbed the fault: lost={fleet['lost']} "
                  f"respawns={fleet['respawns']} requeues={fleet['requeues']} "
                  f"quarantined={fleet['quarantined']}, "
                  f"{fleet['alive']}/{fleet['workers']} alive at the end")
            ok = (sweep_rc == 0
                  and len(records) == sample["records_streamed"]
                  and fleet["quarantined"] == 0)
            print("records exactly-once under chaos:", ok)
            return 0 if ok else 1
        finally:
            service.send_signal(signal.SIGINT)
            try:
                service.wait(timeout=10)
            except subprocess.TimeoutExpired:
                service.kill()


if __name__ == "__main__":
    raise SystemExit(main())
