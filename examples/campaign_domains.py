"""Sharded multi-domain campaigns: the distribution recipe, end to end.

Campaign records are a pure function of each ScenarioSpec, so spreading a
sweep over hosts is purely a partitioning problem: give every host the
same spec list and a distinct ``shard=(k, n)``, then concatenate the
JSONL streams - the result is byte-identical to a single unsharded run.
This example runs the cross-domain smoke matrix (CPU kernels, OSEK task
sets, CAN traffic, soft-error sweeps) as two shards and proves the
equality.  The same flow is available from the command line::

    python -m repro.sim.campaign --matrix smoke --shard 0/2 --stream s0.jsonl
    python -m repro.sim.campaign --matrix smoke --shard 1/2 --stream s1.jsonl
    cat s0.jsonl s1.jsonl   # == the unsharded stream

Run:  python examples/campaign_domains.py
"""

import tempfile
from pathlib import Path

from repro.sim import CampaignRequest, execute_request, read_campaign_stream

REQUEST = CampaignRequest(matrix="smoke")


def main() -> None:
    specs = REQUEST.resolve_specs()
    domains = {}
    for spec in specs:
        domains[spec.domain] = domains.get(spec.domain, 0) + 1
    mix = ", ".join(f"{count}x {name}" for name, count in sorted(domains.items()))
    print(f"smoke matrix: {len(specs)} cells ({mix})\n")

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # "host 0" and "host 1": the same request, a different shard index
        for k in (0, 1):
            execute_request(REQUEST.with_shard((k, 2)),
                            stream_path=tmp / f"shard{k}.jsonl")
        combined = ((tmp / "shard0.jsonl").read_bytes()
                    + (tmp / "shard1.jsonl").read_bytes())

        # the control: one process, no shards
        execute_request(REQUEST, stream_path=tmp / "full.jsonl")
        full = (tmp / "full.jsonl").read_bytes()

        print(f"shard 0 + shard 1 == unsharded stream: {combined == full}")
        (tmp / "combined.jsonl").write_bytes(combined)
        records = read_campaign_stream(tmp / "combined.jsonl")

    print(f"\n{'domain':11} {'label':28} {'verified':>8}  headline")
    for record in records:
        if record.domain == "kernel":
            headline = f"{record.cycles} cycles, {record.irqs_serviced} IRQs"
        elif record.domain == "osek":
            headline = (f"sim worst {record.sim_max_response}us "
                        f"<= RTA {record.rta_max_response}us")
        elif record.domain == "can":
            headline = (f"worst {record.worst_response_us}us "
                        f"<= bound {record.worst_bound_us}us")
        elif record.domain == "vehicle":
            headline = (f"{record.sensors} ECUs ({record.cores}), worst "
                        f"{record.worst_latency_us}us "
                        f"<= bound {record.worst_bound_us}us")
        elif record.domain == "lin":
            headline = (f"worst {record.worst_latency_us}us "
                        f"<= table bound {record.worst_bound_us}us")
        elif record.domain == "wcet":
            headline = (f"{record.workload}/{record.core}: "
                        f"wcet {record.wcet_cycles} cycles "
                        f"({record.wcet_us}us @{record.reference_mhz}MHz)")
        else:
            headline = (f"{record.upsets} upsets, {record.corrected} corrected, "
                        f"wrong={record.wrong}")
        print(f"{record.domain:11} {record.label:28} {str(record.verified):>8}  {headline}")

    verified = sum(1 for r in records if r.verified)
    print(f"\n{verified}/{len(records)} scenarios verified; every record came "
          "from a pure function of its spec.")


if __name__ == "__main__":
    main()
