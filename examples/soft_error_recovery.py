"""Soft-error campaign: fault-tolerant memories keeping a kernel honest.

Injects cosmic-ray-style bit flips into an ECC-protected TCM holding live
calibration data while the tblook kernel interpolates from it, and shows
the ARM1156's hold-and-repair keeping every answer correct - then repeats
with protection off to show silent corruption.

Run:  python examples/soft_error_recovery.py
"""

from repro.memory import Tcm
from repro.sim import DeterministicRng
from repro.workloads import WORKLOADS_BY_NAME


def campaign(fault_tolerant: bool, upsets: int = 200) -> dict:
    rng = DeterministicRng(2005)
    workload = WORKLOADS_BY_NAME["tblook"]
    prepared = workload.make_input(rng, scale=1)

    tcm = Tcm(base=0, size=1024, fault_tolerant=fault_tolerant)
    tcm.write_raw(0, prepared.data)
    golden = workload.reference(prepared.data, *prepared.args(0))

    wrong_answers = 0
    for _ in range(upsets):
        tcm.flip_random_bit(rng)
        # re-read the (possibly repaired) table and recompute
        flat = b"".join(
            tcm.read(off, 1)[0].to_bytes(1, "little")
            for off in range(len(prepared.data)))
        result = workload.reference(flat, *prepared.args(0))
        if result != golden:
            wrong_answers += 1
    return {
        "fault_tolerant": fault_tolerant,
        "upsets": upsets,
        "corrected": tcm.corrected_errors,
        "hold_cycles": tcm.hold_cycles,
        "wrong_answers": wrong_answers,
    }


def main() -> None:
    print("soft-error campaign on the interpolation table (tblook kernel)")
    for fault_tolerant in (True, False):
        stats = campaign(fault_tolerant)
        mode = "ECC hold-and-repair" if fault_tolerant else "unprotected RAM   "
        print(f"  {mode}: {stats['upsets']} upsets -> "
              f"{stats['corrected']} corrected, "
              f"{stats['hold_cycles']} stall cycles, "
              f"{stats['wrong_answers']} wrong interpolations")
    print("with protection on, every upset is repaired before it can reach")
    print("a computation; without it, corruption accumulates silently.")


if __name__ == "__main__":
    main()
