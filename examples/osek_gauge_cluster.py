"""An OSEK gauge-cluster application: tasks, resources, alarms, analysis.

A small instrument-cluster ECU: a 10 ms speed task and a 40 ms fuel task
share the sensor bus under the priority ceiling protocol, a 100 ms lamp
task blinks indicators, and a button-press event wakes an extended task.
WCETs come from kernels measured on the Cortex-M3 model, and the
response-time analysis is cross-checked against the simulated kernel.

Run:  python examples/osek_gauge_cluster.py
"""

from repro.rtos import (
    AnalysedTask,
    Compute,
    GetResource,
    OsekKernel,
    ReleaseResource,
    SetEvent,
    WaitEvent,
    response_time_analysis,
)
from repro.rtos.wcet import measure_wcet
from repro.workloads import WORKLOADS_BY_NAME

CPU_MHZ = 72


def main() -> None:
    # WCETs measured on the core model, converted to microseconds @72 MHz
    speed_wcet = measure_wcet(WORKLOADS_BY_NAME["rspeed"], samples=5).wcet // CPU_MHZ + 1
    fuel_wcet = measure_wcet(WORKLOADS_BY_NAME["tblook"], samples=5).wcet // CPU_MHZ + 1
    lamp_wcet = measure_wcet(WORKLOADS_BY_NAME["bitmnp"], samples=5).wcet // CPU_MHZ + 1
    print(f"measured WCETs @72 MHz: speed={speed_wcet}us fuel={fuel_wcet}us "
          f"lamp={lamp_wcet}us")

    kernel = OsekKernel(context_switch_cost=3)

    def speed_task(api):
        yield GetResource("sensor_bus")
        yield Compute(speed_wcet)
        yield ReleaseResource("sensor_bus")

    def fuel_task(api):
        yield GetResource("sensor_bus")
        yield Compute(fuel_wcet)
        yield ReleaseResource("sensor_bus")
        if api.scheduler.now > 50_000:
            yield SetEvent("display", 0b1)

    def lamp_task(api):
        yield Compute(lamp_wcet)

    def display_task(api):
        while True:
            yield WaitEvent(0b1)
            yield Compute(40)

    kernel.add_task("speed", priority=3, body_factory=speed_task)
    kernel.add_task("fuel", priority=2, body_factory=fuel_task)
    kernel.add_task("lamp", priority=1, body_factory=lamp_task)
    kernel.add_task("display", priority=4, body_factory=display_task,
                    extended=True, autostart=True)
    kernel.add_resource("sensor_bus", users=["speed", "fuel"])
    kernel.add_alarm("speed_alarm", "speed", offset=0, period=10_000)
    kernel.add_alarm("fuel_alarm", "fuel", offset=2_000, period=40_000)
    kernel.add_alarm("lamp_alarm", "lamp", offset=5_000, period=100_000)
    kernel.run(until=400_000)

    specs = [
        AnalysedTask("speed", wcet=speed_wcet, period=10_000, priority=3,
                     critical_sections=(("sensor_bus", speed_wcet),)),
        AnalysedTask("fuel", wcet=fuel_wcet, period=40_000, priority=2,
                     critical_sections=(("sensor_bus", fuel_wcet),)),
        AnalysedTask("lamp", wcet=lamp_wcet, period=100_000, priority=1),
    ]
    analysis = response_time_analysis(specs, context_switch=3)

    print(f"\n{'task':8} {'activations':>12} {'worst sim us':>13} {'RTA bound us':>13}")
    for spec in specs:
        task = kernel.tasks[spec.name]
        bound = analysis.response_of(spec.name).response
        print(f"{spec.name:8} {task.terminations:>12} "
              f"{task.worst_response():>13} {bound:>13}")
        assert task.worst_response() <= bound
    print(f"\nschedulable: {analysis.schedulable} "
          f"(utilisation {analysis.utilisation:.1%}); "
          f"display woken {kernel.tasks['display'].activations and 'yes' or 'no'}")


if __name__ == "__main__":
    main()
