"""Scenario domains, shard determinism, and stream robustness.

Covers the domain registry (osek / can / soft_error alongside kernel),
the shard partitioning guarantee (concatenated shard streams are
byte-identical to the unsharded stream, for arbitrary domain mixes and
several shard counts), and ``read_campaign_stream`` failure modes
(truncated trailing line, corrupt records, unknown domains).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.campaign import (
    CampaignRequest,
    CampaignStreamError,
    ScenarioSpec,
    available_matrices,
    execute_request,
    main,
    read_campaign_stream,
    run_campaign,
    run_scenario,
    shard_bounds,
    smoke_matrix,
)
from repro.sim.domains import (
    ScenarioDomain,
    domain_names,
    get_domain,
    record_class_for,
    register_domain,
)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_registry_knows_all_builtin_domains():
    assert domain_names() == ["can", "kernel", "lin", "osek", "soft_error",
                              "vehicle", "vehicle_fault", "wcet"]
    for name in domain_names():
        domain = get_domain(name)
        assert domain.name == name
        assert record_class_for(name) is domain.record_class


def test_unknown_domain_is_a_clear_error():
    with pytest.raises(KeyError, match="unknown scenario domain 'bogus'"):
        get_domain("bogus")
    with pytest.raises(KeyError, match="registered: can, kernel"):
        run_scenario(ScenarioSpec(label="x", domain="bogus"))


def test_register_domain_rejects_duplicates_and_incomplete():
    class Dupe(ScenarioDomain):
        name = "kernel"
        record_class = dict
    with pytest.raises(ValueError, match="already registered"):
        register_domain(Dupe())
    class Nameless(ScenarioDomain):
        record_class = dict
    with pytest.raises(ValueError, match="non-empty name"):
        register_domain(Nameless())


def test_spec_param_lookup():
    spec = ScenarioSpec(label="x", domain="osek",
                        params=(("tasks", 5), ("utilisation", 0.5)))
    assert spec.param("tasks") == 5
    assert spec.param("missing", 42) == 42
    assert "osek" in spec.key() and "tasks=5" in spec.key()


# ----------------------------------------------------------------------
# the three new domains
# ----------------------------------------------------------------------

def test_osek_domain_analysis_bounds_simulation():
    record = run_scenario(ScenarioSpec(
        label="osek", domain="osek", seed=7,
        params=(("tasks", 5), ("utilisation", 0.6))))
    assert record.domain == "osek"
    assert record.tasks == 5
    assert 0.4 < record.utilisation < 0.8
    assert record.schedulable
    assert record.verified                       # sim never beat the bounds
    assert 0 < record.sim_max_response <= record.rta_max_response
    assert record.context_switches > 0
    assert record.deadline_misses == 0


def test_osek_domain_overload_is_measured_not_hidden():
    record = run_scenario(ScenarioSpec(
        label="overload", domain="osek", seed=11,
        params=(("tasks", 6), ("utilisation", 1.4))))
    assert not record.schedulable               # analysis says no
    assert record.verified                      # bounds still hold where converged
    assert record.deadline_misses + record.activation_failures > 0


def test_osek_records_are_pure_functions_of_the_spec():
    spec = ScenarioSpec(label="pure", domain="osek", seed=3,
                        params=(("tasks", 4), ("utilisation", 0.5)))
    assert vars(run_scenario(spec)) == vars(run_scenario(spec))
    other = ScenarioSpec(label="pure", domain="osek", seed=4,
                         params=(("tasks", 4), ("utilisation", 0.5)))
    assert vars(run_scenario(other)) != vars(run_scenario(spec))


def test_can_domain_analysis_bounds_simulation():
    record = run_scenario(ScenarioSpec(
        label="can", domain="can", seed=5,
        params=(("messages", 6), ("load", 0.45))))
    assert record.domain == "can"
    assert record.messages == 6
    assert record.verified
    assert record.bound_violations == 0
    assert record.frames_delivered > 0
    assert 0 < record.worst_response_us <= record.worst_bound_us
    assert record.frames_sent - record.frames_delivered == record.backlog
    assert record.errors_injected == 0


def test_can_domain_noisy_bus_retries_but_conserves_frames():
    record = run_scenario(ScenarioSpec(
        label="noisy", domain="can", seed=5,
        params=(("messages", 5), ("load", 0.4), ("error_rate", 0.08))))
    assert record.errors_injected > 0
    assert record.retries > 0
    assert record.verified                      # nothing lost to error frames
    assert record.frames_sent - record.frames_delivered == record.backlog


def test_soft_error_domain_ecc_corrects_real_cpu_run():
    record = run_scenario(ScenarioSpec(
        label="ecc", core="arm1156", isa="thumb2", workload="tblook",
        domain="soft_error", params=(("protected", True),
                                     ("rate_per_mcycle", 20.0))))
    assert record.domain == "soft_error"
    assert record.upsets > 0
    assert record.corrected + record.uncorrectable >= record.upsets - 1
    assert record.verified
    if record.uncorrectable == 0:
        assert not record.wrong                 # every flip repaired in time
        assert record.result == record.golden
    assert record.hold_cycles > 0               # hold-and-repair cost is real


def test_soft_error_domain_unprotected_corrupts_silently():
    record = run_scenario(ScenarioSpec(
        label="raw", core="arm1156", isa="thumb2", workload="tblook",
        domain="soft_error", params=(("protected", False),
                                     ("rate_per_mcycle", 20.0))))
    assert record.upsets > 0
    assert record.silent_corruptions == record.upsets
    assert record.corrected == 0
    assert record.hold_cycles == 0
    assert record.verified                      # the measurement arm verifies
    assert record.wrong                         # ... and the damage is visible


def test_soft_error_scrub_counts_distinct_bad_words_once():
    """A persistent double-bit word must count once, not once per scrub."""
    from repro.memory.tcm import Tcm
    from repro.sim.domains.soft_error import _scrub

    tcm = Tcm(base=0, size=64, fault_tolerant=True)
    tcm.write_raw(0, bytes(range(64)))
    tcm.flip_data_bit(8 * 4 + 0)                # two flips in word 1
    tcm.flip_data_bit(8 * 4 + 9)
    first = _scrub(tcm)
    second = _scrub(tcm)
    assert first == second == {4}               # same word, every scrub
    assert len(first | second) == 1


def test_soft_error_domain_requires_cpu_fields():
    with pytest.raises(ValueError, match="core/isa/workload"):
        run_scenario(ScenarioSpec(label="x", domain="soft_error"))
    with pytest.raises(ValueError, match="core/isa/workload"):
        run_scenario(ScenarioSpec(label="x", domain="kernel"))


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------

def test_shard_bounds_partition_exactly():
    for total in (0, 1, 7, 11, 24):
        for n in (1, 2, 3, 5):
            cuts = [shard_bounds(total, (k, n)) for k in range(n)]
            assert cuts[0][0] == 0 and cuts[-1][1] == total
            for (_, hi), (lo, _) in zip(cuts, cuts[1:]):
                assert hi == lo                 # contiguous, no gap, no overlap


def test_shard_bounds_validation():
    with pytest.raises(ValueError, match="0 <= k < n"):
        shard_bounds(10, (2, 2))
    with pytest.raises(ValueError, match="0 <= k < n"):
        shard_bounds(10, (-1, 2))
    with pytest.raises(ValueError, match="0 <= k < n"):
        shard_bounds(10, (0, 0))
    with pytest.raises(ValueError, match=r"\(k, n\) pair"):
        shard_bounds(10, 3)


def _cheap_pool() -> list[ScenarioSpec]:
    """Cheap cells from every domain for shard mixing."""
    return [
        ScenarioSpec(label="k0", core="m3", isa="thumb2", workload="ttsprk"),
        ScenarioSpec(label="k1", core="arm7", isa="thumb", workload="bitmnp"),
        ScenarioSpec(label="o0", domain="osek",
                     params=(("tasks", 3), ("utilisation", 0.5),
                             ("horizon_us", 200_000))),
        ScenarioSpec(label="o1", domain="osek", seed=9,
                     params=(("tasks", 4), ("utilisation", 0.7),
                             ("horizon_us", 200_000))),
        ScenarioSpec(label="c0", domain="can",
                     params=(("messages", 4), ("load", 0.3),
                             ("horizon_us", 200_000))),
        ScenarioSpec(label="c1", domain="can", seed=13,
                     params=(("messages", 5), ("load", 0.5),
                             ("error_rate", 0.05), ("horizon_us", 200_000))),
        ScenarioSpec(label="s0", core="arm1156", isa="thumb2",
                     workload="tblook", domain="soft_error",
                     params=(("rate_per_mcycle", 20.0),
                             ("mission_factor", 300))),
    ]


def _stream_bytes(tmp_path, specs, name, shard=None) -> bytes:
    path = tmp_path / f"{name}.jsonl"
    request = CampaignRequest(specs=tuple(specs), workers=1, shard=shard)
    execute_request(request, stream_path=path)
    return path.read_bytes()


def test_shard_streams_concatenate_byte_identical(tmp_path):
    """The distribution recipe, end to end, for several shard counts."""
    specs = _cheap_pool()
    full = _stream_bytes(tmp_path, specs, "full")
    assert full                                 # the pool actually streamed
    for n in (1, 2, 3, 5, 7):
        shards = b"".join(
            _stream_bytes(tmp_path, specs, f"shard_{n}_{k}", shard=(k, n))
            for k in range(n))
        assert shards == full, f"shard count {n} broke concatenation"


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=5),
       st.integers(min_value=2, max_value=4))
@settings(max_examples=8, deadline=None)
def test_shard_concatenation_property(picks, n):
    """Random domain mixes: concatenated shard streams == unsharded stream."""
    import tempfile
    from pathlib import Path

    pool = _cheap_pool()
    specs = [pool[i] for i in picks]
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        full = _stream_bytes(tmp, specs, "full")
        shards = b"".join(
            _stream_bytes(tmp, specs, f"s{k}", shard=(k, n))
            for k in range(n))
        assert shards == full


def test_mixed_domain_campaign_parallel_equals_serial(tmp_path):
    specs = _cheap_pool()
    serial = run_campaign(specs, workers=1)
    parallel = run_campaign(specs, workers=3)
    assert serial.to_json() == parallel.to_json()
    assert serial.all_verified
    assert serial.by_domain() == {"kernel": 2, "osek": 2, "can": 2,
                                  "soft_error": 1}


# ----------------------------------------------------------------------
# stream round-trips and robustness
# ----------------------------------------------------------------------

def test_every_domain_record_round_trips_through_the_stream(tmp_path):
    specs = _cheap_pool()
    path = tmp_path / "mixed.jsonl"
    result = run_campaign(specs, workers=1, stream_path=path, collect=True)
    loaded = read_campaign_stream(path)
    assert loaded == result.records
    assert [type(r) for r in loaded] == [type(r) for r in result.records]
    for record in loaded:
        assert isinstance(record.verified, bool)


def test_truncated_trailing_line_is_rejected(tmp_path):
    path = tmp_path / "trunc.jsonl"
    run_campaign(_cheap_pool()[:3], workers=1, stream_path=path)
    whole = path.read_bytes()
    path.write_bytes(whole[:-10])               # interrupt the final write
    with pytest.raises(CampaignStreamError, match="truncated trailing line"):
        read_campaign_stream(path)
    # skip-with-report: earlier records survive, the problem is reported
    errors: list = []
    records = read_campaign_stream(path, on_error="skip", errors=errors)
    assert len(records) == 2
    assert len(errors) == 1 and "truncated" in errors[0][1]


def test_corrupt_record_is_rejected_with_line_number(tmp_path):
    path = tmp_path / "corrupt.jsonl"
    run_campaign(_cheap_pool()[:2], workers=1, stream_path=path)
    lines = path.read_text().splitlines()
    lines.insert(1, "{not json at all")
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(CampaignStreamError, match=r"corrupt\.jsonl:2.*not valid JSON"):
        read_campaign_stream(path)
    errors: list = []
    records = read_campaign_stream(path, on_error="skip", errors=errors)
    assert len(records) == 2                    # both real records survive
    assert errors and errors[0][0] == 2


def test_stream_reader_rejects_unknown_domain_and_bad_fields(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"domain": "warp_drive"}) + "\n")
    with pytest.raises(CampaignStreamError, match="unknown scenario domain"):
        read_campaign_stream(path)
    path.write_text(json.dumps({"domain": "osek", "nonsense": 1}) + "\n")
    with pytest.raises(CampaignStreamError, match="fields do not match OsekRecord"):
        read_campaign_stream(path)
    path.write_text("[1, 2, 3]\n")
    with pytest.raises(CampaignStreamError, match="expected an object"):
        read_campaign_stream(path)
    with pytest.raises(ValueError, match="on_error"):
        read_campaign_stream(path, on_error="ignore")


# ----------------------------------------------------------------------
# matrices and the CLI
# ----------------------------------------------------------------------

def test_builtin_matrices_cover_all_domains():
    matrices = available_matrices()
    assert set(matrices) == {"table1", "irq-sweep", "osek", "can",
                             "soft-error", "smoke", "vehicle", "lin",
                             "wcet", "vehicle-smoke", "vehicle-fault"}
    smoke = smoke_matrix()
    assert {s.domain for s in smoke} == {"kernel", "osek", "can",
                                         "soft_error", "vehicle", "lin",
                                         "wcet"}
    for name, builder in matrices.items():
        specs = builder(2005, 1)
        assert specs, name
        assert len({s.key() for s in specs}) == len(specs), (
            f"matrix {name} has colliding scenario keys")


def test_cli_runs_a_sharded_smoke_slice(tmp_path, capsys):
    stream = tmp_path / "cli.jsonl"
    code = main(["--matrix", "smoke", "--shard", "0/3",
                 "--stream", str(stream), "--seed", "2005"])
    assert code == 0
    out = capsys.readouterr().out
    assert "shard 0/3" in out
    assert read_campaign_stream(stream)


def test_cli_rerun_replaces_the_stream(tmp_path, capsys):
    """A retried shard must replace its stream, or concatenation breaks."""
    stream = tmp_path / "retry.jsonl"
    args = ["--matrix", "smoke", "--shard", "0/4", "--stream", str(stream)]
    assert main(args) == 0
    first = stream.read_bytes()
    assert main(args) == 0                      # the retry
    assert stream.read_bytes() == first
    capsys.readouterr()


def test_on_record_callback_sees_every_record_in_order(tmp_path):
    specs = _cheap_pool()[:4]
    seen: list = []
    result = run_campaign(specs, workers=2, stream_path=tmp_path / "cb.jsonl",
                          on_record=seen.append)
    assert result.records == []                 # collect stayed off
    assert [r.label for r in seen] == [s.label for s in specs]


def test_cli_list_and_errors(capsys):
    assert main(["--list"]) == 0
    assert "smoke" in capsys.readouterr().out
    with pytest.raises(SystemExit):
        main(["--matrix", "no-such-matrix"])
    with pytest.raises(SystemExit):
        main([])


# ----------------------------------------------------------------------
# the vehicle / lin / wcet domains (PR 5)
# ----------------------------------------------------------------------

def test_lin_domain_schedule_bounds_simulation():
    spec = ScenarioSpec(label="lin", domain="lin", seed=7,
                        params=(("slots", 3), ("horizon_us", 300_000)))
    record = run_scenario(spec)
    assert record.domain == "lin"
    assert record.deliveries > 0
    assert record.updates_delivered > 0
    assert record.bound_violations == 0
    assert record.worst_latency_us <= record.worst_bound_us
    assert record.verified


def test_wcet_domain_measures_executed_cycles():
    spec = ScenarioSpec(label="wcet", domain="wcet", core="m3",
                        isa="thumb2", workload="bitmnp", seed=3,
                        params=(("samples", 3),))
    record = run_scenario(spec)
    assert record.domain == "wcet"
    assert 0 < record.observed_min <= record.observed_max
    assert record.wcet_cycles == int(record.observed_max * 1.2)
    assert record.wcet_us >= 1
    assert record.verified


def test_wcet_domain_requires_cpu_fields():
    with pytest.raises(ValueError, match="core/isa/workload"):
        run_scenario(ScenarioSpec(label="bad", domain="wcet"))


def test_wcet_feeds_distributed_placement():
    """The ROADMAP bridge: measured WCETs -> DistributedTask.wcet_us."""
    from repro.network.distributed import (
        Ecu,
        allocate_tasks,
        analyse_system,
        tasks_from_wcet,
    )

    estimates = [
        run_scenario(ScenarioSpec(label=f"wcet {w}", domain="wcet",
                                  core="m3", isa="thumb2", workload=w,
                                  seed=3, params=(("samples", 2),)))
        for w in ("bitmnp", "canrdr")
    ]
    periods = {"bitmnp": 10_000, "canrdr": 20_000}
    tasks = tasks_from_wcet(estimates, periods)
    assert [t.wcet_us for t in tasks] == [e.wcet_us for e in estimates]
    assert all(t.binaries == frozenset({"thumb2"}) for t in tasks)
    ecus = [Ecu(name="body1", isa="thumb2"), Ecu(name="body2", isa="thumb2")]
    placement = allocate_tasks(tasks, ecus)
    assert placement.fully_placed
    analysis = analyse_system(tasks, ecus, placement)
    assert analysis.schedulable
    with pytest.raises(KeyError, match="no period"):
        tasks_from_wcet(estimates, {"bitmnp": 10_000})


def test_vehicle_domain_runs_and_verifies():
    spec = ScenarioSpec(label="vehicle", domain="vehicle", seed=11,
                        params=(("sensors", 2), ("horizon_us", 150_000)))
    record = run_scenario(spec)
    assert record.domain == "vehicle"
    assert record.gateway_applied > 0 and record.actuator_applied > 0
    assert record.bound_violations == 0 and record.value_errors == 0
    assert record.conservation_ok and record.checksum_ok
    assert record.fused_blocks > 0          # the trace engine actually ran
    assert record.worst_latency_us <= record.worst_bound_us
    assert record.frames_queued == record.frames_delivered + record.frames_backlog
    assert record.verified


def test_vehicle_records_are_pure_functions_of_the_spec():
    spec = ScenarioSpec(label="vehicle", domain="vehicle", seed=23,
                        params=(("sensors", 1), ("horizon_us", 120_000)))
    assert vars(run_scenario(spec)) == vars(run_scenario(spec))


def test_launch_orchestrator_assembles_byte_identical_stream(tmp_path):
    """python -m repro.sim.campaign --launch N: spawned shards share a
    cache and their concatenation equals the pooled stream."""
    pooled = tmp_path / "pooled.jsonl"
    code = main(["--matrix", "smoke", "--stream", str(pooled)])
    assert code == 0
    launched = tmp_path / "launched.jsonl"
    code = main(["--matrix", "smoke", "--launch", "3",
                 "--stream", str(launched), "--cache",
                 str(tmp_path / "cache")])
    assert code == 0
    assert launched.read_bytes() == pooled.read_bytes()
    assert not list(tmp_path.glob("launched.jsonl.shard*"))
    # a relaunch with a different shard count replays from the cache
    relaunched = tmp_path / "relaunched.jsonl"
    code = main(["--matrix", "smoke", "--launch", "2",
                 "--stream", str(relaunched), "--cache",
                 str(tmp_path / "cache")])
    assert code == 0
    assert relaunched.read_bytes() == pooled.read_bytes()


def test_launch_flag_validation(tmp_path):
    with pytest.raises(SystemExit):
        main(["--matrix", "smoke", "--launch", "2"])          # no --stream
    with pytest.raises(SystemExit):
        main(["--matrix", "smoke", "--launch", "2", "--shard", "0/2",
              "--stream", str(tmp_path / "x.jsonl")])
