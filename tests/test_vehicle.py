"""The virtual vehicle: controllers, ECU clock glue, and the end-to-end
three-ECU body network (sensor -> CAN -> gateway -> LIN -> actuator).

The headline assertions mirror the co-simulation's acceptance criteria:
guest code does real MMIO and ISR work on all three core models, every
observed signal latency respects its composed analytic bound
(RTA + Tindell/Davis CAN + LIN schedule table), CAN frames and signal
sequences are conserved, and the guests keep running on the fused trace
engine between bus events.
"""

from __future__ import annotations

import pytest

from repro.core import FLASH_BASE, build_cortexm3
from repro.isa import ISA_THUMB2, assemble
from repro.memory.bus import BusFault
from repro.vehicle import (
    BodyNetworkSpec,
    CosimDeterminismError,
    Ecu,
    RoundTripSpec,
    SensorNode,
    build_body_network,
    build_guest_machine,
    build_round_trip,
)
from repro.vehicle import firmware
from repro.vehicle.controllers import SensorDevice

THREE_CORES = (
    SensorNode("wheel", "m3", 80, 0x120, 20_000),
    SensorNode("seat", "arm1156", 160, 0x180, 25_000, raw_salt=7),
    SensorNode("door", "arm7", 48, 0x200, 50_000, raw_salt=3),
)


@pytest.fixture(scope="module")
def body_network():
    net = build_body_network(BodyNetworkSpec(sensors=THREE_CORES))
    net.run(horizon_us=220_000)
    return net, net.report()


# ----------------------------------------------------------------------
# the end-to-end network
# ----------------------------------------------------------------------

def test_three_ecu_network_is_healthy(body_network):
    net, report = body_network
    assert report.generated > 0
    assert report.gateway_applied > 0
    assert report.actuator_applied > 0
    assert report.healthy


def test_every_latency_respects_its_analytic_bound(body_network):
    net, report = body_network
    assert report.observations, "nothing was observed end to end"
    assert report.bound_violations == 0
    for obs in report.observations:
        assert obs.latency_us <= obs.bound_us, (obs.signal, obs.seq)
    # and the bounds are not vacuous: latencies are real microseconds
    assert report.worst_latency_us > 0
    assert report.worst_bound_us >= report.worst_latency_us


def test_end_to_end_values_match_python_mirror(body_network):
    net, report = body_network
    assert report.value_errors == 0
    forwarded = [o for o in report.observations if o.signal.endswith("->lin")]
    assert forwarded, "the LIN leg never delivered a command"
    assert all(o.value_ok for o in report.observations)


def test_frames_and_sequences_are_conserved(body_network):
    net, report = body_network
    conservation = net.vehicle.frame_conservation()
    assert conservation["conserved"]
    assert conservation["queued"] == report.generated
    assert report.conservation_ok
    assert report.checksum_ok


def test_guests_stay_on_the_trace_engine(body_network):
    net, _ = body_network
    for ecu in net.vehicle.ecus:
        assert ecu.cpu.fastpath and ecu.cpu.superblocks
        assert ecu.cpu.trace_superblocks
        assert ecu.fused_block_count() > 0, (
            f"{ecu.name} never fused a superblock: the co-simulation "
            f"fell off the trace engine")


def test_all_three_core_models_did_real_isr_work(body_network):
    net, _ = body_network
    cores = {ecu.cpu.name for ecu in net.vehicle.ecus}
    assert cores == {"cortex-m3", "arm7", "arm1156"}
    for ecu in net.vehicle.ecus:
        assert ecu.controller.stats.serviced > 0, ecu.name
        assert ecu.cpu.instructions_executed > 0, ecu.name


def test_gateway_mmio_really_happened(body_network):
    net, report = body_network
    # the gateway's CAN cell received every sensor frame over MMIO
    assert net.gateway_can.fifo.received == report.generated
    assert net.gateway_lin.publishes > 0
    # the actuator's LIN cell received schedule-table broadcasts
    assert net.actuator_lin.fifo.received > 0
    assert len(net.actuator_out.applied) > 0


def test_lin_leg_is_schedule_table_driven(body_network):
    net, report = body_network
    assert report.lin_deliveries > 0
    assert report.lin_no_response == 0
    spec = net.spec
    bound = net.vehicle.lin.worst_case_latency_us(spec.lin_frame_id)
    assert bound == net.vehicle.lin.cycle_us + \
        net.vehicle.lin.schedule[0].frame_time_us(spec.lin_baud)


# ----------------------------------------------------------------------
# the round trip
# ----------------------------------------------------------------------

def test_round_trip_accumulates_mirrored_responses():
    rt = build_round_trip(RoundTripSpec())
    rt.run(horizon_us=60_000)
    requests, responses, acc = rt.expected_state()
    assert requests == 12 and responses == 12
    observed = rt.requester.machine.bus.read_raw(
        firmware.ROUNDTRIP_ACC_ADDR, 4)
    assert observed == acc
    assert rt.vehicle.frame_conservation()["conserved"]


# ----------------------------------------------------------------------
# controllers and the Ecu clock glue
# ----------------------------------------------------------------------

def _bare_ecu() -> Ecu:
    machine = build_guest_machine("m3", firmware.actuator_source())
    return Ecu("bare", machine, clock_mhz=10)


def test_clock_conversion_round_trips():
    ecu = _bare_ecu()
    assert ecu.cycle_of_us(7) == 70
    assert ecu.us_of_cycle(70) == 7
    assert ecu.us_of_cycle(71) == 8          # ceiling: end of the cycle
    with pytest.raises(ValueError):
        Ecu("bad", build_guest_machine("m3", firmware.actuator_source()),
            clock_mhz=0)


def _bare_lin(ecu: Ecu):
    from repro.vehicle import LinController

    lin = LinController()
    ecu.attach_device(lin)
    return lin


def test_rx_fifo_visibility_gating():
    """A frame deposited at bus time T is invisible to guest cycles < T."""
    ecu = _bare_ecu()
    lin = _bare_lin(ecu)
    lin.fifo.push(0x21, 0xAB, visible_from=1_000)
    ecu.cpu.cycles = 999
    assert lin.read_register(0x0C) == 0      # RXSTAT: nothing yet
    assert lin.read_register(0x08) == 0
    ecu.cpu.cycles = 1_000
    assert lin.read_register(0x0C) == 1
    assert lin.read_register(0x08) == 0xAB
    lin.write_register(0x0C, 1)              # pop
    assert lin.read_register(0x0C) == 0


def test_rx_fifo_overflow_is_counted_not_silent():
    ecu = _bare_ecu()
    lin = _bare_lin(ecu)
    for n in range(10):
        lin.fifo.push(0x21, n, visible_from=0)
    assert lin.fifo.dropped == 2             # capacity 8
    assert lin.read_register(0x10) == 2


def test_sensor_latch_promotes_in_visibility_order():
    ecu = _bare_ecu()
    sensor = SensorDevice()
    ecu.attach_device(sensor)
    sensor.latch(0x11, visible_from=100)
    sensor.latch(0x22, visible_from=200)
    ecu.cpu.cycles = 150
    assert sensor.read_register(0) == 0x11
    ecu.cpu.cycles = 250
    assert sensor.read_register(0) == 0x22


def test_mmio_requires_aligned_word_access():
    ecu = _bare_ecu()
    lin = _bare_lin(ecu)
    with pytest.raises(BusFault):
        lin.read(lin.base + 2, 2)
    with pytest.raises(BusFault):
        lin.write(lin.base + 1, 1, 0xFF)


def test_stale_interrupt_raises_determinism_error():
    ecu = _bare_ecu()
    ecu.cpu.cycles = 10 * ecu.mhz + ecu.irq_latency + 1
    with pytest.raises(CosimDeterminismError, match="irq_latency_cycles"):
        ecu.raise_irq(1, handler=0x0800_0000, at_us=10)


def test_oversized_quantum_trips_the_tx_guard():
    rt = build_round_trip(RoundTripSpec(tx_delay_us=200))
    with pytest.raises(CosimDeterminismError, match="tx_delay_us"):
        rt.run(horizon_us=30_000, quantum_us=2_000)


def test_sleep_fast_forward_matches_reference_stepping():
    """The O(1) WFI fast-forward must be bit-identical to charging one
    cycle per poll, including a mid-sleep wake-up."""
    source = """
main:
    wfi
    b main
handler:
    movs r0, #42
    bx lr
"""
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)

    def build(fast: bool):
        machine = build_cortexm3(program)
        ecu = Ecu("s", machine, clock_mhz=10)
        machine.cpu.nvic.raise_irq(1, handler=program.symbols["handler"],
                                   at_cycle=1_234)
        return ecu

    fast = build(True)
    fast.advance_to_cycle(5_000)

    ref = build(False)
    cpu = ref.cpu
    while not cpu.halted and cpu.cycles < 5_000:
        cpu.step()

    assert fast.cpu.cycles == ref.cpu.cycles == 5_000
    assert list(fast.cpu.regs.snapshot()) == list(ref.cpu.regs.snapshot())
    assert (fast.cpu.instructions_executed == cpu.instructions_executed)
    assert fast.controller.stats.serviced == 1
    assert fast.controller.stats.records[0].entry_cycle == \
        ref.controller.stats.records[0].entry_cycle


def test_body_network_spec_validation():
    with pytest.raises(ValueError, match="at least one sensor"):
        build_body_network(BodyNetworkSpec(sensors=()))
    with pytest.raises(ValueError, match="forward_index"):
        build_body_network(BodyNetworkSpec(sensors=THREE_CORES[:1],
                                           forward_index=3))
    with pytest.raises(ValueError, match="unknown guest core"):
        build_guest_machine("z80", firmware.actuator_source())
