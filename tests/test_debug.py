"""Tests for JTAG, SWD, and the flash patch unit."""

import pytest

from repro.core import FLASH_BASE
from repro.debug import (
    FlashPatchUnit,
    FpbError,
    JtagProbe,
    JtagTap,
    PatchedFlash,
    SwdProbe,
)
from repro.isa import ISA_THUMB2, assemble
from repro.memory import Flash, Sram, SystemBus


# ----------------------------------------------------------------------
# JTAG
# ----------------------------------------------------------------------

def test_tap_reset_from_any_state():
    tap = JtagTap()
    tap.state = "pause-dr"
    tap.reset()
    assert tap.state == "test-logic-reset"


def test_jtag_register_write_read():
    probe = JtagProbe()
    probe.write_register(instruction=0xA, value=0xCAFEBABE)
    value, _ = probe.read_register(instruction=0xA)
    assert value == 0xCAFEBABE


def test_jtag_distinct_registers():
    probe = JtagProbe()
    probe.write_register(0x1, 111)
    probe.write_register(0x2, 222)
    assert probe.read_register(0x1)[0] == 111
    assert probe.read_register(0x2)[0] == 222


def test_jtag_costs_many_clocks():
    probe = JtagProbe()
    clocks = probe.write_register(0x3, 0x12345678)
    # IR scan + DR scan: state walking plus 4 + 32 shift clocks
    assert clocks >= 45


def test_jtag_pin_count():
    assert JtagTap().pin_count == 5


# ----------------------------------------------------------------------
# SWD
# ----------------------------------------------------------------------

def test_swd_write_read_roundtrip():
    probe = SwdProbe()
    probe.write("ap", 0x4, 0xDEAD0001)
    assert probe.read("ap", 0x4) == 0xDEAD0001


def test_swd_ports_are_separate():
    probe = SwdProbe()
    probe.write("dp", 0x0, 1)
    probe.write("ap", 0x0, 2)
    assert probe.read("dp", 0x0) == 1
    assert probe.read("ap", 0x0) == 2


def test_swd_uses_one_data_wire():
    probe = SwdProbe()
    assert probe.pin_count == 2  # SWDIO + SWCLK


def test_swd_bits_accounting():
    probe = SwdProbe()
    probe.write("ap", 0x0, 42)
    probe.read("ap", 0x0)
    assert probe.transactions == 2
    assert 40 <= probe.bits_per_transaction() <= 50


def test_swd_fewer_pins_than_jtag():
    """The paper's section 3.2.2 claim, as numbers."""
    assert SwdProbe().pin_count < JtagTap().pin_count


# ----------------------------------------------------------------------
# flash patch unit
# ----------------------------------------------------------------------

def test_fpb_eight_comparators_limit():
    fpb = FlashPatchUnit()
    for i in range(8):
        fpb.patch(0x1000 + 4 * i, i)
    with pytest.raises(FpbError):
        fpb.patch(0x2000, 0)
    fpb.clear(3)
    fpb.patch(0x2000, 0)  # freed slot reusable
    assert fpb.active_count() == 8


def test_fpb_patch_word_granular():
    fpb = FlashPatchUnit()
    with pytest.raises(FpbError):
        fpb.patch(0x1002, 0)


def test_patched_flash_remaps_reads():
    flash = Flash(base=0x0800_0000, size=0x1000)
    flash.write_raw(0x0800_0100, (0x11111111).to_bytes(4, "little"))
    patched = PatchedFlash(flash)
    patched.fpb.patch(0x0800_0100, 0x22222222)
    value, _ = patched.read(0x0800_0100, 4)
    assert value == 0x22222222
    # unpatched addresses pass through
    value, _ = patched.read(0x0800_0104, 4)
    assert value == flash.read(0x0800_0104, 4)[0]


def test_patched_flash_subword_read():
    flash = Flash(base=0, size=64)
    patched = PatchedFlash(flash)
    patched.fpb.patch(0x10, 0xAABBCCDD)
    value, _ = patched.read(0x12, 1)
    assert value == 0xBB


def test_fpb_breakpoint_records_hits():
    fpb = FlashPatchUnit()
    fpb.set_breakpoint(0x1000)
    assert fpb.intercept_read(0x1000, 4) is None
    assert fpb.breakpoints_hit == [0x1000]


def test_calibration_patch_changes_running_constant():
    """End to end: patch a literal-pool constant in a running program -
    the 'writing system and scaling parameters' use of section 3.2.2."""
    program = assemble(
        """
        get_scale:
            ldr r0, =1000
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    # build the machine by hand so the flash can be wrapped
    bus = SystemBus()
    flash = Flash(base=FLASH_BASE, size=0x10000, access_cycles=0)
    patched = PatchedFlash(flash)
    bus.attach(patched)
    bus.attach(Sram(base=0x2000_0000, size=0x10000))
    bus.load_image(program.base, program.image())
    from repro.core import CortexM3Core
    cpu = CortexM3Core(program, bus)
    cpu.regs.sp = 0x2001_0000
    assert cpu.call("get_scale") == 1000

    # find the literal word and patch it to a new calibration value
    literal_addr = next(d.address for d in program.data if d.value == 1000)
    patched.fpb.patch(literal_addr, 1250)
    cpu2 = CortexM3Core(program, bus)
    cpu2.regs.sp = 0x2001_0000
    assert cpu2.call("get_scale") == 1250
