"""The campaign service: dedup, ordering, back-pressure, resume.

Covers the acceptance claims of the campaign-as-a-service redesign: two
concurrent clients with overlapping sweeps stream byte-identical records
while the server computes the union of cells exactly once (asserted via
the dedup counters), cancellation frees bounded-queue slots, back-
pressure rejects with a typed ``queue-full`` error, priorities reorder
the global dispatch queue, and a service killed mid-sweep resumes from
its disk cache.  Most tests drive :class:`CampaignService` in process
(with ``pause()``/``resume()`` making scheduling deterministic); the
transport tests run a real TCP server and the packaged CLI.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.sim.campaign import CampaignRequest, ScenarioSpec, execute_request
from repro.sim.service import (
    CampaignClient,
    CampaignService,
    CampaignServiceError,
    decode_message,
    encode_message,
    serve_tcp,
)


def cheap_specs() -> list[ScenarioSpec]:
    """Fast pure-Python cells (no CPU model) across two domains."""
    return [
        ScenarioSpec(label="o0", domain="osek",
                     params=(("tasks", 3), ("utilisation", 0.5),
                             ("horizon_us", 200_000))),
        ScenarioSpec(label="o1", domain="osek", seed=9,
                     params=(("tasks", 4), ("utilisation", 0.7),
                             ("horizon_us", 200_000))),
        ScenarioSpec(label="c0", domain="can",
                     params=(("messages", 4), ("load", 0.3),
                             ("horizon_us", 200_000))),
        ScenarioSpec(label="c1", domain="can", seed=13,
                     params=(("messages", 5), ("load", 0.5),
                             ("error_rate", 0.05), ("horizon_us", 200_000))),
    ]


async def wait_done(state) -> None:
    async with state.cond:
        await state.cond.wait_for(lambda: state.done)


def pooled_bytes(tmp_path, specs, name) -> bytes:
    path = tmp_path / f"{name}.jsonl"
    execute_request(CampaignRequest(specs=tuple(specs)), stream_path=path)
    return path.read_bytes()


# ----------------------------------------------------------------------
# dedup and byte-identity (the tentpole acceptance claim)
# ----------------------------------------------------------------------

def test_concurrent_overlapping_clients_compute_the_union_once(tmp_path):
    """Two TCP clients, overlapping sweeps: byte-identical streams, and
    the overlapping cells are computed exactly once (counter-asserted)."""
    pool = cheap_specs()
    specs_a = [pool[0], pool[2], pool[3]]            # o0 c0 c1
    specs_b = [pool[2], pool[3], pool[1]]            # c0 c1 o1  (2 shared)
    path_a = tmp_path / "a.jsonl"
    path_b = tmp_path / "b.jsonl"

    async def go():
        service = CampaignService(workers=1)
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            one = await CampaignClient.connect(port=port)
            two = await CampaignClient.connect(port=port)
            try:
                # pause so both submits land before any cell starts: the
                # overlap must go down the in-flight *join* path, not the
                # cache-replay path
                service.pause()
                rid_a = await one.submit(
                    CampaignRequest(specs=tuple(specs_a)))
                rid_b = await two.submit(
                    CampaignRequest(specs=tuple(specs_b)))
                service.resume()
                done_a, done_b = await asyncio.gather(
                    one.stream(rid_a, stream_path=path_a),
                    two.stream(rid_b, stream_path=path_b))
            finally:
                await one.close()
                await two.close()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()
        return done_a, done_b, service

    done_a, done_b, service = asyncio.run(go())
    union = {s.key() for s in specs_a + specs_b}
    assert service.computed == len(union) == 4      # shared cells ran once
    assert done_a["computed"] == 3 and done_a["joined"] == 0
    assert done_b["joined"] == 2 and done_b["computed"] == 1
    assert done_a["status"] == done_b["status"] == "ok"
    assert done_a["verified"] == done_b["verified"] == 3
    assert path_a.read_bytes() == pooled_bytes(tmp_path, specs_a, "la")
    assert path_b.read_bytes() == pooled_bytes(tmp_path, specs_b, "lb")


def test_second_request_replays_from_the_service_cache(tmp_path):
    """Sequential overlap takes the cache path: replayed, not recomputed."""

    async def go():
        service = CampaignService(workers=1)
        await service.start()
        try:
            specs = cheap_specs()[:2]
            first = service.submit(CampaignRequest(specs=tuple(specs)))
            await wait_done(first)
            second = service.submit(CampaignRequest(specs=tuple(specs)))
            await wait_done(second)
            return first.summary(), second.summary(), service.computed
        finally:
            await service.shutdown()

    first, second, computed = asyncio.run(go())
    assert first["computed"] == 2 and first["replayed"] == 0
    assert second["replayed"] == 2 and second["computed"] == 0
    assert computed == 2


def test_stream_reattaches_gapless_after_late_subscribe():
    """A streamer attaching after completion still sees every record in
    spec order (the killed-client resume guarantee)."""

    async def go():
        service = CampaignService(workers=1)
        await service.start()
        try:
            specs = cheap_specs()
            state = service.submit(CampaignRequest(specs=tuple(specs)))
            await wait_done(state)
            seen = [record async for record in _drain(service, state)]
            again = [record async for record in _drain(service, state)]
            return specs, seen, again
        finally:
            await service.shutdown()

    async def _drain(service, state):
        async for _, record in service.stream_records(state):
            yield record

    specs, seen, again = asyncio.run(go())
    assert [r.label for r in seen] == [s.label for s in specs]
    assert [vars(r) for r in again] == [vars(r) for r in seen]


# ----------------------------------------------------------------------
# back-pressure, cancellation, priorities
# ----------------------------------------------------------------------

def test_backpressure_rejects_typed_and_cancel_frees_the_slot():
    specs = cheap_specs()

    async def go():
        service = CampaignService(workers=1, max_pending=1)
        await service.start()
        service.pause()                       # nothing computes; pure queueing
        try:
            first = service.submit(CampaignRequest(specs=(specs[0],)))
            with pytest.raises(CampaignServiceError) as rejected:
                service.submit(CampaignRequest(specs=(specs[1],)))
            assert rejected.value.code == "queue-full"
            await service.cancel(first.rid)   # frees the slot immediately
            assert first.summary()["status"] == "cancelled"
            second = service.submit(CampaignRequest(specs=(specs[1],)))
            service.resume()
            await wait_done(second)
            return second.summary()
        finally:
            await service.shutdown()

    summary = asyncio.run(go())
    assert summary["status"] == "ok" and summary["ran"] == 1


def test_backpressure_bounds_total_active_cells():
    specs = cheap_specs()

    async def go():
        service = CampaignService(workers=1, max_active_cells=2)
        await service.start()
        try:
            with pytest.raises(CampaignServiceError) as rejected:
                service.submit(CampaignRequest(specs=tuple(specs[:3])))
            assert rejected.value.code == "queue-full"
            state = service.submit(CampaignRequest(specs=tuple(specs[:2])))
            await wait_done(state)
            return state.summary()
        finally:
            await service.shutdown()

    assert asyncio.run(go())["status"] == "ok"


def test_priorities_reorder_the_global_dispatch_queue():
    specs = cheap_specs()
    low_specs, high_specs = specs[:2], specs[2:]

    async def go():
        service = CampaignService(workers=1)
        await service.start()
        try:
            service.pause()
            low = service.submit(CampaignRequest(specs=tuple(low_specs)),
                                 priority=0)
            high = service.submit(CampaignRequest(specs=tuple(high_specs)),
                                  priority=5)
            service.resume()
            await asyncio.gather(wait_done(low), wait_done(high))
            return list(service.dispatch_log)
        finally:
            await service.shutdown()

    log = asyncio.run(go())
    expected = [s.key() for s in high_specs] + [s.key() for s in low_specs]
    assert log == expected                   # high overtook, FIFO within each


def test_cancelled_cells_nobody_wants_are_never_dispatched():
    specs = cheap_specs()

    async def go():
        service = CampaignService(workers=1)
        await service.start()
        try:
            service.pause()
            doomed = service.submit(CampaignRequest(specs=tuple(specs[:2])))
            keeper = service.submit(CampaignRequest(specs=(specs[2],)))
            await service.cancel(doomed.rid)
            service.resume()
            await wait_done(keeper)
            while service._inflight:          # let the dispatcher drain drops
                await asyncio.sleep(0.01)
            return list(service.dispatch_log), service.computed
        finally:
            await service.shutdown()

    log, computed = asyncio.run(go())
    assert log == [specs[2].key()]           # the doomed cells never started
    assert computed == 1


# ----------------------------------------------------------------------
# typed errors
# ----------------------------------------------------------------------

def test_submit_rejects_bad_duplicate_and_unknown():
    async def go():
        service = CampaignService(workers=1)
        await service.start()
        service.pause()
        codes = {}
        try:
            with pytest.raises(CampaignServiceError) as exc:
                service.submit(CampaignRequest(matrix="no-such-matrix"))
            codes["bad"] = exc.value.code
            service.submit(CampaignRequest(specs=(cheap_specs()[0],)),
                           rid="sweep")
            with pytest.raises(CampaignServiceError) as exc:
                service.submit(CampaignRequest(specs=(cheap_specs()[1],)),
                               rid="sweep")
            codes["dupe"] = exc.value.code
            with pytest.raises(CampaignServiceError) as exc:
                await service.cancel("never-submitted")
            codes["unknown"] = exc.value.code
        finally:
            await service.shutdown()
        with pytest.raises(CampaignServiceError) as exc:
            service.submit(CampaignRequest(specs=(cheap_specs()[0],)))
        codes["closing"] = exc.value.code
        return codes

    codes = asyncio.run(go())
    assert codes == {"bad": "bad-request", "dupe": "duplicate-request",
                     "unknown": "unknown-request",
                     "closing": "shutting-down"}


def test_wire_protocol_rejects_garbage_and_unknown_ops():
    with pytest.raises(CampaignServiceError) as exc:
        decode_message(b"{not json}\n")
    assert exc.value.code == "bad-message"
    with pytest.raises(CampaignServiceError) as exc:
        decode_message(b"[1, 2]\n")
    assert exc.value.code == "bad-message"
    assert decode_message(encode_message({"op": "status"})) == {"op": "status"}

    async def go():
        service = CampaignService(workers=1)
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            client = await CampaignClient.connect(port=port)
            try:
                with pytest.raises(CampaignServiceError) as exc:
                    await client._call({"op": "warp"})
                unknown_op = exc.value.code
                with pytest.raises(CampaignServiceError) as exc:
                    await client.cancel("ghost")
                unknown_request = exc.value.code
                status = await client.status()
            finally:
                await client.close()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()
        return unknown_op, unknown_request, status

    unknown_op, unknown_request, status = asyncio.run(go())
    assert unknown_op == "unknown-op"
    assert unknown_request == "unknown-request"
    assert status["active"] == 0 and status["workers"] == 1


def test_status_counters_track_dedup():
    async def go():
        service = CampaignService(workers=1)
        await service.start()
        try:
            specs = cheap_specs()[:2]
            state = service.submit(CampaignRequest(specs=tuple(specs)))
            await wait_done(state)
            again = service.submit(CampaignRequest(specs=tuple(specs)))
            await wait_done(again)
            return service.status()
        finally:
            await service.shutdown()

    status = asyncio.run(go())
    assert status["computed"] == 2
    assert status["cache_hits"] == 2          # the second sweep replayed
    assert status["active"] == 0 and status["active_cells"] == 0
    assert len(status["requests"]) == 2
    assert all(s["status"] == "ok" for s in status["requests"].values())


# ----------------------------------------------------------------------
# crash resume from the shared cache
# ----------------------------------------------------------------------

def test_killed_service_resumes_the_sweep_from_its_cache(tmp_path):
    """Kill the service mid-sweep; a new one on the same cache directory
    replays the finished cells and completes - byte-identical."""
    specs = cheap_specs()
    cache_dir = tmp_path / "cache"

    async def first_life():
        service = CampaignService(workers=1, cache=str(cache_dir))
        await service.start()
        state = service.submit(CampaignRequest(specs=tuple(specs)))
        while len(state.records) < 2:         # let part of the sweep finish
            await asyncio.sleep(0.005)
        await service.shutdown()              # kill-like: abandons the rest
        return state.summary()

    async def second_life():
        service = CampaignService(workers=1, cache=str(cache_dir))
        await service.start()
        try:
            state = service.submit(CampaignRequest(specs=tuple(specs)))
            await wait_done(state)
            path = tmp_path / "resumed.jsonl"
            out = open(path, "a", encoding="utf-8")
            from repro.sim.campaign import _record_json
            try:
                async for _, record in service.stream_records(state):
                    out.write(_record_json(record) + "\n")
            finally:
                out.close()
            return state.summary(), path.read_bytes()
        finally:
            await service.shutdown()

    interrupted = asyncio.run(first_life())
    assert interrupted["status"] in ("running", "error")   # it never finished
    summary, resumed = asyncio.run(second_life())
    assert summary["status"] == "ok"
    assert summary["replayed"] >= 2           # the first life's cells held
    assert summary["replayed"] + summary["computed"] == len(specs)
    assert resumed == pooled_bytes(tmp_path, specs, "pooled")


# ----------------------------------------------------------------------
# graceful shutdown: typed goodbyes, drained cells, flushed cache
# ----------------------------------------------------------------------

def test_graceful_shutdown_answers_open_streams_typed(tmp_path):
    """Shutting down with a stream open and cells queued must (a) answer
    the stream with a typed ``shutting-down`` error frame echoing its
    ``seq`` - never a bare closed socket - (b) refuse a late submit with
    the same typed code, and (c) leave the drained cells' cache files on
    disk for the next life."""
    specs = cheap_specs()
    cache_dir = tmp_path / "cache"

    async def go():
        service = CampaignService(workers=1, cache=str(cache_dir))
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                request = CampaignRequest(specs=tuple(specs))
                writer.write(encode_message(
                    {"op": "submit", "seq": 1, "request": request.to_obj()}))
                await writer.drain()
                submitted = decode_message(await reader.readline())
                writer.write(encode_message(
                    {"op": "stream", "seq": 2, "id": submitted["id"]}))
                await writer.drain()
                # one record proves the stream is live, then freeze the
                # dispatcher so the remaining cells are queued, not running
                first = decode_message(await reader.readline())
                service.pause()
                await service.shutdown()
                # the connection itself stays usable; the stream must end
                # with the typed goodbye (a bare EOF here fails the test
                # via the read timeout)
                frames = []
                while True:
                    line = await asyncio.wait_for(reader.readline(), 10)
                    assert line, "stream died with a bare closed socket"
                    frames.append(decode_message(line))
                    if frames[-1].get("op") == "error":
                        break
                return submitted, first, frames
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        finally:
            server.close()
            await server.wait_closed()

    submitted, first, frames = asyncio.run(go())
    assert submitted["op"] == "submitted"
    assert first["op"] == "record" and first["seq"] == 2
    # records the drain finished may still arrive; the *last* frame must
    # be the typed goodbye with the stream's seq and request id echoed
    goodbye = frames[-1]
    assert goodbye["op"] == "error" and goodbye["ok"] is False
    assert goodbye["error"] == "shutting-down"
    assert goodbye["seq"] == 2 and goodbye["id"] == submitted["id"]
    assert all(f["op"] == "record" for f in frames[:-1])
    # the drained cells were flushed to disk for the next life
    assert list(cache_dir.glob("*.json"))


def test_submit_after_shutdown_refused_typed_over_the_wire():
    async def go():
        service = CampaignService(workers=1)
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            await service.shutdown()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                request = CampaignRequest(specs=(cheap_specs()[0],))
                writer.write(encode_message(
                    {"op": "submit", "seq": 9, "request": request.to_obj()}))
                await writer.drain()
                return decode_message(await reader.readline())
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        finally:
            server.close()
            await server.wait_closed()

    refused = asyncio.run(go())
    assert refused["op"] == "error" and refused["error"] == "shutting-down"
    assert refused["seq"] == 9


# ----------------------------------------------------------------------
# the packaged transports: python -m repro.sim.service + CLI --connect
# ----------------------------------------------------------------------

def test_cli_connect_round_trip_through_a_real_server(tmp_path):
    """Server subprocess + two CLI clients: the second replays everything
    and both streams are byte-identical to a local run."""
    from repro.sim.campaign import main

    env = dict(os.environ)
    root = Path(__file__).resolve().parents[1]
    env["PYTHONPATH"] = str(root / "src")
    port_file = tmp_path / "port.txt"
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.sim.service", "--port", "0",
         "--port-file", str(port_file), "--cache", str(tmp_path / "cache")],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 30
        while not port_file.exists():
            assert server.poll() is None, "service died before listening"
            assert time.monotonic() < deadline, "service never wrote its port"
            time.sleep(0.05)
        port = int(port_file.read_text())

        local = tmp_path / "local.jsonl"
        args = ["--matrix", "smoke", "--shard", "0/4", "--seed", "2005"]
        assert main([*args, "--stream", str(local)]) == 0
        first = tmp_path / "first.jsonl"
        assert main([*args, "--stream", str(first),
                     "--connect", f"127.0.0.1:{port}"]) == 0
        second = tmp_path / "second.jsonl"
        assert main([*args, "--stream", str(second),
                     "--connect", f"127.0.0.1:{port}"]) == 0
    finally:
        server.terminate()
        server.wait(timeout=10)
    assert first.read_bytes() == local.read_bytes()
    assert second.read_bytes() == local.read_bytes()


# ----------------------------------------------------------------------
# swallowed-exception regressions: poisoned handlers must surface as
# typed errors, never vanish into a dropped task result
# ----------------------------------------------------------------------

def test_poisoned_stream_replies_typed_internal_with_seq():
    """A stream handler that raises must answer the *stream's* seq with a
    typed ``internal`` error frame - and leave the connection loop alive
    for further operations on the same socket."""

    async def go():
        service = CampaignService(workers=1)
        await service.start()

        async def poisoned(state, seq, send):
            raise RuntimeError("poisoned stream handler")

        service._stream_to = poisoned
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                request = CampaignRequest(specs=(cheap_specs()[0],))
                writer.write(encode_message(
                    {"op": "submit", "seq": 7, "request": request.to_obj()}))
                await writer.drain()
                submitted = decode_message(await reader.readline())
                writer.write(encode_message(
                    {"op": "stream", "seq": 42, "id": submitted["id"]}))
                await writer.drain()
                error = decode_message(await reader.readline())
                writer.write(encode_message({"op": "status", "seq": 43}))
                await writer.drain()
                status = decode_message(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()
        return submitted, error, status

    submitted, error, status = asyncio.run(go())
    assert submitted["op"] == "submitted" and submitted["seq"] == 7
    assert error["op"] == "error" and error["ok"] is False
    assert error["error"] == "internal"
    assert error["seq"] == 42 and error["id"] == submitted["id"]
    assert "poisoned stream handler" in error["message"]
    # the connection loop survived the poisoned task
    assert status["op"] == "status" and status["seq"] == 43


def test_poisoned_cell_reports_error_and_frees_queue_slots(monkeypatch):
    """A cell handler that raises must turn into a typed ``error`` summary
    (not a hang, not a silent drop) and release its bounded-queue slots so
    the next submit is accepted and runs clean."""
    import repro.sim.service.server as server_mod

    real_run_scenario = server_mod.run_scenario

    def poisoned(spec):
        raise TypeError("poisoned compute handler")

    async def go():
        service = CampaignService(workers=1, max_pending=1)
        await service.start()
        try:
            monkeypatch.setattr(server_mod, "run_scenario", poisoned)
            state = service.submit(CampaignRequest(specs=(cheap_specs()[0],)))
            await wait_done(state)
            poisoned_summary = state.summary()
            poisoned_status = service.status()

            # the slot is free again: a second submit on max_pending=1
            # must be accepted, and with the real handler it runs clean
            monkeypatch.setattr(server_mod, "run_scenario", real_run_scenario)
            healthy = service.submit(CampaignRequest(specs=(cheap_specs()[1],)))
            await wait_done(healthy)
            healthy_summary = healthy.summary()
            final_status = service.status()
        finally:
            await service.shutdown()
        return poisoned_summary, poisoned_status, healthy_summary, final_status

    poisoned_summary, poisoned_status, healthy_summary, final_status = \
        asyncio.run(go())
    assert poisoned_summary["status"] == "error"
    assert "poisoned compute handler" in poisoned_summary["message"]
    assert poisoned_status["active"] == 0 and poisoned_status["active_cells"] == 0
    assert healthy_summary["status"] == "ok" and healthy_summary["ran"] == 1
    assert final_status["active"] == 0 and final_status["active_cells"] == 0


# ----------------------------------------------------------------------
# observability: status schema, typed failed counts, the metrics op
# ----------------------------------------------------------------------

def test_status_reports_uptime_protocol_and_pool_mode():
    """Satellite claim: the status payload identifies the server (wire
    protocol version, worker-pool mode, uptime) so operators and the
    dashboard need no out-of-band knowledge."""
    assert CampaignService(workers=1).pool_mode == "in-proc"
    assert CampaignService(workers=4).pool_mode == "process-pool"
    assert CampaignService(workers_proc=2).pool_mode == "workers-proc"

    async def go():
        service = CampaignService(workers=1)
        await service.start()
        try:
            await asyncio.sleep(0.01)
            return service.status()
        finally:
            await service.shutdown()

    status = asyncio.run(go())
    assert status["protocol"] == 1
    assert status["pool"] == "in-proc"
    assert status["uptime_s"] > 0
    # uptime is wall-clock since start(), not a counter anyone resets
    assert status["uptime_s"] < 60


def test_quarantined_cell_counts_exactly_once_in_failed():
    """Regression: ``failed`` used to probe records with ``getattr``;
    now every record class carries a typed ``status`` accessor, so one
    quarantined cell counts exactly one ``failed`` - and the healthy
    cells count zero."""
    from repro.sim.campaign import CellErrorRecord
    from repro.sim.service import ChaosSchedule

    specs = cheap_specs()
    poisoned = specs[2]
    chaos = ChaosSchedule(poison=(poisoned.key(),))

    async def go():
        service = CampaignService(
            workers_proc=2, chaos=chaos,
            supervisor_options={"heartbeat": 0.2})
        await service.start()
        try:
            state = service.submit(CampaignRequest(specs=tuple(specs)))
            records = []
            async for _, record in service.stream_records(state):
                records.append(record)
            return state.summary(), records
        finally:
            await service.shutdown()

    summary, records = asyncio.run(go())
    errors = [r for r in records if isinstance(r, CellErrorRecord)]
    assert len(errors) == 1 and errors[0].key == poisoned.key()
    assert summary["failed"] == 1
    assert summary["ran"] == len(specs)
    assert summary["status"] == "ok"  # per-cell failure is data, not error
    # the typed accessor, not probing: healthy records answer "ok"
    assert all(r.status == "ok" for r in records if r not in errors)


def test_metrics_op_counts_only_while_telemetry_is_enabled(tmp_path):
    """The ``metrics`` op always answers (seq-echoed), but with
    telemetry disabled the counters never move - the op is a window,
    not a switch."""
    from repro import obs

    async def sweep(port, specs, name):
        client = await CampaignClient.connect(port=port)
        try:
            rid = await client.submit(CampaignRequest(specs=tuple(specs)))
            await client.stream(rid, stream_path=tmp_path / f"{name}.jsonl")
            return await client.metrics()
        finally:
            await client.close()

    async def go():
        service = CampaignService(workers=1)
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            obs.disable()
            dark = await sweep(port, cheap_specs()[:2], "dark")
            obs.enable()
            lit = await sweep(port, cheap_specs()[2:], "lit")
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()
        return dark, lit

    was = obs.enabled()
    try:
        dark, lit = asyncio.run(go())
    finally:
        (obs.enable if was else obs.disable)()

    def streamed(reply) -> int:
        return sum(reply["metrics"]["counters"]
                   .get("service.records.streamed", {}).values())

    assert "metrics" in dark and "spans" in dark
    # the second sweep streamed 2 records with telemetry on; the first
    # contributed nothing while disabled
    assert streamed(lit) - streamed(dark) == 2
    resolved = lit["metrics"]["counters"]["service.cells.resolved"]
    assert sum(v for k, v in resolved.items() if "how=computed" in k) >= 2
