"""Integration tests: every kernel, every ISA, cross-checked four ways."""

import pytest

from repro.codegen import IrInterpreter, IrMemory, compile_program
from repro.core import FLASH_BASE, SRAM_BASE
from repro.isa import ISA_ARM, ISA_THUMB, ISA_THUMB2
from repro.sim import DeterministicRng
from repro.workloads import AUTOINDY_SUITE, WORKLOADS_BY_NAME, run_kernel, run_suite, table1

ALL_ISAS = (ISA_ARM, ISA_THUMB, ISA_THUMB2)
CORE_FOR = {ISA_ARM: "arm7", ISA_THUMB: "arm7", ISA_THUMB2: "m3"}


@pytest.mark.parametrize("workload", AUTOINDY_SUITE, ids=lambda w: w.name)
def test_reference_matches_ir_interpreter(workload):
    prepared = workload.make_input(DeterministicRng(7), 1)
    interp = IrInterpreter(IrMemory(size=0x20000, base=SRAM_BASE))
    interp.memory.load_bytes(SRAM_BASE, prepared.data)
    got = interp.run(workload.build(), *prepared.args(SRAM_BASE))
    expected = workload.reference(prepared.data, *prepared.args(0))
    assert got == expected


@pytest.mark.parametrize("workload", AUTOINDY_SUITE, ids=lambda w: w.name)
@pytest.mark.parametrize("isa", ALL_ISAS)
def test_kernel_on_hardware_model(workload, isa):
    run = run_kernel(workload, CORE_FOR[isa], isa, seed=11)
    assert run.verified, (
        f"{workload.name}/{isa}: got {run.result:#x}, expected {run.expected:#x}")
    assert run.cycles > 0
    assert run.instructions > 0


@pytest.mark.parametrize("workload", AUTOINDY_SUITE, ids=lambda w: w.name)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_kernels_agree_across_isas_random_inputs(workload, seed):
    results = {isa: run_kernel(workload, CORE_FOR[isa], isa, seed=seed).result
               for isa in ALL_ISAS}
    assert len(set(results.values())) == 1, results


@pytest.mark.parametrize("workload", AUTOINDY_SUITE, ids=lambda w: w.name)
def test_kernel_code_density_shape(workload):
    """Thumb and Thumb-2 must be meaningfully denser than ARM per kernel."""
    sizes = {}
    for isa in ALL_ISAS:
        program = compile_program([workload.build()], isa, base=FLASH_BASE)
        sizes[isa] = program.code_bytes + program.literal_bytes
    assert sizes[ISA_THUMB] < sizes[ISA_ARM], sizes
    assert sizes[ISA_THUMB2] < sizes[ISA_ARM], sizes


def test_suite_result_aggregates():
    suite = run_suite("ARM7 (ARM)", "arm7", ISA_ARM, seed=5)
    assert suite.all_verified
    assert suite.geometric_mean > 0
    assert suite.code_size > 0
    assert len(suite.runs) == 6


def test_table1_shape():
    """The paper's Table 1 shape: Thumb slower than ARM, Thumb-2 faster
    than both; Thumb/Thumb-2 code roughly 55-75% of ARM."""
    results = table1(seed=2005)
    arm, thumb, thumb2 = results
    assert all(s.all_verified for s in results)

    # performance shape (paper: 100% / 79% / 137%)
    assert thumb.geometric_mean < arm.geometric_mean
    assert thumb2.geometric_mean > arm.geometric_mean

    # code size shape (paper: 100% / 57% / 57%)
    assert thumb.code_size < 0.8 * arm.code_size
    assert thumb2.code_size < 0.8 * arm.code_size


def test_workloads_registry():
    assert set(WORKLOADS_BY_NAME) == {"ttsprk", "tblook", "canrdr",
                                      "bitmnp", "rspeed", "puwmod"}


def test_scaled_inputs_scale_cycles():
    workload = WORKLOADS_BY_NAME["canrdr"]
    small = run_kernel(workload, "m3", ISA_THUMB2, seed=3, scale=1)
    large = run_kernel(workload, "m3", ISA_THUMB2, seed=3, scale=4)
    assert large.verified and small.verified
    assert large.cycles > 2 * small.cycles
