"""Encoder/decoder round-trip tests for all three instruction sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    Condition,
    EncodingError,
    Instruction,
    Mem,
    Shift,
    decode_arm,
    decode_thumb,
    encode_arm,
    encode_arm_immediate,
    encode_thumb,
    encode_thumb2,
    encode_thumb2_imm,
    instr,
    thumb2_expand_imm,
)
from repro.isa.arm32 import arm_immediate_value
from repro.isa.registers import LR, PC, SP


def roundtrip_arm(ins, address=0x100):
    ins.address = address
    ins.size = 4
    word = encode_arm(ins)
    return decode_arm(word, address)


def roundtrip_thumb(ins, address=0x100, thumb2=False):
    ins.address = address
    halfwords = encode_thumb2(ins) if thumb2 else encode_thumb(ins)
    return decode_thumb(halfwords, address)


def fields_match(a: Instruction, b: Instruction, fields):
    for field in fields:
        assert getattr(a, field) == getattr(b, field), (
            f"{field}: {getattr(a, field)!r} != {getattr(b, field)!r}\n{a.render()}\n{b.render()}")


# ----------------------------------------------------------------------
# ARM immediates
# ----------------------------------------------------------------------

@pytest.mark.parametrize("value", [0, 1, 0xFF, 0x100, 0xFF0, 0xFF000000,
                                   0x3FC, 0xC000003F, 0xF000000F])
def test_arm_immediate_encodable(value):
    encoded = encode_arm_immediate(value)
    assert encoded is not None
    imm8, rot = encoded
    assert arm_immediate_value(imm8, rot) == value


@pytest.mark.parametrize("value", [0x101, 0x102030, 0xFFFFFFFF - 2, 0x12345678])
def test_arm_immediate_not_encodable(value):
    assert encode_arm_immediate(value) is None


@given(st.integers(min_value=0, max_value=0xFF), st.integers(min_value=0, max_value=15))
def test_arm_immediate_roundtrip_property(imm8, rot):
    value = arm_immediate_value(imm8, rot)
    encoded = encode_arm_immediate(value)
    assert encoded is not None
    assert arm_immediate_value(*encoded) == value


# ----------------------------------------------------------------------
# Thumb-2 modified immediates
# ----------------------------------------------------------------------

@pytest.mark.parametrize("value", [0, 0xAB, 0x00AB00AB, 0xAB00AB00, 0xABABABAB,
                                   0xFF000000, 0x00000180, 0x7F800000])
def test_thumb2_imm_encodable(value):
    imm12 = encode_thumb2_imm(value)
    assert imm12 is not None
    assert thumb2_expand_imm(imm12) == value


@pytest.mark.parametrize("value", [0x101, 0x12345678, 0xFFFFFFFE])
def test_thumb2_imm_not_encodable(value):
    assert encode_thumb2_imm(value) is None


@given(st.integers(min_value=0, max_value=0xFFF))
def test_thumb2_expand_then_encode_property(imm12):
    value = thumb2_expand_imm(imm12)
    back = encode_thumb2_imm(value)
    assert back is not None
    assert thumb2_expand_imm(back) == value


# ----------------------------------------------------------------------
# ARM round trips
# ----------------------------------------------------------------------

DP_FIELDS = ("mnemonic", "setflags", "rd", "rn", "rm", "imm", "cond")


def test_arm_dp_register():
    ins = instr("ADD", rd=0, rn=1, rm=2)
    fields_match(ins, roundtrip_arm(ins), DP_FIELDS)


def test_arm_dp_immediate():
    ins = instr("SUB", rd=3, rn=4, imm=0xFF, setflags=True)
    fields_match(ins, roundtrip_arm(ins), DP_FIELDS)


def test_arm_dp_shifted_register():
    ins = instr("ORR", rd=0, rn=1, rm=2, shift=Shift("LSR", 5))
    back = roundtrip_arm(ins)
    fields_match(ins, back, DP_FIELDS + ("shift",))


def test_arm_conditional():
    ins = instr("MOV", rd=0, imm=1, cond=Condition.NE)
    fields_match(ins, roundtrip_arm(ins), DP_FIELDS)


def test_arm_compare():
    ins = instr("CMP", rn=5, imm=10)
    fields_match(ins, roundtrip_arm(ins), ("mnemonic", "rn", "imm"))


def test_arm_standalone_shift():
    ins = instr("LSR", rd=1, rn=2, imm=7, setflags=True)
    fields_match(ins, roundtrip_arm(ins), ("mnemonic", "rd", "rn", "imm", "setflags"))


def test_arm_register_controlled_shift():
    ins = instr("ASR", rd=1, rn=2, rm=3)
    fields_match(ins, roundtrip_arm(ins), ("mnemonic", "rd", "rn", "rm"))


def test_arm_multiplies():
    for ins in (instr("MUL", rd=0, rn=1, rm=2),
                instr("MLA", rd=0, rn=1, rm=2, ra=3),
                instr("UMULL", rd=0, ra=1, rn=2, rm=3),
                instr("SMULL", rd=0, ra=1, rn=2, rm=3)):
        fields_match(ins, roundtrip_arm(ins), ("mnemonic", "rd", "rn", "rm", "ra"))


def test_arm_clz():
    ins = instr("CLZ", rd=4, rm=5)
    fields_match(ins, roundtrip_arm(ins), ("mnemonic", "rd", "rm"))


def test_arm_ldr_str_imm():
    for mnemonic in ("LDR", "STR", "LDRB", "STRB"):
        ins = instr(mnemonic, rd=0, mem=Mem(rn=1, offset=0x40))
        fields_match(ins, roundtrip_arm(ins), ("mnemonic", "rd", "mem"))


def test_arm_ldr_negative_offset():
    ins = instr("LDR", rd=0, mem=Mem(rn=1, offset=-8))
    fields_match(ins, roundtrip_arm(ins), ("mnemonic", "rd", "mem"))


def test_arm_ldr_register_offset():
    ins = instr("LDR", rd=0, mem=Mem(rn=1, rm=2, shift=2))
    fields_match(ins, roundtrip_arm(ins), ("mnemonic", "rd", "mem"))


def test_arm_halfword_forms():
    for mnemonic in ("LDRH", "STRH", "LDRSB", "LDRSH"):
        ins = instr(mnemonic, rd=0, mem=Mem(rn=1, offset=0x10))
        fields_match(ins, roundtrip_arm(ins), ("mnemonic", "rd", "mem"))


def test_arm_writeback_and_postindex():
    pre = instr("LDR", rd=0, mem=Mem(rn=1, offset=4, writeback=True))
    fields_match(pre, roundtrip_arm(pre), ("mnemonic", "rd", "mem"))
    post = instr("LDR", rd=0, mem=Mem(rn=1, offset=4, postindex=True))
    fields_match(post, roundtrip_arm(post), ("mnemonic", "rd", "mem"))


def test_arm_block_transfers():
    ldm = instr("LDM", rn=2, reglist=(0, 1, 3), writeback=True)
    fields_match(ldm, roundtrip_arm(ldm), ("mnemonic", "rn", "reglist", "writeback"))
    push = instr("PUSH", reglist=(4, 5, LR))
    fields_match(push, roundtrip_arm(push), ("mnemonic", "reglist"))
    pop = instr("POP", reglist=(4, 5, PC))
    fields_match(pop, roundtrip_arm(pop), ("mnemonic", "reglist"))


def test_arm_branches():
    b = instr("B", target=0x200)
    fields_match(b, roundtrip_arm(b, address=0x100), ("mnemonic", "target"))
    bl = instr("BL", target=0x80, cond=Condition.EQ)
    fields_match(bl, roundtrip_arm(bl, address=0x100), ("mnemonic", "target", "cond"))
    bx = instr("BX", rm=LR)
    fields_match(bx, roundtrip_arm(bx), ("mnemonic", "rm"))


def test_arm_branch_out_of_range():
    ins = instr("B", target=0x4000000)
    ins.address = 0
    ins.size = 4
    with pytest.raises(EncodingError):
        encode_arm(ins)


def test_arm_unencodable_immediate_rejected():
    ins = instr("ADD", rd=0, rn=1, imm=0x12345)
    with pytest.raises(EncodingError):
        encode_arm(ins)


def test_arm_thumb2_only_ops_rejected():
    for ins in (instr("SDIV", rd=0, rn=1, rm=2),
                instr("MOVW", rd=0, imm=0x1234),
                instr("BFI", rd=0, rn=1, bf_lsb=0, bf_width=4)):
        with pytest.raises(EncodingError):
            encode_arm(ins)


# ----------------------------------------------------------------------
# Thumb 16-bit round trips
# ----------------------------------------------------------------------

def test_thumb_mov_imm():
    ins = instr("MOV", rd=3, imm=99, setflags=True)
    back = roundtrip_thumb(ins)
    fields_match(ins, back, ("mnemonic", "rd", "imm", "setflags"))
    assert back.size == 2


def test_thumb_add_reg_and_imm3():
    reg = instr("ADD", rd=0, rn=1, rm=2, setflags=True)
    fields_match(reg, roundtrip_thumb(reg), ("mnemonic", "rd", "rn", "rm"))
    imm = instr("SUB", rd=0, rn=1, imm=5, setflags=True)
    fields_match(imm, roundtrip_thumb(imm), ("mnemonic", "rd", "rn", "imm"))


def test_thumb_add_imm8_same_register():
    ins = instr("ADD", rd=2, rn=2, imm=200, setflags=True)
    fields_match(ins, roundtrip_thumb(ins), ("mnemonic", "rd", "rn", "imm"))


def test_thumb_alu_register_ops():
    for mnemonic in ("AND", "EOR", "ORR", "BIC", "ADC", "SBC"):
        ins = instr(mnemonic, rd=1, rn=1, rm=2, setflags=True)
        fields_match(ins, roundtrip_thumb(ins), ("mnemonic", "rd", "rn", "rm"))


def test_thumb_mul_commutative_encoding():
    ins = instr("MUL", rd=1, rn=2, rm=1, setflags=True)
    back = roundtrip_thumb(ins)
    assert back.mnemonic == "MUL"
    assert {back.rn, back.rm} == {1, 2}


def test_thumb_shifts_immediate():
    for mnemonic in ("LSL", "LSR", "ASR"):
        ins = instr(mnemonic, rd=0, rn=1, imm=4, setflags=True)
        fields_match(ins, roundtrip_thumb(ins), ("mnemonic", "rd", "rn", "imm"))


def test_thumb_shift_by_32():
    ins = instr("LSR", rd=0, rn=1, imm=32, setflags=True)
    fields_match(ins, roundtrip_thumb(ins), ("mnemonic", "rd", "rn", "imm"))


def test_thumb_hi_register_mov_add():
    mov = instr("MOV", rd=8, rm=1)
    fields_match(mov, roundtrip_thumb(mov), ("mnemonic", "rd", "rm"))
    add = instr("ADD", rd=SP, rn=SP, rm=0)
    back = roundtrip_thumb(add)
    assert back.mnemonic == "ADD" and back.rd == SP


def test_thumb_cmp_forms():
    imm = instr("CMP", rn=3, imm=7)
    fields_match(imm, roundtrip_thumb(imm), ("mnemonic", "rn", "imm"))
    low = instr("CMP", rn=3, rm=4)
    fields_match(low, roundtrip_thumb(low), ("mnemonic", "rn", "rm"))
    hi = instr("CMP", rn=8, rm=9)
    fields_match(hi, roundtrip_thumb(hi), ("mnemonic", "rn", "rm"))


def test_thumb_loads_stores():
    word = instr("LDR", rd=0, mem=Mem(rn=1, offset=0x14))
    fields_match(word, roundtrip_thumb(word), ("mnemonic", "rd", "mem"))
    byte = instr("STRB", rd=0, mem=Mem(rn=1, offset=3))
    fields_match(byte, roundtrip_thumb(byte), ("mnemonic", "rd", "mem"))
    half = instr("LDRH", rd=0, mem=Mem(rn=1, offset=6))
    fields_match(half, roundtrip_thumb(half), ("mnemonic", "rd", "mem"))
    reg = instr("LDRSH", rd=0, mem=Mem(rn=1, rm=2))
    fields_match(reg, roundtrip_thumb(reg), ("mnemonic", "rd", "mem"))


def test_thumb_sp_relative():
    ldr = instr("LDR", rd=3, mem=Mem(rn=SP, offset=16))
    fields_match(ldr, roundtrip_thumb(ldr), ("mnemonic", "rd", "mem"))


def test_thumb_literal_load():
    ins = instr("LDR", rd=0, mem=Mem(rn=PC, offset=0x20))
    fields_match(ins, roundtrip_thumb(ins), ("mnemonic", "rd", "mem"))


def test_thumb_push_pop():
    push = instr("PUSH", reglist=(0, 1, 2, LR))
    fields_match(push, roundtrip_thumb(push), ("mnemonic", "reglist"))
    pop = instr("POP", reglist=(0, 1, 2, PC))
    fields_match(pop, roundtrip_thumb(pop), ("mnemonic", "reglist"))


def test_thumb_ldm_stm():
    stm = instr("STM", rn=0, reglist=(1, 2), writeback=True)
    fields_match(stm, roundtrip_thumb(stm), ("mnemonic", "rn", "reglist", "writeback"))
    ldm = instr("LDM", rn=0, reglist=(1, 2), writeback=True)
    fields_match(ldm, roundtrip_thumb(ldm), ("mnemonic", "rn", "reglist", "writeback"))


def test_thumb_extends_and_rev():
    for mnemonic in ("SXTB", "SXTH", "UXTB", "UXTH", "REV", "REV16"):
        ins = instr(mnemonic, rd=0, rm=1)
        fields_match(ins, roundtrip_thumb(ins), ("mnemonic", "rd", "rm"))


def test_thumb_branches():
    cond = instr("B", cond=Condition.NE, target=0x40)
    fields_match(cond, roundtrip_thumb(cond, address=0x100), ("mnemonic", "cond", "target"))
    uncond = instr("B", target=0x500)
    fields_match(uncond, roundtrip_thumb(uncond, address=0x100), ("mnemonic", "target"))
    bl = instr("BL", target=0x2000)
    bl.size = 4
    fields_match(bl, roundtrip_thumb(bl, address=0x100), ("mnemonic", "target"))
    bx = instr("BX", rm=LR)
    fields_match(bx, roundtrip_thumb(bx), ("mnemonic", "rm"))


def test_thumb_rejects_wide_only_ops():
    for ins in (instr("SDIV", rd=0, rn=1, rm=2),
                instr("MOVW", rd=0, imm=0x1234),
                instr("IT", cond=Condition.EQ, it_mask="T"),
                instr("CLZ", rd=0, rm=1),
                instr("MOV", rd=0, imm=300, setflags=True)):
        with pytest.raises(EncodingError):
            encode_thumb(ins)


def test_thumb_rejects_out_of_range_offset():
    ins = instr("LDR", rd=0, mem=Mem(rn=1, offset=0x1000))
    with pytest.raises(EncodingError):
        encode_thumb(ins)


# ----------------------------------------------------------------------
# Thumb-2 round trips (wide)
# ----------------------------------------------------------------------

def test_thumb2_picks_narrow_when_possible():
    ins = instr("ADD", rd=0, rn=1, rm=2, setflags=True)
    assert len(encode_thumb2(ins)) == 1
    wide = instr("ADD", rd=9, rn=10, rm=11)
    assert len(encode_thumb2(wide)) == 2


def test_thumb2_movw_movt():
    for mnemonic in ("MOVW", "MOVT"):
        ins = instr(mnemonic, rd=5, imm=0xABCD)
        fields_match(ins, roundtrip_thumb(ins, thumb2=True), ("mnemonic", "rd", "imm"))


def test_thumb2_dp_modified_immediate():
    ins = instr("ADD", rd=0, rn=1, imm=0x00FF00FF)
    fields_match(ins, roundtrip_thumb(ins, thumb2=True), ("mnemonic", "rd", "rn", "imm"))


def test_thumb2_mov_wide_immediate():
    ins = instr("MOV", rd=10, imm=0xAB00AB00)
    fields_match(ins, roundtrip_thumb(ins, thumb2=True), ("mnemonic", "rd", "imm"))


def test_thumb2_dp_shifted_register():
    ins = instr("EOR", rd=0, rn=1, rm=2, shift=Shift("LSL", 12))
    fields_match(ins, roundtrip_thumb(ins, thumb2=True), ("mnemonic", "rd", "rn", "rm", "shift"))


def test_thumb2_compare_wide():
    ins = instr("TEQ", rn=1, rm=2)
    fields_match(ins, roundtrip_thumb(ins, thumb2=True), ("mnemonic", "rn", "rm"))
    imm = instr("CMP", rn=9, imm=0xFF00)
    fields_match(imm, roundtrip_thumb(imm, thumb2=True), ("mnemonic", "rn", "imm"))


def test_thumb2_bitfield_ops():
    bfi = instr("BFI", rd=0, rn=1, bf_lsb=4, bf_width=8)
    fields_match(bfi, roundtrip_thumb(bfi, thumb2=True),
                 ("mnemonic", "rd", "rn", "bf_lsb", "bf_width"))
    bfc = instr("BFC", rd=0, bf_lsb=12, bf_width=5)
    fields_match(bfc, roundtrip_thumb(bfc, thumb2=True), ("mnemonic", "rd", "bf_lsb", "bf_width"))
    ubfx = instr("UBFX", rd=0, rn=1, bf_lsb=7, bf_width=9)
    fields_match(ubfx, roundtrip_thumb(ubfx, thumb2=True),
                 ("mnemonic", "rd", "rn", "bf_lsb", "bf_width"))
    sbfx = instr("SBFX", rd=0, rn=1, bf_lsb=0, bf_width=32)
    fields_match(sbfx, roundtrip_thumb(sbfx, thumb2=True),
                 ("mnemonic", "rd", "rn", "bf_lsb", "bf_width"))


def test_thumb2_divide_and_multiplies():
    for ins in (instr("SDIV", rd=0, rn=1, rm=2),
                instr("UDIV", rd=3, rn=4, rm=5),
                instr("MLA", rd=0, rn=1, rm=2, ra=3),
                instr("MLS", rd=0, rn=1, rm=2, ra=3),
                instr("UMULL", rd=0, ra=1, rn=2, rm=3),
                instr("SMULL", rd=0, ra=1, rn=2, rm=3)):
        fields_match(ins, roundtrip_thumb(ins, thumb2=True),
                     ("mnemonic", "rd", "rn", "rm", "ra"))


def test_thumb2_mul_high_registers():
    ins = instr("MUL", rd=8, rn=9, rm=10)
    fields_match(ins, roundtrip_thumb(ins, thumb2=True), ("mnemonic", "rd", "rn", "rm"))


def test_thumb2_unary_wide():
    for mnemonic in ("CLZ", "RBIT"):
        ins = instr(mnemonic, rd=0, rm=1)
        fields_match(ins, roundtrip_thumb(ins, thumb2=True), ("mnemonic", "rd", "rm"))


def test_thumb2_it_instruction():
    ins = instr("IT", cond=Condition.EQ, it_mask="TE")
    back = roundtrip_thumb(ins, thumb2=True)
    assert back.mnemonic == "IT"
    assert back.cond == Condition.EQ
    assert back.it_mask == "TE"


def test_thumb2_it_patterns():
    for pattern in ("T", "TT", "TE", "TTT", "TET", "TTE", "TEE", "TTTT", "TEEE"):
        ins = instr("IT", cond=Condition.GT, it_mask=pattern)
        back = roundtrip_thumb(ins, thumb2=True)
        assert back.it_mask == pattern, pattern


def test_thumb2_table_branch():
    tbb = instr("TBB", rn=0, rm=1)
    fields_match(tbb, roundtrip_thumb(tbb, thumb2=True), ("mnemonic", "rn", "rm"))
    tbh = instr("TBH", rn=2, rm=3)
    fields_match(tbh, roundtrip_thumb(tbh, thumb2=True), ("mnemonic", "rn", "rm"))


def test_thumb2_wide_memory_forms():
    big = instr("LDR", rd=0, mem=Mem(rn=1, offset=0x800))
    fields_match(big, roundtrip_thumb(big, thumb2=True), ("mnemonic", "rd", "mem"))
    neg = instr("LDR", rd=0, mem=Mem(rn=1, offset=-16))
    fields_match(neg, roundtrip_thumb(neg, thumb2=True), ("mnemonic", "rd", "mem"))
    wb = instr("STR", rd=0, mem=Mem(rn=1, offset=8, writeback=True))
    fields_match(wb, roundtrip_thumb(wb, thumb2=True), ("mnemonic", "rd", "mem"))
    post = instr("LDR", rd=0, mem=Mem(rn=1, offset=4, postindex=True))
    fields_match(post, roundtrip_thumb(post, thumb2=True), ("mnemonic", "rd", "mem"))
    signed = instr("LDRSH", rd=0, mem=Mem(rn=1, offset=0x200))
    fields_match(signed, roundtrip_thumb(signed, thumb2=True), ("mnemonic", "rd", "mem"))


def test_thumb2_wide_branches():
    far = instr("B", target=0x10000)
    far.wide = True
    fields_match(far, roundtrip_thumb(far, thumb2=True, address=0x100), ("mnemonic", "target"))
    cond_far = instr("B", cond=Condition.GE, target=0x8000)
    cond_far.wide = True
    fields_match(cond_far, roundtrip_thumb(cond_far, thumb2=True, address=0x100),
                 ("mnemonic", "cond", "target"))
    back = instr("B", target=0x10)
    back.wide = True
    fields_match(back, roundtrip_thumb(back, thumb2=True, address=0x8000), ("mnemonic", "target"))


def test_thumb2_wide_block_transfers():
    push = instr("PUSH", reglist=(4, 5, 8, 9, LR))
    fields_match(push, roundtrip_thumb(push, thumb2=True), ("mnemonic", "reglist"))
    ldm = instr("LDM", rn=8, reglist=(0, 1, 2), writeback=True)
    fields_match(ldm, roundtrip_thumb(ldm, thumb2=True), ("mnemonic", "rn", "reglist", "writeback"))


# ----------------------------------------------------------------------
# property-based round trips
# ----------------------------------------------------------------------

LOW_REG = st.integers(min_value=0, max_value=7)
ANY_REG = st.integers(min_value=0, max_value=12)


@given(rd=ANY_REG, rn=ANY_REG, rm=ANY_REG,
       mnemonic=st.sampled_from(["ADD", "SUB", "AND", "ORR", "EOR", "BIC", "ADC", "SBC"]),
       setflags=st.booleans())
@settings(max_examples=200)
def test_arm_dp_register_roundtrip_property(rd, rn, rm, mnemonic, setflags):
    ins = instr(mnemonic, rd=rd, rn=rn, rm=rm, setflags=setflags)
    fields_match(ins, roundtrip_arm(ins), DP_FIELDS)


@given(rd=ANY_REG, rn=ANY_REG, imm8=st.integers(min_value=0, max_value=0xFF),
       rot=st.integers(min_value=0, max_value=15),
       mnemonic=st.sampled_from(["ADD", "SUB", "AND", "ORR"]))
@settings(max_examples=200)
def test_arm_dp_immediate_roundtrip_property(rd, rn, imm8, rot, mnemonic):
    value = arm_immediate_value(imm8, rot)
    ins = instr(mnemonic, rd=rd, rn=rn, imm=value)
    back = roundtrip_arm(ins)
    assert back.mnemonic == mnemonic
    assert back.imm == value


@given(rd=LOW_REG, rn=LOW_REG, rm=LOW_REG,
       mnemonic=st.sampled_from(["AND", "EOR", "ORR", "BIC", "ADC", "SBC"]))
@settings(max_examples=100)
def test_thumb_alu_roundtrip_property(rd, rn, rm, mnemonic):
    ins = instr(mnemonic, rd=rd, rn=rd, rm=rm, setflags=True)
    fields_match(ins, roundtrip_thumb(ins), ("mnemonic", "rd", "rn", "rm"))


@given(rd=st.integers(min_value=0, max_value=12),
       imm=st.integers(min_value=0, max_value=0xFFFF),
       mnemonic=st.sampled_from(["MOVW", "MOVT"]))
@settings(max_examples=200)
def test_thumb2_mov16_roundtrip_property(rd, imm, mnemonic):
    ins = instr(mnemonic, rd=rd, imm=imm)
    fields_match(ins, roundtrip_thumb(ins, thumb2=True), ("mnemonic", "rd", "imm"))


@given(rd=ANY_REG, rn=ANY_REG,
       lsb=st.integers(min_value=0, max_value=31),
       data=st.data())
@settings(max_examples=200)
def test_thumb2_bitfield_roundtrip_property(rd, rn, lsb, data):
    width = data.draw(st.integers(min_value=1, max_value=32 - lsb))
    ins = instr("UBFX", rd=rd, rn=rn, bf_lsb=lsb, bf_width=width)
    fields_match(ins, roundtrip_thumb(ins, thumb2=True),
                 ("mnemonic", "rd", "rn", "bf_lsb", "bf_width"))


@given(rt=LOW_REG, rn=LOW_REG, offset=st.integers(min_value=0, max_value=31))
@settings(max_examples=100)
def test_thumb_word_load_roundtrip_property(rt, rn, offset):
    ins = instr("LDR", rd=rt, mem=Mem(rn=rn, offset=offset * 4))
    fields_match(ins, roundtrip_thumb(ins), ("mnemonic", "rd", "mem"))


@given(target_words=st.integers(min_value=-(1 << 22), max_value=(1 << 22) - 1))
@settings(max_examples=200)
def test_thumb2_bl_offset_roundtrip_property(target_words):
    address = 0x800000
    target = address + 4 + target_words * 2
    ins = instr("BL", target=target)
    ins.size = 4
    back = roundtrip_thumb(ins, address=address, thumb2=True)
    assert back.target == target


@given(target_words=st.integers(min_value=-(1 << 22), max_value=(1 << 22) - 1))
@settings(max_examples=200)
def test_arm_branch_offset_roundtrip_property(target_words):
    address = 0x800000
    target = address + 8 + target_words * 4
    ins = instr("B", target=target)
    ins.address = address
    ins.size = 4
    back = decode_arm(encode_arm(ins), address)
    assert back.target == target % (1 << 32)
