"""Interrupt-architecture tests: VIC software entry, NVIC hardware entry,
tail-chaining, NMI, and the ARM1156 restartable LDM."""


from repro.core import FLASH_BASE, SRAM_BASE, build_arm7, build_arm1156, build_cortexm3
from repro.isa import ISA_THUMB, ISA_THUMB2, assemble

# Main program: count r0 up to 200 then return.  The handler increments a
# counter in SRAM.
M3_SOURCE = """
main:
    movs r0, #0
loop:
    adds r0, r0, #1
    cmp r0, #200
    bne loop
    bx lr

handler:                     ; plain C-style handler: no preamble needed
    ldr r1, =0x20000100
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    bx lr                    ; EXC_RETURN -> hardware postamble
"""

ARM7_SOURCE = """
main:
    movs r0, #0
loop:
    adds r0, r0, #1
    cmp r0, #200
    bne loop
    bx lr

handler:                     ; software preamble required on ARM7
    push {r1, r2, lr}
    ldr r1, =0x20000100
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    pop {r1, r2, pc}         ; software postamble + return
"""

BAD_HANDLER_ARM7 = """
main:
    movs r0, #0
    movs r3, #7
loop:
    adds r0, r0, #1
    cmp r0, #50
    bne loop
    movs r0, #0
    adds r0, r0, r3
    bx lr

handler:                     ; clobbers r3 without saving it
    movs r3, #99
    bx lr
"""


def test_m3_interrupt_serviced_and_state_restored():
    program = assemble(M3_SOURCE, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    machine.cpu.nvic.raise_irq(3, handler=program.symbols["handler"], at_cycle=100)
    result = machine.call("main")
    assert result == 200                      # main's registers untouched
    assert machine.cpu.nvic.stats.serviced == 1
    counter = machine.bus.read_raw(0x2000_0100, 4)
    assert counter == 1


def test_m3_entry_latency_is_stacking_dominated():
    program = assemble(M3_SOURCE, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    machine.cpu.nvic.raise_irq(3, handler=program.symbols["handler"], at_cycle=50)
    machine.call("main")
    record = machine.cpu.nvic.stats.records[0]
    # 12 cycles of hardware preamble + at most a couple of cycles finishing
    # the interrupted instruction
    assert 12 <= record.latency <= 20


def test_m3_tail_chaining_back_to_back():
    program = assemble(M3_SOURCE, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program, tail_chaining=True)
    handler = program.symbols["handler"]
    machine.cpu.nvic.raise_irq(1, handler=handler, at_cycle=50, priority=1)
    machine.cpu.nvic.raise_irq(2, handler=handler, at_cycle=50, priority=2)
    machine.call("main")
    records = machine.cpu.nvic.stats.records
    assert len(records) == 2
    assert not records[0].tail_chained
    assert records[1].tail_chained
    assert machine.cpu.nvic.stats.tail_chained == 1
    assert machine.bus.read_raw(0x2000_0100, 4) == 2


def test_m3_back_to_back_faster_with_tail_chaining():
    def run(tail_chaining):
        program = assemble(M3_SOURCE, ISA_THUMB2, base=FLASH_BASE)
        machine = build_cortexm3(program, tail_chaining=tail_chaining)
        handler = program.symbols["handler"]
        machine.cpu.nvic.raise_irq(1, handler=handler, at_cycle=50, priority=1)
        machine.cpu.nvic.raise_irq(2, handler=handler, at_cycle=50, priority=2)
        machine.call("main")
        return machine.cpu.cycles

    assert run(True) < run(False)


def test_m3_priority_preemption():
    source = M3_SOURCE + """
slow_handler:
    ldr r1, =0x20000200
    movs r2, #0
slow_loop:
    adds r2, r2, #1
    cmp r2, #50
    bne slow_loop
    str r2, [r1]
    bx lr
"""
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    machine.cpu.nvic.raise_irq(5, handler=program.symbols["slow_handler"],
                               at_cycle=40, priority=5)
    # urgent interrupt arrives while the slow handler runs
    machine.cpu.nvic.raise_irq(1, handler=program.symbols["handler"],
                               at_cycle=80, priority=1)
    machine.call("main")
    records = machine.cpu.nvic.stats.records
    assert len(records) == 2
    assert machine.cpu.nvic.nesting_depth == 0
    # the urgent one entered while the slow one was active (preemption)
    urgent = next(r for r in records if r.number == 1)
    slow = next(r for r in records if r.number == 5)
    assert urgent.entry_cycle < slow.exit_cycle


def test_arm7_interrupt_with_software_preamble():
    program = assemble(ARM7_SOURCE, ISA_THUMB, base=FLASH_BASE)
    machine = build_arm7(program)
    machine.cpu.vic.raise_irq(0, handler=program.symbols["handler"], at_cycle=60)
    result = machine.call("main")
    assert result == 200
    assert machine.bus.read_raw(0x2000_0100, 4) == 1
    record = machine.cpu.vic.stats.records[0]
    assert record.exit_cycle is not None
    assert record.latency >= 5


def test_arm7_handler_without_preamble_corrupts_state():
    """The hazard hardware stacking removes: an ARM7 handler that skips
    the software preamble clobbers the interrupted context."""
    program = assemble(BAD_HANDLER_ARM7, ISA_THUMB, base=FLASH_BASE)
    machine = build_arm7(program)
    machine.cpu.vic.raise_irq(0, handler=program.symbols["handler"], at_cycle=30)
    result = machine.call("main")
    assert result == 99   # r3 was clobbered; correct result would be 7


def test_m3_handler_needs_no_preamble():
    """Same shape of handler on the M3: hardware stacking preserves it...
    for the caller-saved set (r3 is stacked by hardware)."""
    source = """
main:
    movs r0, #0
    movs r3, #7
loop:
    adds r0, r0, #1
    cmp r0, #50
    bne loop
    movs r0, #0
    adds r0, r0, r3
    bx lr

handler:
    movs r3, #99            ; hardware stacked r3: safe to clobber
    bx lr
"""
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    machine.cpu.nvic.raise_irq(0, handler=program.symbols["handler"], at_cycle=30)
    assert machine.call("main") == 7


def test_nmi_fires_even_when_masked():
    source = """
main:
    cpsid i
    movs r0, #0
loop:
    adds r0, r0, #1
    cmp r0, #100
    bne loop
    bx lr
handler:
    ldr r1, =0x20000100
    movs r2, #1
    str r2, [r1]
    bx lr
"""
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)

    masked = build_cortexm3(program)
    masked.cpu.nvic.raise_irq(7, handler=program.symbols["handler"], at_cycle=40)
    masked.call("main")
    assert masked.bus.read_raw(0x2000_0100, 4) == 0   # ordinary IRQ blocked

    nmi = build_cortexm3(program)
    nmi.cpu.nvic.raise_irq(7, handler=program.symbols["handler"], at_cycle=40, nmi=True)
    nmi.call("main")
    assert nmi.bus.read_raw(0x2000_0100, 4) == 1      # NMI punches through


def test_wfi_wakes_on_interrupt():
    source = """
main:
    wfi
    movs r0, #42
    bx lr
handler:
    bx lr
"""
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    machine.cpu.nvic.raise_irq(0, handler=program.symbols["handler"], at_cycle=500)
    assert machine.call("main") == 42
    assert machine.cpu.cycles >= 500


# ----------------------------------------------------------------------
# ARM1156 restartable LDM (experiment E6 mechanism)
# ----------------------------------------------------------------------

LDM_SOURCE = """
main:
    movw r1, #0x0000
    movt r1, #0x2000          ; r1 = SRAM base
    ldm r1, {r2, r3, r4, r5, r6, r7, r8, r9, r10, r11}
    movs r0, #1
    bx lr
handler:
    push {r1, lr}
    movw r1, #0x0200
    movt r1, #0x2000
    str r1, [r1]
    pop {r1, pc}
"""


def _run_1156(interruptible, at_cycle):
    program = assemble(LDM_SOURCE, ISA_THUMB2, base=FLASH_BASE)
    machine = build_arm1156(program, interruptible_ldm=interruptible,
                            flash_access_cycles=4, sram_wait_states=2)
    machine.cpu.vic.raise_irq(0, handler=program.symbols["handler"],
                              at_cycle=at_cycle)
    result = machine.call("main")
    assert result == 1
    return machine


def _ldm_window(interruptible):
    """Find the cycle range during which the LDM executes (no interrupts)."""
    program = assemble(LDM_SOURCE, ISA_THUMB2, base=FLASH_BASE)
    machine = build_arm1156(program, interruptible_ldm=interruptible,
                            flash_access_cycles=4, sram_wait_states=2)
    cpu = machine.cpu
    cpu.regs.sp = machine.stack_top
    cpu.regs.lr = 0xFFFFFFFE
    cpu.regs.pc = program.symbols["main"]
    ldm_addr = None
    for ins in program.instructions:
        if ins.mnemonic == "LDM":
            ldm_addr = ins.address
    start = end = None
    while not cpu.halted:
        if cpu.regs.pc == ldm_addr and start is None:
            start = cpu.cycles
        elif start is not None and end is None and cpu.regs.pc != ldm_addr:
            end = cpu.cycles
        cpu.step()
    return start, end


def test_ldm_with_cold_cache_is_long():
    start, end = _ldm_window(interruptible=False)
    assert end - start > 20  # cold-cache 10-word LDM drags in line fills


def test_restartable_ldm_cuts_interrupt_latency():
    start, end = _ldm_window(interruptible=False)
    mid = (start + end) // 2

    blocking = _run_1156(interruptible=False, at_cycle=mid)
    restartable = _run_1156(interruptible=True, at_cycle=mid)

    lat_blocking = blocking.cpu.vic.stats.records[0].latency
    lat_restartable = restartable.cpu.vic.stats.records[0].latency
    assert restartable.cpu.abandoned_transfers >= 1
    assert lat_restartable < lat_blocking


def test_restartable_ldm_still_produces_correct_values():
    program = assemble(LDM_SOURCE, ISA_THUMB2, base=FLASH_BASE)
    machine = build_arm1156(program, interruptible_ldm=True,
                            flash_access_cycles=4, sram_wait_states=2)
    payload = b"".join(i.to_bytes(4, "little") for i in range(100, 110))
    machine.load_data(SRAM_BASE, payload)
    start, end = _ldm_window(interruptible=True)
    machine.cpu.vic.raise_irq(0, handler=program.symbols["handler"],
                              at_cycle=(start + end) // 2)
    machine.call("main")
    # registers r2..r11 must hold the loaded values despite the restart
    for index, reg in enumerate(range(2, 12)):
        assert machine.cpu.regs.read(reg) == 100 + index


# ----------------------------------------------------------------------
# ARM1156 PC-popping transfers are non-restartable (pinned semantics)
# ----------------------------------------------------------------------

# The handler returns via ``pop {..., pc}``: the pop's PC write runs the
# interrupt-return unwind in branch() (return-stack pop, I-bit restore),
# a side effect a register-snapshot rollback cannot undo.  The pinned
# semantics: a PC-popping transfer commits atomically - an NMI asserting
# mid-transfer is taken at the next instruction boundary instead of
# abandoning the pop.  The handler's ``push`` stays restartable.
ARM1156_POP_PC_RETURN = """
main:
    movs r0, #0
loop:
    adds r0, r0, #1
    cmp r0, #120
    bne loop
    bx lr

handler:
    push {r1, r2, lr}
    ldr r1, =0x20000040
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    pop {r1, r2, pc}

nmi_handler:
    push {r1, r2, lr}
    ldr r1, =0x20000048
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    pop {r1, r2, pc}
"""


def _pop_pc_machine(nmi_cycle: int):
    from repro.sim.trace import TraceRecorder

    program = assemble(ARM1156_POP_PC_RETURN, ISA_THUMB2, base=FLASH_BASE)
    trace = TraceRecorder(enabled=True, categories={"ldm", "irq"})
    machine = build_arm1156(program, interruptible_ldm=True, trace=trace)
    machine.cpu.vic.raise_irq(1, handler=program.symbols["handler"], at_cycle=40)
    machine.cpu.vic.raise_irq(2, handler=program.symbols["nmi_handler"],
                              at_cycle=nmi_cycle, nmi=True)
    pop_addr = next(ins.address for ins in program.instructions
                    if ins.mnemonic == "POP" and 15 in ins.reglist)
    return machine, trace, pop_addr


def _pop_pc_step_window():
    """(start, end] cycles of the first handler activation's ``pop {..,pc}``
    as its own reference step (NMI parked far in the future keeps the
    restartable machinery engaged without firing)."""
    machine, trace, pop_addr = _pop_pc_machine(10**9)
    cpu = machine.cpu
    cpu.fastpath = False
    cpu.regs.sp = machine.stack_top
    cpu.regs.lr = 0xFFFFFFFE
    cpu.regs.pc = cpu.program.symbols["main"]
    while not cpu.halted:
        before = cpu.cycles
        at_pop = cpu.regs.pc == pop_addr
        cpu.step()
        if at_pop:
            return before, cpu.cycles
    raise AssertionError("pop {.., pc} never executed")


def test_arm1156_pop_pc_is_not_restartable():
    """An NMI asserting anywhere inside the ``pop {..., pc}`` execution
    window must NOT abandon the transfer (the PC write runs the
    interrupt-return unwind, which a snapshot rollback cannot undo): the
    pop commits atomically and the NMI is taken at the very next
    instruction boundary."""
    from repro.core.arm1156 import Arm1156Core

    start, end = _pop_pc_step_window()
    assert end - start >= 2, "window too narrow to place an NMI inside"
    for nmi_cycle in range(start + 1, end + 1):
        machine, trace, pop_addr = _pop_pc_machine(nmi_cycle)
        result = machine.call("main")
        assert result == 120, nmi_cycle
        assert machine.cpu.abandoned_transfers == 0, nmi_cycle
        assert not trace.by_category("ldm"), nmi_cycle
        assert machine.bus.read_raw(0x2000_0040, 4) == 1, nmi_cycle
        assert machine.bus.read_raw(0x2000_0048, 4) == 1, nmi_cycle
        assert machine.cpu.vic.stats.serviced == 2, nmi_cycle
        # the NMI waited for the transfer to commit, then entered at the
        # next boundary: entry = pop end + the fixed entry overhead
        nmi_entry = [r for r in trace.by_category("irq")
                     if r.label == "enter" and r.data["number"] == 2]
        assert len(nmi_entry) == 1, nmi_cycle
        assert nmi_entry[0].time == end + Arm1156Core.ENTRY_OVERHEAD, nmi_cycle
