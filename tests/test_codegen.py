"""Code generator tests: IR -> three ISAs, executed and cross-checked.

Every test builds an IR function, runs it through the reference
interpreter, compiles it for ARM, Thumb, and Thumb-2, executes each on the
matching core model, and requires all four answers to agree.
"""

import pytest

from repro.codegen import (
    AllocationError,
    IrBuilder,
    IrInterpreter,
    IrMemory,
    compile_program,
)
from repro.core import FLASH_BASE, SRAM_BASE, build_arm7, build_cortexm3
from repro.isa import ISA_ARM, ISA_THUMB, ISA_THUMB2

ALL_ISAS = (ISA_ARM, ISA_THUMB, ISA_THUMB2)


def run_everywhere(fns, entry, args, data=None, data_addr=SRAM_BASE):
    """Returns {'ir': ..., isa: ...} results plus machines for inspection."""
    interp = IrInterpreter(IrMemory(size=0x10000, base=SRAM_BASE))
    if data:
        interp.memory.load_bytes(data_addr, data)
    results = {"ir": interp.run(fns[0] if isinstance(fns, list) else fns, *args)}
    fn_list = fns if isinstance(fns, list) else [fns]
    machines = {}
    for isa in ALL_ISAS:
        program = compile_program(fn_list, isa, base=FLASH_BASE)
        if isa == ISA_THUMB2:
            machine = build_cortexm3(program)
        else:
            machine = build_arm7(program)
        if data:
            machine.load_data(data_addr, data)
        results[isa] = machine.call(fn_list[0].name, *args)
        machines[isa] = machine
    return results, machines


def assert_agree(results):
    reference = results["ir"]
    for isa in ALL_ISAS:
        assert results[isa] == reference, (
            f"{isa} produced {results[isa]:#x}, expected {reference:#x}")


# ----------------------------------------------------------------------
# arithmetic and constants
# ----------------------------------------------------------------------

def test_simple_arith():
    b = IrBuilder("arith", num_params=2)
    x, y = b.params
    total = b.add(x, y)
    total = b.mul(total, 3)
    total = b.sub(total, 5)
    b.ret(total)
    results, _ = run_everywhere(b.build(), "arith", (10, 20))
    assert results["ir"] == 85
    assert_agree(results)


def test_logic_ops():
    b = IrBuilder("logic", num_params=2)
    x, y = b.params
    r = b.and_(x, y)
    r = b.orr(r, 0x10)
    r = b.eor(r, y)
    r = b.bic(r, 1)
    b.ret(r)
    results, _ = run_everywhere(b.build(), "logic", (0xFF, 0x0F))
    assert_agree(results)


def test_shifts():
    b = IrBuilder("shifts", num_params=2)
    x, amount = b.params
    r = b.lsl(x, 4)
    r = b.orr(r, b.lsr(x, amount))
    r = b.add(r, b.asr(x, 2))
    r = b.eor(r, b.ror(x, 8))
    b.ret(r)
    results, _ = run_everywhere(b.build(), "shifts", (0x80000421, 3))
    assert_agree(results)


def test_large_constants():
    b = IrBuilder("consts", num_params=0)
    a = b.const(0xDEADBEEF)
    c = b.const(0x00FF00FF)
    d = b.const(0x12345678)
    r = b.eor(a, c)
    r = b.add(r, d)
    b.ret(r)
    results, _ = run_everywhere(b.build(), "consts", ())
    assert_agree(results)


def test_negative_style_constant():
    b = IrBuilder("negc", num_params=0)
    r = b.const(0xFFFFFF00)  # MVN-friendly
    b.ret(r)
    results, _ = run_everywhere(b.build(), "negc", ())
    assert results["ir"] == 0xFFFFFF00
    assert_agree(results)


def test_mvn_and_neg():
    b = IrBuilder("mvneg", num_params=1)
    (x,) = b.params
    r = b.add(b.mvn(x), b.neg(x))
    b.ret(r)
    results, _ = run_everywhere(b.build(), "mvneg", (12345,))
    assert_agree(results)


def test_extends():
    b = IrBuilder("ext", num_params=1)
    (x,) = b.params
    r = b.add(b.uxtb(x), b.uxth(x))
    r = b.add(r, b.sxtb(x))
    r = b.add(r, b.sxth(x))
    b.ret(r)
    results, _ = run_everywhere(b.build(), "ext", (0x00C1_8080,))
    assert_agree(results)


def test_rev():
    b = IrBuilder("revk", num_params=1)
    (x,) = b.params
    b.ret(b.rev(x))
    results, _ = run_everywhere(b.build(), "revk", (0x11223344,))
    assert results["ir"] == 0x44332211
    assert_agree(results)


# ----------------------------------------------------------------------
# divide (native vs helper - the section 2.1 hardware divide story)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("a,b", [(100, 7), (0xFFFFFFFF, 3), (5, 100), (42, 1), (7, 0)])
def test_udiv(a, b):
    builder = IrBuilder("dodiv", num_params=2)
    x, y = builder.params
    builder.ret(builder.udiv(x, y))
    results, _ = run_everywhere(builder.build(), "dodiv", (a, b))
    assert_agree(results)


@pytest.mark.parametrize("a,b", [(100, 7), (-100 & 0xFFFFFFFF, 7),
                                 (100, -7 & 0xFFFFFFFF),
                                 (-100 & 0xFFFFFFFF, -7 & 0xFFFFFFFF), (3, 0)])
def test_sdiv(a, b):
    builder = IrBuilder("dosdiv", num_params=2)
    x, y = builder.params
    builder.ret(builder.sdiv(x, y))
    results, _ = run_everywhere(builder.build(), "dosdiv", (a, b))
    assert_agree(results)


def test_divide_code_size_penalty():
    """ARM/Thumb pay for the software-divide helper; Thumb-2 does not."""
    b = IrBuilder("dodiv", num_params=2)
    x, y = b.params
    b.ret(b.udiv(x, y))
    fn = b.build()
    sizes = {isa: compile_program([fn], isa, base=FLASH_BASE).code_bytes
             for isa in ALL_ISAS}
    assert sizes[ISA_THUMB2] < sizes[ISA_THUMB]
    assert sizes[ISA_THUMB2] < sizes[ISA_ARM]


# ----------------------------------------------------------------------
# bit manipulation (section 2.1)
# ----------------------------------------------------------------------

def test_bitfield_extract():
    b = IrBuilder("bfx", num_params=1)
    (x,) = b.params
    r = b.add(b.ubfx(x, 4, 8), b.sbfx(x, 12, 5))
    b.ret(r)
    results, _ = run_everywhere(b.build(), "bfx", (0x0001F7A5,))
    assert_agree(results)


def test_bitfield_insert():
    b = IrBuilder("bfins", num_params=2)
    x, y = b.params
    acc = b.mov(x)
    b.bfi(acc, y, 8, 12)
    b.ret(acc)
    results, _ = run_everywhere(b.build(), "bfins", (0xFFFFFFFF, 0xABC))
    assert_agree(results)


def test_rbit():
    b = IrBuilder("dorbit", num_params=1)
    (x,) = b.params
    b.ret(b.rbit(x))
    results, _ = run_everywhere(b.build(), "dorbit", (0x0000F00F,))
    assert results["ir"] == 0xF00F0000
    assert_agree(results)


@pytest.mark.parametrize("value", [0, 1, 0x80000000, 0x00010000, 0xFFFFFFFF])
def test_clz(value):
    b = IrBuilder("doclz", num_params=1)
    (x,) = b.params
    b.ret(b.clz(x))
    results, _ = run_everywhere(b.build(), "doclz", (value,))
    assert_agree(results)


def test_bit_ops_cheaper_on_thumb2():
    b = IrBuilder("bits", num_params=2)
    x, y = b.params
    acc = b.mov(x)
    b.bfi(acc, y, 4, 8)
    r = b.add(b.ubfx(acc, 16, 8), b.rbit(acc))
    b.ret(r)
    fn = b.build()
    sizes = {isa: compile_program([fn], isa, base=FLASH_BASE).code_bytes
             for isa in ALL_ISAS}
    assert sizes[ISA_THUMB2] < sizes[ISA_THUMB]
    assert sizes[ISA_THUMB2] < sizes[ISA_ARM]


# ----------------------------------------------------------------------
# control flow
# ----------------------------------------------------------------------

def test_loop_sum():
    b = IrBuilder("sumn", num_params=1)
    (n,) = b.params
    total = b.const(0, "total")
    i = b.const(0, "i")
    b.label("loop")
    b.assign(i, b.add(i, 1))
    b.assign(total, b.add(total, i))
    b.brcond("ne", i, n, "loop")
    b.ret(total)
    results, _ = run_everywhere(b.build(), "sumn", (100,))
    assert results["ir"] == 5050
    assert_agree(results)


def test_nested_loops():
    b = IrBuilder("nest", num_params=1)
    (n,) = b.params
    total = b.const(0)
    i = b.const(0)
    b.label("outer")
    j = b.const(0)
    b.label("inner")
    b.assign(total, b.add(total, 1))
    b.assign(j, b.add(j, 1))
    b.brcond("lo", j, n, "inner")
    b.assign(i, b.add(i, 1))
    b.brcond("lo", i, n, "outer")
    b.ret(total)
    results, _ = run_everywhere(b.build(), "nest", (7,))
    assert results["ir"] == 49
    assert_agree(results)


@pytest.mark.parametrize("cond,a,b_,expected", [
    ("lt", 0xFFFFFFFE, 3, 1),   # -2 < 3 signed
    ("lo", 0xFFFFFFFE, 3, 0),   # huge unsigned is not below 3
    ("gt", 5, 5, 0),
    ("ge", 5, 5, 1),
    ("hi", 7, 3, 1),
    ("ls", 3, 3, 1),
])
def test_condition_codes(cond, a, b_, expected):
    b = IrBuilder("ccs", num_params=2)
    x, y = b.params
    b.ret(b.select(cond, x, y, 1, 0))
    results, _ = run_everywhere(b.build(), "ccs", (a, b_))
    assert results["ir"] == expected
    assert_agree(results)


def test_select_with_register_arms():
    b = IrBuilder("selr", num_params=2)
    x, y = b.params
    b.ret(b.select("ge", x, y, x, y))  # max(x, y) signed
    results, _ = run_everywhere(b.build(), "selr", (9, 200))
    assert results["ir"] == 200
    assert_agree(results)


@pytest.mark.parametrize("index,expected", [(0, 100), (1, 200), (2, 300), (5, 999)])
def test_switch_dispatch(index, expected):
    b = IrBuilder("sw", num_params=1)
    (x,) = b.params
    b.switch(x, ["case0", "case1", "case2"])
    b.br("default")
    b.label("case0")
    b.ret(b.const(100))
    b.label("case1")
    b.ret(b.const(200))
    b.label("case2")
    b.ret(b.const(300))
    b.label("default")
    b.ret(b.const(999))
    results, _ = run_everywhere(b.build(), "sw", (index,))
    assert results["ir"] == expected
    assert_agree(results)


# ----------------------------------------------------------------------
# memory
# ----------------------------------------------------------------------

def test_load_store_roundtrip():
    b = IrBuilder("memrw", num_params=1)
    (base,) = b.params
    value = b.const(0x55AA1234)
    b.store(value, base, 0)
    b.store(value, base, 64, size=2)
    b.store(value, base, 100, size=1)
    r = b.load(base, 0)
    r = b.add(r, b.load(base, 64, size=2))
    r = b.add(r, b.load(base, 100, size=1))
    b.ret(r)
    results, _ = run_everywhere(b.build(), "memrw", (SRAM_BASE + 0x400,))
    assert_agree(results)


def test_signed_loads():
    data = (0x80).to_bytes(1, "little") + b"\x00" + (0x8000).to_bytes(2, "little")
    b = IrBuilder("smem", num_params=1)
    (base,) = b.params
    r = b.add(b.load(base, 0, size=-1), b.load(base, 2, size=-2))
    b.ret(r)
    results, _ = run_everywhere(b.build(), "smem", (SRAM_BASE,), data=data)
    assert_agree(results)


def test_indexed_access():
    data = b"".join(i.to_bytes(4, "little") for i in (10, 20, 30, 40))
    b = IrBuilder("idx", num_params=2)
    base, n = b.params
    total = b.const(0)
    i = b.const(0)
    b.label("loop")
    total_new = b.add(total, b.load_idx(base, i, shift=2))
    b.assign(total, total_new)
    b.assign(i, b.add(i, 1))
    b.brcond("lo", i, n, "loop")
    b.ret(total)
    results, _ = run_everywhere(b.build(), "idx", (SRAM_BASE, 4), data=data)
    assert results["ir"] == 100
    assert_agree(results)


def test_store_idx():
    b = IrBuilder("stidx", num_params=1)
    (base,) = b.params
    i = b.const(0)
    b.label("loop")
    sq = b.mul(i, i)
    b.store_idx(sq, base, i, shift=2)
    b.assign(i, b.add(i, 1))
    b.brcond("lo", i, 8, "loop")
    b.ret(b.load(base, 28))  # 7*7
    results, _ = run_everywhere(b.build(), "stidx", (SRAM_BASE,))
    assert results["ir"] == 49
    assert_agree(results)


def test_big_offset_load():
    data = bytes(0x300) + (777).to_bytes(4, "little")
    b = IrBuilder("bigoff", num_params=1)
    (base,) = b.params
    b.ret(b.load(base, 0x300))
    results, _ = run_everywhere(b.build(), "bigoff", (SRAM_BASE,), data=data)
    assert results["ir"] == 777
    assert_agree(results)


# ----------------------------------------------------------------------
# code density shape (Table 1's second half)
# ----------------------------------------------------------------------

def test_thumb_denser_than_arm():
    b = IrBuilder("dense", num_params=2)
    x, y = b.params
    total = b.const(0)
    i = b.const(0)
    b.label("loop")
    t = b.add(x, i)
    t = b.eor(t, y)
    b.assign(total, b.add(total, t))
    b.assign(i, b.add(i, 1))
    b.brcond("lo", i, 16, "loop")
    b.ret(total)
    fn = b.build()
    sizes = {isa: compile_program([fn], isa, base=FLASH_BASE).code_bytes
             for isa in ALL_ISAS}
    assert sizes[ISA_THUMB] < sizes[ISA_ARM]
    assert sizes[ISA_THUMB2] < sizes[ISA_ARM]


def test_multiple_functions_one_program():
    f1 = IrBuilder("callee_data", num_params=1)
    (x,) = f1.params
    f1.ret(f1.add(x, 1))
    f2 = IrBuilder("other_fn", num_params=1)
    (y,) = f2.params
    f2.ret(f2.mul(y, 2))
    program = compile_program([f1.build(), f2.build()], ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    assert machine.call("callee_data", 5) == 6
    machine2 = build_cortexm3(program)
    assert machine2.call("other_fn", 5) == 10


def test_allocation_error_on_pressure():
    b = IrBuilder("pressure", num_params=2)
    x, y = b.params
    live = [b.add(x, y)]
    for i in range(12):
        live.append(b.add(live[-1], i + 1))
    # keep everything live by summing at the end
    total = b.const(0)
    b.label("keep")
    for v in live:
        total = b.add(total, v)
    b.brcond("eq", total, 0, "keep")  # loop keeps all values live
    b.ret(total)
    fn = b.build()
    with pytest.raises(AllocationError):
        compile_program([fn], ISA_THUMB, base=FLASH_BASE)
