"""Fault campaigns: CAN fault confinement and the vehicle_fault domain.

Three layers of coverage:

* the **fault-confinement state machine** on the bus itself - TEC/REC
  arithmetic, error-passive suspend windows, bus-off entry with held
  frames, timed recovery, and the injected-error accounting coherence
  that frame-conservation checks fold in;
* the **vehicle_fault scenario domain** - every fault kind produces its
  specified per-claim verdicts (a babbling idiot demonstrably violates a
  latency bound its fault-free twin meets), and records stay pure
  functions of the spec across quantum sizes, engine tiers, workers,
  and shards;
* the **stream robustness satellites** - vehicle_fault records round-trip
  through ``read_campaign_stream``, and a record carrying an unknown
  verdict claim is rejected as corrupt, not half-parsed.
"""

from __future__ import annotations

import json

import pytest

from repro.network.can_bus import (
    BUS_OFF_RECOVERY_BITS,
    BUS_OFF_THRESHOLD,
    ERROR_ACTIVE,
    ERROR_PASSIVE,
    ERROR_PASSIVE_THRESHOLD,
    TEC_ERROR_INCREMENT,
    CanBus,
    PeriodicSender,
)
from repro.network.can_frame import CanFrame
from repro.sim.campaign import (
    CampaignStreamError,
    ScenarioSpec,
    read_campaign_stream,
    run_campaign,
    run_scenario,
)
from repro.sim.domains.vehicle import synthesize_network
from repro.sim.domains.vehicle_fault import (
    EXPECTED_BY_KIND,
    VehicleFaultRecord,
    vehicle_fault_matrix,
)
from repro.sim.rng import DeterministicRng
from repro.sim.trace import TraceRecorder
from repro.vehicle import (
    FAULT_KINDS,
    VERDICT_CLAIMS,
    build_body_network,
    scenario_for,
    synthesize_fault,
)

ENGINES = (
    ("reference", False, False, False),
    ("uops", True, False, False),
    ("superblock", True, True, False),
    ("trace", True, True, True),
)


# ----------------------------------------------------------------------
# CAN fault confinement (the bus-level state machine)
# ----------------------------------------------------------------------

def test_forced_window_validation():
    bus = CanBus()
    with pytest.raises(ValueError, match="empty forced-error window"):
        bus.force_error_window("n", 100, 100)
    with pytest.raises(ValueError, match="unknown fault kind"):
        synthesize_fault(DeterministicRng(1), "warp-core",
                         synthesize_network(DeterministicRng(1), 1,
                                            125_000, 200), 100_000)


def test_tec_climbs_by_eight_per_error_and_falls_by_one_per_success():
    bus = CanBus(trace=TraceRecorder(enabled=True))
    # a window wide enough for exactly a few failures of one short frame
    frame = CanFrame(0x100, b"\xaa")
    lost_per_error = bus.bit_time_us(frame.wire_bits) // 2 + bus.bit_time_us(31)
    bus.force_error_window("victim", 0, 3 * lost_per_error)
    bus.submit(frame, node="victim")
    bus.scheduler.run(until=50_000)
    state = bus.node_state("victim")
    record = bus.deliveries[0]
    # 3 failed attempts inside the window, then the success: 3*8 - 1
    assert record.errors == 3
    assert state.tec == 3 * TEC_ERROR_INCREMENT - 1
    assert record.attempts == 4
    assert record.retry_latency_us == 3 * lost_per_error
    assert record.queued_at == 0
    labels = [r.label for r in bus.trace.by_category("can")]
    assert labels.count("error_frame") == 3
    assert bus.error_accounting() == {
        "errors_injected": 3, "errors_on_messages": 3, "coherent": True}


def test_error_passive_suspends_before_bus_off():
    bus = CanBus(trace=TraceRecorder(enabled=True))
    frame = CanFrame(0x100, b"\xaa")
    lost = bus.bit_time_us(frame.wire_bits) // 2 + bus.bit_time_us(31)
    # enough failures to cross 128 but stay short of 256: 17 * 8 = 136
    bus.force_error_window("victim", 0, 17 * lost)
    bus.submit(frame, node="victim")
    # a healthy peer known to the bus: its REC must track the errors
    bus.submit(CanFrame(0x200, b"\xbb"), node="peer")
    bus.scheduler.run(until=17 * lost)
    state = bus.node_state("victim")
    assert state.state == ERROR_PASSIVE
    assert ERROR_PASSIVE_THRESHOLD <= state.tec < BUS_OFF_THRESHOLD
    assert state.suspend_until_us > 0       # sat out a suspend window
    peer = bus.node_state("peer")
    assert peer.rec > 0 and peer.state in (ERROR_ACTIVE, ERROR_PASSIVE)
    assert any(r.label == "error_passive"
               for r in bus.trace.by_category("can"))
    # healthy traffic after the window drains the counters back to active
    bus.scheduler.run(until=200_000)
    sender = PeriodicSender(bus, can_id=0x100, payload=b"\xaa",
                            period_us=500, node="victim")
    sender.start()
    bus.scheduler.run(until=250_000)
    assert state.state == ERROR_ACTIVE
    assert state.tec < ERROR_PASSIVE_THRESHOLD


def test_bus_off_parks_frames_and_recovers_on_schedule():
    bus = CanBus(trace=TraceRecorder(enabled=True))
    # a window long enough to reach bus-off (32 errors) but shorter than
    # the recovery point, so the outage is still in progress at its end
    bus.force_error_window("victim", 0, 5_000)
    bus.submit(CanFrame(0x100, b"\xaa"), node="victim")
    bus.scheduler.run(until=5_000)
    state = bus.node_state("victim")
    assert state.bus_off
    assert state.bus_off_events == 1
    assert len(state.held) == 1             # the in-flight frame was parked
    # frames submitted while off are parked too, queue times preserved
    bus.submit(CanFrame(0x104, b"\xcc"), node="victim")
    assert len(state.held) == 2
    assert bus.backlog == 2
    held_labels = [r.label for r in bus.trace.by_category("can")]
    assert "bus_off" in held_labels and "held" in held_labels
    # recovery lands exactly one fixed window after going off
    off_at, recover_at = state.bus_off_log[0]
    assert recover_at == off_at + bus.bit_time_us(BUS_OFF_RECOVERY_BITS)
    bus.scheduler.run(until=300_000)
    assert state.state == ERROR_ACTIVE and state.tec == 0 and not state.held
    assert state.bus_off_log == [(off_at, recover_at)]
    # both parked frames delivered, original queue times intact
    by_id = {d.can_id: d for d in bus.deliveries}
    assert by_id[0x100].queued_at == 0
    assert by_id[0x104].queued_at > off_at
    assert (sum(d.errors for d in bus.deliveries)
            == BUS_OFF_THRESHOLD // TEC_ERROR_INCREMENT)
    assert bus.error_accounting()["coherent"]


def test_error_accounting_coherent_under_random_errors():
    bus = CanBus(error_rate=0.25, rng=DeterministicRng(7))
    for index in range(3):
        PeriodicSender(bus, can_id=0x100 + 0x20 * index, payload=b"\x11" * 4,
                       period_us=2_000, node=f"ecu{index}").start()
    bus.scheduler.run(until=400_000)
    accounting = bus.error_accounting()
    assert accounting["errors_injected"] > 0
    assert accounting["coherent"], accounting
    assert sum(d.errors for d in bus.deliveries) > 0
    assert any(d.retry_latency_us > 0 for d in bus.deliveries)


# ----------------------------------------------------------------------
# the vehicle_fault domain: per-kind verdicts
# ----------------------------------------------------------------------

def _fault_record(kind: str, **params):
    merged = {"kind": kind, **params}
    return run_scenario(ScenarioSpec(
        label=f"fault {kind}", domain="vehicle_fault", seed=2005,
        params=tuple(sorted(merged.items()))))


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_every_fault_kind_verifies_with_its_specified_verdicts(kind):
    record = _fault_record(kind)
    assert record.domain == "vehicle_fault"
    assert record.fault_kind == kind
    assert record.verified, (record.verdicts, record.expected)
    assert record.expected == EXPECTED_BY_KIND[kind]
    assert set(record.verdicts) == set(VERDICT_CLAIMS)
    assert record.twin_healthy and record.twin_bound_violations == 0
    assert record.fused_blocks > 0
    assert record.fault_start_us < record.fault_end_us <= record.horizon_us


def test_babbling_idiot_demonstrates_the_latency_violation():
    """The acceptance case: a seeded scenario violating a latency bound
    its fault-free twin meets, recorded as the expected outcome."""
    record = _fault_record("babbling-idiot")
    assert record.bound_violations > 0
    assert record.twin_bound_violations == 0
    assert record.worst_latency_us > record.worst_bound_us
    assert record.twin_worst_latency_us <= record.worst_bound_us
    assert record.frames_injected > 0
    assert record.fault_activations == record.frames_injected
    assert not record.verdicts["latency_bound"]
    assert not record.verdicts["fail_silence"]  # the babbler kept talking
    assert record.verdicts["frame_conservation"]
    assert record.verdicts["recovery"]


def test_bus_off_storm_confines_the_victim():
    record = _fault_record("bus-off-storm")
    assert record.bus_off_events >= 1
    assert record.errors_injected > 0
    assert record.verdicts["fail_silence"]      # off the bus while off
    assert record.verdicts["recovery"]          # and back in the deadline


def test_gateway_overload_drops_are_counted_not_hidden():
    record = _fault_record("gateway-overload")
    assert record.rx_dropped > 0
    assert not record.conservation_ok
    assert not record.verdicts["frame_conservation"]
    assert record.verdicts["fail_silence"]      # actuator never saw a spoof


def test_lin_slot_faults_surface_as_slot_outages():
    drop = _fault_record("lin-drop")
    assert drop.lin_no_response > 0
    assert drop.fault_activations == drop.lin_no_response
    stuck = _fault_record("lin-stuck")
    assert stuck.fault_activations > 0
    assert stuck.lin_no_response == 0           # replays are answers
    for record in (drop, stuck):
        assert record.verdicts["fail_silence"]
        assert record.verdicts["recovery"]


def test_soft_error_is_detected_by_the_checksum_mirror():
    record = _fault_record("soft-error")
    assert record.fault_activations == 1
    assert not record.checksum_ok               # the flip was detected...
    assert not record.expected_checksum_ok      # ...and specified to be
    assert record.verified
    assert record.bound_violations == 0         # the data path stayed clean
    assert record.verdicts["fail_silence"]


def test_expected_verdicts_are_overridable_per_cell():
    # flipping one expectation makes the same healthy-behaving cell fail
    record = _fault_record("soft-error", expect_latency_bound=False)
    assert not record.verified
    assert record.verdicts["latency_bound"]


def test_record_rejects_malformed_verdicts():
    record = _fault_record("soft-error")
    payload = vars(record).copy()
    payload["verdicts"] = {**record.verdicts}
    payload["verdicts"].pop("recovery")
    payload["verdicts"]["warp_integrity"] = True
    with pytest.raises(ValueError, match="exactly the claims"):
        VehicleFaultRecord(**payload)
    payload["verdicts"] = {**record.verdicts, "recovery": "yes"}
    with pytest.raises(ValueError, match="must be a bool"):
        VehicleFaultRecord(**payload)


def test_unknown_kind_is_a_clear_error():
    with pytest.raises(ValueError, match="unknown fault kind 'meteor'"):
        run_scenario(ScenarioSpec(label="x", domain="vehicle_fault",
                                  params=(("kind", "meteor"),)))


def test_fault_matrix_covers_every_kind_with_unique_keys():
    specs = vehicle_fault_matrix()
    kinds = {dict(s.params)["kind"] for s in specs}
    assert kinds == set(FAULT_KINDS)
    assert len({s.key() for s in specs}) == len(specs)


# ----------------------------------------------------------------------
# determinism: quantum, engine tiers, workers, shards
# ----------------------------------------------------------------------

def _faulted_fingerprint(kind: str, engine=(True, True, True),
                         quantum_us: int | None = None) -> str:
    net_spec = synthesize_network(DeterministicRng(11).fork(1), 2,
                                  125_000, 200)
    fault = synthesize_fault(DeterministicRng(11).fork(2), kind,
                             net_spec, 150_000)
    network = build_body_network(net_spec)
    for ecu in network.vehicle.ecus:
        (ecu.cpu.fastpath, ecu.cpu.superblocks,
         ecu.cpu.trace_superblocks) = engine
    scenario = scenario_for(fault)
    scenario.arm(network)
    network.run(horizon_us=150_000, quantum_us=quantum_us)
    report = network.report()
    state = {
        "frames": [(d.can_id, d.node, d.queued_at, d.completed_at,
                    d.attempts, d.errors, d.retry_latency_us)
                   for d in network.vehicle.can.deliveries],
        "out": [(a.ident, a.word, a.at_us)
                for a in network.actuator_out.applied],
        "verdicts": scenario.verdicts(network, report),
        "activations": scenario.activations,
        "bus_off": network.vehicle.can.bus_off_events,
    }
    for ecu in network.vehicle.ecus:
        cpu = ecu.cpu
        state[ecu.name] = [list(cpu.regs.snapshot()), cpu.cycles,
                           cpu.instructions_executed,
                           bytes(ecu.machine.sram.data[:0x80]).hex()]
    return json.dumps(state, sort_keys=True)


@pytest.mark.parametrize("kind", ["babbling-idiot", "soft-error"])
def test_faulted_network_byte_identical_across_quantum_sizes(kind):
    """The co-sim quantum joins the pause schedule, never the physics -
    with a fault armed just like without one."""
    reference = _faulted_fingerprint(kind, quantum_us=200)
    for quantum in (50, 433):
        assert _faulted_fingerprint(kind, quantum_us=quantum) == reference, (
            kind, quantum)


@pytest.mark.parametrize("kind", ["bus-off-storm", "soft-error"])
@pytest.mark.parametrize("name,fastpath,superblocks,trace", ENGINES[:3],
                         ids=[e[0] for e in ENGINES[:3]])
def test_faulted_network_byte_identical_across_engines(kind, name, fastpath,
                                                       superblocks, trace):
    """Fault injection (including mid-run SRAM flips settled to WFI)
    must not observe the engine tier."""
    reference = _faulted_fingerprint(kind, (True, True, True))
    assert _faulted_fingerprint(kind, (fastpath, superblocks,
                                       trace)) == reference, (kind, name)


def _fault_specs() -> list[ScenarioSpec]:
    return [
        ScenarioSpec(label="vf babble", domain="vehicle_fault", seed=5,
                     params=(("horizon_us", 120_000),
                             ("kind", "babbling-idiot"))),
        ScenarioSpec(label="vf storm", domain="vehicle_fault", seed=5,
                     params=(("horizon_us", 120_000),
                             ("kind", "bus-off-storm"), ("sensors", 2))),
        ScenarioSpec(label="vf soft", domain="vehicle_fault", seed=5,
                     params=(("horizon_us", 120_000), ("kind", "soft-error"))),
        ScenarioSpec(label="vf lin", domain="vehicle_fault", seed=5,
                     params=(("horizon_us", 120_000), ("kind", "lin-drop"))),
    ]


def test_fault_campaign_byte_identical_across_workers_and_shards(tmp_path):
    specs = _fault_specs()

    def stream_bytes(name: str, workers=None, shard=None) -> bytes:
        path = tmp_path / f"{name}.jsonl"
        run_campaign(specs, workers=workers, stream_path=path, shard=shard)
        return path.read_bytes()

    serial = stream_bytes("serial")
    assert serial
    assert stream_bytes("pooled", workers=2) == serial
    shards = b"".join(stream_bytes(f"shard{k}", shard=(k, 2))
                      for k in range(2))
    assert shards == serial


# ----------------------------------------------------------------------
# stream robustness over vehicle_fault records (satellite)
# ----------------------------------------------------------------------

def _write_fault_stream(tmp_path):
    path = tmp_path / "faults.jsonl"
    specs = _fault_specs()[:2]
    run_campaign(specs, stream_path=path)
    return path, specs


def test_fault_records_round_trip_through_the_stream(tmp_path):
    path, specs = _write_fault_stream(tmp_path)
    records = read_campaign_stream(path)
    assert [vars(r) for r in records] == [vars(run_scenario(s))
                                          for s in specs]
    assert all(isinstance(r, VehicleFaultRecord) for r in records)


def test_truncated_fault_stream_is_rejected_then_skippable(tmp_path):
    path, _ = _write_fault_stream(tmp_path)
    path.write_bytes(path.read_bytes()[:-10])    # cut mid-record
    with pytest.raises(CampaignStreamError, match="truncated trailing line"):
        read_campaign_stream(path)
    errors: list = []
    records = read_campaign_stream(path, on_error="skip", errors=errors)
    assert len(records) == 1
    assert len(errors) == 1 and errors[0][0] == 2
    assert "truncated trailing line" in errors[0][1]


def test_unknown_verdict_claim_is_rejected_as_corrupt(tmp_path):
    path, _ = _write_fault_stream(tmp_path)
    lines = path.read_text().splitlines()
    payload = json.loads(lines[0])
    payload["verdicts"] = {**payload["verdicts"]}
    del payload["verdicts"]["recovery"]
    payload["verdicts"]["warp_integrity"] = True
    lines[0] = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(CampaignStreamError,
                       match="exactly the claims"):
        read_campaign_stream(path)
    errors: list = []
    records = read_campaign_stream(path, on_error="skip", errors=errors)
    assert len(records) == 1                     # line 2 still loads
    assert errors and errors[0][0] == 1
    assert "VehicleFaultRecord" in errors[0][1]
