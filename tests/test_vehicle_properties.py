"""Co-simulation determinism properties.

The hard guarantees that make the virtual vehicle campaign-distributable:

* **quantum invariance** - a whole-network run is byte-identical for any
  co-simulation quantum (the quantum joins the engine's event horizon;
  nothing about a pause point is architecturally observable);
* **engine invariance** - all four execution tiers (reference, predecoded,
  superblock, trace) produce the identical co-simulated network;
* **distribution invariance** - vehicle campaign records stream
  byte-identically across worker counts and shard splits, like every
  other domain.

Plus the composition property of the cycle-coupled engine itself: any
sequence of ``run_until_cycle`` targets executes the same instruction
stream as one unbounded run.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import compile_program
from repro.core import FLASH_BASE, SRAM_BASE, build_machine
from repro.sim.campaign import (
    CampaignRequest,
    ScenarioSpec,
    execute_request,
    run_campaign,
    run_scenario,
)
from repro.sim.domains.vehicle import vehicle_matrix
from repro.sim.rng import DeterministicRng
from repro.vehicle import (
    BodyNetworkSpec,
    RoundTripSpec,
    SensorNode,
    build_body_network,
    build_round_trip,
)
from repro.workloads.kernels import WORKLOADS_BY_NAME

ENGINES = (
    ("reference", False, False, False),
    ("uops", True, False, False),
    ("superblock", True, True, False),
    ("trace", True, True, True),
)


def _round_trip_fingerprint(quantum_us: int, engine=(True, True, True),
                            parallel: int | None = None) -> str:
    rt = build_round_trip(RoundTripSpec())
    for ecu in rt.vehicle.ecus:
        (ecu.cpu.fastpath, ecu.cpu.superblocks,
         ecu.cpu.trace_superblocks) = engine
    rt.run(horizon_us=45_000, quantum_us=quantum_us, parallel=parallel)
    return json.dumps(rt.fingerprint(), sort_keys=True)


def test_round_trip_byte_identical_across_quantum_sizes():
    reference = _round_trip_fingerprint(100)
    for quantum in (17, 50, 250, 499):
        assert _round_trip_fingerprint(quantum) == reference, quantum


@pytest.mark.parametrize("name,fastpath,superblocks,trace", ENGINES,
                         ids=[e[0] for e in ENGINES])
def test_round_trip_byte_identical_across_engines(name, fastpath,
                                                  superblocks, trace):
    reference = _round_trip_fingerprint(100)
    engine = (fastpath, superblocks, trace)
    assert _round_trip_fingerprint(100, engine) == reference, name
    assert _round_trip_fingerprint(333, engine) == reference, name


def _body_fingerprint(quantum_us: int, parallel: int | None = None) -> str:
    spec = BodyNetworkSpec(sensors=(
        SensorNode("wheel", "m3", 80, 0x120, 20_000),
        SensorNode("seat", "arm1156", 160, 0x180, 25_000, raw_salt=7),
        SensorNode("door", "arm7", 48, 0x200, 50_000, raw_salt=3),
    ))
    net = build_body_network(spec)
    net.run(horizon_us=180_000, quantum_us=quantum_us, parallel=parallel)
    state = {
        "frames": [(d.can_id, d.node, d.queued_at, d.completed_at,
                    d.attempts) for d in net.vehicle.can.deliveries],
        "lin": [(d.frame_id, d.data.hex(), d.at_us)
                for d in net.vehicle.lin.deliveries],
        "tap": [(a.ident, a.word, a.at_us) for a in net.gateway_tap.applied],
        "out": [(a.ident, a.word, a.at_us)
                for a in net.actuator_out.applied],
    }
    for ecu in net.vehicle.ecus:
        cpu = ecu.cpu
        state[ecu.name] = [list(cpu.regs.snapshot()), str(cpu.apsr),
                           cpu.cycles, cpu.instructions_executed,
                           ecu.machine.bus.reads, ecu.machine.bus.writes,
                           ecu.machine.bus.total_stalls,
                           bytes(ecu.machine.sram.data[:0x80]).hex()]
    return json.dumps(state, sort_keys=True)


def test_body_network_byte_identical_across_quantum_sizes():
    reference = _body_fingerprint(200)
    for quantum in (37, 100, 433):
        assert _body_fingerprint(quantum) == reference, quantum


# ----------------------------------------------------------------------
# parallel invariance: concurrent ECU advance under declared lookahead
# ----------------------------------------------------------------------

def test_round_trip_byte_identical_parallel_vs_serial():
    """Concurrent ECU advance is unobservable: every worker count yields
    the serial run's bytes (split points, doorbell merge order, and
    scheduler seq allocation all replicate the serial pump)."""
    reference = _round_trip_fingerprint(100)
    for parallel in (2, 3, 4):
        assert _round_trip_fingerprint(100, parallel=parallel) == reference, \
            parallel


def test_body_network_byte_identical_parallel_vs_serial():
    reference = _body_fingerprint(200)
    for parallel in (2, 3, 5):  # 5 clamps to the 5-ECU network's width
        assert _body_fingerprint(200, parallel=parallel) == reference, parallel


def test_parallel_campaign_records_byte_identical():
    """``run_scenario(spec, parallel=N)`` emits the identical record JSON
    for both co-simulation domains - the knob can never leak into a
    record, a cache key, or a stream byte."""
    from repro.sim.campaign import _record_json

    specs = [
        ScenarioSpec(label="pp vehicle", domain="vehicle", seed=5,
                     params=(("sensors", 2), ("horizon_us", 90_000))),
        ScenarioSpec(label="pp fault", domain="vehicle_fault", seed=5,
                     params=(("kind", "babbling-idiot"), ("sensors", 2),
                             ("horizon_us", 120_000))),
    ]
    for spec in specs:
        serial = _record_json(run_scenario(spec))
        for parallel in (2, 3):
            assert _record_json(run_scenario(spec, parallel=parallel)) \
                == serial, (spec.label, parallel)


def test_parallel_rejects_quantum_beyond_lookahead():
    """A quantum wider than the declared TX lookahead could carry a frame
    into the window it was computed in - parallel runs must refuse it
    eagerly (serial runs are unaffected: their pump needs no lookahead)."""
    spec = BodyNetworkSpec(sensors=(
        SensorNode("wheel", "m3", 80, 0x120, 20_000),
        SensorNode("door", "arm7", 48, 0x200, 50_000, raw_salt=3),
    ))
    net = build_body_network(spec)
    with pytest.raises(ValueError, match="lookahead"):
        net.run(horizon_us=10_000, quantum_us=600, parallel=2)


def test_parallel_request_round_trips_and_streams_identically(tmp_path):
    """``parallel`` rides every request encoding (JSON, argv) and leaves
    ``execute_request`` stream bytes untouched."""
    request = CampaignRequest(matrix="vehicle-smoke", parallel=3)
    assert CampaignRequest.from_obj(request.to_obj()) == request
    argv = request.cli_argv()
    assert argv[argv.index("--parallel") + 1] == "3"

    specs = tuple(_vehicle_specs())

    def stream_bytes(name: str, parallel=None) -> bytes:
        path = tmp_path / f"{name}.jsonl"
        execute_request(CampaignRequest(specs=specs, parallel=parallel),
                        stream_path=path)
        return path.read_bytes()

    serial = stream_bytes("serial")
    assert serial
    assert stream_bytes("parallel", parallel=2) == serial


# ----------------------------------------------------------------------
# quantum-edge exactness under a starved block-cycle cap
# ----------------------------------------------------------------------

def test_quantum_edges_exact_under_starved_cycle_cap(monkeypatch):
    """With the cap starved (no block ever 'fits' under the quantum) the
    engine falls back to per-step dispatch with an exact cycle test at
    every quantum edge - and the co-simulated network must not move by a
    byte.  This pins the contract that the cap only ever trades fused
    dispatch for slack, never correctness."""
    from repro.core.cpu import BaseCpu

    reference = _body_fingerprint(200)
    monkeypatch.setattr(BaseCpu, "_block_cycle_cap",
                        lambda self, uops: 10**9)
    assert _body_fingerprint(200) == reference
    assert _body_fingerprint(200, parallel=3) == reference


# ----------------------------------------------------------------------
# campaign distribution invariance
# ----------------------------------------------------------------------

def _vehicle_specs() -> list[ScenarioSpec]:
    return [
        ScenarioSpec(label="vp a", domain="vehicle", seed=5,
                     params=(("sensors", 1), ("horizon_us", 90_000))),
        ScenarioSpec(label="vp b", domain="vehicle", seed=5,
                     params=(("sensors", 2), ("horizon_us", 90_000),
                             ("quantum_us", 100))),
        ScenarioSpec(label="vp lin", domain="lin", seed=5,
                     params=(("slots", 3), ("horizon_us", 200_000))),
    ]


def test_vehicle_campaign_byte_identical_across_workers_and_shards(tmp_path):
    specs = _vehicle_specs()

    def stream_bytes(name: str, workers=None, shard=None) -> bytes:
        path = tmp_path / f"{name}.jsonl"
        run_campaign(specs, workers=workers, stream_path=path, shard=shard)
        return path.read_bytes()

    serial = stream_bytes("serial")
    assert serial
    assert stream_bytes("pooled", workers=2) == serial
    shards = b"".join(stream_bytes(f"shard{k}", shard=(k, 2))
                      for k in range(2))
    assert shards == serial


def test_vehicle_matrix_cells_have_unique_keys():
    specs = vehicle_matrix()
    assert len({spec.key() for spec in specs}) == len(specs)


# ----------------------------------------------------------------------
# run_until_cycle composition (the engine primitive under everything)
# ----------------------------------------------------------------------

@given(st.sampled_from(["ttsprk", "canrdr", "bitmnp"]),
       st.sampled_from([("arm7", "thumb"), ("m3", "thumb2"),
                        ("arm1156", "thumb2")]),
       st.lists(st.integers(min_value=1, max_value=2_000),
                min_size=1, max_size=6))
@settings(max_examples=12, deadline=None)
def test_run_until_cycle_composes_bit_exactly(workload_name, config, deltas):
    """Running to an arbitrary ladder of cycle targets and then to
    completion leaves the machine bit-identical to one straight run()."""
    core, isa = config
    workload = WORKLOADS_BY_NAME[workload_name]
    fn = workload.build()
    program = compile_program([fn], isa, base=FLASH_BASE)
    prepared = workload.make_input(DeterministicRng(2005), 1)

    def build():
        machine = build_machine(core, program)
        machine.load_data(SRAM_BASE, prepared.data)
        machine.cpu.regs.sp = machine.stack_top
        for index, value in enumerate(prepared.args(SRAM_BASE)):
            machine.cpu.regs.write(index, value)
        machine.cpu.regs.lr = 0xFFFFFFFE
        machine.cpu.regs.pc = program.symbols[fn.name]
        return machine

    def fingerprint(machine):
        cpu = machine.cpu
        return (list(cpu.regs.snapshot()), str(cpu.apsr), cpu.cycles,
                cpu.instructions_executed, cpu.instructions_skipped,
                cpu.branches_taken, machine.bus.reads, machine.bus.writes,
                machine.bus.total_stalls)

    straight = build()
    straight.cpu.run()
    expected = fingerprint(straight)

    laddered = build()
    target = 0
    for delta in deltas:
        target += delta
        laddered.cpu.run_until_cycle(target)
        if laddered.cpu.halted:
            break
    while not laddered.cpu.halted:
        target += 10_000
        laddered.cpu.run_until_cycle(target)
    assert fingerprint(laddered) == expected
