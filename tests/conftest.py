"""Shared fixtures: a minimal ExecutionContext for ISA-level tests."""

from __future__ import annotations

import pytest

from repro.isa import Apsr, Condition, RegisterFile


class FakeCpu:
    """Just enough CPU for exercising instruction semantics directly.

    Flat byte-addressable memory, no timing, Thumb-style PC offset
    (``pc + 4``) unless constructed with ``arm_state=True``.
    """

    def __init__(self, arm_state: bool = False, mem_size: int = 0x10000):
        self.regs = RegisterFile()
        self.apsr = Apsr()
        self.memory = bytearray(mem_size)
        self.arm_state = arm_state
        self.branched_to: int | None = None
        self.interrupts_enabled = True
        self.it_blocks: list[tuple[Condition, str]] = []
        self.svc_calls: list[int] = []
        self.sleeping = False
        self.current_address = 0
        self.current_size = 4

    # -- ExecutionContext protocol ------------------------------------
    def read(self, addr: int, size: int) -> int:
        return int.from_bytes(self.memory[addr:addr + size], "little")

    def write(self, addr: int, size: int, value: int) -> None:
        self.memory[addr:addr + size] = value.to_bytes(size, "little")

    def branch(self, target: int) -> None:
        self.branched_to = target
        self.regs.pc = target

    def pc_read_value(self) -> int:
        return self.current_address + (8 if self.arm_state else 4)

    def set_interrupts_enabled(self, enabled: bool) -> None:
        self.interrupts_enabled = enabled

    def begin_it_block(self, firstcond: Condition, mask: str) -> None:
        self.it_blocks.append((firstcond, mask))

    def software_interrupt(self, number: int) -> None:
        self.svc_calls.append(number)

    def wait_for_interrupt(self) -> None:
        self.sleeping = True


@pytest.fixture
def cpu() -> FakeCpu:
    return FakeCpu()


@pytest.fixture
def arm_cpu() -> FakeCpu:
    return FakeCpu(arm_state=True)
