"""Tests for the system bus, SRAM, and the streaming flash model."""

import pytest

from repro.memory import BusFault, Flash, Sram, SystemBus


def make_bus():
    bus = SystemBus(record=True)
    bus.attach(Flash(base=0x0800_0000, size=0x1_0000, access_cycles=2, line_bytes=16))
    bus.attach(Sram(base=0x2000_0000, size=0x8000))
    return bus


def test_bus_routes_by_address():
    bus = make_bus()
    bus.write(0x2000_0000, 4, 0xAABBCCDD)
    value, _ = bus.read(0x2000_0000, 4)
    assert value == 0xAABBCCDD


def test_bus_fault_on_unmapped():
    bus = make_bus()
    with pytest.raises(BusFault):
        bus.read(0x4000_0000, 4)
    with pytest.raises(BusFault):
        bus.write(0x4000_0000, 4, 0)


def test_overlapping_devices_rejected():
    bus = SystemBus()
    bus.attach(Sram(base=0x1000, size=0x1000))
    with pytest.raises(ValueError):
        bus.attach(Sram(base=0x1800, size=0x1000))


def test_load_image_and_raw_read():
    bus = make_bus()
    bus.load_image(0x0800_0000, b"\x01\x02\x03\x04")
    assert bus.read_raw(0x0800_0000, 4) == 0x04030201


def test_access_recording():
    bus = make_bus()
    bus.write(0x2000_0010, 4, 1)
    bus.read(0x2000_0010, 4)
    kinds = [(a.kind, a.addr) for a in bus.accesses]
    assert kinds == [("W", 0x2000_0010), ("R", 0x2000_0010)]


def test_sram_wait_states():
    ram = Sram(base=0, size=64, wait_states=3)
    _, stalls = ram.read(0, 4)
    assert stalls == 3
    assert ram.write(0, 4, 1) == 3


# ----------------------------------------------------------------------
# flash streaming behaviour (experiment E3's mechanism)
# ----------------------------------------------------------------------

def test_first_access_pays_array_latency():
    flash = Flash(base=0, size=1024, access_cycles=2, line_bytes=16)
    _, stalls = flash.read(0, 4, side="I")
    assert stalls == 2


def test_sequential_fetches_within_line_are_free():
    flash = Flash(base=0, size=1024, access_cycles=2, line_bytes=16)
    flash.read(0, 4, side="I")
    for addr in (4, 8, 12):
        _, stalls = flash.read(addr, 4, side="I")
        assert stalls == 0, addr


def test_streaming_across_lines_is_free_with_prefetch():
    flash = Flash(base=0, size=1024, access_cycles=2, line_bytes=16, prefetch=True)
    total = 0
    for addr in range(0, 256, 4):
        _, stalls = flash.read(addr, 4, side="I")
        total += stalls
    assert total == 2  # only the initial access


def test_line_crossing_costs_without_prefetch():
    flash = Flash(base=0, size=1024, access_cycles=2, line_bytes=16, prefetch=False)
    total = 0
    for addr in range(0, 64, 4):
        _, stalls = flash.read(addr, 4, side="I")
        total += stalls
    # 4 lines -> 4 array accesses
    assert total == 8


def test_literal_fetch_breaks_the_stream():
    """The paper's section 2.2 mechanism: a data fetch from the literal
    pool disrupts the sequential instruction stream twice."""
    flash = Flash(base=0, size=4096, access_cycles=2, line_bytes=16)
    flash.read(0, 4, side="I")       # establish stream: 2 stalls
    flash.read(4, 4, side="I")       # free
    _, pool_stalls = flash.read(0x800, 4, side="D")   # literal pool: break
    assert pool_stalls == 2
    _, resume_stalls = flash.read(8, 4, side="I")     # resume: break again
    assert resume_stalls == 2
    assert flash.stream_breaks == 2


def test_straddling_read_touches_two_lines():
    flash = Flash(base=0, size=1024, access_cycles=2, line_bytes=16)
    _, stalls = flash.read(14, 4, side="D")  # crosses the 16-byte boundary
    assert stalls == 2  # second line is the streamed neighbour: free


def test_reset_stream():
    flash = Flash(base=0, size=1024, access_cycles=2, line_bytes=16)
    flash.read(0, 4)
    flash.reset_stream()
    _, stalls = flash.read(4, 4)
    assert stalls == 2


def test_flash_write_is_loader_path():
    flash = Flash(base=0, size=64)
    flash.write(0, 4, 0xDEAD)
    value, _ = flash.read(0, 4)
    assert value == 0xDEAD


def test_stats_dict():
    flash = Flash(base=0, size=1024)
    flash.read(0, 4)
    stats = flash.stats()
    assert stats["array_accesses"] == 1
