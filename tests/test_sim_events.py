"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import EventScheduler, SimulationEnded


def test_events_fire_in_time_order():
    sched = EventScheduler()
    fired = []
    sched.at(30, lambda: fired.append("c"))
    sched.at(10, lambda: fired.append("a"))
    sched.at(20, lambda: fired.append("b"))
    sched.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_priority_then_fifo_order():
    sched = EventScheduler()
    fired = []
    sched.at(5, lambda: fired.append("low"), priority=10)
    sched.at(5, lambda: fired.append("hi"), priority=0)
    sched.at(5, lambda: fired.append("low2"), priority=10)
    sched.run()
    assert fired == ["hi", "low", "low2"]


def test_now_advances_to_event_time():
    sched = EventScheduler()
    seen = []
    sched.at(42, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [42]
    assert sched.now == 42


def test_after_is_relative_to_now():
    sched = EventScheduler()
    seen = []
    sched.at(10, lambda: sched.after(5, lambda: seen.append(sched.now)))
    sched.run()
    assert seen == [15]


def test_cannot_schedule_in_the_past():
    sched = EventScheduler()
    sched.at(10, lambda: None)
    sched.run()
    with pytest.raises(ValueError):
        sched.at(5, lambda: None)


def test_negative_delay_rejected():
    sched = EventScheduler()
    with pytest.raises(ValueError):
        sched.after(-1, lambda: None)


def test_cancelled_event_does_not_fire():
    sched = EventScheduler()
    fired = []
    event = sched.at(10, lambda: fired.append("x"))
    event.cancel()
    sched.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    sched = EventScheduler()
    fired = []
    sched.at(10, lambda: fired.append(10))
    sched.at(20, lambda: fired.append(20))
    sched.run(until=15)
    assert fired == [10]
    assert sched.now == 15
    sched.run()
    assert fired == [10, 20]


def test_run_max_events():
    sched = EventScheduler()
    fired = []
    for t in (1, 2, 3, 4):
        sched.at(t, lambda t=t: fired.append(t))
    sched.run(max_events=2)
    assert fired == [1, 2]


def test_simulation_ended_stops_run():
    sched = EventScheduler()
    fired = []

    def stop():
        raise SimulationEnded()

    sched.at(1, lambda: fired.append(1))
    sched.at(2, stop)
    sched.at(3, lambda: fired.append(3))
    count = sched.run()
    assert fired == [1]
    assert count == 2
    assert sched.pending() == 1


def test_pending_counts_live_events():
    sched = EventScheduler()
    keep = sched.at(10, lambda: None)
    drop = sched.at(20, lambda: None)
    drop.cancel()
    assert sched.pending() == 1
    assert keep.time == 10


def test_step_returns_false_on_empty_queue():
    sched = EventScheduler()
    assert sched.step() is False


def test_events_fired_counter():
    sched = EventScheduler()
    for t in (1, 2, 3):
        sched.at(t, lambda: None)
    sched.run()
    assert sched.events_fired == 3
