"""Tests for the LIN sub-bus model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.lin import (
    LinMaster,
    ScheduleSlot,
    check_protected_id,
    classic_checksum,
    enhanced_checksum,
    frame_bits,
    protected_id,
)


@given(st.integers(min_value=0, max_value=0x3F))
@settings(max_examples=64)
def test_protected_id_roundtrip(frame_id):
    pid = protected_id(frame_id)
    assert check_protected_id(pid) == frame_id


@given(st.integers(min_value=0, max_value=0x3F),
       st.integers(min_value=0, max_value=7))
@settings(max_examples=100)
def test_pid_parity_detects_single_bit_errors(frame_id, bit):
    pid = protected_id(frame_id)
    corrupted = pid ^ (1 << bit)
    # a flipped bit either breaks parity or changes the id; both must be
    # caught-or-visible (LIN's design goal for its 2 parity bits)
    try:
        decoded = check_protected_id(corrupted)
        assert decoded != frame_id
    except ValueError:
        pass


def test_known_pid_values():
    # reference values from the LIN 2.1 specification examples
    assert protected_id(0x00) == 0x80
    assert protected_id(0x3C) == 0x3C  # diagnostic master request


@given(st.binary(max_size=8))
@settings(max_examples=100)
def test_classic_checksum_range_and_sensitivity(data):
    checksum = classic_checksum(data)
    assert 0 <= checksum <= 0xFF
    if data:
        tweaked = bytes([data[0] ^ 0x01]) + data[1:]
        assert classic_checksum(tweaked) != checksum


@given(st.integers(min_value=0, max_value=0x3F), st.binary(max_size=8))
@settings(max_examples=100)
def test_enhanced_checksum_covers_pid(frame_id, data)  :
    pid = protected_id(frame_id)
    base = enhanced_checksum(pid, data)
    other = protected_id((frame_id + 1) & 0x3F)
    assert enhanced_checksum(other, data) != base or other == pid


def test_frame_bits():
    assert frame_bits(0) == 34 + 10
    assert frame_bits(8) == 34 + 90
    with pytest.raises(ValueError):
        frame_bits(9)


def make_master():
    schedule = [
        ScheduleSlot(frame_id=0x10, payload_bytes=2, slot_us=10_000),
        ScheduleSlot(frame_id=0x11, payload_bytes=4, slot_us=10_000),
        ScheduleSlot(frame_id=0x12, payload_bytes=8, slot_us=10_000),
    ]
    return LinMaster(schedule, baud=19_200)


def test_schedule_round_robin_delivery():
    master = make_master()
    master.attach_slave(0x10, lambda: b"\x01\x02")
    master.attach_slave(0x11, lambda: b"\x03\x04\x05\x06")
    master.start()
    master.scheduler.run(until=65_000)  # just over two 30 ms cycles
    ids = [d.frame_id for d in master.deliveries]
    assert ids[:4] == [0x10, 0x11, 0x10, 0x11]
    assert master.no_response >= 2      # 0x12 has no slave
    assert all(d.checksum_ok for d in master.deliveries)


def test_slot_too_short_rejected():
    with pytest.raises(ValueError):
        LinMaster([ScheduleSlot(frame_id=1, payload_bytes=8, slot_us=1_000)],
                  baud=9_600)


def test_worst_case_latency_is_one_cycle_plus_frame():
    master = make_master()
    bound = master.worst_case_latency_us(0x11)
    assert bound == master.cycle_us + ScheduleSlot(0x11, 4, 10_000).frame_time_us(19_200)
    with pytest.raises(KeyError):
        master.worst_case_latency_us(0x3F)


def test_deterministic_timing_no_jitter():
    """LIN's selling point: identical delivery times every cycle."""
    master = make_master()
    master.attach_slave(0x10, lambda: b"\xAA\xBB")
    master.start()
    master.scheduler.run(until=185_000)
    times = [d.at_us for d in master.deliveries if d.frame_id == 0x10]
    gaps = {b - a for a, b in zip(times, times[1:])}
    assert gaps == {master.cycle_us}


def test_utilisation():
    master = make_master()
    assert 0.1 < master.utilisation() < 0.5
