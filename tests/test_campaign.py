"""Campaign runner: determinism across worker counts, harness equivalence,
and interrupt-profile behaviour."""

from __future__ import annotations

import pytest

from repro.sim.campaign import (
    InterruptProfile,
    ScenarioSpec,
    interrupt_sweep_matrix,
    read_campaign_stream,
    run_campaign,
    run_scenario,
    table1_matrix,
)
from repro.workloads import run_kernel, table1
from repro.workloads.kernels import AUTOINDY_SUITE


def small_matrix() -> list[ScenarioSpec]:
    return [
        ScenarioSpec(label="m3", core="m3", isa="thumb2", workload=w.name,
                     seed=11, scale=1)
        for w in AUTOINDY_SUITE[:4]
    ] + [
        ScenarioSpec(label="arm7", core="arm7", isa="thumb", workload=w.name,
                     seed=11, scale=1)
        for w in AUTOINDY_SUITE[:2]
    ]


def test_campaign_byte_identical_across_worker_counts():
    specs = small_matrix()
    serial = run_campaign(specs, workers=1)
    two = run_campaign(specs, workers=2)
    three = run_campaign(specs, workers=3)
    assert serial.to_json() == two.to_json() == three.to_json()
    assert serial.all_verified


def test_scenario_rng_is_pure_function_of_spec():
    spec_a = ScenarioSpec(label="x", core="m3", isa="thumb2",
                          workload="canrdr", seed=3)
    spec_b = ScenarioSpec(label="x", core="m3", isa="thumb2",
                          workload="canrdr", seed=3)
    assert [spec_a.rng().random() for _ in range(5)] == \
           [spec_b.rng().random() for _ in range(5)]
    # a different cell gets an independent stream
    other = ScenarioSpec(label="x", core="m3", isa="thumb2",
                         workload="bitmnp", seed=3)
    assert spec_a.rng().random() != other.rng().random()


def test_scenario_matches_harness_kernel_run():
    """A campaign cell reproduces run_kernel() cycle-for-cycle."""
    workload = AUTOINDY_SUITE[0]
    reference = run_kernel(workload, "m3", "thumb2", seed=2005, scale=2)
    record = run_scenario(ScenarioSpec(label="t", core="m3", isa="thumb2",
                                       workload=workload.name,
                                       seed=2005, scale=2))
    assert record.to_kernel_run() == reference


def test_table1_parallel_equals_serial():
    serial = table1(seed=2005, scale=1)
    parallel = table1(seed=2005, scale=1, workers=2)
    for a, b in zip(serial, parallel):
        assert a.runs == b.runs
        assert a.suite_code_bytes == b.suite_code_bytes
        assert a.geometric_mean == b.geometric_mean


def test_interrupt_profile_delivers_and_stays_verified():
    spec = ScenarioSpec(label="irq", core="m3", isa="thumb2",
                        workload="canrdr", scale=4,
                        interrupts=InterruptProfile(count=6, mean_gap=60))
    record = run_scenario(spec)
    quiet = run_scenario(ScenarioSpec(label="q", core="m3", isa="thumb2",
                                      workload="canrdr", scale=4))
    assert record.verified
    assert record.irqs_serviced == 6
    assert record.irq_ticks == 6            # the handler really ran 6 times
    assert record.cycles > quiet.cycles     # and the storm cost cycles
    assert record.result == quiet.result    # without corrupting the kernel


def test_interrupt_profile_rejected_on_vic_cores():
    spec = ScenarioSpec(label="bad", core="arm7", isa="thumb",
                        workload="canrdr", interrupts=InterruptProfile())
    with pytest.raises(ValueError, match="hardware stacking"):
        run_scenario(spec)


def test_matrix_builders_cover_expected_cells():
    assert len(table1_matrix()) == 3 * len(AUTOINDY_SUITE)
    sweep = interrupt_sweep_matrix(rates=(500, 250), scale=1)
    assert len(sweep) == 2 * len(AUTOINDY_SUITE)
    assert all(s.interrupts is not None for s in sweep)


def test_campaign_interrupt_storm_deterministic_and_parallel():
    matrix = interrupt_sweep_matrix(rates=(400,), scale=2)
    serial = run_campaign(matrix, workers=1)
    parallel = run_campaign(matrix, workers=2)
    assert serial.to_json() == parallel.to_json()
    assert serial.all_verified
    assert any(r.irqs_serviced for r in serial.records)


def test_campaign_streams_records_to_jsonl(tmp_path):
    """stream_path appends one canonical JSON line per scenario, in input
    order, byte-identical across worker counts, without keeping records
    in memory unless asked."""
    matrix = small_matrix()
    collected = run_campaign(matrix, workers=1)

    serial_path = tmp_path / "serial.jsonl"
    streamed = run_campaign(matrix, workers=1, stream_path=serial_path)
    assert streamed.records == []          # collect defaults off when streaming
    loaded = read_campaign_stream(serial_path)
    assert loaded == collected.records

    parallel_path = tmp_path / "parallel.jsonl"
    run_campaign(matrix, workers=2, stream_path=parallel_path)
    assert parallel_path.read_bytes() == serial_path.read_bytes()

    # append semantics: a second run extends the file (resumable sweeps)
    run_campaign(matrix[:2], workers=1, stream_path=serial_path)
    assert read_campaign_stream(serial_path) == collected.records + collected.records[:2]


def test_campaign_stream_with_collect_keeps_records(tmp_path):
    matrix = small_matrix()[:3]
    path = tmp_path / "both.jsonl"
    result = run_campaign(matrix, workers=1, stream_path=path, collect=True)
    assert len(result.records) == 3
    assert read_campaign_stream(path) == result.records


def test_record_cache_resumed_run_byte_identical(tmp_path):
    """A cache-assisted (resumed) run must reproduce a cold run's stream
    byte for byte - and actually replay instead of recomputing."""
    from repro.sim.campaign.cache import RecordCache

    matrix = small_matrix()
    cold_path = tmp_path / "cold.jsonl"
    run_campaign(matrix, workers=1, stream_path=cold_path)

    cache = RecordCache(tmp_path / "cache")
    first_path = tmp_path / "first.jsonl"
    run_campaign(matrix, workers=1, stream_path=first_path, cache=cache)
    assert first_path.read_bytes() == cold_path.read_bytes()
    assert cache.hits == 0 and cache.misses == len(matrix)

    # resume: every cell replays from the cache, bytes unchanged
    resumed = RecordCache(tmp_path / "cache")
    resumed_path = tmp_path / "resumed.jsonl"
    run_campaign(matrix, workers=1, stream_path=resumed_path, cache=resumed)
    assert resumed_path.read_bytes() == cold_path.read_bytes()
    assert resumed.hits == len(matrix) and resumed.misses == 0


def test_record_cache_partial_resume_and_workers(tmp_path):
    """A half-warm cache recomputes only the missing cells, interleaves
    replays in input order, and stays byte-exact under a worker pool."""
    from repro.sim.campaign.cache import RecordCache

    matrix = small_matrix()
    cold = run_campaign(matrix, workers=1)

    cache = RecordCache(tmp_path / "cache")
    # warm every second cell, as an interrupted sweep would have
    for spec, record in list(zip(matrix, cold.records))[::2]:
        cache.put(spec, record)
    path = tmp_path / "resumed.jsonl"
    result = run_campaign(matrix, workers=2, stream_path=path, cache=cache,
                          collect=True)
    assert result.to_json() == cold.to_json()
    assert cache.hits == (len(matrix) + 1) // 2
    assert cache.misses == len(matrix) // 2
    assert read_campaign_stream(path) == cold.records


def test_record_cache_ignores_corrupt_and_foreign_files(tmp_path):
    """Damaged cache files are misses (recomputed and overwritten), never
    trusted."""
    from repro.sim.campaign.cache import RecordCache

    spec = small_matrix()[0]
    cache = RecordCache(tmp_path / "cache")
    record = run_scenario(spec)
    cache.put(spec, record)

    # corrupt the stored file: not JSON at all
    cache.path_for(spec).write_text("not json", encoding="utf-8")
    assert cache.get(spec) is None
    cache.put(spec, record)
    # wrong key (foreign file / collision): also a miss
    payload = cache.path_for(spec).read_text(encoding="utf-8")
    cache.path_for(spec).write_text(payload.replace(spec.key(), "other"),
                                    encoding="utf-8")
    assert cache.get(spec) is None
    # a fresh put repairs it
    cache.put(spec, record)
    replayed = cache.get(spec)
    assert replayed == record


# ----------------------------------------------------------------------
# the request shape (PR 6): one object behind every front door
# ----------------------------------------------------------------------

def test_run_campaign_is_keyword_only_past_specs():
    """The shim kept its name but not its positional tail."""
    with pytest.raises(TypeError):
        run_campaign(small_matrix(), 2)  # workers must be a keyword


def test_request_json_round_trip_is_exact():
    import json

    from repro.sim.campaign import CampaignRequest

    spec = ScenarioSpec(label="irq", core="m3", isa="thumb2",
                        workload="canrdr", scale=2,
                        machine_kwargs=(("mpu_regions", (0, 1)),),
                        interrupts=InterruptProfile(count=6, mean_gap=60))
    request = CampaignRequest(specs=(spec,), shard=(0, 2), workers=3,
                              cache="/tmp/c", priority=4)
    wired = CampaignRequest.from_obj(json.loads(json.dumps(request.to_obj())))
    assert wired == request                     # tuples and profile intact
    assert wired.specs[0].key() == spec.key()   # the cache identity survived
    named = CampaignRequest(matrix="smoke", seed=7, scale=2)
    assert CampaignRequest.from_obj(named.to_obj()) == named


def test_request_cli_argv_round_trip():
    """launch_shards builds child argvs from the request; the flag parser
    must rebuild the identical request (no drift between the two)."""
    from repro.sim.campaign import (
        CampaignRequest,
        build_parser,
        request_from_args,
    )

    request = CampaignRequest(matrix="smoke", seed=7, scale=2,
                              workers=3, cache="/tmp/c", priority=2)
    for shard in (None, (1, 4)):
        sharded = request.with_shard(shard)
        args = build_parser().parse_args(sharded.cli_argv())
        assert request_from_args(args) == sharded


def test_request_validation():
    from repro.sim.campaign import CampaignRequest

    with pytest.raises(ValueError, match="not both"):
        CampaignRequest(matrix="smoke", specs=(small_matrix()[0],))
    with pytest.raises(ValueError, match="unknown matrix"):
        CampaignRequest(matrix="warp").resolve_specs()
    with pytest.raises(ValueError, match="explicit specs"):
        CampaignRequest(specs=(small_matrix()[0],)).cli_argv()


def test_shim_and_request_produce_identical_output(tmp_path):
    from repro.sim.campaign import CampaignRequest, execute_request

    specs = small_matrix()[:3]
    shim = run_campaign(specs, workers=1)
    core = execute_request(CampaignRequest(specs=tuple(specs)))
    assert shim.to_json() == core.to_json()
