"""Additional core-model coverage: cycle models, controllers, edge cases."""

import pytest

from repro.core import (
    FLASH_BASE,
    SRAM_BASE,
    DataAbort,
    NvicController,
    VicController,
    build_arm7,
    build_arm1156,
    build_cortexm3,
)
from repro.isa import ISA_THUMB, ISA_THUMB2, assemble
from repro.memory import armv6_mpu


# ----------------------------------------------------------------------
# cycle-model sanity: relative costs match the published ordering
# ----------------------------------------------------------------------

def cycles_for(source, isa, builder, entry="f", args=()):
    program = assemble(source, isa, base=FLASH_BASE)
    machine = builder(program)
    machine.call(entry, *args)
    return machine.cpu.cycles


def test_arm7_load_costs_more_than_alu():
    alu = cycles_for("f:\n adds r0, r0, #1\n bx lr", ISA_THUMB, build_arm7)
    load = cycles_for("f:\n ldr r0, [r0]\n bx lr", ISA_THUMB, build_arm7,
                      args=(SRAM_BASE,))
    assert load > alu


def test_m3_load_cheaper_than_arm7_load():
    src = "f:\n ldr r0, [r0]\n ldr r0, [r0]\n bx lr"
    # make the pointer chase terminate: memory is zero -> second load at 0
    src = "f:\n ldr r1, [r0]\n ldr r2, [r0]\n movs r0, #0\n bx lr"
    arm7 = cycles_for(src, ISA_THUMB, build_arm7, args=(SRAM_BASE,))
    m3 = cycles_for(src, ISA_THUMB2, build_cortexm3, args=(SRAM_BASE,))
    assert m3 < arm7


def test_m3_multiply_single_cycle_vs_arm7():
    src = "f:\n muls r0, r1\n muls r0, r1\n muls r0, r1\n bx lr"
    arm7 = cycles_for(src, ISA_THUMB, build_arm7, args=(3, 5))
    m3 = cycles_for(src, ISA_THUMB2, build_cortexm3, args=(3, 5))
    assert m3 < arm7


def test_taken_branch_costs_pipeline_refill():
    taken = cycles_for("f:\n b t\n t:\n bx lr", ISA_THUMB2, build_cortexm3)
    straight = cycles_for("f:\n nop\n bx lr", ISA_THUMB2, build_cortexm3)
    assert taken > straight


def test_ldm_scales_with_register_count():
    two = cycles_for("f:\n ldm r0, {r1, r2}\n bx lr", ISA_THUMB2,
                     build_cortexm3, args=(SRAM_BASE,))
    six = cycles_for("f:\n ldm r0, {r1, r2, r3, r4, r5, r6}\n bx lr",
                     ISA_THUMB2, build_cortexm3, args=(SRAM_BASE,))
    assert six > two


def test_arm1156_block_transfer_uses_64bit_path():
    # 64-bit datapath: 8 registers move in ~4 beats, not 8
    src = "f:\n ldm r0, {r1, r2, r3, r4, r5, r6, r7, r8}\n bx lr"
    program = assemble(src, ISA_THUMB2, base=FLASH_BASE)
    m1156 = build_arm1156(program, flash_access_cycles=0, sram_wait_states=0,
                          caches_enabled=False)
    m1156.call("f", SRAM_BASE)
    program2 = assemble(src, ISA_THUMB2, base=FLASH_BASE)
    m3 = build_cortexm3(program2)
    m3.call("f", SRAM_BASE)
    assert m1156.cpu.cycles < m3.cpu.cycles


# ----------------------------------------------------------------------
# controllers
# ----------------------------------------------------------------------

def test_vic_priority_ordering():
    vic = VicController()
    vic.raise_irq(1, handler=0x100, priority=5)
    vic.raise_irq(2, handler=0x200, priority=1)  # more urgent
    first = vic.pending_at(0, masked=False)
    assert first.number == 2


def test_vic_nmi_bypasses_mask():
    vic = VicController()
    vic.raise_irq(1, handler=0x100)
    assert vic.pending_at(0, masked=True) is None
    vic.raise_irq(2, handler=0x200, nmi=True)
    assert vic.pending_at(0, masked=True).number == 2


def test_vic_future_asserts_invisible():
    vic = VicController()
    vic.raise_irq(1, handler=0x100, at_cycle=500)
    assert vic.pending_at(499, masked=False) is None
    assert vic.pending_at(500, masked=False) is not None
    assert vic.earliest_assert_in(0, 1000, masked=False) == 500
    assert vic.earliest_assert_in(500, 1000, masked=False) is None


def test_nvic_no_preemption_at_equal_priority():
    nvic = NvicController()
    first = nvic.raise_irq(1, handler=0x100, priority=3)
    nvic.take(first)
    nvic.raise_irq(2, handler=0x200, priority=3)
    assert nvic.pending_at(0, masked=False) is None  # no equal-prio preempt
    nvic.raise_irq(3, handler=0x300, priority=1)
    assert nvic.pending_at(0, masked=False).number == 3


def test_nvic_tail_chain_disabled():
    nvic = NvicController(tail_chaining=False)
    first = nvic.raise_irq(1, handler=0x100, priority=1)
    nvic.take(first)
    nvic.raise_irq(2, handler=0x200, priority=2)
    assert nvic.complete(0, masked=False) is None
    assert nvic.stats.tail_chained == 0


def test_nvic_nesting_depth():
    nvic = NvicController()
    a = nvic.raise_irq(1, handler=0, priority=5)
    nvic.take(a)
    b = nvic.raise_irq(2, handler=0, priority=1)
    nvic.take(b)
    assert nvic.nesting_depth == 2


# ----------------------------------------------------------------------
# MPU integration with running code
# ----------------------------------------------------------------------

def test_mpu_data_abort_on_stray_store():
    source = """
    f:
        str r1, [r0]
        movs r0, #0
        bx lr
    """
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    mpu = armv6_mpu()
    # allow only the stack region; everything else faults
    mpu.configure(0, base=0x2001_0000, size=0x1_0000, perms="rw")
    machine = build_cortexm3(program, mpu=mpu)
    with pytest.raises(DataAbort):
        machine.call("f", SRAM_BASE + 0x100, 42)  # outside the window
    assert mpu.faults >= 1


def test_mpu_allows_configured_window():
    source = """
    f:
        str r1, [r0]
        ldr r0, [r0]
        bx lr
    """
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    mpu = armv6_mpu()
    mpu.configure(0, base=0x2000_0000, size=0x2_0000, perms="rw")
    machine = build_cortexm3(program, mpu=mpu)
    assert machine.call("f", SRAM_BASE + 0x100, 42) == 42


# ----------------------------------------------------------------------
# nested interrupts on the M3
# ----------------------------------------------------------------------

def test_m3_nested_interrupts_unwind_correctly():
    source = """
    main:
        movs r0, #0
    loop:
        adds r0, r0, #1
        cmp r0, #150
        bne loop
        bx lr
    slow:
        ldr r1, =0x20000200
        movs r2, #0
    spin:
        adds r2, r2, #1
        cmp r2, #40
        bne spin
        str r2, [r1]
        bx lr
    fast:
        ldr r1, =0x20000204
        movs r2, #1
        str r2, [r1]
        bx lr
    """
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    machine.cpu.nvic.raise_irq(5, handler=program.symbols["slow"],
                               at_cycle=30, priority=5)
    machine.cpu.nvic.raise_irq(1, handler=program.symbols["fast"],
                               at_cycle=60, priority=1)
    assert machine.call("main") == 150
    assert machine.bus.read_raw(0x2000_0200, 4) == 40
    assert machine.bus.read_raw(0x2000_0204, 4) == 1
    records = machine.cpu.nvic.stats.records
    assert len(records) == 2
    assert machine.cpu.nvic.nesting_depth == 0


def test_interrupt_storm_all_serviced():
    source = """
    main:
        movs r0, #0
    loop:
        adds r0, r0, #1
        cmp r0, #250
        bne loop
        bx lr
    handler:
        ldr r1, =0x20000300
        ldr r2, [r1]
        adds r2, r2, #1
        str r2, [r1]
        bx lr
    """
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    for k in range(8):
        machine.cpu.nvic.raise_irq(k, handler=program.symbols["handler"],
                                   at_cycle=20 + 10 * k, priority=8 - k)
    assert machine.call("main") == 250
    assert machine.bus.read_raw(0x2000_0300, 4) == 8
    assert machine.cpu.nvic.stats.serviced == 8
