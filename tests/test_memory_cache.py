"""Tests for the parity-protected cache."""

import pytest

from repro.memory import Cache, Sram, parity32
from repro.sim import DeterministicRng


def make_cache(fault_tolerant=True, sets=4, ways=2, line_bytes=16):
    ram = Sram(base=0, size=0x10000, wait_states=1)
    cache = Cache(ram, sets=sets, ways=ways, line_bytes=line_bytes,
                  fill_penalty=1, fault_tolerant=fault_tolerant)
    return cache, ram


def test_parity32():
    assert parity32(0) == 0
    assert parity32(1) == 1
    assert parity32(0b11) == 0
    assert parity32(0xFFFFFFFF) == 0
    assert parity32(0x80000001) == 0


def test_miss_then_hit():
    cache, ram = make_cache()
    ram.write_raw(0x100, (0xCAFEBABE).to_bytes(4, "little"))
    value, miss_stalls = cache.read(0x100, 4)
    assert value == 0xCAFEBABE
    assert cache.stats.misses == 1
    value, hit_stalls = cache.read(0x100, 4)
    assert value == 0xCAFEBABE
    assert cache.stats.hits == 1
    assert hit_stalls == 0
    assert miss_stalls > hit_stalls


def test_fill_cost_scales_with_line_size():
    small, _ = make_cache(line_bytes=16)
    large, _ = make_cache(line_bytes=32)
    _, stalls_small = small.read(0, 4)
    _, stalls_large = large.read(0, 4)
    assert stalls_large > stalls_small


def test_write_through_updates_backing():
    cache, ram = make_cache()
    cache.read(0x200, 4)           # allocate line
    cache.write(0x200, 4, 0x1234)
    assert int.from_bytes(ram.read_raw(0x200, 4), "little") == 0x1234
    value, _ = cache.read(0x200, 4)
    assert value == 0x1234


def test_write_no_allocate():
    cache, _ = make_cache()
    cache.write(0x300, 4, 7)
    assert cache.stats.fills == 0


def test_eviction_lru():
    cache, ram = make_cache(sets=1, ways=2, line_bytes=16)
    # three distinct lines mapping to the same set
    for i, addr in enumerate((0x000, 0x010, 0x020)):
        ram.write_raw(addr, bytes([i] * 4))
        cache.read(addr, 4)
    assert cache.stats.fills == 3
    # 0x000 was least recently used and must have been evicted
    cache.read(0x010, 4)
    assert cache.stats.hits == 1
    cache.read(0x000, 4)
    assert cache.stats.misses == 4


def test_lines_spanned():
    cache, _ = make_cache(line_bytes=32)
    assert cache.lines_spanned(0, 4) == 1
    assert cache.lines_spanned(0, 40) == 2
    assert cache.lines_spanned(28, 40) == 3  # the paper's 10-word LDM case


def test_unaligned_straddle_read():
    cache, ram = make_cache(line_bytes=16)
    ram.write_raw(0x0E, (0xA5A5F00F).to_bytes(4, "little"))
    value, _ = cache.read(0x0E, 4)
    assert value == 0xA5A5F00F


def test_parity_error_detected_and_recovered():
    cache, ram = make_cache(fault_tolerant=True)
    ram.write_raw(0x400, (0x12345678).to_bytes(4, "little"))
    cache.read(0x400, 4)
    lines = cache.valid_lines()
    assert lines
    set_index, way = lines[0]
    cache.flip_data_bit(set_index, way, 5)
    value, stalls = cache.read(0x400, 4)
    assert value == 0x12345678          # recovered from backing store
    assert cache.stats.parity_errors == 1
    assert cache.stats.recoveries == 1
    assert stalls > 0                   # recovery refill costs cycles


def test_parity_error_silent_without_protection():
    cache, ram = make_cache(fault_tolerant=False)
    ram.write_raw(0x400, (0x12345678).to_bytes(4, "little"))
    cache.read(0x400, 4)
    set_index, way = cache.valid_lines()[0]
    cache.flip_data_bit(set_index, way, 0)
    value, _ = cache.read(0x400, 4)
    assert value != 0x12345678          # corruption returned silently
    assert cache.stats.silent_corruptions == 1


def test_tag_error_forces_miss():
    cache, ram = make_cache()
    ram.write_raw(0x500, (99).to_bytes(4, "little"))
    cache.read(0x500, 4)
    set_index, way = cache.valid_lines()[0]
    cache.flip_tag_bit(set_index, way, 3)
    value, _ = cache.read(0x500, 4)
    assert value == 99
    assert cache.stats.tag_errors == 1
    assert cache.stats.misses == 2      # refetched


def test_invalidate_all():
    cache, _ = make_cache()
    cache.read(0, 4)
    cache.invalidate_all()
    cache.read(0, 4)
    assert cache.stats.misses == 2


def test_disabled_cache_passes_through():
    cache, ram = make_cache()
    cache.enabled = False
    ram.write_raw(0x600, (42).to_bytes(4, "little"))
    value, stalls = cache.read(0x600, 4)
    assert value == 42
    assert cache.stats.misses == 0
    assert stalls == 1  # raw SRAM wait states


def test_flip_random_bit_on_empty_cache():
    cache, _ = make_cache()
    assert cache.flip_random_bit(DeterministicRng(1)) is False


def test_warm_prefetches():
    cache, _ = make_cache()
    cache.warm(0, 64)
    before = cache.stats.misses
    cache.read(0, 4)
    cache.read(48, 4)
    assert cache.stats.misses == before


def test_bad_geometry_rejected():
    ram = Sram(base=0, size=64)
    with pytest.raises(ValueError):
        Cache(ram, sets=3)
    with pytest.raises(ValueError):
        Cache(ram, line_bytes=24)
