"""Additional ISA coverage: registers, disassembler, IT blocks, helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    ISA_ARM,
    ISA_THUMB,
    ISA_THUMB2,
    Apsr,
    Condition,
    RegisterFile,
    add_with_carry,
    assemble,
    condition_passed,
    disassemble_image,
    format_listing,
    parse_register,
    register_name,
    shift_c,
    to_signed,
)
from repro.core import FLASH_BASE, build_cortexm3

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


# ----------------------------------------------------------------------
# register file and PSR
# ----------------------------------------------------------------------

def test_register_names_roundtrip():
    for num in range(16):
        assert parse_register(register_name(num)) == num
    assert parse_register("SP") == 13
    assert parse_register("r13") == 13
    with pytest.raises(ValueError):
        parse_register("r16")


def test_register_file_masks_to_32_bits():
    regs = RegisterFile()
    regs.write(0, 0x1_FFFF_FFFF)
    assert regs.read(0) == 0xFFFFFFFF
    with pytest.raises(ValueError):
        regs.read(16)


def test_apsr_pack_unpack():
    apsr = Apsr(n=True, z=False, c=True, v=False)
    word = apsr.to_word()
    assert Apsr.from_word(word) == apsr
    assert word == 0xA0000000


@given(WORDS)
@settings(max_examples=100)
def test_apsr_set_nz_property(value):
    apsr = Apsr()
    apsr.set_nz(value)
    assert apsr.n == bool(value & 0x80000000)
    assert apsr.z == (value & 0xFFFFFFFF == 0)


# ----------------------------------------------------------------------
# arithmetic helper properties
# ----------------------------------------------------------------------

@given(WORDS, WORDS, st.integers(min_value=0, max_value=1))
@settings(max_examples=300)
def test_add_with_carry_matches_python(x, y, carry):
    result, c, v = add_with_carry(x, y, carry)
    total = x + y + carry
    assert result == total & 0xFFFFFFFF
    assert c == (total > 0xFFFFFFFF)
    signed_total = to_signed(x) + to_signed(y) + carry
    assert v == (to_signed(result) != signed_total)


@given(WORDS, st.sampled_from(["LSL", "LSR", "ASR", "ROR"]),
       st.integers(min_value=0, max_value=64))
@settings(max_examples=300)
def test_shift_c_matches_python(value, kind, amount):
    result, _carry = shift_c(value, kind, amount, carry_in=False)
    if amount == 0:
        assert result == value
    elif kind == "LSL":
        assert result == (value << amount) & 0xFFFFFFFF if amount <= 32 else result == 0
    elif kind == "LSR":
        assert result == (value >> amount if amount < 32 else 0)
    elif kind == "ASR":
        assert result == (to_signed(value) >> min(amount, 31)) & 0xFFFFFFFF
    else:  # ROR
        k = amount % 32
        expected = ((value >> k) | (value << (32 - k))) & 0xFFFFFFFF if k else value
        assert result == expected


@given(WORDS)
@settings(max_examples=200)
def test_to_signed_involution(value):
    signed = to_signed(value)
    assert -(1 << 31) <= signed < (1 << 31)
    assert signed & 0xFFFFFFFF == value


# ----------------------------------------------------------------------
# condition codes: exhaustive against a reference predicate
# ----------------------------------------------------------------------

def reference_condition(cond, n, z, c, v):
    return {
        Condition.EQ: z, Condition.NE: not z,
        Condition.CS: c, Condition.CC: not c,
        Condition.MI: n, Condition.PL: not n,
        Condition.VS: v, Condition.VC: not v,
        Condition.HI: c and not z, Condition.LS: not c or z,
        Condition.GE: n == v, Condition.LT: n != v,
        Condition.GT: not z and n == v, Condition.LE: z or n != v,
        Condition.AL: True,
    }[cond]


def test_condition_codes_exhaustive():
    for cond in Condition:
        for flags in range(16):
            apsr = Apsr(n=bool(flags & 8), z=bool(flags & 4),
                        c=bool(flags & 2), v=bool(flags & 1))
            assert condition_passed(cond, apsr) == reference_condition(
                cond, apsr.n, apsr.z, apsr.c, apsr.v), (cond, flags)


def test_condition_inverse_pairs():
    for cond in Condition:
        if cond is Condition.AL:
            continue
        for flags in range(16):
            apsr = Apsr(n=bool(flags & 8), z=bool(flags & 4),
                        c=bool(flags & 2), v=bool(flags & 1))
            assert condition_passed(cond, apsr) != condition_passed(cond.inverse, apsr)


def test_al_has_no_inverse():
    with pytest.raises(ValueError):
        Condition.AL.inverse


def test_condition_parse_aliases():
    assert Condition.parse("hs") == Condition.CS
    assert Condition.parse("LO") == Condition.CC
    assert Condition.parse("") == Condition.AL
    with pytest.raises(ValueError):
        Condition.parse("xx")


# ----------------------------------------------------------------------
# disassembler listing
# ----------------------------------------------------------------------

def test_format_listing_contains_addresses_and_mnemonics():
    program = assemble("movs r0, #1\nadds r0, r0, #2\nbx lr",
                       ISA_THUMB, base=0x8000)
    text = format_listing(program.instructions)
    assert "00008000" in text
    assert "MOV" in text and "ADD" in text and "BX" in text


def test_disassemble_image_all_isas():
    for isa, source in ((ISA_ARM, "mov r0, #1\nbx lr"),
                        (ISA_THUMB, "movs r0, #1\nbx lr"),
                        (ISA_THUMB2, "movs r0, #1\nsdiv r1, r2, r3\nbx lr")):
        program = assemble(source, isa, base=0)
        decoded = disassemble_image(program.image(), isa)
        assert [i.mnemonic for i in decoded][:2] == \
            [program.instructions[0].mnemonic, program.instructions[1].mnemonic]


def test_disassemble_image_propagates_decoder_bugs(monkeypatch):
    """The sweep stops only on EncodingError (a genuine undecodable word);
    a decoder *bug* - any other exception - must propagate, not be
    silently treated as end-of-program."""
    import repro.isa.disasm as disasm_mod

    def buggy(*args, **kwargs):
        raise TypeError("decoder bug")

    monkeypatch.setattr(disasm_mod, "decode_arm", buggy)
    monkeypatch.setattr(disasm_mod, "decode_thumb", buggy)
    arm = assemble("mov r0, #1\nbx lr", ISA_ARM, base=0)
    with pytest.raises(TypeError, match="decoder bug"):
        disassemble_image(arm.image(), ISA_ARM)
    thumb = assemble("movs r0, #1\nbx lr", ISA_THUMB, base=0)
    with pytest.raises(TypeError, match="decoder bug"):
        disassemble_image(thumb.image(), ISA_THUMB)


# ----------------------------------------------------------------------
# IT block end-to-end behaviour
# ----------------------------------------------------------------------

def run_m3(source, *args):
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    return machine.call("f", *args)


def test_it_ttt_pattern():
    source = """
    f:
        cmp r0, #0
        ittt eq
        moveq r1, #1
        moveq r2, #2
        moveq r3, #3
        movs r0, #0
        adds r0, r0, r1
        adds r0, r0, r2
        adds r0, r0, r3
        bx lr
    """
    assert run_m3(source, 0) == 6


def test_it_tee_pattern():
    source = """
    f:
        movs r1, #0
        movs r2, #0
        movs r3, #0
        cmp r0, #5
        itee gt
        movgt r1, #1
        movle r2, #1
        movle r3, #1
        movs r0, #0
        adds r0, r0, r1
        lsls r2, r2, #1
        adds r0, r0, r2
        lsls r3, r3, #2
        adds r0, r0, r3
        bx lr
    """
    assert run_m3(source, 9) == 1       # only the T arm
    assert run_m3(source, 3) == 2 + 4   # both E arms


def test_skipped_instructions_cost_one_cycle():
    source = """
    f:
        cmp r0, #1
        itt eq
        addeq r0, r0, #1
        addeq r0, r0, #1
        bx lr
    """
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    taken = build_cortexm3(program)
    taken.call("f", 1)
    skipped = build_cortexm3(program)
    skipped.call("f", 0)
    assert skipped.cpu.instructions_skipped == 2
    assert skipped.cpu.cycles <= taken.cpu.cycles


# ----------------------------------------------------------------------
# assembler corner cases
# ----------------------------------------------------------------------

def test_two_operand_alias_forms():
    program = assemble("adds r0, r1\nmuls r2, r3", ISA_THUMB, base=0)
    add, mul = program.instructions
    assert (add.rd, add.rn, add.rm) == (0, 0, 1)
    assert mul.rd == 2


def test_hexadecimal_and_negative_immediates():
    program = assemble("ldr r0, [r1, #-4]\nmovw r2, #0xBEEF", ISA_THUMB2, base=0)
    ldr, movw = program.instructions
    assert ldr.mem.offset == -4
    assert movw.imm == 0xBEEF


def test_labels_on_same_line_as_instruction():
    program = assemble("start: movs r0, #1\n b start", ISA_THUMB, base=0)
    assert program.symbols["start"] == 0
    assert program.instructions[1].target == 0
