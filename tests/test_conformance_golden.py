"""Cross-engine conformance against a committed golden corpus.

The property tests in ``test_fastpath_properties.py`` prove the three
execution engines agree with *each other*; this corpus pins them all to
committed fingerprints (registers, flags, cycle counts, bus statistics,
scratch memory) for representative programs on all three cores, so future
engine work - trace superblocks, an ARM1156 fused icache path - cannot
silently drift the absolute scenario results either.

The corpus lives in ``tests/golden/conformance_<core>_<isa>.json``.  To
regenerate after an *intentional* timing-model change::

    PYTHONPATH=src python tests/test_conformance_golden.py

then review the diff like any other code change: every altered number is
a behaviour change across every campaign domain that runs on the cores.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.codegen import compile_program
from repro.core import FLASH_BASE, SRAM_BASE, build_machine
from repro.isa import assemble
from repro.sim.rng import DeterministicRng
from repro.workloads.kernels import WORKLOADS_BY_NAME

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (core, isa) pairs: all three cores, every ISA each one runs.
CONFIGS = (
    ("arm7", "arm"),
    ("arm7", "thumb"),
    ("m3", "thumb2"),
    ("arm1156", "thumb2"),
)

#: (label, fastpath, superblocks, trace_superblocks) - reference
#: interpreter, predecoded micro-op dispatch, superblock chaining, and
#: trace superblocks with loop fusion (see repro/core/cpu.py).
ENGINES = (
    ("reference", False, False, False),
    ("uops", True, False, False),
    ("superblock", True, True, False),
    ("trace", True, True, True),
)

#: AutoIndy kernels in the corpus: table-driven, bit-twiddling, and
#: control-heavy shapes (the golden seed/scale match the Table 1 harness).
KERNEL_PROGRAMS = ("ttsprk", "tblook", "canrdr", "bitmnp")
KERNEL_SEED = 2005
KERNEL_SCALE = 1

#: Hand-written programs covering engine-sensitive shapes the kernels
#: don't force: tight backward-branch loops (superblock re-entry and
#: trace-engine loop fusion), LDM/STM with write-back (specialised
#: predecode), IT predication (Thumb-2 only), IRQs landing on loop
#: back-edges, the ARM1156 cached fetch path, and Cortex-M3 literal-pool
#: loads under an MPU.
ASM_ALU_LOOP = """
main:
    push {r4, r5, r6, r7}
    movs r4, #0
    movs r5, #25
loop:
    adds r4, r4, r5
    eors r4, r4, r5
    lsls r6, r4, #1
    lsrs r6, r6, #3
    subs r5, r5, #1
    bne loop
    str r4, [r0, #0]
    ldr r6, [r0, #0]
    adds r0, r4, r6
    pop {r4, r5, r6, r7}
    bx lr
"""

ASM_BLOCK_COPY = """
main:
    push {r4, r5, r6, r7}
    movs r4, #17
    movs r5, #99
    movs r6, #3
    movs r7, #250
    mov r3, r0
    stm r3!, {r4, r5, r6, r7}
    mov r3, r0
    ldm r3!, {r5, r6}
    str r3, [r0, #16]
    adds r0, r5, r6
    pop {r4, r5, r6, r7}
    bx lr
"""

ASM_IT_BLOCKS = """
main:
    movs r4, #0
    cmp r1, r2
    itte ge
    addge r4, r4, #7
    addge r4, r4, #1
    addlt r4, r4, #3
    cmp r2, r1
    it lt
    addlt r4, r4, #16
    mov r0, r4
    bx lr
"""

ASM_COUNTED_LOOP = """
main:
    movs r2, #0
    movs r3, #200
loop:
    adds r2, r2, r3
    eors r2, r2, r3
    adds r2, r2, #7
    subs r3, r3, #1
    bne loop
    str r2, [r0, #0]
    ldr r3, [r0, #0]
    adds r0, r2, r3
    bx lr
"""

# The handler restores scratch registers with a plain pop and returns via
# bx lr: restart-safe on the ARM1156 (a pop-to-PC return could be
# abandoned mid-transfer after its unwind side effects) and a valid
# EXC_RETURN path on the M3.  The counter word sits inside the
# fingerprinted scratch window.
ASM_LOOP_IRQ_BACKEDGE = """
main:
    movs r0, #0
    movs r2, #0
loop:
    adds r2, r2, #3
    eors r2, r2, r0
    adds r0, r0, #1
    cmp r0, #150
    bne loop
    mov r0, r2
    bx lr
handler:
    push {r1, r2}
    ldr r1, =0x20000030
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    pop {r1, r2}
    bx lr
"""

#: a loop body long enough to span several 32-byte icache lines, so the
#: ARM1156's cached-fetch inline path sees hits, sequential misses, and
#: the back-edge's non-sequential re-fetch every iteration
ASM_ICACHE_LOOP = """
main:
    movs r0, #0
    movs r2, #0
    movs r3, #7
loop:
    adds r2, r2, r3
    eors r2, r2, r0
    lsls r4, r2, #3
    lsrs r5, r2, #2
    adds r4, r4, r5
    subs r4, r4, #1
    ands r2, r2, r4
    orrs r2, r2, r3
    adds r2, r2, #13
    rev r5, r2
    eors r2, r2, r5
    uxth r2, r2
    adds r0, r0, #1
    cmp r0, #90
    bne loop
    mov r0, r2
    bx lr
"""

#: literal-pool loads (constant flash addresses) inside a hot loop, with
#: SRAM traffic alongside - run on the M3 under a configured MPU, every
#: access pays the protection check, fused superblocks included
ASM_LITERAL_MPU_LOOP = """
main:
    movs r2, #0
    movs r4, #0
loop:
    ldr r5, =0x12345678
    adds r4, r4, r5
    ldr r6, =0xCAFE0000
    eors r4, r4, r6
    str r4, [r0, #8]
    ldr r7, [r0, #8]
    adds r4, r4, r7
    adds r2, r2, #1
    cmp r2, #80
    bne loop
    mov r0, r4
    bx lr
"""


def _golden_mpu():
    from repro.core.machines import DEFAULT_FLASH_SIZE, DEFAULT_SRAM_SIZE
    from repro.memory.mpu import Mpu

    mpu = Mpu(num_regions=8, min_region_size=4096, background_perms="none")
    mpu.configure(0, FLASH_BASE, DEFAULT_FLASH_SIZE, perms="ro")
    mpu.configure(1, SRAM_BASE, DEFAULT_SRAM_SIZE, perms="rw")
    return mpu


ASM_PROGRAMS: dict[str, dict] = {
    # name -> source, extra args after the scratch pointer, isas, and
    # optionally: cores (restrict configs), irqs ((number, cycle) pairs
    # raised on the core's controller against the "handler" symbol), and
    # mpu (factory for a machine-kwarg MPU)
    "alu_loop": {"source": ASM_ALU_LOOP, "args": (),
                 "isas": ("arm", "thumb", "thumb2")},
    "block_copy": {"source": ASM_BLOCK_COPY, "args": (),
                   "isas": ("arm", "thumb", "thumb2")},
    "it_blocks": {"source": ASM_IT_BLOCKS, "args": (9, 4),
                  "isas": ("thumb2",)},
    "counted_loop": {"source": ASM_COUNTED_LOOP, "args": (),
                     "isas": ("arm", "thumb", "thumb2")},
    # assert cycles 60/66 are exact back-edge execution cycles on the M3
    # timeline (the loop branch runs every 6 cycles from 6), and land
    # mid-loop on the other cores; 800 sits in the storm-free tail - the
    # trace engine's fused loop must bail out of its generated while-loop
    # at exactly these points
    "loop_irq_backedge": {"source": ASM_LOOP_IRQ_BACKEDGE, "args": (),
                          "isas": ("arm", "thumb", "thumb2"),
                          "irqs": ((1, 60), (2, 66), (3, 800))},
    "icache_loop": {"source": ASM_ICACHE_LOOP, "args": (),
                    "isas": ("thumb2",), "cores": ("arm1156",)},
    "literal_mpu_loop": {"source": ASM_LITERAL_MPU_LOOP, "args": (),
                         "isas": ("thumb2",), "cores": ("m3",),
                         "mpu": _golden_mpu},
}

SCRATCH_BYTES = 64


def golden_path(core: str, isa: str) -> Path:
    return GOLDEN_DIR / f"conformance_{core}_{isa}.json"


def _fingerprint(machine, result: int) -> dict:
    cpu = machine.cpu
    return {
        "result": result,
        "regs": list(cpu.regs.snapshot()),
        "apsr": str(cpu.apsr),
        "cycles": cpu.cycles,
        "instructions": cpu.instructions_executed,
        "skipped": cpu.instructions_skipped,
        "branches": cpu.branches_taken,
        "bus_reads": machine.bus.reads,
        "bus_writes": machine.bus.writes,
        "bus_stalls": machine.bus.total_stalls,
        "sram": bytes(machine.sram.data[:SCRATCH_BYTES]).hex(),
    }


def _set_engine(machine, fastpath: bool, superblocks: bool,
                trace_superblocks: bool) -> None:
    machine.cpu.fastpath = fastpath
    machine.cpu.superblocks = superblocks
    machine.cpu.trace_superblocks = trace_superblocks


def _run_kernel(core: str, isa: str, name: str, fastpath: bool,
                superblocks: bool, trace_superblocks: bool) -> dict:
    workload = WORKLOADS_BY_NAME[name]
    fn = workload.build()
    program = compile_program([fn], isa, base=FLASH_BASE)
    machine = build_machine(core, program)
    _set_engine(machine, fastpath, superblocks, trace_superblocks)
    prepared = workload.make_input(DeterministicRng(KERNEL_SEED), KERNEL_SCALE)
    machine.load_data(SRAM_BASE, prepared.data)
    result = machine.call(fn.name, *prepared.args(SRAM_BASE))
    assert result == workload.reference(prepared.data, *prepared.args(0))
    return _fingerprint(machine, result)


def _run_asm(core: str, isa: str, name: str, fastpath: bool,
             superblocks: bool, trace_superblocks: bool) -> dict:
    spec = ASM_PROGRAMS[name]
    program = assemble(spec["source"], isa, base=FLASH_BASE)
    kwargs = {}
    if "mpu" in spec:
        kwargs["mpu"] = spec["mpu"]()
    machine = build_machine(core, program, **kwargs)
    _set_engine(machine, fastpath, superblocks, trace_superblocks)
    for number, cycle in spec.get("irqs", ()):
        controller = getattr(machine.cpu, "nvic", None)
        if controller is None:
            controller = machine.cpu.vic
        controller.raise_irq(number, handler=program.symbols["handler"],
                             at_cycle=cycle)
    result = machine.call("main", SRAM_BASE, *spec["args"],
                          max_instructions=100_000)
    return _fingerprint(machine, result)


def corpus_programs(core: str, isa: str) -> list[str]:
    names = list(KERNEL_PROGRAMS)
    names += [name for name, spec in ASM_PROGRAMS.items()
              if isa in spec["isas"] and core in spec.get("cores", (core,))]
    return names


def compute_fingerprints(core: str, isa: str, fastpath: bool,
                         superblocks: bool, trace_superblocks: bool) -> dict:
    fingerprints = {}
    for name in corpus_programs(core, isa):
        if name in ASM_PROGRAMS:
            fingerprints[name] = _run_asm(core, isa, name, fastpath,
                                          superblocks, trace_superblocks)
        else:
            fingerprints[name] = _run_kernel(core, isa, name, fastpath,
                                             superblocks, trace_superblocks)
    return fingerprints


@pytest.fixture(scope="module")
def golden() -> dict:
    corpora = {}
    for core, isa in CONFIGS:
        path = golden_path(core, isa)
        if not path.exists():
            pytest.fail(
                f"missing golden corpus {path}; regenerate with "
                f"'PYTHONPATH=src python tests/test_conformance_golden.py'")
        with open(path, encoding="utf-8") as stream:
            corpora[(core, isa)] = json.load(stream)
    return corpora


@pytest.mark.parametrize("engine,fastpath,superblocks,trace_superblocks",
                         ENGINES, ids=[e[0] for e in ENGINES])
@pytest.mark.parametrize("core,isa", CONFIGS,
                         ids=[f"{c}-{i}" for c, i in CONFIGS])
def test_engine_matches_golden_corpus(golden, core, isa, engine, fastpath,
                                      superblocks, trace_superblocks):
    """Every engine on every core must reproduce the committed corpus."""
    expected = golden[(core, isa)]["programs"]
    computed = compute_fingerprints(core, isa, fastpath, superblocks,
                                    trace_superblocks)
    assert sorted(computed) == sorted(expected), (
        f"{core}/{isa}: corpus program set changed; regenerate the corpus")
    for name, fingerprint in computed.items():
        drift = {key: (fingerprint[key], expected[name][key])
                 for key in fingerprint if fingerprint[key] != expected[name][key]}
        assert fingerprint == expected[name], (
            f"{engine} engine drifted from golden corpus on "
            f"{core}/{isa}/{name}: {drift}")


def test_corpus_covers_all_cores_and_isas(golden):
    """The corpus spans all three cores and all three ISAs."""
    cores = {core for core, _ in golden}
    isas = {isa for _, isa in golden}
    assert cores == {"arm7", "m3", "arm1156"}
    assert isas == {"arm", "thumb", "thumb2"}
    for (core, isa), corpus in golden.items():
        assert sorted(corpus["programs"]) == sorted(corpus_programs(core, isa))


def _corpus_instructions(core: str, isa: str):
    """Every (machine, instruction) the golden corpus executes on a core."""
    for name in corpus_programs(core, isa):
        if name in ASM_PROGRAMS:
            spec = ASM_PROGRAMS[name]
            program = assemble(spec["source"], isa, base=FLASH_BASE)
            kwargs = {"mpu": spec["mpu"]()} if "mpu" in spec else {}
        else:
            fn = WORKLOADS_BY_NAME[name].build()
            program = compile_program([fn], isa, base=FLASH_BASE)
            kwargs = {}
        machine = build_machine(core, program, **kwargs)
        for ins in program.instructions:
            yield machine, ins


@pytest.mark.parametrize("core,isa", CONFIGS,
                         ids=[f"{c}-{i}" for c, i in CONFIGS])
def test_block_cap_covers_golden_corpus(core, isa):
    """The ``_block_cycle_cap`` protocol covers the whole golden corpus:
    every instruction's compiled cycle model either declares its static
    taken-path cost (``static_taken``), or - for the few dynamic models -
    its worst outcome stays within the core's declared
    ``WORST_DYNAMIC_CYCLES``.  A new dynamic cycle model without a raised
    declaration fails here before it can under-cap a fused block."""
    from repro.isa.semantics import Outcome

    static_seen = 0
    dynamic_mnemonics = set()
    for machine, ins in _corpus_instructions(core, isa):
        cpu = machine.cpu
        cycle_fn = cpu.compile_cycles(ins)
        if cycle_fn is not None and getattr(cycle_fn, "static_taken", None) is not None:
            static_seen += 1
            continue
        dynamic_mnemonics.add(ins.mnemonic)
        regs = len(ins.reglist) if getattr(ins, "reglist", None) else 0
        worst = max(
            cpu.instruction_cycles(ins, Outcome(
                taken=taken, regs_transferred=regs, div_early_exit=width))
            for taken in (False, True)
            for width in range(33))
        assert worst <= cpu.WORST_DYNAMIC_CYCLES, (
            f"{core}/{isa}: dynamic cycle model for {ins.mnemonic} can cost "
            f"{worst} cycles but WORST_DYNAMIC_CYCLES declares only "
            f"{cpu.WORST_DYNAMIC_CYCLES}")
        if cycle_fn is not None:
            closure_worst = max(
                cycle_fn(Outcome(taken=taken, regs_transferred=regs,
                                 div_early_exit=width))
                for taken in (False, True)
                for width in range(33))
            assert closure_worst <= cpu.WORST_DYNAMIC_CYCLES
    assert static_seen > 0, f"{core}/{isa}: corpus exercised no static models"
    # only the early-exit dividers lack a static declaration today; any
    # new dynamic model must raise the core's declared worst case too
    assert dynamic_mnemonics <= {"SDIV", "UDIV"}, (
        f"{core}/{isa}: unexpected dynamic cycle models {dynamic_mnemonics}")


def regenerate() -> None:
    """Recompute the corpus from the reference interpreter and write it."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    for core, isa in CONFIGS:
        payload = {
            "_comment": (
                "Golden cross-engine conformance fingerprints; regenerate "
                "with 'PYTHONPATH=src python tests/test_conformance_golden.py' "
                "and review every changed number as a behaviour change."),
            "core": core,
            "isa": isa,
            "seed": KERNEL_SEED,
            "scale": KERNEL_SCALE,
            "programs": compute_fingerprints(core, isa, fastpath=False,
                                             superblocks=False,
                                             trace_superblocks=False),
        }
        path = golden_path(core, isa)
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=1, sort_keys=True)
            stream.write("\n")
        print(f"wrote {path} ({len(payload['programs'])} programs)")


if __name__ == "__main__":
    regenerate()
