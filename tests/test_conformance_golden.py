"""Cross-engine conformance against a committed golden corpus.

The property tests in ``test_fastpath_properties.py`` prove the three
execution engines agree with *each other*; this corpus pins them all to
committed fingerprints (registers, flags, cycle counts, bus statistics,
scratch memory) for representative programs on all three cores, so future
engine work - trace superblocks, an ARM1156 fused icache path - cannot
silently drift the absolute scenario results either.

The corpus lives in ``tests/golden/conformance_<core>_<isa>.json``.  To
regenerate after an *intentional* timing-model change::

    PYTHONPATH=src python tests/test_conformance_golden.py

then review the diff like any other code change: every altered number is
a behaviour change across every campaign domain that runs on the cores.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.codegen import compile_program
from repro.core import FLASH_BASE, SRAM_BASE, build_machine
from repro.isa import assemble
from repro.sim.rng import DeterministicRng
from repro.workloads.kernels import WORKLOADS_BY_NAME

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (core, isa) pairs: all three cores, every ISA each one runs.
CONFIGS = (
    ("arm7", "arm"),
    ("arm7", "thumb"),
    ("m3", "thumb2"),
    ("arm1156", "thumb2"),
)

#: (label, fastpath, superblocks) - reference interpreter, predecoded
#: micro-op dispatch, superblock chaining (see repro/core/cpu.py).
ENGINES = (
    ("reference", False, False),
    ("uops", True, False),
    ("superblock", True, True),
)

#: AutoIndy kernels in the corpus: table-driven, bit-twiddling, and
#: control-heavy shapes (the golden seed/scale match the Table 1 harness).
KERNEL_PROGRAMS = ("ttsprk", "tblook", "canrdr", "bitmnp")
KERNEL_SEED = 2005
KERNEL_SCALE = 1

#: Hand-written programs covering engine-sensitive shapes the kernels
#: don't force: tight backward-branch loops (superblock re-entry), LDM/STM
#:  with write-back (specialised predecode), IT predication (Thumb-2 only).
ASM_ALU_LOOP = """
main:
    push {r4, r5, r6, r7}
    movs r4, #0
    movs r5, #25
loop:
    adds r4, r4, r5
    eors r4, r4, r5
    lsls r6, r4, #1
    lsrs r6, r6, #3
    subs r5, r5, #1
    bne loop
    str r4, [r0, #0]
    ldr r6, [r0, #0]
    adds r0, r4, r6
    pop {r4, r5, r6, r7}
    bx lr
"""

ASM_BLOCK_COPY = """
main:
    push {r4, r5, r6, r7}
    movs r4, #17
    movs r5, #99
    movs r6, #3
    movs r7, #250
    mov r3, r0
    stm r3!, {r4, r5, r6, r7}
    mov r3, r0
    ldm r3!, {r5, r6}
    str r3, [r0, #16]
    adds r0, r5, r6
    pop {r4, r5, r6, r7}
    bx lr
"""

ASM_IT_BLOCKS = """
main:
    movs r4, #0
    cmp r1, r2
    itte ge
    addge r4, r4, #7
    addge r4, r4, #1
    addlt r4, r4, #3
    cmp r2, r1
    it lt
    addlt r4, r4, #16
    mov r0, r4
    bx lr
"""

ASM_PROGRAMS: dict[str, tuple[str, tuple[int, ...], tuple[str, ...]]] = {
    # name -> (source, extra args after the scratch pointer, isas)
    "alu_loop": (ASM_ALU_LOOP, (), ("arm", "thumb", "thumb2")),
    "block_copy": (ASM_BLOCK_COPY, (), ("arm", "thumb", "thumb2")),
    "it_blocks": (ASM_IT_BLOCKS, (9, 4), ("thumb2",)),
}

SCRATCH_BYTES = 64


def golden_path(core: str, isa: str) -> Path:
    return GOLDEN_DIR / f"conformance_{core}_{isa}.json"


def _fingerprint(machine, result: int) -> dict:
    cpu = machine.cpu
    return {
        "result": result,
        "regs": list(cpu.regs.snapshot()),
        "apsr": str(cpu.apsr),
        "cycles": cpu.cycles,
        "instructions": cpu.instructions_executed,
        "skipped": cpu.instructions_skipped,
        "branches": cpu.branches_taken,
        "bus_reads": machine.bus.reads,
        "bus_writes": machine.bus.writes,
        "bus_stalls": machine.bus.total_stalls,
        "sram": bytes(machine.sram.data[:SCRATCH_BYTES]).hex(),
    }


def _run_kernel(core: str, isa: str, name: str,
                fastpath: bool, superblocks: bool) -> dict:
    workload = WORKLOADS_BY_NAME[name]
    fn = workload.build()
    program = compile_program([fn], isa, base=FLASH_BASE)
    machine = build_machine(core, program)
    machine.cpu.fastpath = fastpath
    machine.cpu.superblocks = superblocks
    prepared = workload.make_input(DeterministicRng(KERNEL_SEED), KERNEL_SCALE)
    machine.load_data(SRAM_BASE, prepared.data)
    result = machine.call(fn.name, *prepared.args(SRAM_BASE))
    assert result == workload.reference(prepared.data, *prepared.args(0))
    return _fingerprint(machine, result)


def _run_asm(core: str, isa: str, name: str,
             fastpath: bool, superblocks: bool) -> dict:
    source, extra_args, _ = ASM_PROGRAMS[name]
    program = assemble(source, isa, base=FLASH_BASE)
    machine = build_machine(core, program)
    machine.cpu.fastpath = fastpath
    machine.cpu.superblocks = superblocks
    result = machine.call("main", SRAM_BASE, *extra_args,
                          max_instructions=100_000)
    return _fingerprint(machine, result)


def corpus_programs(core: str, isa: str) -> list[str]:
    names = list(KERNEL_PROGRAMS)
    names += [name for name, (_, _, isas) in ASM_PROGRAMS.items()
              if isa in isas]
    return names


def compute_fingerprints(core: str, isa: str,
                         fastpath: bool, superblocks: bool) -> dict:
    fingerprints = {}
    for name in corpus_programs(core, isa):
        if name in ASM_PROGRAMS:
            fingerprints[name] = _run_asm(core, isa, name, fastpath, superblocks)
        else:
            fingerprints[name] = _run_kernel(core, isa, name,
                                             fastpath, superblocks)
    return fingerprints


@pytest.fixture(scope="module")
def golden() -> dict:
    corpora = {}
    for core, isa in CONFIGS:
        path = golden_path(core, isa)
        if not path.exists():
            pytest.fail(
                f"missing golden corpus {path}; regenerate with "
                f"'PYTHONPATH=src python tests/test_conformance_golden.py'")
        with open(path, encoding="utf-8") as stream:
            corpora[(core, isa)] = json.load(stream)
    return corpora


@pytest.mark.parametrize("engine,fastpath,superblocks", ENGINES,
                         ids=[e[0] for e in ENGINES])
@pytest.mark.parametrize("core,isa", CONFIGS,
                         ids=[f"{c}-{i}" for c, i in CONFIGS])
def test_engine_matches_golden_corpus(golden, core, isa,
                                      engine, fastpath, superblocks):
    """Every engine on every core must reproduce the committed corpus."""
    expected = golden[(core, isa)]["programs"]
    computed = compute_fingerprints(core, isa, fastpath, superblocks)
    assert sorted(computed) == sorted(expected), (
        f"{core}/{isa}: corpus program set changed; regenerate the corpus")
    for name, fingerprint in computed.items():
        drift = {key: (fingerprint[key], expected[name][key])
                 for key in fingerprint if fingerprint[key] != expected[name][key]}
        assert fingerprint == expected[name], (
            f"{engine} engine drifted from golden corpus on "
            f"{core}/{isa}/{name}: {drift}")


def test_corpus_covers_all_cores_and_isas(golden):
    """The corpus spans all three cores and all three ISAs."""
    cores = {core for core, _ in golden}
    isas = {isa for _, isa in golden}
    assert cores == {"arm7", "m3", "arm1156"}
    assert isas == {"arm", "thumb", "thumb2"}
    for (core, isa), corpus in golden.items():
        assert sorted(corpus["programs"]) == sorted(corpus_programs(core, isa))


def regenerate() -> None:
    """Recompute the corpus from the reference interpreter and write it."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    for core, isa in CONFIGS:
        payload = {
            "_comment": (
                "Golden cross-engine conformance fingerprints; regenerate "
                "with 'PYTHONPATH=src python tests/test_conformance_golden.py' "
                "and review every changed number as a behaviour change."),
            "core": core,
            "isa": isa,
            "seed": KERNEL_SEED,
            "scale": KERNEL_SCALE,
            "programs": compute_fingerprints(core, isa,
                                             fastpath=False, superblocks=False),
        }
        path = golden_path(core, isa)
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=1, sort_keys=True)
            stream.write("\n")
        print(f"wrote {path} ({len(payload['programs'])} programs)")


if __name__ == "__main__":
    regenerate()
