"""Unit tests for instruction execution semantics."""

import pytest

from repro.isa import Condition, Instruction, Mem, Shift, execute, instr
from repro.isa.registers import PC


def run(cpu, ins, at=0x1000, size=None):
    ins.address = at
    if size is not None:
        ins.size = size
    cpu.current_address = at
    cpu.current_size = ins.size
    return execute(cpu, ins)


# ----------------------------------------------------------------------
# moves and arithmetic
# ----------------------------------------------------------------------

def test_mov_immediate(cpu):
    run(cpu, instr("MOV", rd=0, imm=42))
    assert cpu.regs.read(0) == 42


def test_mov_register_with_shift(cpu):
    cpu.regs.write(1, 0b1010)
    run(cpu, instr("MOV", rd=0, rm=1, shift=Shift("LSL", 4)))
    assert cpu.regs.read(0) == 0b10100000


def test_mvn(cpu):
    cpu.regs.write(1, 0x0F0F0F0F)
    run(cpu, instr("MVN", rd=0, rm=1))
    assert cpu.regs.read(0) == 0xF0F0F0F0


def test_movs_sets_nz(cpu):
    run(cpu, instr("MOV", rd=0, imm=0, setflags=True))
    assert cpu.apsr.z and not cpu.apsr.n
    cpu.regs.write(1, 0x80000000)
    run(cpu, instr("MOV", rd=0, rm=1, setflags=True))
    assert cpu.apsr.n and not cpu.apsr.z


def test_movw_movt_build_32bit_constant(cpu):
    run(cpu, instr("MOVW", rd=3, imm=0xBEEF))
    run(cpu, instr("MOVT", rd=3, imm=0xDEAD))
    assert cpu.regs.read(3) == 0xDEADBEEF


def test_movw_clears_top_half(cpu):
    cpu.regs.write(3, 0xFFFFFFFF)
    run(cpu, instr("MOVW", rd=3, imm=0x1234))
    assert cpu.regs.read(3) == 0x1234


def test_add_sets_carry_and_overflow(cpu):
    cpu.regs.write(1, 0xFFFFFFFF)
    run(cpu, instr("ADD", rd=0, rn=1, imm=1, setflags=True))
    assert cpu.regs.read(0) == 0
    assert cpu.apsr.c and cpu.apsr.z and not cpu.apsr.v
    cpu.regs.write(1, 0x7FFFFFFF)
    run(cpu, instr("ADD", rd=0, rn=1, imm=1, setflags=True))
    assert cpu.regs.read(0) == 0x80000000
    assert cpu.apsr.v and cpu.apsr.n and not cpu.apsr.c


def test_adc_uses_carry(cpu):
    cpu.apsr.c = True
    cpu.regs.write(1, 5)
    run(cpu, instr("ADC", rd=0, rn=1, imm=10))
    assert cpu.regs.read(0) == 16


def test_sub_borrow_semantics(cpu):
    cpu.regs.write(1, 5)
    run(cpu, instr("SUB", rd=0, rn=1, imm=3, setflags=True))
    assert cpu.regs.read(0) == 2
    assert cpu.apsr.c  # no borrow -> C set
    run(cpu, instr("SUB", rd=0, rn=1, imm=7, setflags=True))
    assert cpu.regs.read(0) == 0xFFFFFFFE
    assert not cpu.apsr.c  # borrow -> C clear


def test_sbc_with_borrow(cpu):
    cpu.apsr.c = False  # borrow pending
    cpu.regs.write(1, 10)
    run(cpu, instr("SBC", rd=0, rn=1, imm=3))
    assert cpu.regs.read(0) == 6


def test_rsb_reverse_subtract(cpu):
    cpu.regs.write(1, 3)
    run(cpu, instr("RSB", rd=0, rn=1, imm=10))
    assert cpu.regs.read(0) == 7


def test_rsb_zero_negates(cpu):
    cpu.regs.write(1, 5)
    run(cpu, instr("RSB", rd=0, rn=1, imm=0))
    assert cpu.regs.read(0) == 0xFFFFFFFB


# ----------------------------------------------------------------------
# logic and shifts
# ----------------------------------------------------------------------

def test_logic_ops(cpu):
    cpu.regs.write(1, 0b1100)
    cpu.regs.write(2, 0b1010)
    for mnemonic, expected in (("AND", 0b1000), ("ORR", 0b1110),
                               ("EOR", 0b0110), ("BIC", 0b0100)):
        run(cpu, instr(mnemonic, rd=0, rn=1, rm=2))
        assert cpu.regs.read(0) == expected, mnemonic


def test_orn(cpu):
    cpu.regs.write(1, 0)
    cpu.regs.write(2, 0xFFFFFFF0)
    run(cpu, instr("ORN", rd=0, rn=1, rm=2))
    assert cpu.regs.read(0) == 0xF


def test_logical_shift_carry_out(cpu):
    cpu.regs.write(1, 0x80000000)
    run(cpu, instr("MOV", rd=0, rm=1, shift=Shift("LSL", 1), setflags=True))
    assert cpu.regs.read(0) == 0
    assert cpu.apsr.c


def test_standalone_shifts_immediate(cpu):
    cpu.regs.write(1, 0x80000001)
    run(cpu, instr("LSR", rd=0, rn=1, imm=1, setflags=True))
    assert cpu.regs.read(0) == 0x40000000
    assert cpu.apsr.c
    run(cpu, instr("ASR", rd=0, rn=1, imm=1))
    assert cpu.regs.read(0) == 0xC0000000
    run(cpu, instr("ROR", rd=0, rn=1, imm=4))
    assert cpu.regs.read(0) == 0x18000000


def test_shift_by_register_amount(cpu):
    cpu.regs.write(1, 1)
    cpu.regs.write(2, 8)
    run(cpu, instr("LSL", rd=0, rn=1, rm=2))
    assert cpu.regs.read(0) == 0x100


def test_shift_by_32_and_beyond(cpu):
    cpu.regs.write(1, 0xFFFFFFFF)
    cpu.regs.write(2, 32)
    run(cpu, instr("LSR", rd=0, rn=1, rm=2, setflags=True))
    assert cpu.regs.read(0) == 0
    assert cpu.apsr.c  # bit 31 out
    cpu.regs.write(2, 33)
    run(cpu, instr("LSR", rd=0, rn=1, rm=2, setflags=True))
    assert cpu.regs.read(0) == 0
    assert not cpu.apsr.c


def test_asr_sign_fill(cpu):
    cpu.regs.write(1, 0x80000000)
    cpu.regs.write(2, 40)
    run(cpu, instr("ASR", rd=0, rn=1, rm=2))
    assert cpu.regs.read(0) == 0xFFFFFFFF


# ----------------------------------------------------------------------
# compares
# ----------------------------------------------------------------------

def test_cmp_equal_sets_z(cpu):
    cpu.regs.write(1, 7)
    run(cpu, instr("CMP", rn=1, imm=7))
    assert cpu.apsr.z and cpu.apsr.c


def test_cmp_signed_less(cpu):
    cpu.regs.write(1, 0xFFFFFFFE)  # -2
    run(cpu, instr("CMP", rn=1, imm=3))
    # -2 < 3 signed: N != V
    assert cpu.apsr.n != cpu.apsr.v


def test_cmn_tst_teq(cpu):
    cpu.regs.write(1, 1)
    cpu.regs.write(2, 0xFFFFFFFF)
    run(cpu, instr("CMN", rn=1, rm=2))
    assert cpu.apsr.z
    cpu.regs.write(3, 0b1000)
    run(cpu, instr("TST", rn=3, imm=0b0111))
    assert cpu.apsr.z
    run(cpu, instr("TEQ", rn=3, imm=0b1000))
    assert cpu.apsr.z


# ----------------------------------------------------------------------
# multiply and divide
# ----------------------------------------------------------------------

def test_mul(cpu):
    cpu.regs.write(1, 7)
    cpu.regs.write(2, 6)
    run(cpu, instr("MUL", rd=0, rn=1, rm=2))
    assert cpu.regs.read(0) == 42


def test_mla_mls(cpu):
    cpu.regs.write(1, 3)
    cpu.regs.write(2, 4)
    cpu.regs.write(3, 100)
    run(cpu, instr("MLA", rd=0, rn=1, rm=2, ra=3))
    assert cpu.regs.read(0) == 112
    run(cpu, instr("MLS", rd=0, rn=1, rm=2, ra=3))
    assert cpu.regs.read(0) == 88


def test_umull(cpu):
    cpu.regs.write(1, 0xFFFFFFFF)
    cpu.regs.write(2, 2)
    run(cpu, instr("UMULL", rd=0, ra=3, rn=1, rm=2))
    assert cpu.regs.read(0) == 0xFFFFFFFE  # lo
    assert cpu.regs.read(3) == 1           # hi


def test_smull(cpu):
    cpu.regs.write(1, 0xFFFFFFFF)  # -1
    cpu.regs.write(2, 5)
    run(cpu, instr("SMULL", rd=0, ra=3, rn=1, rm=2))
    assert cpu.regs.read(0) == 0xFFFFFFFB
    assert cpu.regs.read(3) == 0xFFFFFFFF


def test_udiv_sdiv(cpu):
    cpu.regs.write(1, 100)
    cpu.regs.write(2, 7)
    run(cpu, instr("UDIV", rd=0, rn=1, rm=2))
    assert cpu.regs.read(0) == 14
    cpu.regs.write(1, 0xFFFFFF9C)  # -100
    run(cpu, instr("SDIV", rd=0, rn=1, rm=2))
    assert cpu.regs.read(0) == 0xFFFFFFF2  # -14 (truncated toward zero)


def test_divide_by_zero_yields_zero(cpu):
    cpu.regs.write(1, 99)
    cpu.regs.write(2, 0)
    run(cpu, instr("UDIV", rd=0, rn=1, rm=2))
    assert cpu.regs.read(0) == 0
    run(cpu, instr("SDIV", rd=0, rn=1, rm=2))
    assert cpu.regs.read(0) == 0


def test_sdiv_int_min_by_minus_one(cpu):
    cpu.regs.write(1, 0x80000000)
    cpu.regs.write(2, 0xFFFFFFFF)
    run(cpu, instr("SDIV", rd=0, rn=1, rm=2))
    assert cpu.regs.read(0) == 0x80000000  # wraps


# ----------------------------------------------------------------------
# bit manipulation (the paper's section 2.1 instructions)
# ----------------------------------------------------------------------

def test_clz(cpu):
    cpu.regs.write(1, 0x00010000)
    run(cpu, instr("CLZ", rd=0, rm=1))
    assert cpu.regs.read(0) == 15
    cpu.regs.write(1, 0)
    run(cpu, instr("CLZ", rd=0, rm=1))
    assert cpu.regs.read(0) == 32


def test_rbit(cpu):
    cpu.regs.write(1, 0x80000001)
    run(cpu, instr("RBIT", rd=0, rm=1))
    assert cpu.regs.read(0) == 0x80000001
    cpu.regs.write(1, 0x00000001)
    run(cpu, instr("RBIT", rd=0, rm=1))
    assert cpu.regs.read(0) == 0x80000000


def test_rev_rev16(cpu):
    cpu.regs.write(1, 0x11223344)
    run(cpu, instr("REV", rd=0, rm=1))
    assert cpu.regs.read(0) == 0x44332211
    run(cpu, instr("REV16", rd=0, rm=1))
    assert cpu.regs.read(0) == 0x22114433


def test_extends(cpu):
    cpu.regs.write(1, 0x000000FF)
    run(cpu, instr("SXTB", rd=0, rm=1))
    assert cpu.regs.read(0) == 0xFFFFFFFF
    run(cpu, instr("UXTB", rd=0, rm=1))
    assert cpu.regs.read(0) == 0xFF
    cpu.regs.write(1, 0x00008000)
    run(cpu, instr("SXTH", rd=0, rm=1))
    assert cpu.regs.read(0) == 0xFFFF8000
    run(cpu, instr("UXTH", rd=0, rm=1))
    assert cpu.regs.read(0) == 0x8000


def test_bfi_inserts_field(cpu):
    cpu.regs.write(0, 0xFFFFFFFF)
    cpu.regs.write(1, 0b101)
    run(cpu, instr("BFI", rd=0, rn=1, bf_lsb=4, bf_width=3))
    assert cpu.regs.read(0) == 0xFFFFFFDF


def test_bfc_clears_field(cpu):
    cpu.regs.write(0, 0xFFFFFFFF)
    run(cpu, instr("BFC", rd=0, bf_lsb=8, bf_width=8))
    assert cpu.regs.read(0) == 0xFFFF00FF


def test_ubfx_sbfx(cpu):
    cpu.regs.write(1, 0x00000F80)
    run(cpu, instr("UBFX", rd=0, rn=1, bf_lsb=7, bf_width=5))
    assert cpu.regs.read(0) == 0x1F
    run(cpu, instr("SBFX", rd=0, rn=1, bf_lsb=7, bf_width=5))
    assert cpu.regs.read(0) == 0xFFFFFFFF


# ----------------------------------------------------------------------
# memory
# ----------------------------------------------------------------------

def test_ldr_str_roundtrip(cpu):
    cpu.regs.write(1, 0x100)
    cpu.regs.write(2, 0xCAFEBABE)
    run(cpu, instr("STR", rd=2, mem=Mem(rn=1, offset=8)))
    run(cpu, instr("LDR", rd=3, mem=Mem(rn=1, offset=8)))
    assert cpu.regs.read(3) == 0xCAFEBABE


def test_byte_and_half_access(cpu):
    cpu.regs.write(1, 0x200)
    cpu.regs.write(2, 0x1234ABCD)
    run(cpu, instr("STRB", rd=2, mem=Mem(rn=1)))
    assert cpu.read(0x200, 1) == 0xCD
    run(cpu, instr("STRH", rd=2, mem=Mem(rn=1, offset=2)))
    assert cpu.read(0x202, 2) == 0xABCD
    run(cpu, instr("LDRB", rd=3, mem=Mem(rn=1)))
    assert cpu.regs.read(3) == 0xCD


def test_signed_loads(cpu):
    cpu.write(0x300, 1, 0x80)
    cpu.write(0x302, 2, 0x8000)
    cpu.regs.write(1, 0x300)
    run(cpu, instr("LDRSB", rd=0, mem=Mem(rn=1)))
    assert cpu.regs.read(0) == 0xFFFFFF80
    run(cpu, instr("LDRSH", rd=0, mem=Mem(rn=1, offset=2)))
    assert cpu.regs.read(0) == 0xFFFF8000


def test_register_offset_with_shift(cpu):
    cpu.regs.write(1, 0x400)
    cpu.regs.write(2, 3)
    cpu.write(0x40C, 4, 77)
    run(cpu, instr("LDR", rd=0, mem=Mem(rn=1, rm=2, shift=2)))
    assert cpu.regs.read(0) == 77


def test_preindex_writeback(cpu):
    cpu.regs.write(1, 0x500)
    cpu.write(0x504, 4, 99)
    run(cpu, instr("LDR", rd=0, mem=Mem(rn=1, offset=4, writeback=True)))
    assert cpu.regs.read(0) == 99
    assert cpu.regs.read(1) == 0x504


def test_postindex(cpu):
    cpu.regs.write(1, 0x600)
    cpu.write(0x600, 4, 55)
    run(cpu, instr("LDR", rd=0, mem=Mem(rn=1, offset=4, postindex=True)))
    assert cpu.regs.read(0) == 55
    assert cpu.regs.read(1) == 0x604


def test_ldr_literal_uses_aligned_pc(cpu):
    cpu.write(0x1010, 4, 0x12345678)
    ins = instr("LDR", rd=0, mem=Mem(rn=PC, offset=0xC))
    run(cpu, ins, at=0x1000, size=4)
    assert cpu.regs.read(0) == 0x12345678


def test_push_pop_roundtrip(cpu):
    cpu.regs.sp = 0x1000
    cpu.regs.write(4, 44)
    cpu.regs.write(5, 55)
    run(cpu, instr("PUSH", reglist=(4, 5)))
    assert cpu.regs.sp == 0xFF8
    cpu.regs.write(4, 0)
    cpu.regs.write(5, 0)
    run(cpu, instr("POP", reglist=(4, 5)))
    assert cpu.regs.read(4) == 44
    assert cpu.regs.read(5) == 55
    assert cpu.regs.sp == 0x1000


def test_pop_pc_branches(cpu):
    cpu.regs.sp = 0xFFC
    cpu.write(0xFFC, 4, 0x2001)  # thumb bit set
    outcome = run(cpu, instr("POP", reglist=(PC,)))
    assert outcome.taken
    assert cpu.branched_to == 0x2000


def test_ldm_stm(cpu):
    cpu.regs.write(0, 0x800)
    for i, value in enumerate((1, 2, 3)):
        cpu.regs.write(i + 1, value)
    run(cpu, instr("STM", rn=0, reglist=(1, 2, 3), writeback=True))
    assert cpu.regs.read(0) == 0x80C
    cpu.regs.write(0, 0x800)
    run(cpu, instr("LDM", rn=0, reglist=(4, 5, 6)))
    assert cpu.regs.read_many((4, 5, 6)) == [1, 2, 3]
    assert cpu.regs.read(0) == 0x800  # no writeback


def test_ldm_writeback_skipped_when_base_in_list(cpu):
    cpu.regs.write(0, 0x900)
    cpu.write(0x900, 4, 111)
    run(cpu, instr("LDM", rn=0, reglist=(0,), writeback=True))
    assert cpu.regs.read(0) == 111


# ----------------------------------------------------------------------
# branches
# ----------------------------------------------------------------------

def test_unconditional_branch(cpu):
    outcome = run(cpu, instr("B", target=0x2000))
    assert outcome.taken and cpu.branched_to == 0x2000


def test_conditional_branch_taken_and_skipped(cpu):
    cpu.apsr.z = True
    outcome = run(cpu, instr("B", cond=Condition.EQ, target=0x2000))
    assert outcome.taken
    cpu.branched_to = None
    cpu.apsr.z = False
    outcome = run(cpu, instr("B", cond=Condition.EQ, target=0x2000))
    assert outcome.skipped and cpu.branched_to is None


def test_bl_sets_lr(cpu):
    ins = instr("BL", target=0x3000)
    ins.size = 4
    run(cpu, ins, at=0x1000)
    assert cpu.regs.lr == 0x1004
    assert cpu.branched_to == 0x3000


def test_bx_register(cpu):
    cpu.regs.write(3, 0x4001)
    outcome = run(cpu, instr("BX", rm=3))
    assert outcome.taken and cpu.branched_to == 0x4000


def test_mov_pc_branches(cpu):
    cpu.regs.write(1, 0x5000)
    outcome = run(cpu, instr("MOV", rd=PC, rm=1))
    assert outcome.taken and cpu.branched_to == 0x5000


def test_tbb_dispatch(cpu):
    # table at 0x2000 with byte offsets, index in r1
    cpu.regs.write(0, 0x2000)
    cpu.regs.write(1, 2)
    cpu.write(0x2002, 1, 6)  # entry: branch to pc + 2*6
    ins = instr("TBB", rn=0, rm=1)
    ins.size = 4
    outcome = run(cpu, ins, at=0x1000)
    assert outcome.taken
    assert cpu.branched_to == 0x1004 + 12


def test_conditional_execution_skips_non_branch(cpu):
    cpu.apsr.z = False
    cpu.regs.write(0, 5)
    outcome = run(cpu, instr("ADD", rd=0, rn=0, imm=1, cond=Condition.EQ))
    assert outcome.skipped
    assert cpu.regs.read(0) == 5


def test_it_registers_block(cpu):
    run(cpu, instr("IT", cond=Condition.EQ, it_mask="TE"))
    assert cpu.it_blocks == [(Condition.EQ, "TE")]


def test_adr(cpu):
    ins = instr("ADR", rd=0, imm=16)
    run(cpu, ins, at=0x1002, size=2)
    assert cpu.regs.read(0) == ((0x1002 + 4) & ~3) + 16


# ----------------------------------------------------------------------
# system
# ----------------------------------------------------------------------

def test_cps_toggles_interrupts(cpu):
    run(cpu, instr("CPSID"))
    assert not cpu.interrupts_enabled
    run(cpu, instr("CPSIE"))
    assert cpu.interrupts_enabled


def test_svc_and_wfi(cpu):
    run(cpu, instr("SVC", imm=7))
    assert cpu.svc_calls == [7]
    run(cpu, instr("WFI"))
    assert cpu.sleeping


def test_outcome_counts_memory_ops(cpu):
    cpu.regs.write(1, 0x100)
    outcome = run(cpu, instr("LDM", rn=1, reglist=(2, 3, 4)))
    assert outcome.reads == 3
    assert outcome.regs_transferred == 3
    outcome = run(cpu, instr("STR", rd=2, mem=Mem(rn=1)))
    assert outcome.writes == 1


def test_unknown_mnemonic_rejected():
    with pytest.raises(ValueError):
        Instruction("FROB")
