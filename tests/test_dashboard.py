"""The live dashboard: pure rendering, and the chaos-fleet integration.

:func:`repro.sim.service.dashboard.render` is a pure function from
(status payload, metrics snapshot, previous sample) to frame lines, so
the unit half feeds it canned payloads and asserts the operational
story is actually on screen - queue meters against their bounds,
cells/sec from sample deltas, dedup rate, fleet health, per-domain
progress.  The integration half is the acceptance gate: a real
``--workers-proc`` service with an injected chaos kill, polled by the
real ``python -m repro.sim.service.dashboard`` CLI while a sweep runs,
must render live fleet state and report counters consistent with the
records the client actually received.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.sim.service.dashboard import _bar, render, sample

SRC = str(Path(__file__).resolve().parent.parent / "src")

STATUS = {
    "op": "status", "protocol": 1, "uptime_s": 12.5, "pool": "workers-proc",
    "active": 2, "active_cells": 9, "max_pending": 8,
    "max_active_cells": 100, "inflight": 3, "computed": 5,
    "cache_hits": 6, "cache_misses": 4, "workers": 0, "supervised": True,
    "requests": {
        "req-0": {"id": "req-0", "status": "running", "cells": 6, "ran": 4,
                  "failed": 1, "verified": 3, "replayed": 0, "joined": 0,
                  "computed": 4, "priority": 0, "message": ""},
    },
    "supervisor": {"workers": 2, "alive": 1, "idle": 0, "lost": 1,
                   "respawns": 1, "respawn_budget": 8, "requeues": 2,
                   "quarantined": 1},
}

METRICS = {
    "counters": {
        "service.cells.resolved": {"domain=can,how=computed": 4,
                                   "domain=osek,how=replayed": 6},
        "service.records.streamed": {"": 10},
        "service.dedup.hits": {"": 6},
        "service.cells.failed": {"kind=worker-lost": 1},
        "service.requests.submitted": {"": 2},
    },
    "gauges": {
        "service.workers.alive": {"": 1},
        "service.workers.heartbeat_age_s": {"": 0.42},
    },
    "histograms": {},
}


def test_bar_is_bounded():
    assert _bar(0, 8) == "[--------------------]"
    assert _bar(8, 8) == "[####################]"
    assert _bar(99, 8) == "[####################]"  # clamps, never overflows
    assert _bar(1, 0) == "[--------------------]"  # no limit, no fill


def test_sample_derives_the_operational_quantities():
    got = sample(STATUS, METRICS)
    assert got["cells_resolved"] == 10
    assert got["cells_by_domain"] == {"can": 4, "osek": 6}
    assert got["records_streamed"] == 10
    assert got["dedup_hits"] == 6
    assert got["cells_failed"] == 1
    assert got["heartbeat_age_s"] == 0.42
    assert got["supervisor"]["quarantined"] == 1
    assert got["requests"]["req-0"]["failed"] == 1


def test_render_shows_queue_fleet_rates_and_progress():
    prev = dict(sample(STATUS, METRICS), cells_resolved=0, records_streamed=0)
    frame = render(STATUS, METRICS, prev, elapsed=2.0)
    text = "\n".join(frame)
    assert "up 12.5s" in text and "pool=workers-proc" in text
    assert "2/8 requests" in text and "9/100" in text
    assert "5.0 cells/s" in text and "5.0 records/s" in text
    assert "dedup  60.0%" in text
    assert "1/2 alive" in text and "quarantined 1" in text
    assert "heartbeat 0.42s" in text
    assert "can:4" in text and "osek:6" in text
    assert "req-0" in text and "4/6" in text and "failed 1" in text


def test_render_degrades_without_telemetry_or_fleet():
    frame = render({"op": "status", "protocol": 1, "uptime_s": 0.1,
                    "pool": "in-proc", "active": 0, "active_cells": 0,
                    "max_pending": 8, "max_active_cells": 100,
                    "inflight": 0, "cache_hits": 0, "cache_misses": 0,
                    "requests": {}},
                   {"counters": {}, "gauges": {}, "histograms": {}})
    text = "\n".join(frame)
    assert "pool=in-proc" in text
    assert "(no requests)" in text
    assert "fleet" not in text  # no supervisor, no fleet line
    assert "- cells/s" in text  # no previous sample, no invented rate


def test_dashboard_renders_live_chaos_fleet(tmp_path):
    """The acceptance claim: against a chaos-injected supervised fleet,
    the dashboard CLI renders live state mid-run and its final JSON
    sample is consistent with the stream the client received."""
    env = dict(os.environ, PYTHONPATH=SRC)
    port_file = tmp_path / "port.txt"
    service = subprocess.Popen(
        [sys.executable, "-m", "repro.sim.service",
         "--port", "0", "--port-file", str(port_file),
         "--workers-proc", "2", "--obs", "--heartbeat", "0.2",
         "--chaos", "seed=7,kills=1", "--quarantine-strikes", "3"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
    try:
        deadline = time.monotonic() + 30
        while not (port_file.exists() and port_file.read_text().strip()):
            assert time.monotonic() < deadline, "service never bound"
            time.sleep(0.05)
        address = f"127.0.0.1:{int(port_file.read_text())}"

        stream = tmp_path / "records.jsonl"
        sweep = subprocess.Popen(
            [sys.executable, "-m", "repro.sim.campaign", "--matrix", "lin",
             "--connect", address, "--stream", str(stream)],
            env=env, stdout=subprocess.DEVNULL)
        live = subprocess.run(
            [sys.executable, "-m", "repro.sim.service.dashboard", address,
             "--interval", "0.2", "--frames", "3"],
            env=env, capture_output=True, text=True, timeout=120)
        assert live.returncode == 0, live.stderr
        assert "campaign service" in live.stdout
        assert "fleet" in live.stdout and "alive" in live.stdout
        assert live.stdout.count("campaign service") == 3  # three frames

        assert sweep.wait(timeout=300) == 0
        final = subprocess.run(
            [sys.executable, "-m", "repro.sim.service.dashboard", address,
             "--once", "--json"],
            env=env, capture_output=True, text=True, timeout=60)
        assert final.returncode == 0, final.stderr
        got = json.loads(final.stdout)
        records = stream.read_text().splitlines()
        assert len(records) == 6                      # the lin matrix
        assert got["records_streamed"] == len(records)
        assert got["cells_resolved"] == len(records)
        assert got["cells_by_domain"] == {"lin": 6}
        assert got["pool"] == "workers-proc"
        fleet = got["supervisor"]
        # the chaos kill was absorbed: a loss and a respawn, no quarantine,
        # and the full fleet alive again at the end
        assert fleet["lost"] >= 1 and fleet["respawns"] >= 1
        assert fleet["quarantined"] == 0
        assert fleet["alive"] == fleet["workers"] == 2
    finally:
        service.send_signal(signal.SIGINT)
        try:
            service.wait(timeout=10)
        except subprocess.TimeoutExpired:
            service.kill()
