"""Tests for the OSEK kernel model and the response-time analysis."""

import pytest

from repro.rtos import (
    ActivateTask,
    AnalysedTask,
    ChainTask,
    Compute,
    GetResource,
    OsekError,
    OsekKernel,
    ReleaseResource,
    SetEvent,
    WaitEvent,
    breakdown_utilisation,
    measure_wcet,
    rate_monotonic_priorities,
    response_time_analysis,
    utilisation_bound,
)
from repro.workloads import WORKLOADS_BY_NAME


def simple_body(ticks):
    def body(api):
        yield Compute(ticks)
    return body


# ----------------------------------------------------------------------
# kernel basics
# ----------------------------------------------------------------------

def test_single_task_runs_and_terminates():
    kernel = OsekKernel()
    task = kernel.add_task("t", priority=1, body_factory=simple_body(100), autostart=True)
    kernel.run(until=1000)
    assert task.terminations == 1
    assert task.response_times == [100]


def test_periodic_alarm_activates_task():
    kernel = OsekKernel()
    task = kernel.add_task("periodic", priority=1, body_factory=simple_body(10))
    kernel.add_alarm("alm", "periodic", offset=100, period=200)
    kernel.run(until=1000)
    # expiries at 100, 300, 500, 700, 900
    assert task.terminations == 5


def test_priority_preemption():
    kernel = OsekKernel()
    log = []

    def low_body(api):
        log.append(("low-start", api.scheduler.now))
        yield Compute(500)
        log.append(("low-end", api.scheduler.now))

    def high_body(api):
        log.append(("high-start", api.scheduler.now))
        yield Compute(50)
        log.append(("high-end", api.scheduler.now))

    kernel.add_task("low", priority=1, body_factory=low_body, autostart=True)
    kernel.add_task("high", priority=9, body_factory=high_body)
    kernel.add_alarm("kick", "high", offset=100)
    kernel.run(until=2000)
    assert ("high-start", 100) in log
    assert ("high-end", 150) in log
    low_end = dict(log)["low-end"]
    assert low_end == 550  # preempted for 50 ticks


def test_non_preemptable_task_defers_higher_priority():
    kernel = OsekKernel()
    low = kernel.add_task("low", priority=1, body_factory=simple_body(300),
                          preemptable=False, autostart=True)
    high = kernel.add_task("high", priority=9, body_factory=simple_body(10))
    kernel.add_alarm("kick", "high", offset=50)
    kernel.run(until=1000)
    assert low.response_times == [300]
    assert high.response_times == [300 - 50 + 10]  # waited for low to finish


def test_bcc1_activation_limit():
    kernel = OsekKernel()
    task = kernel.add_task("t", priority=1, body_factory=simple_body(100))
    kernel.add_alarm("a1", "t", offset=10)
    kernel.add_alarm("a2", "t", offset=20)  # arrives while running: E_OS_LIMIT
    kernel.run(until=1000)
    assert task.terminations == 1
    assert task.activation_failures == 1


def test_bcc2_queued_activation():
    kernel = OsekKernel()
    task = kernel.add_task("t", priority=1, body_factory=simple_body(100),
                           max_activations=2)
    kernel.add_alarm("a1", "t", offset=10)
    kernel.add_alarm("a2", "t", offset=20)
    kernel.run(until=1000)
    assert task.terminations == 2
    assert task.activation_failures == 0


def test_chain_task():
    kernel = OsekKernel()
    order = []

    def first(api):
        order.append("first")
        yield Compute(10)
        yield ChainTask("second")

    def second(api):
        order.append("second")
        yield Compute(10)

    kernel.add_task("first", priority=2, body_factory=first, autostart=True)
    kernel.add_task("second", priority=1, body_factory=second)
    kernel.run(until=1000)
    assert order == ["first", "second"]


def test_activate_task_directive_preempts():
    kernel = OsekKernel()
    order = []

    def spawner(api):
        yield Compute(10)
        order.append("spawning")
        yield ActivateTask("urgent")
        order.append("resumed")
        yield Compute(10)

    def urgent(api):
        order.append("urgent")
        yield Compute(5)

    kernel.add_task("spawner", priority=1, body_factory=spawner, autostart=True)
    kernel.add_task("urgent", priority=5, body_factory=urgent)
    kernel.run(until=1000)
    assert order == ["spawning", "urgent", "resumed"]


# ----------------------------------------------------------------------
# resources (priority ceiling)
# ----------------------------------------------------------------------

def test_ceiling_blocks_preemption_inside_critical_section():
    kernel = OsekKernel()
    order = []

    def low(api):
        yield GetResource("shared")
        order.append("low-cs-enter")
        yield Compute(100)
        order.append("low-cs-exit")
        yield ReleaseResource("shared")
        yield Compute(10)

    def high(api):
        order.append("high")
        yield GetResource("shared")
        yield Compute(10)
        yield ReleaseResource("shared")

    kernel.add_task("low", priority=1, body_factory=low, autostart=True)
    kernel.add_task("high", priority=9, body_factory=high)
    kernel.add_resource("shared", users=["low", "high"])
    kernel.add_alarm("kick", "high", offset=50)
    kernel.run(until=1000)
    # ceiling raises low to high's priority: high must wait for cs exit
    assert order.index("low-cs-exit") < order.index("high")


def test_terminate_holding_resource_is_error():
    kernel = OsekKernel(strict=True)

    def bad(api):
        yield GetResource("r")
        yield Compute(10)

    kernel.add_task("bad", priority=1, body_factory=bad, autostart=True)
    kernel.add_resource("r", users=["bad"])
    with pytest.raises(OsekError):
        kernel.run(until=100)


# ----------------------------------------------------------------------
# events (ECC)
# ----------------------------------------------------------------------

def test_wait_and_set_event():
    kernel = OsekKernel()
    log = []

    def waiter(api):
        log.append(("wait", api.scheduler.now))
        yield WaitEvent(0b01)
        log.append(("woken", api.scheduler.now))
        yield Compute(5)

    def signaller(api):
        yield Compute(200)
        yield SetEvent("waiter", 0b01)

    kernel.add_task("waiter", priority=5, body_factory=waiter,
                    extended=True, autostart=True)
    kernel.add_task("signaller", priority=1, body_factory=signaller, autostart=True)
    kernel.run(until=1000)
    assert ("wait", 0) in log
    assert ("woken", 200) in log


def test_event_already_pending_does_not_block():
    kernel = OsekKernel()

    def waiter(api):
        yield WaitEvent(0b10)
        yield Compute(5)

    task = kernel.add_task("waiter", priority=5, body_factory=waiter, extended=True)
    task.events_pending = 0b10
    kernel.scheduler.at(0, lambda: kernel.activate("waiter"))
    kernel.run(until=100)
    assert task.terminations == 1


def test_set_event_on_basic_task_rejected():
    kernel = OsekKernel()
    kernel.add_task("basic", priority=1, body_factory=simple_body(10), autostart=True)
    with pytest.raises(OsekError):
        kernel.set_event("basic", 1)


# ----------------------------------------------------------------------
# response-time analysis
# ----------------------------------------------------------------------

CLASSIC_SET = [
    AnalysedTask("t1", wcet=3, period=20),
    AnalysedTask("t2", wcet=10, period=50),
    AnalysedTask("t3", wcet=15, period=100),
]


def test_rate_monotonic_ordering():
    priorities = rate_monotonic_priorities(CLASSIC_SET)
    assert priorities["t1"] > priorities["t2"] > priorities["t3"]


def test_rta_classic_example():
    result = response_time_analysis(CLASSIC_SET)
    assert result.schedulable
    assert result.response_of("t1").response == 3
    assert result.response_of("t2").response == 13
    # t3: 15 + 2*interference... converges within deadline
    assert result.response_of("t3").response <= 100


def test_rta_unschedulable_set():
    overloaded = [
        AnalysedTask("a", wcet=60, period=100),
        AnalysedTask("b", wcet=60, period=100),
    ]
    result = response_time_analysis(overloaded)
    assert not result.schedulable


def test_rta_blocking_from_ceiling():
    tasks = [
        AnalysedTask("hi", wcet=5, period=50,
                     critical_sections=(("bus", 2),)),
        AnalysedTask("lo", wcet=20, period=200,
                     critical_sections=(("bus", 7),)),
    ]
    result = response_time_analysis(tasks)
    assert result.response_of("hi").blocking == 7
    assert result.response_of("hi").response == 5 + 7


def test_utilisation_bound_monotone():
    assert utilisation_bound(1) == pytest.approx(1.0)
    assert utilisation_bound(2) == pytest.approx(0.8284, abs=1e-3)
    assert utilisation_bound(10) > 0.69


def test_breakdown_utilisation():
    value = breakdown_utilisation(CLASSIC_SET)
    baseline = sum(t.utilisation for t in CLASSIC_SET)
    assert value >= baseline  # the set is schedulable with headroom


def test_rta_bounds_simulation():
    """The analysis response times must bound what the kernel observes."""
    tasks = [
        AnalysedTask("fast", wcet=10, period=100),
        AnalysedTask("mid", wcet=30, period=300),
        AnalysedTask("slow", wcet=80, period=1000),
    ]
    result = response_time_analysis(tasks)
    assert result.schedulable

    kernel = OsekKernel()
    priorities = rate_monotonic_priorities(tasks)
    for spec in tasks:
        kernel.add_task(spec.name, priority=priorities[spec.name],
                        body_factory=simple_body(spec.wcet))
        kernel.add_alarm(f"alm_{spec.name}", spec.name, offset=0, period=spec.period)
    kernel.run(until=10_000)
    for spec in tasks:
        observed = kernel.tasks[spec.name].worst_response()
        analytic = result.response_of(spec.name).response
        assert observed <= analytic, (spec.name, observed, analytic)


def test_context_switch_cost_accounted():
    no_cs = response_time_analysis(CLASSIC_SET, context_switch=0)
    with_cs = response_time_analysis(CLASSIC_SET, context_switch=2)
    assert (with_cs.response_of("t3").response
            > no_cs.response_of("t3").response)


# ----------------------------------------------------------------------
# WCET bridge to the core models
# ----------------------------------------------------------------------

def test_measured_wcet_feeds_analysis():
    estimate = measure_wcet(WORKLOADS_BY_NAME["canrdr"], samples=3)
    assert estimate.observed_max >= estimate.observed_min > 0
    assert estimate.wcet >= estimate.observed_max
    task = AnalysedTask("can_task", wcet=estimate.wcet, period=estimate.wcet * 4)
    result = response_time_analysis([task])
    assert result.schedulable
