"""Additional RTOS and network coverage: edge cases and failure modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    CanBus,
    CanFrame,
    MessageSpec,
    bus_utilisation,
    can_response_times,
    crc15,
)
from repro.rtos import (
    AnalysedTask,
    Compute,
    OsekError,
    OsekKernel,
    WaitEvent,
    breakdown_utilisation,
    response_time_analysis,
)
from repro.sim import DeterministicRng


# ----------------------------------------------------------------------
# RTOS edges
# ----------------------------------------------------------------------

def test_zero_compute_task():
    kernel = OsekKernel()

    def body(api):
        yield Compute(0)

    task = kernel.add_task("t", priority=1, body_factory=body, autostart=True)
    kernel.run(until=100)
    assert task.terminations == 1
    assert task.response_times == [0]


def test_alarm_disable_stops_expiries():
    kernel = OsekKernel()
    task = kernel.add_task("t", priority=1,
                           body_factory=lambda api: iter([Compute(5)]))
    alarm = kernel.add_alarm("a", "t", offset=10, period=50)
    kernel.scheduler.at(100, lambda: setattr(alarm, "enabled", False))
    kernel.run(until=1000)
    assert alarm.expiries <= 3  # 10, 60 fired; disabled around 100


def test_context_switch_cost_delays_start():
    fast = OsekKernel(context_switch_cost=0)
    slow = OsekKernel(context_switch_cost=25)
    for kernel in (fast, slow):
        kernel.add_task("t", priority=1,
                        body_factory=lambda api: iter([Compute(100)]),
                        autostart=True)
        kernel.run(until=1000)
    assert slow.tasks["t"].response_times[0] > fast.tasks["t"].response_times[0]


def test_strict_mode_raises_on_limit():
    kernel = OsekKernel(strict=True)
    kernel.add_task("t", priority=1,
                    body_factory=lambda api: iter([Compute(100)]))
    kernel.add_alarm("a1", "t", offset=0)
    kernel.add_alarm("a2", "t", offset=10)
    with pytest.raises(OsekError):
        kernel.run(until=1000)


def test_wait_event_in_basic_task_rejected():
    kernel = OsekKernel()

    def body(api):
        yield WaitEvent(1)

    kernel.add_task("basic", priority=1, body_factory=body, autostart=True)
    with pytest.raises(OsekError):
        kernel.run(until=100)


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=40),
                          st.integers(min_value=50, max_value=400)),
                min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_rta_monotone_under_wcet_growth(raw_tasks):
    """Growing any WCET never shrinks anyone's response time."""
    tasks = [AnalysedTask(f"t{i}", wcet=c, period=p * 10)
             for i, (c, p) in enumerate(raw_tasks)]
    base = response_time_analysis(tasks)
    grown = [AnalysedTask(t.name, wcet=t.wcet + 5, period=t.period)
             for t in tasks]
    bigger = response_time_analysis(grown)
    for t in tasks:
        r0 = base.response_of(t.name).response
        r1 = bigger.response_of(t.name).response
        if r0 is not None and r1 is not None:
            assert r1 >= r0


def test_breakdown_utilisation_of_unschedulable_set():
    overloaded = [AnalysedTask("a", wcet=80, period=100),
                  AnalysedTask("b", wcet=80, period=100)]
    value = breakdown_utilisation(overloaded)
    assert value < 1.6  # scaled-down point found below the raw 1.6


# ----------------------------------------------------------------------
# CAN edges
# ----------------------------------------------------------------------

def test_crc15_known_properties():
    assert crc15([0] * 10) == 0             # all-zero input -> zero CRC
    assert crc15([1]) != 0
    # linearity-ish: differing inputs give differing CRCs here
    assert crc15([1, 0, 1]) != crc15([1, 1, 1])


def test_zero_length_frame():
    frame = CanFrame(can_id=0x7FF, data=b"")
    assert frame.dlc == 0
    assert frame.wire_bits >= 44


def test_bus_fifo_among_equal_ids():
    bus = CanBus(bitrate_bps=500_000)
    bus.submit(CanFrame(0x100, b"\x01"), node="first")
    bus.submit(CanFrame(0x100, b"\x02"), node="second")
    bus.scheduler.run(until=10_000)
    assert [d.node for d in bus.deliveries] == ["first", "second"]


def test_listener_callback_invoked():
    bus = CanBus(bitrate_bps=500_000)
    seen = []
    bus.subscribe(lambda frame, record: seen.append(frame.can_id))
    bus.submit(CanFrame(0x42, b"\x00"))
    bus.scheduler.run(until=10_000)
    assert seen == [0x42]


def test_rta_rejects_duplicate_ids():
    specs = [MessageSpec(can_id=1, payload_bytes=1, period_us=1000),
             MessageSpec(can_id=1, payload_bytes=2, period_us=2000)]
    with pytest.raises(ValueError):
        can_response_times(specs)


@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=125_000, max_value=1_000_000))
@settings(max_examples=50, deadline=None)
def test_rta_response_ordering_property(count, bitrate):
    """Higher-priority (lower-id) messages never have longer worst-case
    responses than lower-priority ones of the same size and period."""
    specs = [MessageSpec(can_id=0x100 + i, payload_bytes=4, period_us=20_000)
             for i in range(count)]
    if bus_utilisation(specs, bitrate) >= 0.9:
        return
    analysis = can_response_times(specs, bitrate_bps=bitrate)
    responses = [m.response_us for m in analysis.messages]
    assert all(r is not None for r in responses)
    assert responses == sorted(responses)


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=30, deadline=None)
def test_simulated_bus_conserves_frames(n_frames):
    """Every submitted frame is eventually delivered exactly once."""
    rng = DeterministicRng(n_frames)
    bus = CanBus(bitrate_bps=500_000, error_rate=0.2, rng=rng)
    ids = []
    for k in range(n_frames):
        can_id = rng.randint(0, 0x7FF)
        ids.append(can_id)
        bus.scheduler.at(k * 7, lambda c=can_id: bus.submit(CanFrame(c, b"\x00")))
    bus.scheduler.run(until=50_000_000)
    assert sorted(d.can_id for d in bus.deliveries) == sorted(ids)
