"""Tests for bit-band aliasing and the MPU models."""

import pytest

from repro.memory import (
    BitBandAlias,
    BusFault,
    MpuFault,
    Sram,
    armv6_mpu,
    classic_mpu,
    plan_task_isolation,
)

SRAM_BASE = 0x2000_0000
ALIAS_BASE = 0x2200_0000


def make_bitband():
    ram = Sram(base=SRAM_BASE, size=0x1000)
    alias = BitBandAlias(base=ALIAS_BASE, target=ram,
                         target_base=SRAM_BASE, target_bytes=0x1000)
    return ram, alias


def test_alias_address_mapping():
    _, alias = make_bitband()
    assert alias.alias_address(SRAM_BASE, 0) == ALIAS_BASE
    assert alias.alias_address(SRAM_BASE, 3) == ALIAS_BASE + 12
    assert alias.alias_address(SRAM_BASE + 1, 0) == ALIAS_BASE + 32


def test_bit_set_through_alias():
    ram, alias = make_bitband()
    alias.write(alias.alias_address(SRAM_BASE, 5), 4, 1)
    assert ram.read_raw(SRAM_BASE, 1) == b"\x20"


def test_bit_clear_through_alias():
    ram, alias = make_bitband()
    ram.write_raw(SRAM_BASE, b"\xFF")
    alias.write(alias.alias_address(SRAM_BASE, 0), 4, 0)
    assert ram.read_raw(SRAM_BASE, 1) == b"\xFE"


def test_bit_write_only_touches_one_bit():
    ram, alias = make_bitband()
    ram.write_raw(SRAM_BASE, b"\xA5")
    alias.write(alias.alias_address(SRAM_BASE, 1), 4, 1)
    assert ram.read_raw(SRAM_BASE, 1) == b"\xA7"


def test_bit_read_through_alias():
    ram, alias = make_bitband()
    ram.write_raw(SRAM_BASE + 2, b"\x40")
    value, _ = alias.read(alias.alias_address(SRAM_BASE + 2, 6), 4)
    assert value == 1
    value, _ = alias.read(alias.alias_address(SRAM_BASE + 2, 0), 4)
    assert value == 0


def test_only_lsb_of_written_word_matters():
    ram, alias = make_bitband()
    alias.write(alias.alias_address(SRAM_BASE, 4), 4, 0xFFFFFF01)
    assert ram.read_raw(SRAM_BASE, 1) == b"\x10"


def test_unaligned_alias_access_rejected():
    _, alias = make_bitband()
    with pytest.raises(BusFault):
        alias.read(ALIAS_BASE + 2, 4)
    with pytest.raises(BusFault):
        alias.write(ALIAS_BASE, 2, 1)


def test_alias_region_size():
    _, alias = make_bitband()
    assert alias.size == 0x1000 * 32


def test_alias_address_out_of_range():
    _, alias = make_bitband()
    with pytest.raises(ValueError):
        alias.alias_address(SRAM_BASE + 0x2000, 0)
    with pytest.raises(ValueError):
        alias.alias_address(SRAM_BASE, 8)


# ----------------------------------------------------------------------
# MPU
# ----------------------------------------------------------------------

def test_classic_mpu_rejects_small_regions():
    mpu = classic_mpu()
    with pytest.raises(ValueError):
        mpu.configure(0, base=0, size=1024)


def test_armv6_mpu_accepts_32_byte_regions():
    mpu = armv6_mpu()
    mpu.configure(0, base=0x100 * 32, size=32)
    assert mpu.effective_granularity() == 32


def test_mpu_region_alignment_enforced():
    mpu = armv6_mpu()
    with pytest.raises(ValueError):
        mpu.configure(0, base=0x10, size=0x1000)  # base not size-aligned
    with pytest.raises(ValueError):
        mpu.configure(0, base=0, size=0x1800)     # not a power of two


def test_mpu_allows_configured_access():
    mpu = armv6_mpu()
    mpu.configure(0, base=0x8000, size=0x1000, perms="rw")
    mpu.check(0x8000, 4, is_write=True)
    mpu.check(0x8FFC, 4, is_write=False)


def test_mpu_faults_outside_regions():
    mpu = armv6_mpu()
    mpu.configure(0, base=0x8000, size=0x1000)
    with pytest.raises(MpuFault):
        mpu.check(0x7FFC, 4, is_write=False)
    assert mpu.faults == 1


def test_mpu_read_only_region():
    mpu = armv6_mpu()
    mpu.configure(0, base=0x8000, size=0x1000, perms="ro")
    mpu.check(0x8000, 4, is_write=False)
    with pytest.raises(MpuFault):
        mpu.check(0x8000, 4, is_write=True)


def test_mpu_straddling_access_checked_at_both_ends():
    mpu = armv6_mpu()
    mpu.configure(0, base=0x8000, size=0x1000)
    with pytest.raises(MpuFault):
        mpu.check(0x8FFE, 4, is_write=False)  # runs off the end


def test_higher_region_wins():
    mpu = armv6_mpu()
    mpu.configure(0, base=0x8000, size=0x1000, perms="rw")
    mpu.configure(1, base=0x8000, size=0x100, perms="ro")
    with pytest.raises(MpuFault):
        mpu.check(0x8010, 4, is_write=True)
    mpu.check(0x8200, 4, is_write=True)  # outside the RO override


def test_subregion_disable():
    mpu = armv6_mpu()
    # 4 KB region, disable the second eighth (0x200-0x3FF)
    mpu.configure(0, base=0, size=0x1000, subregion_disable=0b0000_0010)
    mpu.check(0x100, 4, is_write=False)
    with pytest.raises(MpuFault):
        mpu.check(0x200, 4, is_write=False)


def test_classic_mpu_has_no_subregions():
    mpu = classic_mpu()
    with pytest.raises(ValueError):
        mpu.configure(0, base=0, size=0x1000, subregion_disable=1)


def test_disabled_mpu_allows_everything():
    mpu = armv6_mpu()
    mpu.enabled = False
    mpu.check(0xDEAD0000, 4, is_write=True)


# ----------------------------------------------------------------------
# isolation planning (experiment E5's engine)
# ----------------------------------------------------------------------

OSEK_TASKS = {
    "oil_pressure": 192,
    "window_lift": 256,
    "seat_memory": 384,
    "wiper_ctrl": 160,
    "mirror_fold": 96,
    "lamp_check": 128,
}


def test_fine_mpu_isolates_all_small_tasks():
    plan = plan_task_isolation(OSEK_TASKS, armv6_mpu())
    assert plan.shared_tasks == 0
    assert plan.isolated_tasks == len(OSEK_TASKS)


def test_classic_mpu_wastes_ram():
    coarse = plan_task_isolation(OSEK_TASKS, classic_mpu(num_regions=16))
    fine = plan_task_isolation(OSEK_TASKS, armv6_mpu(num_regions=16))
    assert coarse.allocated_bytes > fine.allocated_bytes
    # 4 KB minimum: every 200-byte task burns a 4 KB region
    assert coarse.waste_ratio > 0.9
    assert fine.waste_ratio < 0.5


def test_classic_mpu_shares_under_ram_budget():
    """With a 16 KB SRAM, a 4 KB-granular MPU cannot isolate 6 tasks."""
    coarse = plan_task_isolation(OSEK_TASKS, classic_mpu(), ram_budget=16 * 1024)
    fine = plan_task_isolation(OSEK_TASKS, armv6_mpu(), ram_budget=16 * 1024)
    assert coarse.shared_tasks > 0
    assert fine.shared_tasks == 0


def test_region_count_limits_isolation():
    mpu = armv6_mpu(num_regions=4)  # 3 usable + shared pool
    plan = plan_task_isolation(OSEK_TASKS, mpu)
    assert plan.isolated_tasks == 3
    assert plan.shared_tasks == 3
    assert plan.regions_used <= 4


def test_waste_accounting_consistent():
    plan = plan_task_isolation(OSEK_TASKS, armv6_mpu())
    assert plan.allocated_bytes == plan.requested_bytes + plan.waste_bytes
    assert plan.waste_bytes >= 0
