"""Property tests: every execution engine == reference interpreter.

The predecoded engine, the superblock engine, and the trace engine
(:mod:`repro.isa.predecode` + ``BaseCpu.run``, see the execution-engines
section of :mod:`repro.core.cpu`) must be *architecturally
indistinguishable* from single-stepping the reference interpreter: same
registers, flags, memory, cycle counts, bus statistics, and trace - on
every core, for arbitrary programs, with and without interrupts.  These
tests generate randomised programs (hypothesis) including LDM/STM,
write-back addressing, predicated skips, and loopy control flow
(back-edges, loop-carried flags, IT blocks inside loops), and run curated
worst cases (IT blocks, WFI, interrupt storms landing mid-superblock and
exactly on loop back-edge cycles, restartable LDM windows, access-record
streams), executing each on all four engines and diffing the complete
machine state.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FLASH_BASE,
    SRAM_BASE,
    build_arm7,
    build_arm1156,
    build_cortexm3,
)
from repro.isa import (
    ISA_ARM,
    ISA_THUMB,
    ISA_THUMB2,
    AssemblyError,
    EncodingError,
    assemble,
)
from repro.sim.trace import TraceRecorder
from repro.workloads import TABLE1_CONFIGS, run_kernel
from repro.workloads.kernels import AUTOINDY_SUITE

SCRATCH_BYTES = 64


def _build_machine(isa: str, source: str, core: str = "", trace: bool = False):
    program = assemble(source, isa, base=FLASH_BASE)
    recorder = TraceRecorder(enabled=trace)
    if isa == ISA_THUMB2 and core != "arm1156":
        return build_cortexm3(program, trace=recorder)
    if core == "arm1156":
        return build_arm1156(program, trace=recorder)
    return build_arm7(program, trace=recorder)


def _state(machine) -> dict:
    cpu = machine.cpu
    return {
        "regs": cpu.regs.snapshot(),
        "apsr": str(cpu.apsr),
        "cycles": cpu.cycles,
        "executed": cpu.instructions_executed,
        "skipped": cpu.instructions_skipped,
        "branches": cpu.branches_taken,
        "halted": cpu.halted,
        "svc": tuple(cpu.svc_log),
        "scratch": bytes(machine.sram.data[:SCRATCH_BYTES]),
        "bus_reads": machine.bus.reads,
        "bus_writes": machine.bus.writes,
        "bus_stalls": machine.bus.total_stalls,
        "trace": tuple(cpu.trace.records),
    }


#: (label, fastpath, superblocks, trace_superblocks) for the four engines
ENGINES = (
    ("trace", True, True, True),
    ("superblock", True, True, False),
    ("uops", True, False, False),
    ("reference", False, False, False),
)


def set_engine(machine, fastpath: bool, superblocks: bool,
               trace_superblocks: bool) -> None:
    machine.cpu.fastpath = fastpath
    machine.cpu.superblocks = superblocks
    machine.cpu.trace_superblocks = trace_superblocks


def run_engines(isa: str, source: str, args=(), core: str = "",
                trace: bool = False) -> list[dict]:
    """Run ``source`` through all four engines; return the final states."""
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = _build_machine(isa, source, core=core, trace=trace)
        set_engine(machine, fastpath, superblocks, trace_sb)
        machine.call("main", *args, max_instructions=200_000)
        states.append(_state(machine))
    return states


def run_both(isa: str, source: str, args=(), core: str = "",
             trace: bool = False) -> tuple[dict, dict]:
    """Back-compat helper: (superblock-engine state, reference state)."""
    states = run_engines(isa, source, args=args, core=core, trace=trace)
    return states[0], states[-1]


def assert_equivalent(isa: str, source: str, args=(), core: str = "",
                      trace: bool = False) -> None:
    states = run_engines(isa, source, args=args, core=core, trace=trace)
    reference = states[-1]
    for (label, _, _, _), state in zip(ENGINES, states):
        assert state == reference, (
            f"{label} engine diverged on {core or isa}: "
            f"{ {k: (state[k], reference[k]) for k in state if state[k] != reference[k]} }")


# ----------------------------------------------------------------------
# randomised program generation
# ----------------------------------------------------------------------

REG = st.integers(min_value=1, max_value=7)   # r0 is the scratch pointer
IMM8 = st.integers(min_value=0, max_value=255)
SHIFT = st.integers(min_value=1, max_value=31)
WOFF = st.integers(min_value=0, max_value=(SCRATCH_BYTES // 4) - 1)
REGLIST = st.lists(st.sampled_from([4, 5, 6, 7]), min_size=1, max_size=4,
                   unique=True)

_OPS = st.one_of(
    st.tuples(st.just("alu3"),
              st.sampled_from(["adds", "subs", "ands", "orrs", "eors", "bics"]),
              REG, REG, REG),
    st.tuples(st.just("alu_imm"),
              st.sampled_from(["adds", "subs"]), REG, REG, IMM8),
    st.tuples(st.just("mov_imm"), st.just("movs"), REG, IMM8),
    st.tuples(st.just("shift"),
              st.sampled_from(["lsls", "lsrs", "asrs"]), REG, REG, SHIFT),
    st.tuples(st.just("mul"), st.just("mul"), REG, REG, REG),
    st.tuples(st.just("unary"),
              st.sampled_from(["clz", "rev", "rev16", "uxtb", "uxth",
                               "sxtb", "sxth", "rbit"]), REG, REG),
    st.tuples(st.just("cmp_reg"), st.sampled_from(["cmp", "cmn", "tst"]),
              REG, REG),
    st.tuples(st.just("cmp_imm"), st.just("cmp"), REG, IMM8),
    st.tuples(st.just("store"), st.sampled_from(["str", "strb", "strh"]),
              REG, WOFF),
    st.tuples(st.just("load"),
              st.sampled_from(["ldr", "ldrb", "ldrh", "ldrsb", "ldrsh"]),
              REG, WOFF),
    st.tuples(st.just("skip"),
              st.sampled_from(["beq", "bne", "bcs", "bcc", "bge", "blt",
                               "bgt", "ble", "bmi", "bpl"]),
              st.sampled_from(["adds", "subs", "eors"]), REG, REG, REG),
    # block transfers (specialised LDM/STM predecode), +/- base write-back
    st.tuples(st.just("block"), st.sampled_from(["ldm", "stm"]),
              REGLIST, st.booleans()),
    # pre-/post-indexed addressing (write-back load/store predecode)
    st.tuples(st.just("ldr_wb"),
              st.sampled_from(["ldr", "ldrb", "ldrh", "ldrsb", "ldrsh"]),
              REG, WOFF, st.booleans()),
    st.tuples(st.just("str_wb"), st.sampled_from(["str", "strb", "strh"]),
              REG, WOFF, st.booleans()),
)


def render(ops: list[tuple]) -> str:
    lines = ["main:", "    push {r4, r5, r6, r7}"]
    for index, op in enumerate(ops):
        kind = op[0]
        if kind == "alu3":
            _, mnem, rd, rn, rm = op
            lines.append(f"    {mnem} r{rd}, r{rn}, r{rm}")
        elif kind == "alu_imm":
            _, mnem, rd, rn, imm = op
            lines.append(f"    {mnem} r{rd}, r{rn}, #{imm}")
        elif kind == "mov_imm":
            _, mnem, rd, imm = op
            lines.append(f"    {mnem} r{rd}, #{imm}")
        elif kind == "shift":
            _, mnem, rd, rn, amount = op
            lines.append(f"    {mnem} r{rd}, r{rn}, #{amount}")
        elif kind == "mul":
            _, mnem, rd, rn, rm = op
            lines.append(f"    {mnem} r{rd}, r{rn}, r{rm}")
        elif kind == "unary":
            _, mnem, rd, rm = op
            lines.append(f"    {mnem} r{rd}, r{rm}")
        elif kind in ("cmp_reg",):
            _, mnem, rn, rm = op
            lines.append(f"    {mnem} r{rn}, r{rm}")
        elif kind == "cmp_imm":
            _, mnem, rn, imm = op
            lines.append(f"    {mnem} r{rn}, #{imm}")
        elif kind == "store":
            _, mnem, rd, word = op
            lines.append(f"    {mnem} r{rd}, [r0, #{word * 4}]")
        elif kind == "load":
            _, mnem, rd, word = op
            lines.append(f"    {mnem} r{rd}, [r0, #{word * 4}]")
        elif kind == "skip":
            _, branch, mnem, rd, rn, rm = op
            lines.append(f"    {branch} skip_{index}")
            lines.append(f"    {mnem} r{rd}, r{rn}, r{rm}")
            lines.append(f"skip_{index}:")
        elif kind == "block":
            _, mnem, regs, writeback = op
            reglist = ", ".join(f"r{r}" for r in sorted(regs))
            lines.append("    mov r3, r0")
            wb = "!" if writeback else ""
            lines.append(f"    {mnem} r3{wb}, {{{reglist}}}")
        elif kind in ("ldr_wb", "str_wb"):
            _, mnem, rd, word, post = op
            lines.append("    mov r3, r0")
            if post:
                lines.append(f"    {mnem} r{rd}, [r3], #{word * 4}")
            else:
                lines.append(f"    {mnem} r{rd}, [r3, #{word * 4}]!")
    lines.append("    pop {r4, r5, r6, r7}")
    lines.append("    bx lr")
    return "\n".join(lines)


@given(st.lists(_OPS, min_size=1, max_size=24),
       st.tuples(IMM8, IMM8, IMM8))
@settings(max_examples=40, deadline=None)
def test_random_programs_bit_identical(ops, args):
    """Random straight-line programs with predicated skips: every ISA/core
    pair must produce identical state on both execution paths."""
    source = render(ops)
    r1, r2, r3 = args
    for isa, core in ((ISA_ARM, ""), (ISA_THUMB, ""),
                      (ISA_THUMB2, ""), (ISA_THUMB2, "arm1156")):
        try:
            assemble(source, isa, base=FLASH_BASE)
        except (AssemblyError, EncodingError):
            continue  # e.g. a wide-only op in 16-bit Thumb: not this test's concern
        assert_equivalent(isa, source, args=(SRAM_BASE, r1, r2, r3), core=core)


# ----------------------------------------------------------------------
# loopy control flow: back-edges, loop-carried flags, IT inside loops
# ----------------------------------------------------------------------

#: body ops for loop programs keep scratch word 14 (the trip counter at
#: [r0, #56]) out of reach so the loop always terminates
WOFF_LOOP = st.integers(min_value=0, max_value=12)

_LOOP_OPS = st.one_of(
    st.tuples(st.just("alu3"),
              st.sampled_from(["adds", "subs", "ands", "orrs", "eors", "bics"]),
              REG, REG, REG),
    st.tuples(st.just("alu_imm"),
              st.sampled_from(["adds", "subs"]), REG, REG, IMM8),
    st.tuples(st.just("mov_imm"), st.just("movs"), REG, IMM8),
    st.tuples(st.just("shift"),
              st.sampled_from(["lsls", "lsrs", "asrs"]), REG, REG, SHIFT),
    st.tuples(st.just("mul"), st.just("mul"), REG, REG, REG),
    st.tuples(st.just("cmp_reg"), st.sampled_from(["cmp", "cmn", "tst"]),
              REG, REG),
    st.tuples(st.just("store"), st.sampled_from(["str", "strb", "strh"]),
              REG, WOFF_LOOP),
    st.tuples(st.just("load"),
              st.sampled_from(["ldr", "ldrb", "ldrh", "ldrsb", "ldrsh"]),
              REG, WOFF_LOOP),
    st.tuples(st.just("skip"),
              st.sampled_from(["beq", "bne", "bcs", "bcc", "bge", "blt",
                               "bgt", "ble", "bmi", "bpl"]),
              st.sampled_from(["adds", "subs", "eors"]), REG, REG, REG),
    # an IT block inside the loop (thumb2 only; other ISAs skip via the
    # assembly try/except) - predication forces the engines' step() path
    st.tuples(st.just("it"), st.sampled_from(["eq", "ne", "ge", "lt"]),
              REG, REG, REG),
)


def render_loop(ops: list[tuple], trips: int) -> str:
    """A counted loop whose body is the generated ops: the trip counter
    lives in scratch memory (word 14) so arbitrary body ops cannot
    clobber it, and the back-edge flags are loop-carried state the trace
    engine's guard must revalidate every iteration."""
    lines = ["main:", "    push {r4, r5, r6, r7}",
             f"    movs r1, #{trips}",
             "    str r1, [r0, #56]",
             "loop:"]
    for index, op in enumerate(ops):
        kind = op[0]
        if kind == "alu3":
            _, mnem, rd, rn, rm = op
            lines.append(f"    {mnem} r{rd}, r{rn}, r{rm}")
        elif kind == "alu_imm":
            _, mnem, rd, rn, imm = op
            lines.append(f"    {mnem} r{rd}, r{rn}, #{imm}")
        elif kind == "mov_imm":
            _, mnem, rd, imm = op
            lines.append(f"    {mnem} r{rd}, #{imm}")
        elif kind == "shift":
            _, mnem, rd, rn, amount = op
            lines.append(f"    {mnem} r{rd}, r{rn}, #{amount}")
        elif kind == "mul":
            _, mnem, rd, rn, rm = op
            lines.append(f"    {mnem} r{rd}, r{rn}, r{rm}")
        elif kind == "cmp_reg":
            _, mnem, rn, rm = op
            lines.append(f"    {mnem} r{rn}, r{rm}")
        elif kind in ("store", "load"):
            _, mnem, rd, word = op
            lines.append(f"    {mnem} r{rd}, [r0, #{word * 4}]")
        elif kind == "skip":
            _, branch, mnem, rd, rn, rm = op
            lines.append(f"    {branch} lskip_{index}")
            lines.append(f"    {mnem} r{rd}, r{rn}, r{rm}")
            lines.append(f"lskip_{index}:")
        elif kind == "it":
            _, cond, rn, rm, rd = op
            from repro.isa import Condition

            inverse = Condition.parse(cond).inverse.name.lower()
            lines.append(f"    cmp r{rn}, r{rm}")
            lines.append(f"    ite {cond}")
            lines.append(f"    add{cond} r{rd}, r{rd}, #1")
            lines.append(f"    add{inverse} r{rd}, r{rd}, #3")
    lines += [
        "    ldr r1, [r0, #56]",
        "    subs r1, r1, #1",
        "    str r1, [r0, #56]",
        "    bne loop",
        "    pop {r4, r5, r6, r7}",
        "    bx lr",
    ]
    return "\n".join(lines)


@given(st.lists(_LOOP_OPS, min_size=1, max_size=12),
       st.integers(min_value=1, max_value=24),
       st.tuples(IMM8, IMM8, IMM8))
@settings(max_examples=40, deadline=None)
def test_random_loop_programs_bit_identical(ops, trips, args):
    """Random counted loops - the trace engine fuses the back-edge into a
    generated while-loop - must leave identical machine state on every
    core and engine, for every loop body shape and trip count."""
    source = render_loop(ops, trips)
    r1, r2, r3 = args
    for isa, core in ((ISA_ARM, ""), (ISA_THUMB, ""),
                      (ISA_THUMB2, ""), (ISA_THUMB2, "arm1156")):
        try:
            assemble(source, isa, base=FLASH_BASE)
        except (AssemblyError, EncodingError):
            continue  # e.g. IT blocks outside Thumb-2: not this test's concern
        assert_equivalent(isa, source, args=(SRAM_BASE, r1, r2, r3), core=core)


def _backedge_cycles(isa: str, source: str, core: str = "",
                     args=()) -> list[int]:
    """The cycle counts at which the reference interpreter sits at the
    loop's back-edge branch, about to execute it."""
    machine = _build_machine(isa, source, core=core)
    cpu = machine.cpu
    set_engine(machine, False, False, False)
    program = cpu.program
    loop_head = program.symbols["loop"]
    backedge = None
    for address, ins in program._by_address.items():
        if ins.mnemonic == "B" and ins.target == loop_head:
            backedge = address
    assert backedge is not None, "no back-edge branch found"
    # drive the reference interpreter by hand, sampling at the back-edge
    cpu.regs.write(0, SRAM_BASE)
    for register, value in enumerate(args, start=1):
        cpu.regs.write(register, value)
    cpu.regs.pc = program.symbols["main"]
    cycles = []
    while not cpu.halted:
        if cpu.regs.pc == backedge:
            cycles.append(cpu.cycles)
        cpu.step()
    return cycles


@given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=2))
@settings(max_examples=20, deadline=None)
def test_irq_storms_exactly_on_backedge_cycles(stride, offset):
    """IRQ storms whose assert cycles land *exactly* on the cycles at
    which the loop's back-edge executes (and one cycle around them) must
    be taken at the same instruction boundary with identical latency
    records on every engine - the trace engine's fused loop has to bail
    out of its generated while-loop at precisely those points."""
    edges = _backedge_cycles(ISA_THUMB2, STRAIGHTLINE_LOOP_SOURCE)
    asserts = [cycle + offset - 1 for cycle in edges[::stride]][:12]
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = _build_machine(ISA_THUMB2, STRAIGHTLINE_LOOP_SOURCE,
                                 trace=True)
        set_engine(machine, fastpath, superblocks, trace_sb)
        handler = machine.cpu.program.symbols["handler"]
        for number, cycle in enumerate(asserts, start=1):
            machine.cpu.nvic.raise_irq(number, handler=handler,
                                       at_cycle=cycle, priority=number % 3)
        machine.call("main")
        state = _state(machine)
        state["irq_records"] = [
            (r.number, r.assert_cycle, r.entry_cycle, r.exit_cycle,
             r.tail_chained)
            for r in machine.cpu.nvic.stats.records
        ]
        states.append(state)
    assert all(state == states[0] for state in states)
    assert states[0]["irq_records"], "storm never delivered"


def test_vic_irqs_on_backedge_cycles_bit_identical():
    """The same back-edge-exact storm on the VIC cores (ARM7 and the
    cached-fetch ARM1156), whose handlers carry the software preamble."""
    for isa, core in ((ISA_THUMB, ""), (ISA_THUMB2, "arm1156")):
        edges = _backedge_cycles(isa, VIC_LOOP_SOURCE, core=core)
        asserts = [cycle for cycle in edges[::4]][:8]
        states = []
        for _, fastpath, superblocks, trace_sb in ENGINES:
            machine = _build_machine(isa, VIC_LOOP_SOURCE, core=core,
                                     trace=True)
            set_engine(machine, fastpath, superblocks, trace_sb)
            handler = machine.cpu.program.symbols["handler"]
            for number, cycle in enumerate(asserts, start=1):
                machine.cpu.vic.raise_irq(number, handler=handler,
                                          at_cycle=cycle)
            machine.call("main")
            states.append(_state(machine))
        assert all(state == states[0] for state in states), (isa, core)


# The software-preamble handler restores its scratch registers with a
# plain (restart-safe) pop and returns via bx lr: a pop-to-PC interrupt
# return could itself be abandoned mid-transfer on the ARM1156 after its
# return-unwind side effects, which real handlers avoid for this reason.
VIC_LOOP_SOURCE = """
main:
    movs r0, #0
    movs r2, #0
loop:
    adds r2, r2, #3
    eors r2, r2, r0
    adds r0, r0, #1
    cmp r0, #150
    bne loop
    mov r0, r2
    bx lr
handler:
    push {r1, r2}
    ldr r1, =0x20000030
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    pop {r1, r2}
    bx lr
"""


_IT_CONDS = ["eq", "ne", "cs", "cc", "ge", "lt", "gt", "le"]


@given(st.sampled_from(_IT_CONDS),
       st.sampled_from(["", "t", "e", "tt", "te", "et", "ee"]),
       st.tuples(IMM8, IMM8))
@settings(max_examples=30, deadline=None)
def test_it_blocks_bit_identical(cond, mask, args):
    """IT-predicated sequences force the fast loop's slow-path fallback;
    results must still be bit-identical."""
    from repro.isa import Condition

    first = Condition.parse(cond)
    inverse = first.inverse.name.lower()
    body = []
    for ch in mask:
        chosen = cond if ch == "t" else inverse
        body.append(f"    add{chosen} r4, r4, #1")
    source = "\n".join([
        "main:",
        "    movs r4, #0",
        "    cmp r1, r2",
        f"    it{mask} {cond}",
        f"    add{cond} r4, r4, #7",
        *body,
        "    mov r0, r4",
        "    bx lr",
    ])
    assert_equivalent(ISA_THUMB2, source, args=(0, args[0], args[1]))


# ----------------------------------------------------------------------
# curated equivalence cases
# ----------------------------------------------------------------------

def test_autoindy_suite_bit_identical():
    """Every Table 1 cell: fast and reference runs agree exactly."""
    for _, core, isa in TABLE1_CONFIGS:
        for workload in AUTOINDY_SUITE:
            fast = run_kernel(workload, core, isa, seed=7, scale=2)
            slow = run_kernel(workload, core, isa, seed=7, scale=2,
                              machine_kwargs={})
            assert fast == slow  # sanity: determinism of the harness itself
            # now force the reference path for the comparison run
            from repro.codegen import compile_program
            from repro.core import build_machine
            from repro.sim.rng import DeterministicRng

            fn = workload.build()
            program = compile_program([fn], isa, base=FLASH_BASE)
            prepared = workload.make_input(DeterministicRng(7), 2)
            machine = build_machine(core, program)
            machine.cpu.fastpath = False
            machine.load_data(SRAM_BASE, prepared.data)
            result = machine.call(fn.name, *prepared.args(SRAM_BASE))
            assert (result, machine.cpu.cycles,
                    machine.cpu.instructions_executed) == (
                fast.result, fast.cycles, fast.instructions), workload.name


INTERRUPT_SOURCE = """
main:
    movs r0, #0
loop:
    adds r0, r0, #1
    cmp r0, #400
    bne loop
    bx lr
handler:
    ldr r1, =0x20000100
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    bx lr
"""


def test_m3_interrupt_storm_bit_identical():
    """NVIC stacking, tail-chaining, and EXC_RETURN through the fast loop."""
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = _build_machine(ISA_THUMB2, INTERRUPT_SOURCE, trace=True)
        set_engine(machine, fastpath, superblocks, trace_sb)
        handler = machine.cpu.program.symbols["handler"]
        for number, cycle in ((1, 60), (2, 60), (3, 200), (4, 205)):
            machine.cpu.nvic.raise_irq(number, handler=handler,
                                       at_cycle=cycle, priority=number)
        assert machine.call("main") == 400
        state = _state(machine)
        state["irq_records"] = [
            (r.number, r.assert_cycle, r.entry_cycle, r.exit_cycle, r.tail_chained)
            for r in machine.cpu.nvic.stats.records
        ]
        states.append(state)
    assert all(state == states[0] for state in states)
    assert states[0]["irq_records"], "storm never delivered"


@given(st.lists(st.integers(min_value=10, max_value=3000), min_size=1,
                max_size=12))
@settings(max_examples=25, deadline=None)
def test_irq_asserts_land_mid_superblock(cycles):
    """IRQs asserting at arbitrary cycles - including in the middle of a
    straight-line run the superblock engine would otherwise chain through -
    must be taken at exactly the same instruction boundary on every
    engine (the event-horizon guarantee)."""
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = _build_machine(ISA_THUMB2, STRAIGHTLINE_LOOP_SOURCE,
                                 trace=True)
        set_engine(machine, fastpath, superblocks, trace_sb)
        handler = machine.cpu.program.symbols["handler"]
        for number, cycle in enumerate(cycles, start=1):
            machine.cpu.nvic.raise_irq(number, handler=handler,
                                       at_cycle=cycle,
                                       priority=number % 3)
        machine.call("main")
        state = _state(machine)
        state["irq_records"] = [
            (r.number, r.assert_cycle, r.entry_cycle, r.exit_cycle,
             r.tail_chained)
            for r in machine.cpu.nvic.stats.records
        ]
        states.append(state)
    assert all(state == states[0] for state in states)


STRAIGHTLINE_LOOP_SOURCE = """
main:
    movs r0, #0
    movs r2, #0
loop:
    adds r2, r2, #3
    eors r2, r2, r0
    adds r2, r2, #5
    lsls r4, r2, #1
    lsrs r5, r2, #1
    adds r4, r4, r5
    subs r4, r4, #1
    adds r0, r0, #1
    cmp r0, #120
    bne loop
    mov r0, r2
    bx lr
handler:
    ldr r1, =0x20000100
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    bx lr
"""


def test_arm7_interrupts_bit_identical():
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = _build_machine(ISA_THUMB, ARM7_IRQ_SOURCE, trace=True)
        set_engine(machine, fastpath, superblocks, trace_sb)
        handler = machine.cpu.program.symbols["handler"]
        machine.cpu.vic.raise_irq(1, handler=handler, at_cycle=80)
        machine.cpu.vic.raise_irq(2, handler=handler, at_cycle=90, priority=1)
        assert machine.call("main") == 200
        states.append(_state(machine))
    assert all(state == states[0] for state in states)


ARM7_IRQ_SOURCE = """
main:
    movs r0, #0
loop:
    adds r0, r0, #1
    cmp r0, #200
    bne loop
    bx lr
handler:
    push {r1, r2, lr}
    ldr r1, =0x20000100
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    pop {r1, r2, pc}
"""


WFI_SOURCE = """
main:
    movs r0, #0
    wfi
    adds r0, r0, #1
    bx lr
handler:
    bx lr
"""


def test_wfi_wakeup_bit_identical():
    """Sleep ticks take the reference path inside run(); the wake-up and
    subsequent fast dispatch must agree with pure slow-path execution."""
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = _build_machine(ISA_THUMB2, WFI_SOURCE)
        set_engine(machine, fastpath, superblocks, trace_sb)
        handler = machine.cpu.program.symbols["handler"]
        machine.cpu.nvic.raise_irq(1, handler=handler, at_cycle=40)
        assert machine.call("main") == 1
        states.append(_state(machine))
    assert all(state == states[0] for state in states)


LDM_SOURCE = """
main:
    ldr r0, =0x20000000
    movs r5, #0
    movs r6, #12
outer:
    ldm r0, {r1, r2, r3, r4}
    adds r5, r5, r1
    adds r5, r5, r2
    adds r5, r5, r3
    adds r5, r5, r4
    subs r6, r6, #1
    bne outer
    mov r0, r5
    bx lr
handler:
    bx lr
"""


def test_arm1156_restartable_ldm_bit_identical():
    """With IRQs pending, 1156 block transfers must take the reference
    _step_restartable path so abandoned-transfer timing is modelled
    identically - while every other instruction stays on the fast path
    (the event horizon replaces the old defer-everything rule).  A
    far-future IRQ left in the queue exercises exactly that split."""
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = _build_machine(ISA_THUMB2, LDM_SOURCE, core="arm1156")
        set_engine(machine, fastpath, superblocks, trace_sb)
        machine.load_data(SRAM_BASE, bytes(range(16)))
        handler = machine.cpu.program.symbols["handler"]
        machine.cpu.vic.raise_irq(1, handler=handler, at_cycle=70)
        machine.cpu.vic.raise_irq(2, handler=handler, at_cycle=260)
        # never delivered: keeps the queue non-empty for the whole run
        machine.cpu.vic.raise_irq(3, handler=handler, at_cycle=10_000_000)
        machine.call("main")
        state = _state(machine)
        state["abandoned"] = machine.cpu.abandoned_transfers
        states.append(state)
    assert all(state == states[0] for state in states)


def test_merged_program_images_use_lazy_predecode():
    """engine_ecu.py merges a second program's instructions into the
    execution index after machine construction; the fast loop must
    predecode those addresses on first dispatch, not fault on them."""
    kernel = assemble(
        """
        main:
            movs r0, #0
        loop:
            adds r0, r0, #1
            cmp r0, #100
            bne loop
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    isr = assemble(
        """
        crank_isr:
            ldr r1, =0x20000180
            ldr r2, [r1]
            adds r2, r2, #1
            str r2, [r1]
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE + 0x4000,
    )
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = build_cortexm3(kernel)
        set_engine(machine, fastpath, superblocks, trace_sb)
        machine.load_program(isr)
        merged = dict(kernel._by_address)
        merged.update(isr._by_address)
        machine.cpu.program._by_address = merged
        machine.cpu.nvic.raise_irq(1, handler=isr.symbols["crank_isr"],
                                   at_cycle=30)
        assert machine.call("main") == 100
        states.append(_state(machine))
    assert all(state == states[0] for state in states)


def test_compile_cycles_agrees_with_instruction_cycles_everywhere():
    """Anti-drift guard: the prebound cycle closures must equal the
    reference instruction_cycles for every mnemonic and outcome shape, on
    every core.  A cycle-model tweak applied to one side only fails here
    before any program-level test has to stumble on it."""
    from itertools import product

    from repro.isa import Outcome, Shift, instr
    from repro.isa.instructions import ALL_MNEMONICS

    program = assemble("main:\n    bx lr\n", ISA_THUMB2, base=FLASH_BASE)
    cores = [build_cortexm3(program).cpu,
             build_arm1156(program).cpu,
             build_arm7(assemble("main:\n    bx lr\n", ISA_THUMB,
                                 base=FLASH_BASE)).cpu]
    outcomes = []
    for taken, skipped, regs_t, div_bits in product(
            (False, True), (False, True), (0, 1, 3, 8), (1, 7, 17, 32)):
        outcomes.append(Outcome(taken=taken, skipped=skipped,
                                regs_transferred=regs_t,
                                div_early_exit=div_bits))
    for mnemonic in sorted(ALL_MNEMONICS):
        variants = [instr(mnemonic), instr(mnemonic, reglist=(0, 1, 2)),
                    instr(mnemonic, rm=1), instr(mnemonic, rm=1, shift=Shift("LSL", 2))]
        for cpu, ins, outcome in product(cores, variants, outcomes):
            if (mnemonic in ("LDM", "STM", "PUSH", "POP")
                    and outcome.regs_transferred != len(ins.reglist)):
                continue  # unreachable: the handler always sets rt=len(reglist)
            fast = cpu.compile_cycles(ins)
            if fast is None:
                continue
            assert fast(outcome) == cpu.instruction_cycles(ins, outcome), (
                cpu.name, ins.mnemonic, outcome)


RECORDED_SOURCE = """
main:
    movs r2, #0
    movs r4, #0
loop:
    ldr r5, [r0, #0]
    ldr r6, =0x12345678
    adds r5, r5, r6
    str r5, [r0, #4]
    ldrh r6, [r0, #8]
    strb r6, [r0, #12]
    ldm r0, {r5, r6}
    adds r4, r4, r5
    adds r2, r2, #1
    cmp r2, #40
    bne loop
    mov r0, r4
    bx lr
"""


def test_access_records_bit_identical():
    """With bus recording on, the exact access stream (address, size,
    kind, side, stalls - fetches and data interleaved) must be identical
    on every engine, fused superblocks included."""
    streams = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = _build_machine(ISA_THUMB2, RECORDED_SOURCE)
        set_engine(machine, fastpath, superblocks, trace_sb)
        machine.bus.record = True
        machine.call("main", SRAM_BASE)
        streams.append([(a.addr, a.size, a.kind, a.side, a.stalls)
                        for a in machine.bus.accesses])
    assert all(stream == streams[0] for stream in streams)
    assert any(side == "D" for _, _, _, side, _ in streams[0])


def test_fused_blx_through_lr_reads_target_before_linking():
    """Regression: a fused `blx lr` must branch to the OLD link register,
    not the just-written return address - the target read has to precede
    the LR write, exactly as in the predecode closure.  The loop runs well
    past the fusion threshold so the generated-code path is exercised."""
    source = """
    main:
        mov r5, lr
        movs r0, #0
        movs r4, #0
        ldr r6, =helper
    loop:
        mov lr, r6
        adds r4, r4, #1
        blx lr
        adds r0, r0, #1
        cmp r0, #50
        bne loop
        mov r0, r4
        bx r5
    helper:
        adds r4, r4, #1
        bx lr
    """
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        machine = _build_machine(ISA_THUMB2, source)
        set_engine(machine, fastpath, superblocks, trace_sb)
        assert machine.call("main") == 100
        states.append(_state(machine))
    assert all(state == states[0] for state in states)


def test_mpu_faults_identical_across_engines():
    """An MPU on the core must keep every data access on the checked path
    - including inside already-fused superblocks (the inline bus fast path
    is guarded on ``cpu.mpu is None``) - and a denied access must leave
    identical partial state on every engine."""
    import pytest

    from repro.core.exceptions import DataAbort
    from repro.isa.assembler import assemble as _asm
    from repro.memory.mpu import Mpu

    source = """
    main:
        movs r2, #0
    loop:
        str r2, [r0, #0]
        ldr r3, [r0, #4]
        adds r2, r2, #1
        cmp r2, #60
        bne loop
        str r2, [r1, #0]
        bx lr
    """
    program = _asm(source, ISA_THUMB2, base=FLASH_BASE)
    states = []
    for _, fastpath, superblocks, trace_sb in ENGINES:
        mpu = Mpu(background_perms="none")
        mpu.configure(0, SRAM_BASE, 0x1000, perms="rw")
        machine = build_cortexm3(program, mpu=mpu)
        set_engine(machine, fastpath, superblocks, trace_sb)
        with pytest.raises(DataAbort):
            # the hot loop (fused well before iteration 60) stays legal;
            # the post-loop store hits unmapped MPU space and aborts
            machine.call("main", SRAM_BASE, SRAM_BASE + 0x10000)
        state = _state(machine)
        state["mpu_faults"] = mpu.faults
        states.append(state)
    assert all(state == states[0] for state in states)
    assert states[0]["mpu_faults"] == 1


def test_trace_flag_toggle_rebuilds_cached_blocks():
    """Toggling the engine tier on a *reused* machine must not serve the
    other tier's cached fused blocks: block shapes (goto chaining) and
    emission both depend on trace_superblocks."""
    machine = _build_machine(ISA_THUMB2, STRAIGHTLINE_LOOP_SOURCE)
    machine.call("main")
    fused_before = {pc: entry[3]
                    for pc, entry in machine.cpu._sb_blocks.items()}
    assert any(fn is not None for fn in fused_before.values()), \
        "trace run never fused its hot loop"
    machine.cpu.trace_superblocks = False
    machine.call("main")
    for pc, entry in machine.cpu._sb_blocks.items():
        if entry[3] is not None and fused_before.get(pc) is not None:
            assert entry[3] is not fused_before[pc], \
                "stale trace-tier fused block survived the engine toggle"


def test_hot_superblocks_fuse():
    """A hot loop must actually cross the fusion threshold (guards the
    threshold plumbing against silent regressions) and still match the
    reference bit for bit - which assert_equivalent already checked for
    this source shape; here we check the machinery engaged."""
    machine = _build_machine(ISA_THUMB2, RECORDED_SOURCE)
    machine.call("main", SRAM_BASE)
    blocks = machine.cpu._sb_blocks.values()
    assert any(entry[3] is not None for entry in blocks), \
        "no superblock was fused on a 40-iteration loop"


def test_cond_checks_agree_with_condition_passed_exhaustively():
    """Anti-drift guard: the predecoded condition predicates must equal
    condition_passed() for every condition and every N/Z/C/V combination."""
    from itertools import product

    from repro.isa import Apsr, Condition, condition_passed
    from repro.isa.predecode import COND_CHECKS

    for cond in Condition:
        for n, z, c, v in product((False, True), repeat=4):
            apsr = Apsr(n=n, z=z, c=c, v=v)
            reference = condition_passed(cond, apsr)
            if cond == Condition.AL:
                assert cond not in COND_CHECKS  # represented as "no check"
                continue
            assert bool(COND_CHECKS[cond](apsr)) == reference, (cond, str(apsr))
