"""Property-based tests for the code generators and their helpers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import IrBuilder, IrInterpreter, IrMemory, compile_program
from repro.core import FLASH_BASE, build_arm7, build_cortexm3
from repro.isa import ISA_ARM, ISA_THUMB, ISA_THUMB2

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


def compile_and_run(fn, isa, args):
    program = compile_program([fn], isa, base=FLASH_BASE)
    machine = build_cortexm3(program) if isa == ISA_THUMB2 else build_arm7(program)
    return machine.call(fn.name, *args, max_instructions=5_000_000)


def divide_fn(signed: bool):
    b = IrBuilder("divide", num_params=2)
    x, y = b.params
    b.ret(b.sdiv(x, y) if signed else b.udiv(x, y))
    return b.build()


@given(WORDS, WORDS)
@settings(max_examples=60, deadline=None)
def test_software_udiv_helpers_match_hardware(a, d):
    """The ARM and Thumb software-divide helpers must agree with both the
    Thumb-2 hardware divide and Python for arbitrary operands."""
    expected = (a // d) & 0xFFFFFFFF if d else 0
    fn = divide_fn(signed=False)
    for isa in (ISA_ARM, ISA_THUMB, ISA_THUMB2):
        assert compile_and_run(fn, isa, (a, d)) == expected, isa


@given(WORDS, WORDS)
@settings(max_examples=60, deadline=None)
def test_software_sdiv_helpers_match_hardware(a, d):
    def signed(v):
        return v - (1 << 32) if v & 0x80000000 else v

    if d == 0:
        expected = 0
    else:
        sa, sd = signed(a), signed(d)
        q = abs(sa) // abs(sd)
        if (sa < 0) != (sd < 0):
            q = -q
        expected = q & 0xFFFFFFFF
    fn = divide_fn(signed=True)
    for isa in (ISA_ARM, ISA_THUMB, ISA_THUMB2):
        assert compile_and_run(fn, isa, (a, d)) == expected, isa


@given(WORDS)
@settings(max_examples=40, deadline=None)
def test_rbit_expansions_match_native(value):
    """ARM/Thumb mask-sequence expansions vs Thumb-2's RBIT instruction."""
    b = IrBuilder("dorbit", num_params=1)
    (x,) = b.params
    b.ret(b.rbit(x))
    fn = b.build()
    expected = int(f"{value:032b}"[::-1], 2)
    for isa in (ISA_ARM, ISA_THUMB, ISA_THUMB2):
        assert compile_and_run(fn, isa, (value,)) == expected, isa


@given(WORDS)
@settings(max_examples=40, deadline=None)
def test_rev_expansion_matches_native(value):
    b = IrBuilder("dorev", num_params=1)
    (x,) = b.params
    b.ret(b.rev(x))
    fn = b.build()
    expected = int.from_bytes(value.to_bytes(4, "little"), "big")
    for isa in (ISA_ARM, ISA_THUMB, ISA_THUMB2):
        assert compile_and_run(fn, isa, (value,)) == expected, isa


@given(WORDS, st.integers(min_value=0, max_value=31), st.data())
@settings(max_examples=60, deadline=None)
def test_bitfield_expansions_match_native(value, lsb, data):
    width = data.draw(st.integers(min_value=1, max_value=32 - lsb))
    b = IrBuilder("dobfx", num_params=1)
    (x,) = b.params
    b.ret(b.ubfx(x, lsb, width))
    fn = b.build()
    expected = (value >> lsb) & ((1 << width) - 1)
    for isa in (ISA_ARM, ISA_THUMB, ISA_THUMB2):
        assert compile_and_run(fn, isa, (value,)) == expected, isa


@given(WORDS)
@settings(max_examples=100, deadline=None)
def test_constant_materialization_exact(value):
    """Every backend must be able to produce any 32-bit constant."""
    b = IrBuilder("makeconst", num_params=0)
    b.ret(b.const(value))
    fn = b.build()
    for isa in (ISA_ARM, ISA_THUMB, ISA_THUMB2):
        assert compile_and_run(fn, isa, ()) == value, isa
    # and under the literal-pool policy too
    program = compile_program([fn], ISA_THUMB2, base=FLASH_BASE,
                              const_policy="literal")
    machine = build_cortexm3(program)
    assert machine.call("makeconst") == value


@given(st.lists(WORDS, min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_interpreter_matches_machines_on_memory_sum(values):
    b = IrBuilder("sumarr", num_params=2)
    base, count = b.params
    total = b.const(0)
    i = b.const(0)
    b.label("loop")
    b.assign(total, b.add(total, b.load_idx(base, i, shift=2)))
    b.assign(i, b.add(i, 1))
    b.brcond("lo", i, count, "loop")
    b.ret(total)
    fn = b.build()

    payload = b"".join(v.to_bytes(4, "little") for v in values)
    interp = IrInterpreter(IrMemory(size=0x1000, base=0x2000_0000))
    interp.memory.load_bytes(0x2000_0000, payload)
    expected = interp.run(fn, 0x2000_0000, len(values))
    assert expected == sum(values) & 0xFFFFFFFF

    for isa in (ISA_ARM, ISA_THUMB, ISA_THUMB2):
        program = compile_program([fn], isa, base=FLASH_BASE)
        machine = build_cortexm3(program) if isa == ISA_THUMB2 else build_arm7(program)
        machine.load_data(0x2000_0000, payload)
        assert machine.call("sumarr", 0x2000_0000, len(values)) == expected, isa


def test_full_width_bitfield_extracts_compile_everywhere():
    """Regression: ubfx/sbfx with lsb=0, width=32 reduce the Thumb mask
    sequence's shifts to zero, which 16-bit Thumb cannot encode - the
    lowering must emit a plain MOV (or nothing) instead."""
    for make, expected in (
        (lambda b, x: b.ubfx(x, 0, 32), 0xDEADBEEF),
        (lambda b, x: b.sbfx(x, 0, 32), 0xDEADBEEF),
    ):
        b = IrBuilder("fullwidth", num_params=1)
        (x,) = b.params
        b.ret(make(b, x))
        fn = b.build()
        for isa in (ISA_ARM, ISA_THUMB, ISA_THUMB2):
            assert compile_and_run(fn, isa, (0xDEADBEEF,)) == expected, isa
