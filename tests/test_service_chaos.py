"""The supervised worker fleet under the deterministic chaos harness.

The robustness tentpole's acceptance claim, asserted directly: under
every seeded fault schedule - workers SIGKILL'd before or after
computing, silent stalls past the liveness window, busy stalls past the
hard per-cell deadline, clients severed mid-stream, poisoned specs that
kill every worker they touch - the client-visible record stream is
**byte-identical** to a fault-free run, and the service's bounded-queue
accounting (active requests, active cells, in-flight table) returns to
zero.  Fault schedules are frozen data (:mod:`repro.sim.service.chaos`)
keyed by worker spawn sequence number, so every test replays exactly.

Per-cell failure is data, not transport: a quarantined or cleanly
raising spec streams as a ``domain="cell_error"`` record with
``status="error"`` while the rest of the sweep completes normally.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.sim.campaign import (
    CampaignRequest,
    CellErrorRecord,
    ScenarioSpec,
    _record_json,
    execute_request,
)
from repro.sim.service import (
    CampaignClient,
    CampaignService,
    CampaignServiceError,
    ChaosSchedule,
    WorkerFaultPlan,
    serve_tcp,
)

#: fast heartbeats so stall/hang tests resolve in tenths of a second
#: (liveness window = 4 * heartbeat = 0.8s)
FAST = {"heartbeat": 0.2}


def chaos_specs() -> list[ScenarioSpec]:
    """Eight cheap cells: enough for two workers to interleave on."""
    pool = []
    for i in range(8):
        if i % 2:
            pool.append(ScenarioSpec(
                label=f"osek {i}", domain="osek", seed=i,
                params=(("tasks", 3 + i % 3), ("utilisation", 0.5),
                        ("horizon_us", 200_000))))
        else:
            pool.append(ScenarioSpec(
                label=f"can {i}", domain="can", seed=i,
                params=(("messages", 4 + i % 3), ("load", 0.4),
                        ("horizon_us", 200_000))))
    return pool


REQUEST = CampaignRequest(specs=tuple(chaos_specs()))


@pytest.fixture(scope="module")
def fault_free_bytes() -> bytes:
    """The undisturbed local pooled stream every chaos run must match."""
    lines = [_record_json(r) + "\n" for r in execute_request(REQUEST).records]
    return "".join(lines).encode("utf-8")


async def run_under(chaos, *, workers=2, options=None, request=REQUEST):
    """One supervised sweep under a fault schedule; returns everything a
    test could want to assert on."""
    service = CampaignService(workers_proc=workers, chaos=chaos,
                              supervisor_options={**FAST, **(options or {})})
    await service.start()
    try:
        state = service.submit(request)
        records = []
        async for _, record in service.stream_records(state):
            records.append(record)
        stream = "".join(_record_json(r) + "\n" for r in records).encode("utf-8")
        return state.summary(), service.status(), stream, records
    finally:
        await service.shutdown()


def assert_accounting_zero(status: dict) -> None:
    """Every fault schedule must leave no slot leaked, no cell stranded."""
    assert status["active"] == 0
    assert status["active_cells"] == 0
    assert status["inflight"] == 0


# ----------------------------------------------------------------------
# the tentpole property: seeded schedules cannot change the stream bytes
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [3, 11, 2005])
def test_seeded_kill_schedules_stream_byte_identical(seed, fault_free_bytes):
    """Sweep the seeded schedule space: one or two worker kills (recv or
    report phase, RNG's choice) recover to the exact fault-free bytes."""
    # strikes=3: with exactly two scheduled kills, a requeued cell that
    # happens to land in the *other* worker's kill window (scheduling-
    # dependent) still gets a third, clean attempt - quarantine is
    # impossible by construction and the assertion below is deterministic
    schedule = ChaosSchedule.seeded(seed, workers=2, cells=8, kills=2)
    summary, status, stream, _ = asyncio.run(run_under(
        schedule, options={"quarantine_strikes": 3}))
    assert summary["status"] == "ok" and summary["failed"] == 0
    assert stream == fault_free_bytes
    assert status["supervisor"]["lost"] >= 1        # the faults really fired
    assert status["supervisor"]["requeues"] >= 1    # and cells were recovered
    assert_accounting_zero(status)


def test_report_phase_kill_recomputes_the_lost_cell(fault_free_bytes):
    """The dedup window: a worker that computed a cell but died before
    reporting it loses the work; the requeued recompute is byte-equal."""
    schedule = ChaosSchedule(plans=(
        (0, WorkerFaultPlan(kill_at_cell=1, kill_phase="report")),))
    summary, status, stream, _ = asyncio.run(run_under(schedule))
    assert summary["status"] == "ok"
    assert stream == fault_free_bytes
    assert status["supervisor"]["lost"] == 1
    assert status["supervisor"]["respawns"] == 1
    assert_accounting_zero(status)


def test_silent_stall_trips_liveness_and_recovers(fault_free_bytes):
    """A wedged worker (heartbeats stop, process never exits) is detected
    by heartbeat silence, killed, and its cell requeued."""
    schedule = ChaosSchedule(plans=(
        (0, WorkerFaultPlan(stall_at_cell=1, stall_seconds=3.0)),))
    summary, status, stream, _ = asyncio.run(run_under(schedule))
    assert summary["status"] == "ok"
    assert stream == fault_free_bytes
    assert status["supervisor"]["lost"] == 1        # liveness window fired
    assert_accounting_zero(status)


def test_busy_stall_trips_the_hard_deadline(fault_free_bytes):
    """A livelocked worker (heartbeats keep coming, the cell never ends)
    is bounded by the per-cell deadline, not trusted forever."""
    schedule = ChaosSchedule(plans=(
        (0, WorkerFaultPlan(stall_at_cell=1, stall_seconds=30.0,
                            stall_silent=False)),))
    summary, status, stream, _ = asyncio.run(run_under(
        schedule, workers=1,
        options={"cell_timeout": 3.0, "timeout_floor": 3.0}))
    assert summary["status"] == "ok"
    assert stream == fault_free_bytes
    assert status["supervisor"]["lost"] == 1        # the deadline fired
    assert status["supervisor"]["requeues"] == 1
    assert_accounting_zero(status)


def test_poisoned_spec_quarantines_as_typed_record(fault_free_bytes):
    """A spec that kills every worker it reaches is quarantined after two
    strikes: a per-cell ``status="error"`` record in its stream slot, the
    other cells byte-identical, and nothing cached for the poisoned key
    (a restarted service retries it fresh)."""
    specs = chaos_specs()
    poisoned = specs[3]
    schedule = ChaosSchedule(poison=(poisoned.key(),))
    summary, status, stream, records = asyncio.run(run_under(schedule))
    assert summary["status"] == "ok"                # the sweep completed
    assert summary["failed"] == 1
    errors = [r for r in records if isinstance(r, CellErrorRecord)]
    assert len(errors) == 1
    assert errors[0].error == "quarantined"
    assert errors[0].status == "error" and errors[0].key == poisoned.key()
    assert records.index(errors[0]) == 3            # in its spec slot
    # two strikes = two dead workers, then no further retries
    assert status["supervisor"]["quarantined"] == 1
    assert status["supervisor"]["lost"] == 2
    # every healthy cell matches the fault-free run positionally
    reference = fault_free_bytes.decode("utf-8").splitlines(keepends=True)
    for index, record in enumerate(records):
        if index != 3:
            assert _record_json(record) + "\n" == reference[index]
    assert_accounting_zero(status)


def test_inworker_exception_is_a_cell_error_record_not_a_transport_error():
    """A spec that raises cleanly inside a worker costs no respawn: the
    worker stays in the fleet and the failure streams as data."""
    specs = chaos_specs()[:2]
    bad = ScenarioSpec(label="bad", domain="osek", params=(("tasks", 0),))
    request = CampaignRequest(specs=(specs[0], bad, specs[1]))
    summary, status, stream, records = asyncio.run(
        run_under(None, request=request))
    assert summary["status"] == "ok" and summary["failed"] == 1
    assert isinstance(records[1], CellErrorRecord)
    assert records[1].error == "compute-error"
    assert "ValueError" in records[1].message
    assert status["supervisor"]["lost"] == 0        # no worker died for this
    assert status["supervisor"]["respawns"] == 0
    assert_accounting_zero(status)


def test_pool_exhaustion_fails_the_request_typed():
    """A fleet that dies faster than its respawn budget allows fails the
    request loudly - a typed error summary, not a hang - and frees its
    bounded-queue slots."""
    schedule = ChaosSchedule(plans=(
        (0, WorkerFaultPlan(kill_at_cell=0, kill_phase="recv")),))

    async def go():
        service = CampaignService(workers_proc=1, chaos=schedule,
                                  respawn_budget=0,
                                  supervisor_options=dict(FAST))
        await service.start()
        try:
            state = service.submit(REQUEST)
            async with state.cond:
                await state.cond.wait_for(lambda: state.done)
            while service._inflight:      # the doomed tail fails fast too
                await asyncio.sleep(0.01)
            return state.summary(), service.status()
        finally:
            await service.shutdown()

    summary, status = asyncio.run(go())
    assert summary["status"] == "error"
    assert "worker pool exhausted" in summary["message"]
    assert_accounting_zero(status)


# ----------------------------------------------------------------------
# client-side chaos: severed connections and queue-full storms
# ----------------------------------------------------------------------

def test_severed_client_reattaches_to_the_full_stream(tmp_path,
                                                      fault_free_bytes):
    """Sever the client's connection mid-stream (while workers are being
    killed): the request keeps computing server-side, and a fresh
    connection re-streams the complete sequence byte-identically."""
    schedule = ChaosSchedule.seeded(5, workers=2, cells=8, kills=1)
    path = tmp_path / "reattached.jsonl"

    async def go():
        service = CampaignService(workers_proc=2, chaos=schedule,
                                  supervisor_options=dict(FAST))
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            first = await CampaignClient.connect(port=port)
            rid = await first.submit(REQUEST)
            seen = asyncio.Event()
            stream_task = asyncio.create_task(first.stream(
                rid, on_record=lambda r: seen.set()))
            await seen.wait()                     # mid-stream, provably
            stream_task.cancel()                  # sever: no goodbye, no done
            await asyncio.gather(stream_task, return_exceptions=True)
            await first.close()

            second = await CampaignClient.connect(port=port)
            try:
                done = await second.stream(rid, stream_path=path)
            finally:
                await second.close()
            return done, service.status()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()

    done, status = asyncio.run(go())
    assert done["status"] == "ok" and done["ran"] == len(REQUEST.specs)
    assert path.read_bytes() == fault_free_bytes
    assert_accounting_zero(status)


def test_queue_full_during_respawn_storm_backs_off_and_succeeds(
        tmp_path, fault_free_bytes):
    """Back-pressure during recovery: while the fleet is killing and
    respawning workers, a submit refused with ``queue-full`` retries with
    backoff and lands once the first sweep's slot frees - typed error
    only if the budget were exhausted, which it is not here."""
    schedule = ChaosSchedule.seeded(7, workers=2, cells=8, kills=2)
    path = tmp_path / "second.jsonl"

    async def go():
        service = CampaignService(workers_proc=2, chaos=schedule,
                                  max_pending=1,
                                  supervisor_options={
                                      **FAST, "quarantine_strikes": 3})
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            one = await CampaignClient.connect(port=port)
            two = await CampaignClient.connect(port=port, backoff=0.1,
                                               retries=8)
            try:
                service.pause()                   # hold the storm's start
                rid_one = await one.submit(REQUEST)
                submit_two = asyncio.create_task(two.submit(REQUEST))
                await asyncio.sleep(0.3)          # >1 queue-full rejections
                assert not submit_two.done()      # ...it is retrying, typed
                service.resume()
                done_one = await one.stream(rid_one)
                rid_two = await submit_two        # slot freed; retry landed
                done_two = await two.stream(rid_two, stream_path=path)
            finally:
                await one.close()
                await two.close()
            return done_one, done_two, service.status()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()

    done_one, done_two, status = asyncio.run(go())
    assert done_one["status"] == "ok"
    assert done_two["status"] == "ok"
    assert done_two["replayed"] == len(REQUEST.specs)   # pure cache replay
    assert path.read_bytes() == fault_free_bytes
    assert_accounting_zero(status)


def test_queue_full_budget_exhaustion_still_surfaces_typed():
    """The retry loop is bounded: when the queue never drains, the client
    gets the typed ``queue-full`` error, not an infinite backoff."""

    async def go():
        service = CampaignService(workers_proc=1,
                                  max_pending=1,
                                  supervisor_options=dict(FAST))
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            client = await CampaignClient.connect(port=port, backoff=0.01,
                                                  retries=2)
            try:
                service.pause()                   # the slot never frees
                await client.submit(REQUEST)
                with pytest.raises(CampaignServiceError) as exc:
                    await client.submit(REQUEST)
                return exc.value.code
            finally:
                service.resume()
                await client.close()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()

    assert asyncio.run(go()) == "queue-full"


# ----------------------------------------------------------------------
# the schedules themselves: frozen, seeded, parseable
# ----------------------------------------------------------------------

def test_chaos_schedules_are_deterministic_and_parseable():
    one = ChaosSchedule.seeded(7, workers=2, cells=8, kills=2, stalls=1)
    two = ChaosSchedule.seeded(7, workers=2, cells=8, kills=2, stalls=1)
    assert one == two                             # same seed, same schedule
    assert one == ChaosSchedule.from_spec("seed=7,kills=2,stalls=1,cells=8",
                                          workers=2)
    # the worker-facing env payload is canonical JSON, stable across runs
    assert one.plan_env(0) == two.plan_env(0)
    assert one.plan_env(99) is None               # respawns run clean
    with pytest.raises(ValueError):
        ChaosSchedule.from_spec("seed=7,warp=1")
    with pytest.raises(ValueError):
        ChaosSchedule.from_spec("kills")
