"""Whole-server crash resume: SIGKILL mid-request, restart, resubmit.

The hardest fault the service's crash-resume recipe must survive: the
*entire* server process is SIGKILL'd (no drain, no flush, no goodbye)
while a supervised sweep is streaming.  Because every computed cell was
``put`` into the disk cache atomically as it finished, a fresh server
started on the same ``--cache`` directory replays the finished cells
and computes only the rest - and the resubmitted request's stream is
byte-identical to a local pooled run.  The orphaned worker subprocesses
exit on their own: the supervisor's death closes their stdin pipes.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.sim.campaign import CampaignRequest, ScenarioSpec, execute_request
from repro.sim.service import CampaignClient
from repro.sim.service.protocol import decode_message, encode_message


def resume_specs() -> list[ScenarioSpec]:
    """Enough cheap cells that a kill after the first record is mid-sweep."""
    pool = []
    for i in range(10):
        pool.append(ScenarioSpec(
            label=f"osek {i}", domain="osek", seed=i,
            params=(("tasks", 3 + i % 3), ("utilisation", 0.5),
                    ("horizon_us", 200_000))))
    return pool


def start_server(tmp_path: Path, cache_dir: Path, name: str) -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    port_file = tmp_path / f"{name}.port"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.sim.service", "--port", "0",
         "--port-file", str(port_file), "--cache", str(cache_dir),
         "--workers-proc", "2", "--heartbeat", "0.2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    while not port_file.exists():
        assert proc.poll() is None, "service died before listening"
        assert time.monotonic() < deadline, "service never wrote its port"
        time.sleep(0.05)
    return proc, int(port_file.read_text())


def test_sigkilled_server_resumes_byte_identical_on_its_cache(tmp_path):
    specs = resume_specs()
    request = CampaignRequest(specs=tuple(specs))
    cache_dir = tmp_path / "cache"

    # first life: stream until the first record lands, then SIGKILL the
    # whole server - no drain, no cache flush, pipes just vanish
    first, port = start_server(tmp_path, cache_dir, "first")
    try:
        async def interrupted() -> int:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(encode_message(
                    {"op": "submit", "seq": 1, "request": request.to_obj()}))
                await writer.drain()
                submitted = decode_message(await reader.readline())
                assert submitted["op"] == "submitted"
                writer.write(encode_message(
                    {"op": "stream", "seq": 2, "id": submitted["id"]}))
                await writer.drain()
                streamed = 0
                while streamed < 1:
                    frame = decode_message(await reader.readline())
                    if frame.get("op") == "record":
                        streamed += 1
                first.send_signal(signal.SIGKILL)
                # the socket dies with the server: EOF, not a clean done
                while True:
                    line = await asyncio.wait_for(reader.readline(), 30)
                    if not line:
                        return streamed
                    frame = decode_message(line)
                    if frame.get("op") == "record":
                        streamed += 1
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        streamed = asyncio.run(interrupted())
        first.wait(timeout=10)
    finally:
        if first.poll() is None:
            first.kill()
            first.wait(timeout=10)
    assert streamed >= 1
    cached = list(cache_dir.glob("*.json"))
    assert cached, "the killed server's finished cells must be on disk"

    # second life: same cache directory, same request, full stream
    second, port = start_server(tmp_path, cache_dir, "second")
    try:
        async def resumed() -> dict:
            client = await CampaignClient.connect(port=port)
            try:
                rid = await client.submit(request)
                return await client.stream(
                    rid, stream_path=tmp_path / "resumed.jsonl")
            finally:
                await client.close()

        done = asyncio.run(resumed())
    finally:
        second.terminate()
        second.wait(timeout=10)

    assert done["status"] == "ok" and done["ran"] == len(specs)
    assert done["replayed"] >= len(cached)     # the first life's cells held
    assert done["replayed"] + done["computed"] == len(specs)

    local = tmp_path / "local.jsonl"
    execute_request(request, stream_path=local)
    assert (tmp_path / "resumed.jsonl").read_bytes() == local.read_bytes()
