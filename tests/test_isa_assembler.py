"""Tests for the text assembler, layout, labels, and literal pools."""

import pytest

from repro.isa import (
    ISA_ARM,
    ISA_THUMB,
    ISA_THUMB2,
    AssemblyError,
    Condition,
    assemble,
    disassemble_image,
)


def test_simple_program_layout_thumb():
    program = assemble(
        """
        movs r0, #1
        adds r0, r0, #2
        bx lr
        """,
        ISA_THUMB,
    )
    assert [i.mnemonic for i in program.instructions] == ["MOV", "ADD", "BX"]
    assert [i.address for i in program.instructions] == [0, 2, 4]
    assert program.code_bytes == 6


def test_arm_instructions_are_4_bytes():
    program = assemble("mov r0, #1\nadd r0, r0, #2\nbx lr", ISA_ARM)
    assert [i.address for i in program.instructions] == [0, 4, 8]
    assert all(i.size == 4 for i in program.instructions)


def test_thumb2_mixes_widths():
    program = assemble(
        """
        movs r0, #1        ; narrow
        sdiv r1, r2, r3    ; wide only
        adds r0, r0, #2    ; narrow
        """,
        ISA_THUMB2,
    )
    assert [i.size for i in program.instructions] == [2, 4, 2]
    assert [i.address for i in program.instructions] == [0, 2, 6]


def test_labels_and_branches():
    program = assemble(
        """
        start:
            movs r0, #0
        loop:
            adds r0, r0, #1
            cmp r0, #10
            bne loop
            b start
        """,
        ISA_THUMB,
    )
    assert program.symbols["start"] == 0
    assert program.symbols["loop"] == 2
    branches = [i for i in program.instructions if i.mnemonic == "B"]
    assert branches[0].cond == Condition.NE
    assert branches[0].target == 2
    assert branches[1].target == 0


def test_backward_and_forward_branch_targets():
    program = assemble(
        """
            b fwd
        back:
            nop
        fwd:
            b back
        """,
        ISA_THUMB2,
    )
    b_fwd, nop, b_back = program.instructions
    assert b_fwd.target == program.symbols["fwd"]
    assert b_back.target == program.symbols["back"]


def test_literal_pool_placed_after_code():
    program = assemble(
        """
        ldr r0, =0x12345678
        bx lr
        """,
        ISA_THUMB,
    )
    ldr = program.instructions[0]
    assert ldr.mem is not None
    assert ldr.is_load_literal()
    pool_words = [d for d in program.data if d.value == 0x12345678]
    assert len(pool_words) == 1
    # pool sits after the code, word-aligned
    assert pool_words[0].address >= 4
    assert pool_words[0].address % 4 == 0


def test_duplicate_literals_share_pool_slot():
    program = assemble(
        """
        ldr r0, =0xCAFEBABE
        ldr r1, =0xCAFEBABE
        bx lr
        """,
        ISA_THUMB2,
    )
    slots = [d for d in program.data if d.value == 0xCAFEBABE]
    assert len(slots) == 1


def test_ltorg_dumps_pool_early():
    program = assemble(
        """
        ldr r0, =0xDEADBEEF
        b after
        .ltorg
        after:
        bx lr
        """,
        ISA_THUMB2,
    )
    slot = next(d for d in program.data if d.value == 0xDEADBEEF)
    after = program.symbols["after"]
    assert slot.address < after


def test_word_directive_and_symbol_reference():
    program = assemble(
        """
        entry:
            nop
        table:
            .word 123
            .word entry
        """,
        ISA_THUMB,
    )
    words = sorted(program.data, key=lambda d: d.address)
    assert words[0].value == 123
    assert words[1].value == program.symbols["entry"]


def test_align_directive():
    program = assemble(
        """
        nop
        .align 8
        target:
        nop
        """,
        ISA_THUMB,
    )
    assert program.symbols["target"] == 8


def test_space_directive():
    program = assemble("nop\n.space 10\nend:\nnop", ISA_THUMB)
    assert program.symbols["end"] == 12


def test_image_roundtrips_through_disassembler():
    source = """
        movs r0, #5
        movs r1, #3
        adds r2, r0, r1
        muls r2, r1
        bx lr
    """
    program = assemble(source, ISA_THUMB)
    image = program.image()
    decoded = disassemble_image(image, ISA_THUMB)
    assert [i.mnemonic for i in decoded] == ["MOV", "MOV", "ADD", "MUL", "BX"]


def test_arm_image_roundtrips():
    program = assemble("mov r0, #5\nadd r1, r0, r0\nbx lr", ISA_ARM)
    decoded = disassemble_image(program.image(), ISA_ARM)
    assert [i.mnemonic for i in decoded] == ["MOV", "ADD", "BX"]


def test_conditional_suffix_parsing():
    program = assemble("it eq\naddeq r0, r0, #1", ISA_THUMB2)
    it, add = program.instructions
    assert it.mnemonic == "IT" and it.cond == Condition.EQ
    assert add.cond == Condition.EQ


def test_ite_block():
    program = assemble(
        """
        ite ge
        movge r0, #1
        movlt r0, #0
        """,
        ISA_THUMB2,
    )
    it = program.instructions[0]
    assert it.it_mask == "TE"


def test_reglist_ranges():
    program = assemble("push {r0-r3, lr}\npop {r0-r3, pc}", ISA_THUMB)
    push, pop = program.instructions
    assert push.reglist == (0, 1, 2, 3, 14)
    assert pop.reglist == (0, 1, 2, 3, 15)


def test_memory_operand_forms():
    program = assemble(
        """
        ldr r0, [r1, #4]
        ldr r0, [r1, r2]
        str r0, [r1]
        """,
        ISA_THUMB,
    )
    imm, reg, plain = program.instructions
    assert imm.mem.offset == 4
    assert reg.mem.rm == 2
    assert plain.mem.offset == 0


def test_thumb2_writeback_and_postindex_forms():
    program = assemble(
        """
        ldr r0, [r1, #4]!
        ldr r0, [r1], #4
        """,
        ISA_THUMB2,
    )
    pre, post = program.instructions
    assert pre.mem.writeback and not pre.mem.postindex
    assert post.mem.postindex


def test_undefined_label_raises():
    with pytest.raises(AssemblyError):
        assemble("b nowhere", ISA_THUMB)


def test_unknown_mnemonic_raises():
    with pytest.raises(AssemblyError):
        assemble("frobnicate r0", ISA_THUMB)


def test_thumb_rejects_out_of_range_conditional_branch():
    lines = ["cmp r0, #0", "beq far"] + ["nop"] * 200 + ["far:", "nop"]
    with pytest.raises(AssemblyError):
        assemble("\n".join(lines), ISA_THUMB)


def test_thumb2_widens_out_of_range_conditional_branch():
    lines = ["cmp r0, #0", "beq far"] + ["nop"] * 200 + ["far:", "nop"]
    program = assemble("\n".join(lines), ISA_THUMB2)
    beq = program.instructions[1]
    assert beq.size == 4
    assert beq.target == program.symbols["far"]


def test_comments_are_ignored():
    program = assemble(
        """
        ; full-line comment
        nop          ; trailing
        nop          @ gas style
        nop          // c style
        """,
        ISA_THUMB,
    )
    assert len(program.instructions) == 3


def test_movw_movt_parsing():
    program = assemble("movw r0, #0xBEEF\nmovt r0, #0xDEAD", ISA_THUMB2)
    movw, movt = program.instructions
    assert movw.imm == 0xBEEF
    assert movt.imm == 0xDEAD


def test_bitfield_parsing():
    program = assemble(
        """
        bfi r0, r1, #4, #8
        bfc r0, #0, #4
        ubfx r2, r3, #8, #16
        """,
        ISA_THUMB2,
    )
    bfi, bfc, ubfx = program.instructions
    assert (bfi.bf_lsb, bfi.bf_width) == (4, 8)
    assert (bfc.bf_lsb, bfc.bf_width) == (0, 4)
    assert (ubfx.bf_lsb, ubfx.bf_width) == (8, 16)


def test_code_bytes_excludes_pool():
    program = assemble("ldr r0, =0x11223344\nbx lr", ISA_THUMB)
    assert program.code_bytes == 4      # 2 instructions x 2 bytes
    assert program.literal_bytes == 4   # one pool word
    assert program.total_bytes >= 8


def test_instruction_at_lookup():
    program = assemble("nop\nnop\nbx lr", ISA_THUMB, base=0x8000)
    assert program.instruction_at(0x8000).mnemonic == "NOP"
    assert program.instruction_at(0x8004).mnemonic == "BX"
    assert program.instruction_at(0x9000) is None


def test_base_address_applies():
    program = assemble("start:\nnop", ISA_THUMB, base=0x08000000)
    assert program.symbols["start"] == 0x08000000
    assert program.instructions[0].address == 0x08000000
