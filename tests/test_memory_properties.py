"""Property-based tests on the memory system's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import BitBandAlias, Cache, Flash, Sram
from repro.sim import DeterministicRng

# ----------------------------------------------------------------------
# cache transparency: a cached memory is indistinguishable from the raw
# memory for any access sequence (values, not timing)
# ----------------------------------------------------------------------

ACCESS = st.tuples(
    st.sampled_from(["r", "w"]),
    st.integers(min_value=0, max_value=0x3FC),        # address
    st.sampled_from([1, 2, 4]),                        # size
    st.integers(min_value=0, max_value=0xFFFFFFFF),    # value for writes
)


@given(st.lists(ACCESS, min_size=1, max_size=60))
@settings(max_examples=150, deadline=None)
def test_cache_is_transparent(accesses):
    plain = Sram(base=0, size=0x1000)
    backing = Sram(base=0, size=0x1000)
    cache = Cache(backing, sets=4, ways=2, line_bytes=16)
    for kind, addr, size, value in accesses:
        addr -= addr % size  # natural alignment
        if kind == "w":
            plain.write(addr, size, value)
            cache.write(addr, size, value)
        else:
            expected, _ = plain.read(addr, size)
            got, _ = cache.read(addr, size)
            assert got == expected
    # final memory images agree (write-through keeps backing current)
    assert plain.data == backing.data


@given(st.lists(st.integers(min_value=0, max_value=0xFF), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_flash_timing_never_changes_data(addresses):
    """Prefetch state machine must be timing-only: data always correct."""
    flash = Flash(base=0, size=0x400, access_cycles=3, line_bytes=16)
    golden = bytes((i * 37) & 0xFF for i in range(0x400))
    flash.write_raw(0, golden)
    for raw in addresses:
        addr = raw * 4 % 0x3FC
        value, _stalls = flash.read(addr, 4, side="I" if raw % 2 else "D")
        assert value == int.from_bytes(golden[addr:addr + 4], "little")


@given(st.integers(min_value=0, max_value=0xFFF),
       st.integers(min_value=0, max_value=7),
       st.booleans())
@settings(max_examples=200, deadline=None)
def test_bitband_touches_exactly_one_bit(byte_offset, bit, set_it):
    ram = Sram(base=0x2000_0000, size=0x1000)
    alias = BitBandAlias(base=0x2200_0000, target=ram,
                         target_base=0x2000_0000, target_bytes=0x1000)
    rng = DeterministicRng(byte_offset * 8 + bit)
    original = bytes(rng.randint(0, 255) for _ in range(0x1000))
    ram.write_raw(0x2000_0000, original)
    address = alias.alias_address(0x2000_0000 + byte_offset, bit)
    alias.write(address, 4, 1 if set_it else 0)
    after = ram.read_raw(0x2000_0000, 0x1000)
    for index in range(0x1000):
        if index != byte_offset:
            assert after[index] == original[index]
    expected = original[byte_offset] | (1 << bit) if set_it \
        else original[byte_offset] & ~(1 << bit)
    assert after[byte_offset] == expected
    # read-back through the alias agrees
    value, _ = alias.read(address, 4)
    assert value == (1 if set_it else 0)


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_cache_recovers_from_any_single_flip_sequence(flips):
    """Any sequence of single-bit upsets on clean lines is fully masked."""
    rng = DeterministicRng(5)
    backing = Sram(base=0, size=0x1000)
    golden = bytes(rng.randint(0, 255) for _ in range(0x400))
    backing.write_raw(0, golden)
    cache = Cache(backing, sets=8, ways=2, line_bytes=16, fault_tolerant=True)
    cache.warm(0, 0x100)
    for flip in flips:
        lines = cache.valid_lines()
        set_index, way = lines[flip % len(lines)]
        cache.flip_data_bit(set_index, way, (flip * 17) % (16 * 8))
        for addr in range(0, 0x100, 4):
            value, _ = cache.read(addr, 4)
            assert value == int.from_bytes(golden[addr:addr + 4], "little")
