"""Golden two-ECU CAN round-trip fingerprint, pinned across all four
engines.

The cross-engine conformance corpus (``test_conformance_golden.py``) pins
single-machine runs; this file extends it to the co-simulation layer: a
committed fingerprint of a whole two-ECU round-trip network - both CPUs'
registers and cycle counts, both nodes' bus statistics and scratch SRAM,
and the complete CAN frame log (identifier, node, queue/completion times,
attempts) - which every engine tier must reproduce exactly.  Future
engine or bus-timing work cannot silently drift the executed network.

Regenerate after an *intentional* timing-model change::

    PYTHONPATH=src python tests/test_vehicle_golden.py

then review the diff: every changed number is a behaviour change in the
co-simulated vehicle.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.vehicle import RoundTripSpec, build_round_trip

GOLDEN_PATH = Path(__file__).parent / "golden" / "conformance_vehicle.json"

#: (label, fastpath, superblocks, trace_superblocks)
ENGINES = (
    ("reference", False, False, False),
    ("uops", True, False, False),
    ("superblock", True, True, False),
    ("trace", True, True, True),
)

#: the pinned scenario: M3 requester + ARM7 responder, 45 ms horizon
SPEC = RoundTripSpec()
HORIZON_US = 45_000


def compute_fingerprint(fastpath: bool, superblocks: bool,
                        trace_superblocks: bool) -> dict:
    network = build_round_trip(SPEC)
    for ecu in network.vehicle.ecus:
        ecu.cpu.fastpath = fastpath
        ecu.cpu.superblocks = superblocks
        ecu.cpu.trace_superblocks = trace_superblocks
    network.run(horizon_us=HORIZON_US)
    return network.fingerprint()


@pytest.fixture(scope="module")
def golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden corpus {GOLDEN_PATH}; regenerate with "
            f"'PYTHONPATH=src python tests/test_vehicle_golden.py'")
    with open(GOLDEN_PATH, encoding="utf-8") as stream:
        return json.load(stream)


@pytest.mark.parametrize("engine,fastpath,superblocks,trace_superblocks",
                         ENGINES, ids=[e[0] for e in ENGINES])
def test_round_trip_matches_golden_corpus(golden, engine, fastpath,
                                          superblocks, trace_superblocks):
    computed = compute_fingerprint(fastpath, superblocks, trace_superblocks)
    expected = golden["fingerprint"]
    drift = {key: (computed[key], expected[key])
             for key in computed if computed[key] != expected[key]}
    assert computed == expected, (
        f"{engine} engine drifted from the golden round trip: "
        f"{json.dumps(drift, default=str)[:2000]}")


def test_golden_round_trip_is_nontrivial(golden):
    """The pinned network really exchanged traffic on both legs."""
    fingerprint = golden["fingerprint"]
    frames = fingerprint["frames"]
    assert len(frames) >= 10
    assert {frame["id"] for frame in frames} == {SPEC.request_id,
                                                 SPEC.response_id}
    for node in ("requester", "responder"):
        assert fingerprint[node]["irqs"] > 0
        assert fingerprint[node]["instructions"] > 0


def regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    payload = {
        "_comment": (
            "Golden two-ECU CAN round-trip fingerprint (registers + bus "
            "stats + frame log), pinned across all four engines; "
            "regenerate with 'PYTHONPATH=src python "
            "tests/test_vehicle_golden.py' and review every changed "
            "number as a behaviour change."),
        "horizon_us": HORIZON_US,
        "spec": {
            "requester": f"{SPEC.requester_core}@{SPEC.requester_mhz}MHz",
            "responder": f"{SPEC.responder_core}@{SPEC.responder_mhz}MHz",
            "period_us": SPEC.period_us,
            "bitrate": SPEC.can_bitrate,
        },
        "fingerprint": compute_fingerprint(fastpath=False, superblocks=False,
                                           trace_superblocks=False),
    }
    with open(GOLDEN_PATH, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=1, sort_keys=True)
        stream.write("\n")
    print(f"wrote {GOLDEN_PATH} "
          f"({len(payload['fingerprint']['frames'])} frames)")


if __name__ == "__main__":
    regenerate()
