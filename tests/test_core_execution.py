"""End-to-end execution tests on the three core models."""

import pytest

from repro.core import (
    FLASH_BASE,
    SRAM_BASE,
    ExecutionError,
    build_arm7,
    build_arm1156,
    build_cortexm3,
    build_machine,
)
from repro.isa import ISA_ARM, ISA_THUMB, ISA_THUMB2, assemble

SUM_LOOP_THUMB = """
; r0 = n  ->  r0 = sum(1..n)
sum_to_n:
    movs r1, #0
    movs r2, #0
loop:
    adds r2, r2, #1
    adds r1, r1, r2
    cmp r2, r0
    bne loop
    movs r0, #0
    adds r0, r0, r1
    bx lr
"""

SUM_LOOP_ARM = """
sum_to_n:
    mov r1, #0
    mov r2, #0
loop:
    add r2, r2, #1
    add r1, r1, r2
    cmp r2, r0
    bne loop
    mov r0, r1
    bx lr
"""


def test_arm7_runs_thumb_program():
    program = assemble(SUM_LOOP_THUMB, ISA_THUMB, base=FLASH_BASE)
    machine = build_arm7(program)
    assert machine.call("sum_to_n", 10) == 55
    assert machine.cpu.cycles > 0
    assert machine.cpu.instructions_executed == 2 + 4 * 10 + 3


def test_arm7_runs_arm_program():
    program = assemble(SUM_LOOP_ARM, ISA_ARM, base=FLASH_BASE)
    machine = build_arm7(program)
    assert machine.call("sum_to_n", 100) == 5050


def test_cortexm3_runs_thumb2_program():
    program = assemble(SUM_LOOP_THUMB, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    assert machine.call("sum_to_n", 10) == 55


def test_arm1156_runs_thumb2_program():
    program = assemble(SUM_LOOP_THUMB, ISA_THUMB2, base=FLASH_BASE)
    machine = build_arm1156(program)
    assert machine.call("sum_to_n", 10) == 55


def test_cortexm3_rejects_non_thumb2():
    program = assemble(SUM_LOOP_ARM, ISA_ARM, base=FLASH_BASE)
    with pytest.raises(ValueError):
        build_cortexm3(program)


def test_build_machine_dispatch():
    program = assemble(SUM_LOOP_THUMB, ISA_THUMB2, base=FLASH_BASE)
    machine = build_machine("m3", program)
    assert machine.cpu.name == "cortex-m3"
    with pytest.raises(ValueError):
        build_machine("z80", program)


def test_m3_hardware_divide_executes():
    program = assemble(
        """
        scale:
            udiv r0, r0, r1
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    machine = build_cortexm3(program)
    assert machine.call("scale", 1000, 8) == 125


def test_m3_divide_cycles_depend_on_result_width():
    source = """
    scale:
        udiv r0, r0, r1
        bx lr
    """
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    small = build_cortexm3(program)
    small.call("scale", 10, 3)          # tiny quotient
    large = build_cortexm3(program)
    large.call("scale", 0xFFFFFFFF, 1)  # 32-bit quotient
    assert large.cpu.cycles > small.cpu.cycles


def test_memory_access_via_sram():
    program = assemble(
        """
        store_load:
            str r1, [r0]
            ldr r2, [r0]
            movs r0, #0
            adds r0, r0, r2
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    machine = build_cortexm3(program)
    assert machine.call("store_load", SRAM_BASE + 0x100, 0x1234) == 0x1234


def test_literal_pool_load_reads_flash():
    program = assemble(
        """
        get_const:
            ldr r0, =0xCAFED00D
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    machine = build_cortexm3(program)
    assert machine.call("get_const") == 0xCAFED00D


def test_it_block_execution_on_m3():
    program = assemble(
        """
        absdiff:               ; r0 = |r0 - r1|
            subs r0, r0, r1
            it mi
            rsbmi r0, r0, #0
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    machine = build_cortexm3(program)
    assert machine.call("absdiff", 10, 3) == 7
    machine2 = build_cortexm3(program)
    assert machine2.call("absdiff", 3, 10) == 7


def test_ite_both_paths():
    program = assemble(
        """
        pick_max:
            cmp r0, r1
            ite ge
            movge r2, r0
            movlt r2, r1
            movs r0, #0
            adds r0, r0, r2
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    assert build_cortexm3(program).call("pick_max", 9, 4) == 9
    assert build_cortexm3(program).call("pick_max", 4, 9) == 9


def test_tbb_switch_dispatch():
    program = assemble(
        """
        dispatch:              ; r0 = case index -> r0 = 10*index+1
            adr r1, table
            tbb [r1, r0]
            .align 4
        table:
            .byte 2
            .byte 4
            .byte 6
            .byte 0
        case0:
            movs r0, #1
            bx lr
        case1:
            movs r0, #11
            bx lr
        case2:
            movs r0, #21
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    # TBB offsets are relative to PC (after tbb) in halfwords; the table
    # entries above were computed for this layout: case_k at table+4+2*off.
    machine = build_cortexm3(program)
    result = machine.call("dispatch", 0)
    assert result in (1, 11, 21)


def test_runaway_program_guard():
    program = assemble("spin:\n b spin", ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    with pytest.raises(ExecutionError):
        machine.cpu.call("spin", max_instructions=100)


def test_bad_pc_raises():
    program = assemble("nop\nbx lr", ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    machine.cpu.regs.pc = FLASH_BASE + 0x1000
    with pytest.raises(ExecutionError):
        machine.cpu.step()


def test_cpi_reported():
    program = assemble(SUM_LOOP_THUMB, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    machine.call("sum_to_n", 50)
    assert 1.0 <= machine.cpu.cpi() < 4.0


def test_function_call_and_return():
    program = assemble(
        """
        main:
            push {lr}
            movs r0, #5
            bl double
            bl double
            pop {pc}
        double:
            adds r0, r0, r0
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    machine = build_cortexm3(program)
    assert machine.call("main") == 20


def test_slow_flash_costs_more_cycles():
    program = assemble(SUM_LOOP_THUMB, ISA_THUMB2, base=FLASH_BASE)
    fast = build_cortexm3(program, flash_access_cycles=0)
    fast.call("sum_to_n", 20)
    slow = build_cortexm3(program, flash_access_cycles=4, flash_prefetch=False)
    slow.call("sum_to_n", 20)
    assert slow.cpu.cycles > fast.cpu.cycles


def test_thumb_and_arm_same_result_different_size():
    thumb = assemble(SUM_LOOP_THUMB, ISA_THUMB, base=FLASH_BASE)
    arm = assemble(SUM_LOOP_ARM, ISA_ARM, base=FLASH_BASE)
    assert thumb.code_bytes < arm.code_bytes
    m_thumb = build_arm7(thumb)
    m_arm = build_arm7(arm)
    assert m_thumb.call("sum_to_n", 30) == m_arm.call("sum_to_n", 30) == 465


def test_call_resets_wfi_sleep_between_calls():
    """A WFI left over from one call() must not leak into the next."""
    program = assemble(
        """
        napper:
            wfi
            bx lr
        worker:
            movs r0, #42
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    machine = build_cortexm3(program)
    machine.cpu.nvic.raise_irq(1, handler=program.symbols["worker"],
                               at_cycle=10)
    machine.call("napper", max_instructions=1000)
    # second call must start awake regardless of how the first one ended
    machine.cpu.sleeping = True  # simulate a call abandoned mid-WFI
    assert machine.call("worker") == 42
    assert not machine.cpu.sleeping


def test_call_resets_dangling_it_block_between_calls():
    """A truncated IT block must not predicate the next call's code."""
    program = assemble(
        """
        worker:
            movs r0, #42
            bx lr
        """,
        ISA_THUMB2, base=FLASH_BASE,
    )
    machine = build_cortexm3(program)
    from repro.isa import Condition
    machine.cpu._it_queue = [Condition.NE, Condition.NE]  # dangling state
    machine.cpu.apsr.z = True  # NE would skip everything
    assert machine.call("worker") == 42
    assert not machine.cpu._it_queue
