"""Unit tests for the deterministic RNG and the trace recorder."""

import pytest

from repro.sim import DeterministicRng, TraceRecorder


def test_same_seed_same_stream():
    a = DeterministicRng(seed=7)
    b = DeterministicRng(seed=7)
    assert [a.randint(0, 100) for _ in range(20)] == [b.randint(0, 100) for _ in range(20)]


def test_different_seed_different_stream():
    a = DeterministicRng(seed=1)
    b = DeterministicRng(seed=2)
    assert [a.randint(0, 10**9) for _ in range(5)] != [b.randint(0, 10**9) for _ in range(5)]


def test_fork_is_deterministic_and_independent():
    parent = DeterministicRng(seed=3)
    child1 = parent.fork(salt=1)
    child2 = DeterministicRng(seed=3).fork(salt=1)
    assert child1.randint(0, 10**9) == child2.randint(0, 10**9)
    other = parent.fork(salt=2)
    assert other.seed != child1.seed


def test_exponential_requires_positive_rate():
    rng = DeterministicRng()
    with pytest.raises(ValueError):
        rng.exponential(0)


def test_poisson_arrivals_within_horizon_and_sorted():
    rng = DeterministicRng(seed=11)
    arrivals = rng.poisson_arrivals(rate=0.01, horizon=10_000)
    assert all(0 <= t < 10_000 for t in arrivals)
    assert arrivals == sorted(arrivals)
    # mean count ~ rate * horizon = 100; loose sanity bounds
    assert 50 < len(arrivals) < 200


def test_bit_position_in_range():
    rng = DeterministicRng(seed=5)
    for _ in range(100):
        assert 0 <= rng.bit_position(32) < 32


def test_trace_records_and_filters():
    trace = TraceRecorder()
    trace.emit(1, "irq", "enter", number=3)
    trace.emit(2, "mem", "read", addr=0x100)
    trace.emit(5, "irq", "exit")
    assert len(trace) == 3
    assert [r.label for r in trace.by_category("irq")] == ["enter", "exit"]
    assert trace.by_category("irq")[0].data["number"] == 3
    assert [r.time for r in trace.between(1, 5)] == [1, 2]


def test_trace_disabled_records_nothing():
    trace = TraceRecorder(enabled=False)
    trace.emit(1, "irq", "enter")
    assert len(trace) == 0


def test_trace_category_filter():
    trace = TraceRecorder(categories={"mem"})
    trace.emit(1, "irq", "enter")
    trace.emit(2, "mem", "read")
    assert [r.category for r in trace] == ["mem"]


def test_trace_clear():
    trace = TraceRecorder()
    trace.emit(1, "a", "b")
    trace.clear()
    assert len(trace) == 0
