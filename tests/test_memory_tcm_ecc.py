"""Tests for the SEC-DED ECC code and the hold-and-repair TCM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import EccUncorrectable, Tcm, ecc_check, ecc_encode
from repro.sim import DeterministicRng

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)


# ----------------------------------------------------------------------
# the Hamming code itself
# ----------------------------------------------------------------------

@given(WORDS)
@settings(max_examples=200)
def test_clean_word_checks_ok(word):
    assert ecc_check(word, ecc_encode(word)) == ("ok", None)


@given(WORDS, st.integers(min_value=0, max_value=31))
@settings(max_examples=300)
def test_single_bit_error_corrected(word, bit):
    corrupted = word ^ (1 << bit)
    status, fixed = ecc_check(corrupted, ecc_encode(word))
    assert status == "corrected"
    assert fixed == word


@given(WORDS, st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=31))
@settings(max_examples=300)
def test_double_bit_error_detected(word, bit_a, bit_b):
    if bit_a == bit_b:
        return
    corrupted = word ^ (1 << bit_a) ^ (1 << bit_b)
    status, _ = ecc_check(corrupted, ecc_encode(word))
    assert status == "double"


@given(WORDS, st.integers(min_value=0, max_value=6))
@settings(max_examples=200)
def test_ecc_bit_error_is_correctable(word, ecc_bit):
    """A flip in the stored ECC bits must not corrupt the data."""
    bad_ecc = ecc_encode(word) ^ (1 << ecc_bit)
    status, fixed = ecc_check(word, bad_ecc)
    assert status == "corrected"
    assert fixed == word


# ----------------------------------------------------------------------
# the TCM device
# ----------------------------------------------------------------------

def test_tcm_basic_read_write():
    tcm = Tcm(base=0x1000, size=256)
    tcm.write(0x1010, 4, 0xFEEDF00D)
    value, stalls = tcm.read(0x1010, 4)
    assert value == 0xFEEDF00D
    assert stalls == 0


def test_tcm_subword_access_keeps_ecc_consistent():
    tcm = Tcm(base=0, size=64)
    tcm.write(0, 4, 0xAABBCCDD)
    tcm.write(1, 1, 0xEE)
    value, stalls = tcm.read(0, 4)
    assert value == 0xAABBEEDD
    assert stalls == 0
    assert tcm.corrected_errors == 0


def test_tcm_hold_and_repair_single_bit():
    tcm = Tcm(base=0, size=64, repair_cycles=3)
    tcm.write(0, 4, 0x12345678)
    tcm.flip_data_bit(7)  # bit 7 of word 0
    value, stalls = tcm.read(0, 4)
    assert value == 0x12345678   # repaired
    assert stalls == 3           # core held during repair
    assert tcm.corrected_errors == 1
    # the stored copy was fixed: next read is clean
    value, stalls = tcm.read(0, 4)
    assert stalls == 0
    assert tcm.corrected_errors == 1


def test_tcm_double_bit_error_raises():
    tcm = Tcm(base=0, size=64)
    tcm.write(0, 4, 0xFFFF0000)
    tcm.flip_data_bit(0)
    tcm.flip_data_bit(9)
    with pytest.raises(EccUncorrectable):
        tcm.read(0, 4)
    assert tcm.uncorrectable_errors == 1


def test_tcm_unprotected_returns_corruption():
    tcm = Tcm(base=0, size=64, fault_tolerant=False)
    tcm.write(0, 4, 0x0F0F0F0F)
    tcm.flip_data_bit(0)
    value, _ = tcm.read(0, 4)
    assert value == 0x0F0F0F0E
    assert tcm.silent_corruptions == 1


def test_tcm_write_raw_updates_ecc():
    tcm = Tcm(base=0, size=64)
    tcm.write_raw(0, b"\x11\x22\x33\x44\x55\x66\x77\x88")
    value, stalls = tcm.read(0, 4)
    assert value == 0x44332211
    assert stalls == 0
    value, stalls = tcm.read(4, 4)
    assert value == 0x88776655
    assert stalls == 0


def test_tcm_random_flip_is_always_recoverable():
    rng = DeterministicRng(seed=42)
    tcm = Tcm(base=0, size=256)
    for word_index in range(64):
        tcm.write(word_index * 4, 4, word_index * 0x01010101)
    for _ in range(50):
        tcm.flip_random_bit(rng)
        # read everything back: every single-bit flip must be repaired
        for word_index in range(64):
            value, _ = tcm.read(word_index * 4, 4)
            assert value == (word_index * 0x01010101) & 0xFFFFFFFF
    assert tcm.corrected_errors == 50


def test_tcm_size_must_be_word_multiple():
    with pytest.raises(ValueError):
        Tcm(base=0, size=10)
