"""Tests for CAN frames, the bus simulator, analysis, and allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    CanBus,
    CanFrame,
    DistributedTask,
    Ecu,
    MessageSpec,
    PeriodicSender,
    allocate_tasks,
    analyse_system,
    bus_utilisation,
    can_response_times,
    count_binaries,
    destuff_bits,
    harmonize,
    parse_frame,
    stuff_bits,
    worst_case_frame_bits,
)
from repro.sim import DeterministicRng


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------

def test_frame_validation():
    with pytest.raises(ValueError):
        CanFrame(can_id=0x800, data=b"")
    with pytest.raises(ValueError):
        CanFrame(can_id=1, data=b"123456789")


def test_stuffing_inserts_after_five():
    bits = [0, 0, 0, 0, 0, 1]
    stuffed = stuff_bits(bits)
    assert stuffed == [0, 0, 0, 0, 0, 1, 1]


def test_stuffing_roundtrip_simple():
    bits = [1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0]
    assert destuff_bits(stuff_bits(bits)) == bits


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=120))
@settings(max_examples=200)
def test_stuffing_roundtrip_property(bits):
    stuffed = stuff_bits(bits)
    assert destuff_bits(stuffed) == bits
    # no six identical bits in a row ever appear on the wire
    run = 1
    for a, b in zip(stuffed, stuffed[1:]):
        run = run + 1 if a == b else 1
        assert run <= 5


@given(st.integers(min_value=0, max_value=0x7FF), st.binary(max_size=8))
@settings(max_examples=150)
def test_frame_wire_roundtrip_property(can_id, payload):
    frame = CanFrame(can_id=can_id, data=payload)
    decoded = parse_frame(frame.bits_on_wire())
    assert decoded.can_id == can_id
    assert decoded.data == payload


def test_corrupted_frame_fails_crc():
    frame = CanFrame(can_id=0x123, data=b"\xAA\x55")
    bits = frame.bits_on_wire()
    bits[20] ^= 1
    with pytest.raises(ValueError):
        parse_frame(bits)


@given(st.integers(min_value=0, max_value=8))
@settings(max_examples=20)
def test_worst_case_bits_bounds_actual(payload_bytes):
    """The analytic stuffing bound must cover any actual frame."""
    worst = worst_case_frame_bits(payload_bytes)
    # adversarial payload: long runs of zeros maximize stuffing
    for pattern in (b"\x00", b"\xFF", b"\x55", b"\x1F"):
        frame = CanFrame(can_id=0, data=(pattern * 8)[:payload_bytes])
        assert frame.wire_bits <= worst


def test_eight_byte_frame_size():
    # classic number: 8-byte standard frame worst case is 135 bits incl. IFS
    assert worst_case_frame_bits(8) == 135


# ----------------------------------------------------------------------
# bus simulation
# ----------------------------------------------------------------------

def test_single_frame_delivery_time():
    bus = CanBus(bitrate_bps=500_000)
    bus.submit(CanFrame(0x100, b"\x01\x02"), node="a")
    bus.scheduler.run(until=10_000)
    assert len(bus.deliveries) == 1
    record = bus.deliveries[0]
    # 2-byte frame is ~60-80 bits -> 120-160 us at 500 kbit/s
    assert 100 <= record.response_time <= 200


def test_arbitration_lowest_id_wins():
    bus = CanBus(bitrate_bps=500_000)
    bus.submit(CanFrame(0x300, b"\x01"), node="slow")
    bus.submit(CanFrame(0x100, b"\x02"), node="fast")
    # both pending at t=0: after the first wins, the queue re-arbitrates
    bus.scheduler.run(until=10_000)
    assert [d.can_id for d in bus.deliveries] == [0x300, 0x100] or \
           [d.can_id for d in bus.deliveries] == [0x100, 0x300]
    # whichever started first, the *second* grant must be by priority:
    # submit two more while the bus is busy
    bus2 = CanBus(bitrate_bps=500_000)
    bus2.submit(CanFrame(0x700, b"\x00" * 8), node="first")   # occupies bus
    bus2.submit(CanFrame(0x300, b"\x01"), node="mid")
    bus2.submit(CanFrame(0x100, b"\x02"), node="urgent")
    bus2.scheduler.run(until=10_000)
    assert [d.can_id for d in bus2.deliveries] == [0x700, 0x100, 0x300]


def test_non_preemptive_blocking():
    bus = CanBus(bitrate_bps=500_000)
    bus.submit(CanFrame(0x7FF, b"\xFF" * 8), node="big")  # lowest priority
    bus.scheduler.after(10, lambda: bus.submit(CanFrame(0x001, b"\x01"), node="hp"))
    bus.scheduler.run(until=10_000)
    urgent = next(d for d in bus.deliveries if d.can_id == 0x001)
    # the urgent frame had to wait for the in-flight low-priority one
    assert urgent.response_time > 150


def test_error_injection_causes_retransmission():
    rng = DeterministicRng(3)
    bus = CanBus(bitrate_bps=500_000, error_rate=0.5, rng=rng)
    for _ in range(10):
        bus.submit(CanFrame(0x123, b"\x55"), node="n")
    bus.scheduler.run(until=1_000_000)
    assert len(bus.deliveries) == 10          # everything eventually delivered
    assert bus.errors_injected > 0
    assert any(d.attempts > 1 for d in bus.deliveries)


def test_periodic_sender():
    bus = CanBus(bitrate_bps=500_000)
    sender = PeriodicSender(bus, can_id=0x200, payload=b"\x01\x02",
                            period_us=1000, node="body")
    sender.start()
    bus.scheduler.run(until=10_500)
    assert sender.sent == 11  # t = 0, 1000, ..., 10000
    assert len(bus.deliveries) == 11


def test_bus_utilisation_tracking():
    bus = CanBus(bitrate_bps=125_000)
    PeriodicSender(bus, can_id=0x80, payload=b"\x00" * 8, period_us=2_000).start()
    bus.scheduler.run(until=100_000)
    utilisation = bus.utilisation(100_000)
    assert 0.3 < utilisation <= 0.7  # ~1ms frame every 2ms


# ----------------------------------------------------------------------
# schedulability analysis vs simulation
# ----------------------------------------------------------------------

SAE_LIKE = [
    MessageSpec(can_id=0x010, payload_bytes=1, period_us=5_000),
    MessageSpec(can_id=0x020, payload_bytes=2, period_us=10_000),
    MessageSpec(can_id=0x030, payload_bytes=4, period_us=10_000),
    MessageSpec(can_id=0x040, payload_bytes=8, period_us=20_000),
    MessageSpec(can_id=0x050, payload_bytes=8, period_us=50_000),
]


def test_can_rta_schedulable_set():
    analysis = can_response_times(SAE_LIKE, bitrate_bps=125_000)
    assert analysis.schedulable
    # responses ordered: higher priority = shorter worst case
    responses = [m.response_us for m in analysis.messages]
    assert responses[0] < responses[-1]


def test_can_rta_includes_blocking():
    analysis = can_response_times(SAE_LIKE, bitrate_bps=125_000)
    top = analysis.response_of(0x010)
    assert top.blocking_us > 0  # even the top priority waits for one frame


def test_can_rta_overload_detected():
    overload = [
        MessageSpec(can_id=i, payload_bytes=8, period_us=1_500)
        for i in range(10)
    ]
    analysis = can_response_times(overload, bitrate_bps=125_000)
    assert not analysis.schedulable
    assert bus_utilisation(overload, 125_000) > 1.0


def test_rta_bounds_simulated_responses():
    analysis = can_response_times(SAE_LIKE, bitrate_bps=125_000)
    bus = CanBus(bitrate_bps=125_000)
    rng = DeterministicRng(9)
    for spec in SAE_LIKE:
        PeriodicSender(bus, can_id=spec.can_id,
                       payload=b"\x00" * spec.payload_bytes,
                       period_us=spec.period_us, node=f"n{spec.can_id:x}",
                       ).start(offset_us=rng.randint(0, 400))
    bus.scheduler.run(until=2_000_000)
    for spec in SAE_LIKE:
        observed = bus.worst_response(spec.can_id)
        bound = analysis.response_of(spec.can_id).response_us
        assert observed <= bound, (hex(spec.can_id), observed, bound)


# ----------------------------------------------------------------------
# distributed virtual multi-core (the paper's vision, experiment E11)
# ----------------------------------------------------------------------

def body_tasks(n, isas):
    rng = DeterministicRng(42)
    tasks = []
    for i in range(n):
        binaries = frozenset({rng.choice(list(isas))}) if len(isas) > 1 else frozenset(isas)
        tasks.append(DistributedTask(
            name=f"task{i}", wcet_us=rng.randint(200, 1500),
            period_us=rng.choice([5_000, 10_000, 20_000, 50_000]),
            binaries=binaries))
    return tasks


FLEET = [
    Ecu("engine", isa="thumb2", speed=2.0),
    Ecu("body1", isa="thumb2", speed=1.0),
    Ecu("body2", isa="thumb", speed=0.8),
    Ecu("dash", isa="arm", speed=1.2),
]


def test_harmonized_allocation_beats_heterogeneous():
    heterogeneous = body_tasks(24, isas=("arm", "thumb", "thumb2"))
    harmonized = harmonize(heterogeneous, "thumb2")
    fleet_harmonized = [Ecu(e.name, isa="thumb2", speed=e.speed) for e in FLEET]

    placement_het = allocate_tasks(heterogeneous, FLEET)
    placement_harm = allocate_tasks(harmonized, fleet_harmonized)

    assert len(placement_harm.unplaced) <= len(placement_het.unplaced)
    assert count_binaries(harmonized) <= count_binaries(heterogeneous)


def test_allocation_respects_isa_compatibility():
    tasks = [DistributedTask("only_arm", wcet_us=100, period_us=1000,
                             binaries=frozenset({"arm"}))]
    thumb_only_fleet = [Ecu("e", isa="thumb2")]
    placement = allocate_tasks(tasks, thumb_only_fleet)
    assert placement.unplaced == ["only_arm"]


def test_allocation_respects_capacity():
    tasks = [DistributedTask(f"t{i}", wcet_us=600, period_us=1000,
                             binaries=frozenset({"thumb2"})) for i in range(3)]
    fleet = [Ecu("a", isa="thumb2"), Ecu("b", isa="thumb2")]
    placement = allocate_tasks(tasks, fleet, utilisation_cap=0.69)
    # each task is 0.6 utilisation: one per ECU, third unplaceable
    assert len(placement.unplaced) == 1


def test_system_analysis_end_to_end():
    signal = MessageSpec(can_id=0x100, payload_bytes=4, period_us=10_000)
    tasks = [
        DistributedTask("sensor", wcet_us=800, period_us=10_000,
                        binaries=frozenset({"thumb2"}), produces=(signal,)),
        DistributedTask("actuator", wcet_us=1_200, period_us=20_000,
                        binaries=frozenset({"thumb2"})),
    ]
    fleet = [Ecu("a", isa="thumb2"), Ecu("b", isa="thumb2")]
    placement = allocate_tasks(tasks, fleet)
    analysis = analyse_system(tasks, fleet, placement)
    assert analysis.schedulable
    assert analysis.bus_utilisation > 0


def test_faster_ecu_scales_wcet():
    ecu = Ecu("fast", isa="thumb2", speed=2.0)
    assert ecu.scaled_wcet(1000) == 500
