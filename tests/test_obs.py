"""Telemetry: registry semantics and the out-of-band determinism proof.

Two halves.  The unit half pins the :mod:`repro.obs` registry contract:
counter monotonicity, lazy gauges, fixed histogram layouts, the
MAX_SERIES cardinality fold, in-place reset under prebound handles,
cross-process snapshot merging, and span nesting.  The property half is
the tentpole acceptance claim - **telemetry is out-of-band**: the same
campaign produces byte-identical record streams with ``REPRO_OBS=1``
and ``REPRO_OBS=0`` through every front end (the one-shot CLI, the
``--launch`` shard launcher, and the service), and the engine/campaign
counters tick without any of them touching a record.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.core import FLASH_BASE, build_machine
from repro.isa import ISA_THUMB2, assemble
from repro.obs.metrics import MAX_SERIES, MetricsRegistry, OVERFLOW_KEY
from repro.obs.tracing import Tracer
from repro.sim.campaign import CampaignRequest, ScenarioSpec, execute_request
from repro.sim.domains import domain_names, get_domain, record_class_for
from repro.sim.service import CampaignClient, CampaignService, serve_tcp

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


@pytest.fixture
def obs_enabled():
    """Run one test with the process registry enabled, then restore."""
    was = obs.enabled()
    obs.enable()
    try:
        yield
    finally:
        (obs.enable if was else obs.disable)()


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------

def test_counter_is_labeled_and_monotonic(registry):
    cells = registry.counter("t.cells", "help text")
    cells.inc(domain="osek")
    cells.inc(3, domain="osek")
    cells.inc(domain="can")
    snap = registry.snapshot()
    assert snap["counters"]["t.cells"] == {"domain=osek": 4, "domain=can": 1}
    with pytest.raises(ValueError):
        cells.labels(domain="osek").add(-1)
    # get-or-create: re-registration returns the same object
    assert registry.counter("t.cells") is cells
    with pytest.raises(ValueError):
        registry.gauge("t.cells")  # kind conflict is an error


def test_snapshot_counters_never_shrink(registry):
    cells = registry.counter("t.mono")
    seen = -1
    for _ in range(5):
        cells.add(2)
        value = registry.snapshot()["counters"]["t.mono"][""]
        assert value > seen
        seen = value


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry(enabled=False)
    registry.counter("t.c").inc()
    registry.gauge("t.g").set(7)
    registry.histogram("t.h").observe(0.5)
    snap = registry.snapshot()
    assert snap["counters"]["t.c"][""] == 0
    assert snap["gauges"]["t.g"][""] == 0
    assert snap["histograms"]["t.h"][""]["count"] == 0


def test_gauge_set_fn_is_sampled_at_snapshot_time(registry):
    depth = [3]
    registry.gauge("t.depth").set_fn(lambda: depth[0])
    assert registry.snapshot()["gauges"]["t.depth"][""] == 3
    depth[0] = 11
    assert registry.snapshot()["gauges"]["t.depth"][""] == 11


def test_histogram_layout_and_cumulative_buckets(registry):
    hist = registry.histogram("t.lat", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        hist.observe(value)
    cell = registry.snapshot()["histograms"]["t.lat"][""]
    assert cell["le"] == [0.1, 1.0, 10.0]
    assert cell["count"] == 4
    assert cell["sum"] == pytest.approx(55.55)
    # one count per observation in its first fitting bucket; the extra
    # trailing slot is +Inf
    assert cell["buckets"] == [1, 1, 1, 1]


def test_label_cardinality_folds_into_one_overflow_series(registry):
    cells = registry.counter("t.wide")
    for index in range(MAX_SERIES + 40):
        cells.inc(cell=str(index))
    assert cells.series_count == MAX_SERIES + 1
    snap = registry.snapshot()["counters"]["t.wide"]
    overflow_key = ",".join(f"{k}={v}" for k, v in OVERFLOW_KEY)
    assert snap[overflow_key] == 40
    assert sum(snap.values()) == MAX_SERIES + 40  # nothing dropped


def test_reset_zeroes_in_place_so_prebound_handles_stay_live(registry):
    handle = registry.counter("t.pre").labels(mode="fused")
    hist = registry.histogram("t.preh").labels()
    handle.add(5)
    hist.observe(0.2)
    registry.reset()
    snap = registry.snapshot()
    assert snap["counters"]["t.pre"]["mode=fused"] == 0
    assert snap["histograms"]["t.preh"][""]["count"] == 0
    handle.add(2)  # the prebound handle still feeds the same series
    assert registry.snapshot()["counters"]["t.pre"]["mode=fused"] == 2


def test_merge_snapshots_sums_counters_and_buckets_maxes_gauges():
    shards = []
    for depth, observations in ((2, (0.05,)), (9, (0.5, 5.0))):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("m.cells")
        for _ in observations:
            counter.inc(domain="osek")
        registry.gauge("m.depth").set(depth)
        hist = registry.histogram("m.lat", buckets=(0.1, 1.0, 10.0))
        for value in observations:
            hist.observe(value)
        shards.append(registry.snapshot())
    merged = obs.merge_snapshots(shards)
    assert merged["counters"]["m.cells"]["domain=osek"] == 3
    assert merged["gauges"]["m.depth"][""] == 9
    cell = merged["histograms"]["m.lat"][""]
    assert cell["count"] == 3
    assert cell["buckets"] == [1, 1, 1, 0]
    assert cell["sum"] == pytest.approx(5.55)


def test_dump_writes_one_sorted_json_snapshot(tmp_path):
    registry = MetricsRegistry(enabled=True)
    registry.counter("d.c").inc(4)
    path = tmp_path / "metrics.json"
    obs.dump(path, registry)
    loaded = json.loads(path.read_text())
    assert loaded["counters"]["d.c"][""] == 4


def test_spans_nest_and_the_ring_is_bounded():
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer(capacity=8, registry=registry)
    with tracer.span("outer", kind="request"):
        with tracer.span("inner", domain="osek"):
            pass
    spans = tracer.snapshot()
    assert [s["name"] for s in spans] == ["inner", "outer"]
    inner, outer = spans
    assert inner["parent"] == outer["id"]
    assert outer["parent"] is None
    assert inner["attrs"] == {"domain": "osek"}
    assert inner["duration_s"] >= 0
    for index in range(20):
        with tracer.span(f"s{index}"):
            pass
    assert len(tracer.snapshot(limit=0)) == 8  # oldest dropped, never grows

    registry.disable()
    with tracer.span("dark"):
        pass
    assert all(s["name"] != "dark" for s in tracer.snapshot())


# ----------------------------------------------------------------------
# the out-of-band contract, structurally
# ----------------------------------------------------------------------

def test_no_computed_record_serialises_a_status_field():
    """``status`` must be a *property* on every computed record class -
    a field would land in ``vars()`` and therefore in stream bytes.
    ``cell_error`` is the one exception: its status IS data."""
    import inspect

    for name in domain_names():
        cls = get_domain(name).record_class
        fields = getattr(cls, "__dataclass_fields__", {})
        assert "status" not in fields, name
        assert isinstance(inspect.getattr_static(cls, "status"), property), name
        assert hasattr(cls, "verified"), name
    error_cls = record_class_for("cell_error")
    assert "status" in error_cls.__dataclass_fields__


def test_engine_and_campaign_counters_tick_out_of_band(obs_enabled):
    """Running a superblock workload and a campaign cell moves the
    engine/campaign counters - and re-running with telemetry off still
    produces the identical record."""
    program = assemble(
        """
        sum_to_n:
            movs r1, #0
            movs r2, #0
        loop:
            adds r2, r2, #1
            adds r1, r1, r2
            cmp r2, r0
            bne loop
            movs r0, #0
            adds r0, r0, r1
            bx lr
        """, ISA_THUMB2, base=FLASH_BASE)

    def engine_counts() -> tuple[int, int]:
        snap = obs.snapshot()["counters"]
        runs = sum(snap.get("engine.runs", {}).values())
        dispatches = sum(
            snap.get("engine.superblock.dispatches", {}).values())
        return runs, dispatches

    runs_before, dispatches_before = engine_counts()
    machine = build_machine("m3", program)
    machine.cpu.superblocks = True
    assert machine.call("sum_to_n", 10) == 55
    runs_after, dispatches_after = engine_counts()
    assert runs_after > runs_before
    assert dispatches_after > dispatches_before

    spec = ScenarioSpec(label="tick", domain="osek",
                        params=(("tasks", 3), ("utilisation", 0.5),
                                ("horizon_us", 200_000)))
    before = obs.snapshot()["counters"]
    record = execute_request(CampaignRequest(specs=(spec,))).records[0]
    after = obs.snapshot()["counters"]
    assert (sum(after.get("campaign.cells.computed", {}).values())
            > sum(before.get("campaign.cells.computed", {}).values()))
    assert record.status == "ok"
    assert "status" not in vars(record)

    obs.disable()
    bare = execute_request(CampaignRequest(specs=(spec,))).records[0]
    obs.enable()
    assert bare == record  # telemetry never touches the record itself


# ----------------------------------------------------------------------
# byte-identity: CLI, shard launcher, service (the acceptance property)
# ----------------------------------------------------------------------

def run_cli(tmp_path, name: str, *argv: str, obs_on: bool) -> bytes:
    env = dict(os.environ, PYTHONPATH=SRC, REPRO_OBS="1" if obs_on else "0")
    out = tmp_path / f"{name}.jsonl"
    result = subprocess.run(
        [sys.executable, "-m", "repro.sim.campaign", "--matrix", "lin",
         "--stream", str(out), *argv],
        env=env, capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr
    return out.read_bytes()


def test_cli_stream_bytes_identical_with_telemetry_on_and_off(tmp_path):
    metrics_path = tmp_path / "metrics.json"
    on = run_cli(tmp_path, "on", "--metrics", str(metrics_path), obs_on=True)
    off = run_cli(tmp_path, "off", obs_on=False)
    assert on == off and on.count(b"\n") == 6
    snap = json.loads(metrics_path.read_text())
    assert sum(snap["counters"]["campaign.cells.computed"].values()) == 6
    assert sum(snap["counters"]["campaign.cells.requested"].values()) == 6
    assert snap["histograms"]["campaign.cell_seconds"]["domain=lin"]["count"] == 6


def test_launcher_shards_stream_identical_and_merge_metrics(tmp_path):
    metrics_path = tmp_path / "metrics.json"
    sharded = run_cli(tmp_path, "sharded", "--launch", "2",
                      "--metrics", str(metrics_path), obs_on=True)
    single = run_cli(tmp_path, "single", obs_on=False)
    assert sharded == single
    # the merged dump aggregates both shard processes' registries
    snap = json.loads(metrics_path.read_text())
    assert sum(snap["counters"]["campaign.cells.computed"].values()) == 6
    assert snap["histograms"]["campaign.cell_seconds"]["domain=lin"]["count"] == 6
    # per-shard dumps are temporary inputs, merged then left on disk only
    # for the shards that wrote them; the merged file is authoritative
    assert json.loads(metrics_path.read_text()) == snap


SPECS = (
    ScenarioSpec(label="o0", domain="osek",
                 params=(("tasks", 3), ("utilisation", 0.5),
                         ("horizon_us", 200_000))),
    ScenarioSpec(label="c0", domain="can",
                 params=(("messages", 4), ("load", 0.3),
                         ("horizon_us", 200_000))),
    ScenarioSpec(label="c1", domain="can", seed=13,
                 params=(("messages", 5), ("load", 0.5),
                         ("horizon_us", 200_000))),
)


def service_stream(tmp_path, name: str) -> bytes:
    path = tmp_path / f"{name}.jsonl"

    async def go() -> None:
        service = CampaignService(workers=1)
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        try:
            client = await CampaignClient.connect(port=port)
            try:
                rid = await client.submit(CampaignRequest(specs=SPECS))
                await client.stream(rid, stream_path=path)
            finally:
                await client.close()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()

    asyncio.run(go())
    return path.read_bytes()


def test_service_stream_bytes_identical_with_telemetry_on_and_off(tmp_path):
    was = obs.enabled()
    try:
        obs.enable()
        on = service_stream(tmp_path, "on")
        obs.disable()
        off = service_stream(tmp_path, "off")
    finally:
        (obs.enable if was else obs.disable)()
    local = tmp_path / "local.jsonl"
    execute_request(CampaignRequest(specs=SPECS), stream_path=local)
    assert on == off == local.read_bytes()


def test_metrics_op_is_consistent_under_concurrent_streams(tmp_path, obs_enabled):
    """Two clients stream concurrently while a third polls ``metrics``:
    every snapshot is seq-echoed, counters are monotonic from poll to
    poll, cardinality stays bounded, and at the end the server counted
    exactly the records it streamed."""
    obs.REGISTRY.reset()

    async def go():
        service = CampaignService(workers=1)
        await service.start()
        server = await serve_tcp(service)
        port = server.sockets[0].getsockname()[1]
        polls: list[dict] = []
        received = [0, 0]
        try:
            one = await CampaignClient.connect(port=port)
            two = await CampaignClient.connect(port=port)
            poller = await CampaignClient.connect(port=port)
            try:
                service.pause()
                rid_a = await one.submit(CampaignRequest(specs=SPECS))
                rid_b = await two.submit(CampaignRequest(specs=SPECS[::-1]))
                service.resume()

                async def poll_loop():
                    while True:
                        polls.append(await poller.metrics())
                        await asyncio.sleep(0.02)

                task = asyncio.create_task(poll_loop())
                def count(slot):
                    def cb(_record):
                        received[slot] += 1
                    return cb
                await asyncio.gather(
                    one.stream(rid_a, on_record=count(0)),
                    two.stream(rid_b, on_record=count(1)))
                polls.append(await poller.metrics())
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)
            finally:
                await one.close()
                await two.close()
                await poller.close()
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()
        return polls, received

    polls, received = asyncio.run(go())
    assert received == [3, 3]
    totals = []
    for reply in polls:
        snap = reply["metrics"]
        for name, series in snap["counters"].items():
            assert len(series) <= MAX_SERIES + 1, name
        totals.append({name: sum(series.values())
                       for name, series in snap["counters"].items()})
    for earlier, later in zip(totals, totals[1:]):
        for name, value in earlier.items():
            assert later.get(name, 0) >= value, name  # never shrinks
    final = polls[-1]["metrics"]["counters"]
    assert sum(final["service.records.streamed"].values()) == 6
    assert sum(final["service.cells.resolved"].values()) == 6
    # the overlap dedups: 3 unique cells computed, 3 joined/replayed
    resolved = final["service.cells.resolved"]
    computed = sum(v for k, v in resolved.items() if "how=computed" in k)
    assert computed == 3
