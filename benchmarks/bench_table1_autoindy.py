"""E1 / Table 1: Thumb-2 performance and code density vs Thumb and ARM.

Paper's numbers (preliminary EEMBC AutoIndy, 6-kernel geometric mean):

    ARM7 (ARM)            28453.8 GM/MHz  (100%)     21168 bytes (100%)
    ARM7 (Thumb)          22527.8         ( 79%)     12106 bytes ( 57%)
    Cortex-M3 (Thumb-2)   38899.2         (137%)     12106 bytes ( 57%)

Reproduced shape: Thumb trades ~10-25% performance for ~40% size;
Thumb-2 matches-or-beats ARM performance at Thumb-like size.  Our suite
stresses the new Thumb-2 instructions harder than EEMBC's originals, so
the Thumb-2 advantage overshoots the paper's 137% - see EXPERIMENTS.md.
"""

import os

from conftest import report

from repro.workloads import format_table1, table1

#: Table 1 is an 18-cell scenario matrix; fan it across campaign workers.
#: ``REPRO_BENCH_WORKERS=1`` forces the serial path (identical results).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))


def compute_table1():
    results = table1(seed=2005, workers=WORKERS)
    assert all(s.all_verified for s in results), "kernel mis-execution"
    return results


def test_table1_reproduction(benchmark):
    results = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    arm, thumb, thumb2 = results

    # the paper's qualitative claims, as assertions
    assert thumb.geometric_mean < arm.geometric_mean          # Thumb slower
    assert thumb2.geometric_mean > arm.geometric_mean         # Thumb-2 faster
    assert thumb.code_size < 0.75 * arm.code_size             # Thumb denser
    assert thumb2.code_size < 0.75 * arm.code_size            # Thumb-2 denser

    benchmark.extra_info["perf_pct"] = {
        s.label: round(100 * s.geometric_mean / arm.geometric_mean, 1)
        for s in results
    }
    benchmark.extra_info["size_pct"] = {
        s.label: round(100 * s.code_size / arm.code_size, 1) for s in results
    }
    report("E1 / Table 1: AutoIndy suite, GM performance and code size",
           format_table1(results).splitlines())
