"""E6 / section 3.1.2: interruptible, re-startable LDM under cache misses.

The paper's scenario: a 10-word LDM can span three cache lines; with all
three missing, a non-interruptible transfer delays interrupt service by
the full refill chain.  The re-startable LDM abandons the transfer, takes
the interrupt, and re-runs - bounding worst-case latency.
"""

from conftest import report

from repro.core import FLASH_BASE, build_arm1156
from repro.isa import ISA_THUMB2, assemble

SOURCE = """
main:
    movw r1, #0x0000
    movt r1, #0x2000
    ldm r1, {r2, r3, r4, r5, r6, r7, r8, r9, r10, r11}
    movs r0, #1
    bx lr
handler:
    push {r1, lr}
    movw r1, #0x0400
    movt r1, #0x2000
    str r1, [r1]
    pop {r1, pc}
"""


def build(interruptible):
    program = assemble(SOURCE, ISA_THUMB2, base=FLASH_BASE)
    machine = build_arm1156(program, interruptible_ldm=interruptible,
                            flash_access_cycles=4, sram_wait_states=2)
    return program, machine


def ldm_window(interruptible):
    program, machine = build(interruptible)
    cpu = machine.cpu
    cpu.regs.sp = machine.stack_top
    cpu.regs.lr = 0xFFFFFFFE
    cpu.regs.pc = program.symbols["main"]
    ldm_addr = next(i.address for i in program.instructions if i.mnemonic == "LDM")
    start = end = None
    while not cpu.halted:
        if cpu.regs.pc == ldm_addr and start is None:
            start = cpu.cycles
        elif start is not None and end is None and cpu.regs.pc != ldm_addr:
            end = cpu.cycles
        cpu.step()
    return start, end


def measure(interruptible, at_cycle):
    program, machine = build(interruptible)
    machine.cpu.vic.raise_irq(0, handler=program.symbols["handler"],
                              at_cycle=at_cycle)
    assert machine.call("main") == 1
    record = machine.cpu.vic.stats.records[0]
    return record.latency, machine.cpu.abandoned_transfers


def compute_experiment():
    start, end = ldm_window(interruptible=False)
    duration = end - start
    mid = (start + end) // 2
    blocking_latency, _ = measure(False, mid)
    restart_latency, abandoned = measure(True, mid)
    return {
        "ldm_cycles_cold": duration,
        "blocking_latency": blocking_latency,
        "restartable_latency": restart_latency,
        "abandoned": abandoned,
    }


def test_restartable_ldm_latency(benchmark):
    result = benchmark.pedantic(compute_experiment, rounds=1, iterations=1)

    # the cold 10-word LDM drags in multiple cache line fills
    assert result["ldm_cycles_cold"] > 20
    # restartable transfer cuts latency by at least 2x in this scenario
    assert result["restartable_latency"] * 2 <= result["blocking_latency"]
    assert result["abandoned"] >= 1

    lines = [
        f"cold-cache 10-word LDM duration : {result['ldm_cycles_cold']} cycles",
        f"IRQ latency, blocking LDM       : {result['blocking_latency']} cycles",
        f"IRQ latency, re-startable LDM   : {result['restartable_latency']} cycles",
        f"transfers abandoned and re-run  : {result['abandoned']}",
    ]
    report("E6 / section 3.1.2: interrupt latency across a missing LDM", lines)
    benchmark.extra_info.update(result)
