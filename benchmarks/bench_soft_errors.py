"""E7 / section 3.1.3: fault-tolerant cache and TCM under soft errors.

Poisson bit flips are injected into a parity-protected cache and an
ECC-protected TCM while a workload reads through them.  With protection
on, every upset is detected and repaired (invalidate+refetch for the
cache, hold-and-repair for the TCM) and the data stays correct; with
protection off the same upsets silently corrupt results.
"""

from conftest import report

from repro.memory import Cache, SoftErrorInjector, Sram, Tcm
from repro.sim import DeterministicRng


def run_cache_arm(fault_tolerant: bool, upsets: int = 40):
    rng = DeterministicRng(99)
    ram = Sram(base=0, size=0x4000, wait_states=1)
    golden = {}
    for word in range(0, 0x400, 4):
        value = (word * 2654435761) & 0xFFFFFFFF
        ram.write_raw(word, value.to_bytes(4, "little"))
        golden[word] = value
    cache = Cache(ram, sets=16, ways=2, line_bytes=32,
                  fault_tolerant=fault_tolerant)
    injector = SoftErrorInjector(rng)
    injector.add_target("dcache", lambda r: cache.flip_random_bit(r),
                        cache.bit_capacity)
    wrong = 0
    reads = 0
    extra_stalls = 0
    for sweep in range(upsets):
        for word in range(0, 0x400, 4):
            value, stalls = cache.read(word, 4)
            reads += 1
            extra_stalls += stalls
            if value != golden[word]:
                wrong += 1
        injector.inject_one(time=sweep)
    return {
        "fault_tolerant": fault_tolerant,
        "reads": reads,
        "wrong_reads": wrong,
        "parity_errors": cache.stats.parity_errors,
        "recoveries": cache.stats.recoveries,
        "silent": cache.stats.silent_corruptions,
    }


def run_tcm_arm(fault_tolerant: bool, upsets: int = 60):
    rng = DeterministicRng(7)
    tcm = Tcm(base=0, size=0x800, fault_tolerant=fault_tolerant)
    golden = {}
    for word in range(0, 0x800, 4):
        value = (word ^ 0xA5A5A5A5) & 0xFFFFFFFF
        tcm.write(word, 4, value)
        golden[word] = value
    wrong = 0
    hold = 0
    for sweep in range(upsets):
        tcm.flip_random_bit(rng)
        for word in range(0, 0x800, 4):
            value, stalls = tcm.read(word, 4)
            hold += stalls
            if value != golden[word]:
                wrong += 1
    return {
        "fault_tolerant": fault_tolerant,
        "wrong_reads": wrong,
        "corrected": tcm.corrected_errors,
        "hold_cycles": hold,
    }


def compute_experiment():
    return {
        "cache_protected": run_cache_arm(True),
        "cache_unprotected": run_cache_arm(False),
        "tcm_protected": run_tcm_arm(True),
        "tcm_unprotected": run_tcm_arm(False),
    }


def test_soft_error_recovery(benchmark):
    results = benchmark.pedantic(compute_experiment, rounds=1, iterations=1)

    protected = results["cache_protected"]
    unprotected = results["cache_unprotected"]
    assert protected["wrong_reads"] == 0            # never returns bad data
    assert protected["recoveries"] > 0              # and it did have to recover
    assert unprotected["wrong_reads"] > 0           # baseline silently corrupts

    tcm_ok = results["tcm_protected"]
    tcm_bad = results["tcm_unprotected"]
    assert tcm_ok["wrong_reads"] == 0
    assert tcm_ok["corrected"] > 0
    assert tcm_ok["hold_cycles"] > 0                # hold-and-repair stalls
    assert tcm_bad["wrong_reads"] > 0

    lines = [
        "cache (parity, invalidate+refetch):",
        f"  protected  : {protected['parity_errors']} detected, "
        f"{protected['recoveries']} recovered, {protected['wrong_reads']} wrong reads",
        f"  unprotected: {unprotected['silent']} silent corruptions, "
        f"{unprotected['wrong_reads']} wrong reads",
        "TCM (SEC-DED ECC, hold-and-repair):",
        f"  protected  : {tcm_ok['corrected']} corrected in-place, "
        f"{tcm_ok['hold_cycles']} hold cycles, {tcm_ok['wrong_reads']} wrong reads",
        f"  unprotected: {tcm_bad['wrong_reads']} wrong reads",
    ]
    report("E7 / section 3.1.3: soft-error detection and recovery", lines)
    benchmark.extra_info["results"] = results
