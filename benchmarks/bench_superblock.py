"""Superblock engine: speedup and bit-exactness over the PR 1 fast path.

Runs every Table 1 configuration of the AutoIndy suite through the three
execution engines (see the execution-engines section of
:mod:`repro.core.cpu`) - the superblock engine, the per-instruction
predecoded engine (the PR 1 fast path), and the reference interpreter -
with compile time excluded, and asserts that

* registers-out, cycle counts, instruction counts, **and the full bus
  statistics** (reads, writes, total stalls) are identical across all
  three (the engines are execution engines, not approximations), and
* the superblock engine beats the predecoded engine by at least
  ``SPEEDUP_FLOOR`` wall-clock.

Also microbenchmarks the ``SystemBus.device_at`` decode (bisect over
sorted bases + last-hit span caches, replacing the linear scan) on a
many-device bus, asserting identical decode results.

Reduced-iteration mode (CI smoke): ``REPRO_BENCH_REDUCED=1`` shrinks the
workload scale and drops the speedup floors to sanity level - noisy
shared runners gate on bit-exactness, not the wall-clock ratios; the full
mode (run locally, no env var) enforces the ≥1.5x floor.
"""

from __future__ import annotations

import os
import time

from conftest import record_summary, report

from repro.codegen import compile_program
from repro.core import FLASH_BASE, SRAM_BASE, build_machine
from repro.memory.bus import SystemBus
from repro.memory.sram import Sram
from repro.sim.rng import DeterministicRng
from repro.workloads import TABLE1_CONFIGS
from repro.workloads.kernels import AUTOINDY_SUITE

REDUCED = os.environ.get("REPRO_BENCH_REDUCED") == "1"
SCALE = 4 if REDUCED else 16
ROUNDS = 2 if REDUCED else 3
#: superblock vs predecoded engine, wall-clock
SPEEDUP_FLOOR = 0.8 if REDUCED else 1.5

ENGINES = ("superblock", "uops", "reference")


def run_config(core: str, isa: str, engine: str) -> tuple[float, list[tuple]]:
    """Execution-only wall time (best-of-ROUNDS per kernel) + run records."""
    total = 0.0
    records = []
    for workload in AUTOINDY_SUITE:
        fn = workload.build()
        program = compile_program([fn], isa, base=FLASH_BASE)
        prepared = workload.make_input(DeterministicRng(2005), SCALE)
        expected = workload.reference(prepared.data, *prepared.args(0))
        best = None
        record = None
        for _ in range(ROUNDS):
            machine = build_machine(core, program)
            machine.cpu.fastpath = engine != "reference"
            machine.cpu.superblocks = engine == "superblock"
            # the trace tier has its own benchmark (bench_trace_superblock);
            # here "superblock" means exactly the PR 2 engine
            machine.cpu.trace_superblocks = False
            machine.load_data(SRAM_BASE, prepared.data)
            t0 = time.perf_counter()
            result = machine.call(fn.name, *prepared.args(SRAM_BASE))
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
            record = (workload.name, result, machine.cpu.cycles,
                      machine.cpu.instructions_executed,
                      machine.bus.reads, machine.bus.writes,
                      machine.bus.total_stalls)
            assert result == expected
        total += best
        records.append(record)
    return total, records


def compute_superblock():
    rows = []
    totals = dict.fromkeys(ENGINES, 0.0)
    for label, core, isa in TABLE1_CONFIGS:
        times = {}
        records = {}
        for engine in ENGINES:
            times[engine], records[engine] = run_config(core, isa, engine)
            totals[engine] += times[engine]
            instructions = sum(record[3] for record in records[engine])
            record_summary(engine, label, times[engine] * 1e9 / instructions)
        assert records["superblock"] == records["uops"] == records["reference"], (
            f"engines diverged on {label} (registers/cycles/bus statistics)")
        rows.append((label, times["superblock"], times["uops"], times["reference"]))
    return {
        "rows": rows,
        "speedup_vs_uops": totals["uops"] / totals["superblock"],
        "speedup_vs_reference": totals["reference"] / totals["superblock"],
    }


def test_superblock_speedup(benchmark):
    outcome = benchmark.pedantic(compute_superblock, rounds=1, iterations=1)
    assert outcome["speedup_vs_uops"] >= SPEEDUP_FLOOR, (
        f"superblock engine only {outcome['speedup_vs_uops']:.2f}x over the "
        f"predecoded engine (floor {SPEEDUP_FLOOR}x)")

    lines = [
        f"{label:<22} superblock {sb * 1000:7.1f} ms   predecoded "
        f"{uo * 1000:7.1f} ms   reference {ref * 1000:7.1f} ms   "
        f"({uo / sb:4.2f}x / {ref / sb:4.2f}x)"
        for label, sb, uo, ref in outcome["rows"]
    ]
    lines.append(
        f"{'suite total':<22} {outcome['speedup_vs_uops']:.2f}x over the PR 1 "
        f"fast path, {outcome['speedup_vs_reference']:.2f}x over the reference "
        f"(identical cycles/results/bus stats; floor {SPEEDUP_FLOOR}x)")
    report("Superblock engine vs predecoded fast path (AutoIndy)", lines)
    benchmark.extra_info["speedup_vs_uops"] = round(outcome["speedup_vs_uops"], 2)
    benchmark.extra_info["speedup_vs_reference"] = round(
        outcome["speedup_vs_reference"], 2)
    benchmark.extra_info["reduced"] = REDUCED


# ----------------------------------------------------------------------
# SystemBus.device_at microbenchmark (bisect + last-hit vs linear scan)
# ----------------------------------------------------------------------

DEVICES = 24
LOOKUPS = 20_000 if REDUCED else 200_000


def _linear_device_at(devices, addr):
    """The pre-bisect decode: scan every device in base order."""
    for device in devices:
        if device.base <= addr < device.base + device.size:
            return device
    return None


def _many_device_bus() -> SystemBus:
    bus = SystemBus()
    for index in range(DEVICES):
        bus.attach(Sram(base=0x1000_0000 * (index + 1) // 4, size=0x1000))
    return bus


def _lookup_addresses():
    rng = DeterministicRng(7)
    spans = [(0x1000_0000 * (index + 1) // 4, 0x1000) for index in range(DEVICES)]
    addresses = []
    # sequential bursts with occasional device switches: the access shape
    # the last-hit span caches are built for (and how cores actually walk)
    for _ in range(LOOKUPS // 16):
        base, size = spans[rng.randint(0, len(spans) - 1)]
        start = base + rng.randint(0, size - 65)
        addresses.extend(start + 4 * i for i in range(16))
    return addresses


def test_bus_device_lookup(benchmark):
    bus = _many_device_bus()
    addresses = _lookup_addresses()

    def timed(fn):
        t0 = time.perf_counter()
        out = [fn(a) for a in addresses]
        return time.perf_counter() - t0, out

    def run_both():
        cached_time, cached = timed(bus.device_at)
        linear_time, linear = timed(
            lambda a, devices=bus._devices: _linear_device_at(devices, a))
        assert cached == linear, "bisect+cache decode disagrees with linear scan"
        return {"cached_ms": cached_time * 1e3, "linear_ms": linear_time * 1e3,
                "win": linear_time / cached_time}

    outcome = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(f"SystemBus.device_at: bisect + last-hit cache vs linear scan "
           f"({DEVICES} devices, {len(addresses)} lookups)",
           [f"cached {outcome['cached_ms']:8.1f} ms",
            f"linear {outcome['linear_ms']:8.1f} ms",
            f"win    {outcome['win']:8.2f}x"])
    benchmark.extra_info["lookup_win"] = round(outcome["win"], 2)
    if not REDUCED:
        assert outcome["win"] >= 1.5, (
            f"device decode only {outcome['win']:.2f}x over the linear scan")
