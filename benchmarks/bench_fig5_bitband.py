"""E9 / section 3.2.3, figure 5: bit-band atomic semaphores.

The traditional RISC path sets a packed semaphore bit by disabling
interrupts, read-modify-writing the byte, and re-enabling - several
instructions, several cycles, and a global interrupt blackout.  With
bit-banding one aliased store does it atomically.
"""

from conftest import report

from repro.core import FLASH_BASE, SRAM_BASE, build_cortexm3
from repro.isa import ISA_THUMB2, assemble

SEMAPHORE_BYTE = SRAM_BASE + 0x40
SEMAPHORE_BIT = 5

RMW_SOURCE = f"""
set_semaphore:
    cpsid i
    ldr r1, =0x{SEMAPHORE_BYTE:08x}
    ldrb r2, [r1]
    movs r3, #{1 << SEMAPHORE_BIT}
    orrs r2, r2, r3
    strb r2, [r1]
    cpsie i
    bx lr
"""


def bitband_source(alias_addr: int) -> str:
    return f"""
set_semaphore:
    ldr r1, =0x{alias_addr:08x}
    movs r2, #1
    str r2, [r1]
    bx lr
"""


def run_variant(source: str):
    program = assemble(source, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    machine.bus.load_image(SEMAPHORE_BYTE, b"\x81")  # other semaphores set
    machine.call("set_semaphore")
    byte = machine.bus.read_raw(SEMAPHORE_BYTE, 1)
    return {
        "cycles": machine.cpu.cycles,
        "instructions": machine.cpu.instructions_executed,
        "code_bytes": program.code_bytes + program.literal_bytes,
        "byte_after": byte,
        "masked_interrupts": "cpsid" in source,
    }


def compute_experiment():
    program = assemble("nop", ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program)
    alias = machine.bitband.alias_address(SEMAPHORE_BYTE, SEMAPHORE_BIT)
    rmw = run_variant(RMW_SOURCE)
    bitband = run_variant(bitband_source(alias))
    return rmw, bitband


def test_fig5_bitband_semaphore(benchmark):
    rmw, bitband = benchmark.pedantic(compute_experiment, rounds=1, iterations=1)

    expected = 0x81 | (1 << SEMAPHORE_BIT)
    assert rmw["byte_after"] == expected
    assert bitband["byte_after"] == expected
    # only the target bit changed in both schemes
    # the bit-band path: fewer instructions, fewer cycles, no masking
    assert bitband["instructions"] < rmw["instructions"]
    assert bitband["cycles"] < rmw["cycles"]
    assert bitband["code_bytes"] < rmw["code_bytes"]
    assert not bitband["masked_interrupts"]
    assert rmw["masked_interrupts"]

    lines = [f"{'scheme':22} {'instr':>6} {'cycles':>7} {'bytes':>6} {'IRQs masked':>12}"]
    for label, row in (("mask + RMW", rmw), ("bit-band store", bitband)):
        lines.append(f"{label:22} {row['instructions']:6} {row['cycles']:7} "
                     f"{row['code_bytes']:6} {str(row['masked_interrupts']):>12}")
    report("E9 / Figure 5: semaphore set, masked RMW vs bit-band alias", lines)
    benchmark.extra_info["rmw"] = rmw["cycles"]
    benchmark.extra_info["bitband"] = bitband["cycles"]
