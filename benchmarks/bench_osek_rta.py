"""E12 / section 3.1: OSEK schedulability with measured WCETs.

Closes the loop between the layers: kernel WCETs are *measured* on the
Cortex-M3 core model (cycles at 72 MHz -> microseconds), fed into the
OSEK response-time analysis, and the analytic bounds are then validated
against the simulated OSEK kernel running the same task set.
"""

from conftest import report

from repro.rtos import (
    AnalysedTask,
    Compute,
    OsekKernel,
    rate_monotonic_priorities,
    response_time_analysis,
)
from repro.rtos.wcet import measure_wcet
from repro.workloads import WORKLOADS_BY_NAME

CPU_MHZ = 72
TASK_PERIODS_US = {
    "canrdr": 2_000,
    "rspeed": 5_000,
    "puwmod": 10_000,
    "bitmnp": 20_000,
}


def compute_experiment():
    specs = []
    for name, period in TASK_PERIODS_US.items():
        estimate = measure_wcet(WORKLOADS_BY_NAME[name], samples=5, margin=0.2)
        wcet_us = max(estimate.wcet // CPU_MHZ, 1)
        specs.append(AnalysedTask(name=name, wcet=wcet_us, period=period))
    analysis = response_time_analysis(specs, context_switch=2)

    kernel = OsekKernel(context_switch_cost=2)
    priorities = rate_monotonic_priorities(specs)
    for spec in specs:
        def body_factory(api, ticks=spec.wcet):
            yield Compute(ticks)
        kernel.add_task(spec.name, priority=priorities[spec.name],
                        body_factory=body_factory)
        kernel.add_alarm(f"alarm_{spec.name}", spec.name, offset=0,
                         period=spec.period)
    kernel.run(until=200_000)

    rows = []
    for spec in specs:
        observed = kernel.tasks[spec.name].worst_response()
        analytic = analysis.response_of(spec.name).response
        rows.append({"task": spec.name, "wcet_us": spec.wcet,
                     "period_us": spec.period, "observed": observed,
                     "bound": analytic})
    return analysis, rows


def test_osek_rta_with_measured_wcet(benchmark):
    analysis, rows = benchmark.pedantic(compute_experiment, rounds=1, iterations=1)

    assert analysis.schedulable
    for row in rows:
        assert row["observed"] <= row["bound"], row   # analysis bounds reality
        assert row["observed"] > 0

    lines = [f"utilisation: {analysis.utilisation:.1%}",
             f"{'task':8} {'C (us)':>7} {'T (us)':>7} "
             f"{'observed R':>11} {'RTA bound':>10}"]
    for row in rows:
        lines.append(f"{row['task']:8} {row['wcet_us']:7} {row['period_us']:7} "
                     f"{row['observed']:11} {row['bound']:10}")
    report("E12 / section 3.1: OSEK RTA with WCETs measured on the M3 model",
           lines)
    benchmark.extra_info["rows"] = rows
