"""Virtual-vehicle co-simulation throughput.

Two headline rates for the cycle-coupled multi-ECU layer:

* **simulated-bus-seconds per wall second** - how much vehicle time the
  whole network (3 ECUs + CAN + LIN) advances per host second, the
  metric that decides how many co-sim scenarios a campaign host clears;
* **guest ns/instruction under co-simulation** - what the quantum pump,
  MMIO devices, and interrupt coupling cost on top of the bare trace
  engine, recorded into the flat ``BENCH_summary.json`` trajectory.

``REPRO_BENCH_REDUCED=1`` shrinks the horizon for CI smoke.
"""

from __future__ import annotations

import os

from conftest import record_summary, report

from repro.vehicle import BodyNetworkSpec, SensorNode, build_body_network

REDUCED = os.environ.get("REPRO_BENCH_REDUCED") == "1"

HORIZON_US = 200_000 if REDUCED else 1_000_000

SPEC = BodyNetworkSpec(sensors=(
    SensorNode("wheel", "m3", 80, 0x120, 20_000),
    SensorNode("seat", "arm1156", 160, 0x180, 25_000, raw_salt=7),
    SensorNode("door", "arm7", 48, 0x200, 50_000, raw_salt=3),
))


def test_body_network_cosim_throughput(benchmark):
    built = {}

    def run():
        network = build_body_network(SPEC)
        network.run(horizon_us=HORIZON_US)
        built["network"] = network
        return network

    benchmark.pedantic(run, rounds=1, iterations=1)
    network = built["network"]
    report_data = network.report()
    assert report_data.healthy, "benchmark network must verify end to end"

    seconds = benchmark.stats["mean"]
    instructions = sum(ecu.cpu.instructions_executed
                      for ecu in network.vehicle.ecus)
    guest_cycles = sum(ecu.cpu.cycles for ecu in network.vehicle.ecus)
    bus_seconds = HORIZON_US / 1e6
    ns_per_instruction = seconds * 1e9 / instructions

    record_summary("cosim", "body-network-3ecu", ns_per_instruction)
    report(
        "virtual vehicle co-simulation"
        + (" [reduced]" if REDUCED else ""),
        [
            f"horizon {bus_seconds:.2f} simulated bus-seconds, "
            f"{len(network.vehicle.ecus)} ECUs "
            f"(m3 + arm7 + arm1156), CAN + LIN",
            f"{bus_seconds / seconds:8.1f} simulated-bus-seconds / wall-second",
            f"{instructions:8d} guest instructions "
            f"({ns_per_instruction:.0f} ns/instruction under co-sim)",
            f"{guest_cycles:8d} guest cycles, "
            f"{len(network.vehicle.can.deliveries)} CAN frames, "
            f"{len(network.vehicle.lin.deliveries)} LIN frames",
            f"{report_data.gateway_applied + report_data.actuator_applied}"
            f" signal observations, worst latency "
            f"{report_data.worst_latency_us}us <= bound "
            f"{report_data.worst_bound_us}us",
        ])
    benchmark.extra_info["bus_seconds_per_second"] = round(
        bus_seconds / seconds, 2)
    benchmark.extra_info["guest_instructions"] = instructions


def test_body_network_cosim_throughput_parallel(benchmark):
    """The same network with every ECU quantum advanced concurrently
    (``parallel=3``, one worker per ECU) - identical output bytes by the
    lookahead/merge contract, so the only question is the rate."""
    built = {}

    def run():
        network = build_body_network(SPEC)
        network.run(horizon_us=HORIZON_US, parallel=3)
        built["network"] = network
        return network

    benchmark.pedantic(run, rounds=1, iterations=1)
    network = built["network"]
    report_data = network.report()
    assert report_data.healthy, "benchmark network must verify end to end"

    seconds = benchmark.stats["mean"]
    instructions = sum(ecu.cpu.instructions_executed
                      for ecu in network.vehicle.ecus)
    bus_seconds = HORIZON_US / 1e6
    ns_per_instruction = seconds * 1e9 / instructions

    record_summary("cosim", "body-network-3ecu-parallel", ns_per_instruction)
    report(
        "virtual vehicle co-simulation, parallel ECU advance"
        + (" [reduced]" if REDUCED else ""),
        [
            f"horizon {bus_seconds:.2f} simulated bus-seconds, "
            f"{len(network.vehicle.ecus)} ECUs on 3 workers under "
            f"declared TX lookahead",
            f"{bus_seconds / seconds:8.1f} simulated-bus-seconds / wall-second",
            f"{instructions:8d} guest instructions "
            f"({ns_per_instruction:.0f} ns/instruction under co-sim)",
        ])
    benchmark.extra_info["bus_seconds_per_second"] = round(
        bus_seconds / seconds, 2)
    benchmark.extra_info["parallel"] = 3
