"""E11 / sections 1 & 4: the harmonized-ISA virtual multi-core vision.

Task sets of growing size are placed onto a four-ECU fleet connected by
one CAN bus.  In the *heterogeneous* fleet each task ships a binary for
one ISA and can only run on matching nodes; after *harmonization* (one
ISA everywhere - the paper's proposal) any task fits any node and each
task needs exactly one binary.  We measure placement success, end-to-end
schedulability (per-ECU RTA + bus RTA), and binaries maintained.
"""

from conftest import report

from repro.network import (
    DistributedTask,
    Ecu,
    MessageSpec,
    allocate_tasks,
    analyse_system,
    count_binaries,
    harmonize,
)
from repro.sim import DeterministicRng

HETEROGENEOUS_FLEET = [
    Ecu("engine", isa="thumb2", speed=2.0),
    Ecu("gateway", isa="thumb2", speed=1.0),
    Ecu("body_front", isa="thumb", speed=0.8),
    Ecu("dash", isa="arm", speed=1.0),
]
HARMONIZED_FLEET = [Ecu(e.name, isa="thumb2", speed=e.speed)
                    for e in HETEROGENEOUS_FLEET]


def make_tasks(rng, count):
    tasks = []
    for i in range(count):
        isa = rng.choice(["arm", "thumb", "thumb2"])
        produces = ()
        if i % 3 == 0:
            produces = (MessageSpec(can_id=0x100 + i, payload_bytes=4,
                                    period_us=20_000),)
        tasks.append(DistributedTask(
            name=f"task{i:02d}",
            wcet_us=rng.randint(300, 2_000),
            period_us=rng.choice([10_000, 20_000, 50_000, 100_000]),
            binaries=frozenset({isa}),
            produces=produces,
        ))
    return tasks


def compute_sweep():
    rows = []
    for count in (8, 16, 24, 32, 40):
        rng = DeterministicRng(count)
        heterogeneous = make_tasks(rng, count)
        harmonized = harmonize(heterogeneous, "thumb2")

        p_het = allocate_tasks(heterogeneous, HETEROGENEOUS_FLEET)
        a_het = analyse_system(heterogeneous, HETEROGENEOUS_FLEET, p_het)
        p_harm = allocate_tasks(harmonized, HARMONIZED_FLEET)
        a_harm = analyse_system(harmonized, HARMONIZED_FLEET, p_harm)

        rows.append({
            "tasks": count,
            "het_unplaced": len(p_het.unplaced),
            "harm_unplaced": len(p_harm.unplaced),
            "het_schedulable": a_het.schedulable,
            "harm_schedulable": a_harm.schedulable,
            "het_binaries": count_binaries(heterogeneous),
            "harm_binaries": count_binaries(harmonized),
            "bus_util": round(a_harm.bus_utilisation, 3),
        })
    return rows


def test_distributed_virtual_multicore(benchmark):
    rows = benchmark.pedantic(compute_sweep, rounds=1, iterations=1)

    for row in rows:
        # harmonization never places fewer tasks or needs more binaries
        assert row["harm_unplaced"] <= row["het_unplaced"], row
        assert row["harm_binaries"] <= row["het_binaries"], row
    # at some fleet load the heterogeneous system fails where the
    # harmonized one still schedules - the paper's core argument
    assert any(r["harm_schedulable"] and not r["het_schedulable"] for r in rows), rows
    assert all(r["bus_util"] < 1.0 for r in rows)

    lines = [f"{'tasks':>5} {'het unplaced':>13} {'harm unplaced':>14} "
             f"{'het sched':>10} {'harm sched':>11} {'binaries h/h':>13}"]
    for row in rows:
        lines.append(f"{row['tasks']:5} {row['het_unplaced']:13} "
                     f"{row['harm_unplaced']:14} {str(row['het_schedulable']):>10} "
                     f"{str(row['harm_schedulable']):>11} "
                     f"{row['het_binaries']:>6}/{row['harm_binaries']}")
    report("E11 / sections 1&4: ECU fleet allocation, heterogeneous vs harmonized",
           lines)
    benchmark.extra_info["rows"] = rows
