"""E8 / section 3.2.1, figure 4: hardware interrupt preamble + tail-chaining.

Three comparisons on the same two-interrupt burst:

* ARM7-style: hardware only swaps the PC; the handler's software
  preamble/postamble (PUSH/POP) costs instructions and cycles;
* Cortex-M3: 8-register hardware stacking with parallel vector fetch
  (12 cycles on zero-wait memory);
* back-to-back: tail-chaining replaces the pop+push pair with a 6-cycle
  handover.
"""

from conftest import report

from repro.core import FLASH_BASE, build_arm7, build_cortexm3
from repro.isa import ISA_THUMB, ISA_THUMB2, assemble

M3_SOURCE = """
main:
    movs r0, #0
loop:
    adds r0, r0, #1
    cmp r0, #200
    bne loop
    bx lr
handler:
    ldr r1, =0x20000100
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    bx lr
"""

ARM7_SOURCE = """
main:
    movs r0, #0
loop:
    adds r0, r0, #1
    cmp r0, #200
    bne loop
    bx lr
handler:
    push {r1, r2, lr}
    ldr r1, =0x20000100
    ldr r2, [r1]
    adds r2, r2, #1
    str r2, [r1]
    pop {r1, r2, pc}
"""


def run_m3(tail_chaining: bool):
    program = assemble(M3_SOURCE, ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program, tail_chaining=tail_chaining)
    handler = program.symbols["handler"]
    machine.cpu.nvic.raise_irq(1, handler=handler, at_cycle=100, priority=1)
    machine.cpu.nvic.raise_irq(2, handler=handler, at_cycle=100, priority=2)
    assert machine.call("main") == 200
    records = machine.cpu.nvic.stats.records
    return machine, records


def run_arm7():
    program = assemble(ARM7_SOURCE, ISA_THUMB, base=FLASH_BASE)
    machine = build_arm7(program)
    handler = program.symbols["handler"]
    machine.cpu.vic.raise_irq(1, handler=handler, at_cycle=100)
    machine.cpu.vic.raise_irq(2, handler=handler, at_cycle=100, priority=1)
    assert machine.call("main") == 200
    return machine, machine.cpu.vic.stats.records


def compute_experiment():
    m3, m3_records = run_m3(tail_chaining=True)
    m3_nochain, nochain_records = run_m3(tail_chaining=False)
    arm7, arm7_records = run_arm7()
    first_handler = m3_records[0]
    chained = m3_records[1]
    return {
        "m3_entry_latency": first_handler.latency,
        "m3_chained_gap": chained.entry_cycle - first_handler.exit_cycle,
        "m3_total": m3.cpu.cycles,
        "m3_nochain_total": m3_nochain.cpu.cycles,
        "arm7_entry_latency": arm7_records[0].latency,
        "arm7_handler_span": arm7_records[0].exit_cycle - arm7_records[0].entry_cycle,
        "m3_handler_span": first_handler.exit_cycle - first_handler.entry_cycle,
        "arm7_total": arm7.cpu.cycles,
    }


def test_fig4_interrupt_response(benchmark):
    result = benchmark.pedantic(compute_experiment, rounds=1, iterations=1)

    # hardware entry: ~12 cycles of stacking (+ finishing one instruction)
    assert 12 <= result["m3_entry_latency"] <= 20
    # tail-chained handover is cheaper than a full exit+entry
    assert result["m3_chained_gap"] <= 8
    assert result["m3_total"] < result["m3_nochain_total"]
    # the ARM7 handler pays its preamble in *handler* cycles: its span must
    # exceed the M3 handler's span (same work, plus PUSH/POP)
    assert result["arm7_handler_span"] > result["m3_handler_span"]

    lines = [
        f"M3 entry latency (hw preamble)      : {result['m3_entry_latency']} cycles",
        f"M3 tail-chain handover              : {result['m3_chained_gap']} cycles "
        f"(paper: 6)",
        f"M3 burst total (tail-chain on/off)  : {result['m3_total']} / "
        f"{result['m3_nochain_total']} cycles",
        f"ARM7 entry latency (pc swap only)   : {result['arm7_entry_latency']} cycles",
        f"handler span ARM7 vs M3 (sw vs hw)  : {result['arm7_handler_span']} vs "
        f"{result['m3_handler_span']} cycles",
    ]
    report("E8 / Figure 4: interrupt response, software vs hardware pre/postamble",
           lines)
    benchmark.extra_info.update(result)
