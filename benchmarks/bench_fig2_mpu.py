"""E5 / section 3.1.1, figure 2: fine-grained MPU vs 4 KB regions.

OSEK wants every small supplier module locked into its own region.  With
4 KB minimum regions, small tasks burn whole pages (or must share); the
re-engineered ARMv6 MPU (32 B regions + subregion disable) isolates the
same task set in a fraction of the RAM.
"""

from conftest import report

from repro.memory import armv6_mpu, classic_mpu, plan_task_isolation
from repro.sim import DeterministicRng


def make_task_set(rng, count):
    """OSEK-ish body-electronics modules: 64 B - 2 KB footprints."""
    return {
        f"module{i:02d}": rng.choice([64, 96, 128, 192, 256, 384, 512, 1024, 2048])
        for i in range(count)
    }


def compute_sweep():
    rng = DeterministicRng(2005)
    rows = []
    for count in (8, 16, 24, 32):
        tasks = make_task_set(rng.fork(count), count)
        coarse = plan_task_isolation(tasks, classic_mpu(num_regions=count + 1),
                                     ram_budget=64 * 1024)
        fine = plan_task_isolation(tasks, armv6_mpu(num_regions=count + 1),
                                   ram_budget=64 * 1024)
        rows.append({
            "tasks": count,
            "coarse_isolated": coarse.isolated_tasks,
            "fine_isolated": fine.isolated_tasks,
            "coarse_ram": coarse.allocated_bytes,
            "fine_ram": fine.allocated_bytes,
            "coarse_waste": round(coarse.waste_ratio, 3),
            "fine_waste": round(fine.waste_ratio, 3),
        })
    return rows


def test_fine_grained_mpu_isolation(benchmark):
    rows = benchmark.pedantic(compute_sweep, rounds=1, iterations=1)
    for row in rows:
        # the fine MPU never isolates fewer tasks and always wastes less
        assert row["fine_isolated"] >= row["coarse_isolated"], row
        assert row["fine_ram"] < row["coarse_ram"], row
        assert row["fine_waste"] < row["coarse_waste"], row
    # with a 64 KB SRAM the 4 KB MPU must fail to isolate a 32-task set
    big = rows[-1]
    assert big["coarse_isolated"] < big["tasks"]
    assert big["fine_isolated"] == big["tasks"]

    lines = [f"{'tasks':>5} {'4KB isolated':>13} {'fine isolated':>14} "
             f"{'4KB RAM':>9} {'fine RAM':>9} {'4KB waste':>10} {'fine waste':>11}"]
    for row in rows:
        lines.append(f"{row['tasks']:5} {row['coarse_isolated']:13} "
                     f"{row['fine_isolated']:14} {row['coarse_ram']:9} "
                     f"{row['fine_ram']:9} {row['coarse_waste']:10.1%} "
                     f"{row['fine_waste']:11.1%}")
    report("E5 / Figure 2: task isolation, classic 4KB MPU vs ARMv6 fine-grained",
           lines)
    benchmark.extra_info["rows"] = rows
