"""E2 / Figure 1: per-kernel Thumb-2 performance and code-size series.

Figure 1 plots the same data as Table 1 broken out per benchmark: for
every kernel, Thumb-2's performance relative to ARM and its code size
relative to Thumb.  The reproduced series must show Thumb-2 at
ARM-or-better performance and at-Thumb-or-better size for (nearly) every
kernel, which is the figure's visual message.
"""

from conftest import report

from repro.workloads import table1


def compute_series():
    arm, thumb, thumb2 = table1(seed=2005)
    series = []
    for run_arm, run_thumb, run_t2 in zip(arm.runs, thumb.runs, thumb2.runs):
        series.append({
            "kernel": run_arm.workload,
            "perf_vs_arm": run_t2.iterations_per_mcycle / run_arm.iterations_per_mcycle,
            "perf_thumb_vs_arm": run_thumb.iterations_per_mcycle / run_arm.iterations_per_mcycle,
            "size_vs_arm": run_t2.total_bytes / run_arm.total_bytes,
            "size_thumb_vs_arm": run_thumb.total_bytes / run_arm.total_bytes,
        })
    return series


def test_fig1_per_kernel_series(benchmark):
    series = benchmark.pedantic(compute_series, rounds=1, iterations=1)

    # Thumb-2 at ARM-or-better performance on every kernel
    assert all(row["perf_vs_arm"] >= 1.0 for row in series), series
    # Thumb-2 no bigger than ARM anywhere; smaller than Thumb on average
    assert all(row["size_vs_arm"] <= 1.0 for row in series)
    mean_t2 = sum(r["size_vs_arm"] for r in series) / len(series)
    mean_thumb = sum(r["size_thumb_vs_arm"] for r in series) / len(series)
    assert mean_t2 <= mean_thumb + 0.05

    lines = [f"{'kernel':8} {'T2 perf/ARM':>12} {'Thumb perf/ARM':>15} "
             f"{'T2 size/ARM':>12} {'Thumb size/ARM':>15}"]
    for row in series:
        lines.append(f"{row['kernel']:8} {row['perf_vs_arm']:12.2f} "
                     f"{row['perf_thumb_vs_arm']:15.2f} "
                     f"{row['size_vs_arm']:12.2f} {row['size_thumb_vs_arm']:15.2f}")
    report("E2 / Figure 1: per-kernel Thumb-2 performance & code size", lines)
    benchmark.extra_info["series"] = series
