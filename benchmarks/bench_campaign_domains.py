"""Scenario-domain campaign matrix benchmark.

Runs every built-in campaign matrix - CPU kernels (Table 1), OSEK task
sets, CAN traffic matrices, soft-error sweeps - through the sharded
campaign runner and reports scenario throughput per domain.  The series
of CI artifacts across PRs tracks how scenario-matrix cost evolves as the
engines and domains grow.

``REPRO_BENCH_REDUCED=1`` shrinks each matrix to a few cells (CI smoke);
``REPRO_BENCH_WORKERS`` sets the worker-pool size (results are identical
for any value - that is the campaign runner's core guarantee).
"""

from __future__ import annotations

import os

import pytest
from conftest import report

from repro.sim.campaign import CampaignRequest, available_matrices, execute_request

REDUCED = os.environ.get("REPRO_BENCH_REDUCED") == "1"
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))

#: matrix name -> cells kept in reduced mode
DOMAIN_MATRICES = {
    "table1": 6,
    "osek": 3,
    "can": 3,
    "soft-error": 2,
}


@pytest.mark.parametrize("matrix", sorted(DOMAIN_MATRICES))
def test_campaign_domain_matrix(benchmark, matrix):
    specs = available_matrices()[matrix](2005, 1)
    if REDUCED:
        specs = specs[:DOMAIN_MATRICES[matrix]]

    request = CampaignRequest(specs=tuple(specs), workers=WORKERS)
    result = benchmark.pedantic(
        lambda: execute_request(request),
        rounds=1, iterations=1)

    assert len(result.records) == len(specs)
    assert result.all_verified, [r.label for r in result.records
                                 if not r.verified]

    seconds = benchmark.stats["mean"]
    lines = [f"{len(specs)} scenarios in {seconds:.2f}s "
             f"({len(specs) / seconds:.1f}/s, workers={WORKERS})"]
    for domain, count in sorted(result.by_domain().items()):
        lines.append(f"  {domain:11} {count:3} cells, all verified")
    report(f"campaign matrix '{matrix}'"
           + (" [reduced]" if REDUCED else ""), lines)
    benchmark.extra_info["scenarios"] = len(specs)
    benchmark.extra_info["workers"] = WORKERS
