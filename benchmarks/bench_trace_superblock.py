"""Trace engine: loop-fusion speedup and bit-exactness over the PR 2 engine.

Runs the loop-dominated AutoIndy suite on **all three cores' fetch
paths** - the Table 1 configurations plus the ARM1156 with its
instruction cache on - through the trace engine (back-edge loop fusion,
span-coalesced accounting, inline cached-fetch and MPU-checked data
paths; see :mod:`repro.core.superblock`) and the plain superblock engine
it grew out of (``trace_superblocks = False``, the PR 2 emission), and
asserts that

* registers-out, cycle counts, instruction counts, **and the full bus
  statistics** (reads, writes, total stalls) are identical across both
  (the trace engine is an execution engine, not an approximation), and
* the trace engine beats the PR 2 superblock engine by at least
  ``SPEEDUP_FLOOR`` wall-clock over the whole sweep.

Timing is interleaved (engines alternate round by round, best-of kept)
so the ratio survives machine noise.  Per-engine ns/instruction figures
feed the flat ``BENCH_summary.json`` the CI bench job uploads alongside
the pytest-benchmark artifact, keeping the cross-PR perf trajectory
greppable.

Reduced-iteration mode (CI smoke): ``REPRO_BENCH_REDUCED=1`` shrinks the
workload scale and drops the speedup floor to sanity level - noisy
shared runners gate on bit-exactness, not the wall-clock ratio; the full
mode (run locally, no env var) enforces the ≥1.5x floor.
"""

from __future__ import annotations

import os
import time

from conftest import record_summary, report

from repro.codegen import compile_program
from repro.core import FLASH_BASE, SRAM_BASE, build_machine
from repro.sim.rng import DeterministicRng
from repro.workloads import TABLE1_CONFIGS
from repro.workloads.kernels import AUTOINDY_SUITE

REDUCED = os.environ.get("REPRO_BENCH_REDUCED") == "1"
#: full mode measures engine steady state: the fixed per-call work
#: (dispatch-table binding, fusion compiles) is identical for both
#: engines, so a small scale only dilutes the ratio being gated
SCALE = 4 if REDUCED else 48
ROUNDS = 2 if REDUCED else 3
#: trace engine vs the PR 2 superblock engine, wall-clock over the sweep
SPEEDUP_FLOOR = 0.8 if REDUCED else 1.5

#: the three cores' fetch paths: shared-bus flash (ARM7), Harvard flash
#: (M3), and the ARM1156's instruction cache
CONFIGS = tuple(TABLE1_CONFIGS) + (("ARM1156 (Thumb-2)", "arm1156", "thumb2"),)

ENGINES = ("trace", "superblock")


def _run_once(core: str, isa: str, workload, entry: str, program, prepared,
              engine: str):
    machine = build_machine(core, program)
    machine.cpu.trace_superblocks = engine == "trace"
    machine.load_data(SRAM_BASE, prepared.data)
    start = time.perf_counter()
    result = machine.call(entry, *prepared.args(SRAM_BASE),
                          max_instructions=20_000_000)
    elapsed = time.perf_counter() - start
    record = (workload.name, result, machine.cpu.cycles,
              machine.cpu.instructions_executed,
              machine.bus.reads, machine.bus.writes,
              machine.bus.total_stalls)
    return elapsed, record, machine.cpu.instructions_executed


def run_config(core: str, isa: str) -> dict:
    """Interleaved best-of-ROUNDS per kernel for both engines."""
    times = dict.fromkeys(ENGINES, 0.0)
    instructions = 0
    for workload in AUTOINDY_SUITE:
        fn = workload.build()
        program = compile_program([fn], isa, base=FLASH_BASE)
        prepared = workload.make_input(DeterministicRng(2005), SCALE)
        expected = workload.reference(prepared.data, *prepared.args(0))
        best = dict.fromkeys(ENGINES)
        records = {}
        for _ in range(ROUNDS):
            for engine in ENGINES:
                elapsed, record, executed = _run_once(
                    core, isa, workload, fn.name, program, prepared, engine)
                assert record[1] == expected
                records[engine] = record
                if best[engine] is None or elapsed < best[engine]:
                    best[engine] = elapsed
        assert records["trace"] == records["superblock"], (
            f"engines diverged on {core}/{isa}/{workload.name} "
            f"(registers/cycles/bus statistics)")
        for engine in ENGINES:
            times[engine] += best[engine]
        instructions += executed
    return {"times": times, "instructions": instructions}


def compute_trace_speedup():
    rows = []
    totals = dict.fromkeys(ENGINES, 0.0)
    for label, core, isa in CONFIGS:
        outcome = run_config(core, isa)
        times = outcome["times"]
        for engine in ENGINES:
            totals[engine] += times[engine]
            record_summary(engine, label,
                           times[engine] * 1e9 / outcome["instructions"])
        rows.append((label, times["trace"], times["superblock"]))
    return {
        "rows": rows,
        "speedup": totals["superblock"] / totals["trace"],
    }


def test_trace_superblock_speedup(benchmark):
    outcome = benchmark.pedantic(compute_trace_speedup, rounds=1, iterations=1)
    lines = [
        f"{label:<22} trace {tr * 1000:7.1f} ms   superblock "
        f"{sb * 1000:7.1f} ms   ({sb / tr:4.2f}x)"
        for label, tr, sb in outcome["rows"]
    ]
    lines.append(
        f"{'sweep total':<22} {outcome['speedup']:.2f}x over the PR 2 "
        f"superblock engine (identical cycles/results/bus stats; "
        f"floor {SPEEDUP_FLOOR}x)")
    report("Trace superblocks vs PR 2 superblock engine "
           "(loop-dominated AutoIndy, all three cores)", lines)
    benchmark.extra_info["speedup_vs_superblock"] = round(outcome["speedup"], 2)
    benchmark.extra_info["reduced"] = REDUCED
    assert outcome["speedup"] >= SPEEDUP_FLOOR, (
        f"trace engine only {outcome['speedup']:.2f}x over the PR 2 "
        f"superblock engine (floor {SPEEDUP_FLOOR}x)")
