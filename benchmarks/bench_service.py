"""Campaign service load benchmark: concurrent overlapping clients.

Starts the resident sweep service in-process, fans out several TCP
clients whose requests overlap (consecutive windows over one spec pool),
and streams every request to completion.  Reports requests/sec,
cells/sec, and the dedup rate - the fraction of requested cells served
from the cache or joined in flight instead of recomputed - and asserts
the service's core economy claim: the number of cells actually executed
equals the size of the union, not the sum, of the requests.

``REPRO_BENCH_REDUCED=1`` shrinks the pool and client count (CI smoke);
``REPRO_BENCH_WORKERS`` sizes the service's worker pool.

The supervised-fleet benchmarks run the same sweep through worker
*subprocesses* (``workers_proc``) twice - fault-free, then with one
chaos-injected worker kill - and report supervised cells/sec plus the
recovery overhead of losing and respawning a worker mid-sweep (the
streams are asserted byte-identical, faulted or not).
"""

from __future__ import annotations

import asyncio
import os

from conftest import record_summary, report

from repro.sim.campaign import CampaignRequest, ScenarioSpec, _record_json, execute_request
from repro.sim.service import (
    CampaignClient,
    CampaignService,
    ChaosSchedule,
    WorkerFaultPlan,
    serve_tcp,
)

REDUCED = os.environ.get("REPRO_BENCH_REDUCED") == "1"
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
CLIENTS = 3 if REDUCED else 6
POOL_CELLS = 6 if REDUCED else 18
WINDOW = 4 if REDUCED else 9            # cells per request (windows overlap)


def spec_pool() -> list[ScenarioSpec]:
    """Cheap pure-Python cells: the load is scheduling, not simulation."""
    pool = []
    for i in range(POOL_CELLS):
        if i % 2:
            pool.append(ScenarioSpec(
                label=f"osek {i}", domain="osek", seed=i,
                params=(("tasks", 3 + i % 3), ("utilisation", 0.5),
                        ("horizon_us", 200_000))))
        else:
            pool.append(ScenarioSpec(
                label=f"can {i}", domain="can", seed=i,
                params=(("messages", 4 + i % 3), ("load", 0.4),
                        ("horizon_us", 200_000))))
    return pool


async def drive(service: CampaignService, port: int,
                requests: list[CampaignRequest]) -> list[dict]:
    async def one_client(request: CampaignRequest) -> dict:
        client = await CampaignClient.connect(port=port)
        try:
            rid = await client.submit(request)
            return await client.stream(rid)
        finally:
            await client.close()

    return list(await asyncio.gather(*(one_client(r) for r in requests)))


def test_service_concurrent_overlapping_load(benchmark):
    pool = spec_pool()
    step = max(1, (POOL_CELLS - WINDOW) // max(1, CLIENTS - 1))
    requests = [
        CampaignRequest(specs=tuple(
            pool[(k * step + i) % POOL_CELLS] for i in range(WINDOW)))
        for k in range(CLIENTS)
    ]
    unique = {s.key() for r in requests for s in r.specs}

    async def run_load() -> tuple[list[dict], CampaignService]:
        service = CampaignService(workers=WORKERS,
                                  max_pending=CLIENTS + 1)
        await service.start()
        server = await serve_tcp(service)
        try:
            summaries = await drive(
                service, server.sockets[0].getsockname()[1], requests)
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()
        return summaries, service

    summaries, service = benchmark.pedantic(
        lambda: asyncio.run(run_load()), rounds=1, iterations=1)

    requested = sum(len(r.specs) for r in requests)
    delivered = sum(s["ran"] for s in summaries)
    deduped = sum(s["replayed"] + s["joined"] for s in summaries)
    assert all(s["status"] == "ok" for s in summaries)
    assert delivered == requested
    assert service.computed == len(unique)      # the union ran exactly once
    assert deduped == requested - len(unique)

    seconds = benchmark.stats["mean"]
    requests_per_sec = CLIENTS / seconds
    cells_per_sec = delivered / seconds
    dedup_pct = 100.0 * deduped / requested
    report(f"campaign service load ({CLIENTS} clients, workers={WORKERS})"
           + (" [reduced]" if REDUCED else ""),
           [f"{CLIENTS} overlapping requests ({requested} cells, "
            f"{len(unique)} unique) in {seconds:.2f}s",
            f"{requests_per_sec:.1f} requests/s, {cells_per_sec:.1f} cells/s "
            f"streamed",
            f"{deduped}/{requested} cells deduped ({dedup_pct:.0f}%): "
            f"computed {service.computed}, joined/replayed the rest"])
    record_summary("service", "requests_per_sec", requests_per_sec)
    record_summary("service", "cells_per_sec", cells_per_sec)
    record_summary("service", "dedup_pct", dedup_pct)
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["cells"] = requested
    benchmark.extra_info["unique_cells"] = len(unique)


def test_supervised_pool_throughput_and_kill_recovery(benchmark):
    """One sweep through the supervised worker fleet, fault-free and with
    one injected worker kill: supervised cells/sec, recovery overhead."""
    specs = spec_pool()
    request = CampaignRequest(specs=tuple(specs))
    baseline = "".join(
        _record_json(r) + "\n" for r in execute_request(request).records)
    kill = ChaosSchedule(plans=(
        (0, WorkerFaultPlan(kill_at_cell=1, kill_phase="report")),))

    async def sweep(chaos) -> tuple[float, str, dict]:
        service = CampaignService(workers_proc=WORKERS, chaos=chaos,
                                  supervisor_options={"heartbeat": 0.2})
        await service.start()
        loop = asyncio.get_running_loop()
        try:
            # time only the sweep, not fleet spawn/teardown
            start = loop.time()
            state = service.submit(request)
            records = []
            async for _, record in service.stream_records(state):
                records.append(record)
            elapsed = loop.time() - start
            stream = "".join(_record_json(r) + "\n" for r in records)
            return elapsed, stream, service.status()["supervisor"]
        finally:
            await service.shutdown()

    async def both() -> tuple:
        clean = await sweep(None)
        faulted = await sweep(kill)
        return clean, faulted

    (clean, faulted) = benchmark.pedantic(
        lambda: asyncio.run(both()), rounds=1, iterations=1)
    clean_s, clean_stream, clean_sup = clean
    faulted_s, faulted_stream, faulted_sup = faulted
    assert clean_stream == baseline          # supervised == local, bytes
    assert faulted_stream == baseline        # ...even across a worker kill
    assert clean_sup["lost"] == 0
    assert faulted_sup["lost"] >= 1 and faulted_sup["respawns"] >= 1

    cells_per_sec = len(specs) / clean_s
    recovery_overhead_s = max(0.0, faulted_s - clean_s)
    report(f"supervised worker fleet ({WORKERS} workers)"
           + (" [reduced]" if REDUCED else ""),
           [f"{len(specs)} cells fault-free in {clean_s:.2f}s "
            f"({cells_per_sec:.1f} cells/s through subprocess workers)",
            f"same sweep with one report-phase worker kill: {faulted_s:.2f}s "
            f"(+{recovery_overhead_s:.2f}s to detect, requeue, respawn)",
            "both streams byte-identical to the local pooled run"])
    record_summary("service", "supervised_cells_per_sec", cells_per_sec)
    record_summary("service", "kill_recovery_overhead_s", recovery_overhead_s)
    benchmark.extra_info["workers_proc"] = WORKERS
    benchmark.extra_info["cells"] = len(specs)


def test_telemetry_overhead_stays_out_of_band(benchmark):
    """The observability acceptance number: the same sweep with the
    :mod:`repro.obs` registry enabled vs disabled - identical records,
    and the instrumented run costs under 3% (per-cell telemetry is a
    handful of counter adds, one span, and one histogram observe).

    Interleaved min-of-N timing on the serial campaign core, fresh
    (cache-less) every run, so the ratio measures instrumentation and
    not cache or pool scheduling noise.
    """
    import time

    from repro import obs

    request = CampaignRequest(specs=tuple(spec_pool()))
    rounds = 2 if REDUCED else 3

    def timed_run() -> tuple[float, str]:
        start = time.perf_counter()
        result = execute_request(request)
        elapsed = time.perf_counter() - start
        stream = "".join(_record_json(r) + "\n" for r in result.records)
        return elapsed, stream

    def both_arms() -> tuple[list[float], list[float], set[str]]:
        bare, instrumented, streams = [], [], set()
        was = obs.enabled()
        try:
            for _ in range(rounds):       # interleaved: drift hits both arms
                obs.disable()
                elapsed, stream = timed_run()
                bare.append(elapsed)
                streams.add(stream)
                obs.enable()
                elapsed, stream = timed_run()
                instrumented.append(elapsed)
                streams.add(stream)
        finally:
            (obs.enable if was else obs.disable)()
        return bare, instrumented, streams

    bare, instrumented, streams = benchmark.pedantic(
        both_arms, rounds=1, iterations=1)
    assert len(streams) == 1             # telemetry never touches a byte

    bare_s, instrumented_s = min(bare), min(instrumented)
    overhead_pct = max(0.0, 100.0 * (instrumented_s - bare_s) / bare_s)
    cells = len(request.specs)
    report("telemetry overhead (obs enabled vs disabled)"
           + (" [reduced]" if REDUCED else ""),
           [f"{cells} cells bare {bare_s:.3f}s vs instrumented "
            f"{instrumented_s:.3f}s (min of {rounds} interleaved rounds)",
            f"overhead {overhead_pct:.2f}% - streams byte-identical",
            f"{cells / instrumented_s:.1f} cells/s with full telemetry on"])
    record_summary("service", "telemetry_overhead_pct", overhead_pct)
    record_summary("service", "instrumented_cells_per_sec",
                   cells / instrumented_s)
    benchmark.extra_info["overhead_pct"] = overhead_pct
    if not REDUCED:
        assert overhead_pct < 3.0, (
            f"telemetry overhead {overhead_pct:.2f}% exceeds the 3% budget")
