"""E3 / section 2.2: literal pools break flash streaming; MOVW/MOVT fixes it.

The paper: "Benchmarks show a performance degradation of 15 percent is
possible because of this effect", and MOVW/MOVH "restores the sequential
nature of instruction accesses being made to the flash".

Setup: a constant-heavy kernel on a core running 2x the flash speed
(e.g. 80 MHz core, 40 MHz flash) with the streaming prefetcher on.  The
same IR is lowered twice: ``const_policy='literal'`` (pre-Thumb-2 style
literal pools) vs ``const_policy='movw'`` (Thumb-2 MOVW/MOVT).
"""

from conftest import report

from repro.codegen import IrBuilder, compile_program
from repro.core import FLASH_BASE, build_cortexm3

# distinct 32-bit constants that are neither 8-bit nor modified-immediates,
# so the 'literal' policy genuinely hits the pool for each one
CONSTANTS = [0x12345601 + 0x01010101 * k for k in range(8)]


def build_kernel():
    b = IrBuilder("caltable", num_params=1)
    (rounds,) = b.params
    acc = b.const(0, "acc")
    b.label("loop")
    for value in CONSTANTS:
        acc2 = b.eor(acc, b.const(value))
        b.assign(acc, b.add(acc2, 1))
    b.assign(rounds, b.sub(rounds, 1))
    b.brcond("ne", rounds, 0, "loop")
    b.ret(acc)
    return b.build()


def run_policy(policy: str):
    program = compile_program([build_kernel()], "thumb2", base=FLASH_BASE,
                              const_policy=policy)
    machine = build_cortexm3(program, flash_access_cycles=2, flash_line_bytes=16,
                             flash_prefetch=True)
    result = machine.call("caltable", 64)
    return {
        "policy": policy,
        "result": result,
        "cycles": machine.cpu.cycles,
        "stream_breaks": machine.flash.stream_breaks,
        "code_bytes": program.code_bytes,
        "literal_bytes": program.literal_bytes,
    }


def run_suite_policy(policy: str) -> int:
    """Realistic literal density: the whole AutoIndy suite on slow flash."""
    from repro.workloads import run_suite

    suite = run_suite(policy, "m3", "thumb2",
                      machine_kwargs={"flash_access_cycles": 2,
                                      "flash_line_bytes": 16,
                                      "flash_prefetch": True},
                      backend_options={"const_policy": policy})
    assert suite.all_verified
    return sum(r.cycles for r in suite.runs)


def compute_experiment():
    dense = (run_policy("literal"), run_policy("movw"))
    suite_literal = run_suite_policy("literal")
    suite_movw = run_suite_policy("movw")
    return dense, (suite_literal, suite_movw)


def test_literal_pool_degradation(benchmark):
    (literal, movw), (suite_literal, suite_movw) = benchmark.pedantic(
        compute_experiment, rounds=1, iterations=1)

    assert literal["result"] == movw["result"], "policies must agree"
    dense_degradation = (literal["cycles"] - movw["cycles"]) / movw["cycles"]
    suite_degradation = (suite_literal - suite_movw) / suite_movw
    # the paper's "15 percent is possible": the constant-saturated kernel
    # must show at least that; the realistic suite a measurable slowdown
    assert dense_degradation > 0.15, f"only {dense_degradation:.1%}"
    assert suite_degradation > 0.0
    # literal pools are what break the stream
    assert literal["stream_breaks"] > 10 * max(movw["stream_breaks"], 1)
    # MOVW/MOVT trades pool words for wider instructions
    assert movw["literal_bytes"] == 0
    assert literal["literal_bytes"] > 0

    lines = [
        f"{'policy':10} {'cycles':>8} {'stream breaks':>14} "
        f"{'code B':>7} {'pool B':>7}",
    ]
    for row in (literal, movw):
        lines.append(f"{row['policy']:10} {row['cycles']:8} "
                     f"{row['stream_breaks']:14} {row['code_bytes']:7} "
                     f"{row['literal_bytes']:7}")
    lines.append(f"constant-saturated kernel degradation: {dense_degradation:.1%} "
                 f"(upper bound; paper: '15% is possible')")
    lines.append(f"AutoIndy-suite degradation           : {suite_degradation:.1%} "
                 f"(realistic literal density)")
    report("E3 / section 2.2: flash streaming vs literal pools", lines)
    benchmark.extra_info["dense_degradation_pct"] = round(100 * dense_degradation, 1)
    benchmark.extra_info["suite_degradation_pct"] = round(100 * suite_degradation, 1)
