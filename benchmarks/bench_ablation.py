"""Ablation study: which design choices carry the results.

DESIGN.md calls out the load-bearing mechanisms; this bench switches each
one off in isolation and measures the damage:

* flash prefetch streaming (E3's substrate),
* ARM1156 caches (the reason interruptible LDM matters at all),
* NVIC tail-chaining (E8),
* the Thumb-2 narrow-encoding selection (code density).
"""

from conftest import report

from repro.codegen import compile_program
from repro.core import FLASH_BASE, SRAM_BASE, build_arm1156, build_cortexm3
from repro.isa import ISA_THUMB2
from repro.sim import DeterministicRng
from repro.workloads import WORKLOADS_BY_NAME


def kernel_cycles_m3(**machine_kwargs) -> int:
    workload = WORKLOADS_BY_NAME["canrdr"]
    fn = workload.build()
    program = compile_program([fn], ISA_THUMB2, base=FLASH_BASE)
    machine = build_cortexm3(program, **machine_kwargs)
    prepared = workload.make_input(DeterministicRng(1), scale=2)
    machine.load_data(SRAM_BASE, prepared.data)
    result = machine.call(fn.name, *prepared.args(SRAM_BASE))
    assert result == workload.reference(prepared.data, *prepared.args(0))
    return machine.cpu.cycles


def kernel_cycles_1156(caches_enabled: bool) -> int:
    workload = WORKLOADS_BY_NAME["bitmnp"]
    fn = workload.build()
    program = compile_program([fn], ISA_THUMB2, base=FLASH_BASE)
    machine = build_arm1156(program, caches_enabled=caches_enabled,
                            flash_access_cycles=4, sram_wait_states=2)
    prepared = workload.make_input(DeterministicRng(1), scale=2)
    machine.load_data(SRAM_BASE, prepared.data)
    result = machine.call(fn.name, *prepared.args(SRAM_BASE))
    assert result == workload.reference(prepared.data, *prepared.args(0))
    return machine.cpu.cycles


def suite_bytes(wide_everything: bool) -> int:
    """Thumb-2 suite size with and without narrow-encoding selection."""
    from repro.workloads import AUTOINDY_SUITE

    fns = [w.build() for w in AUTOINDY_SUITE]
    program = compile_program(fns, ISA_THUMB2, base=FLASH_BASE)
    if not wide_everything:
        return program.code_bytes + program.literal_bytes
    # force-wide rebuild: every instruction that has a wide form
    total = 0
    for ins in program.instructions:
        total += 4 if ins.size == 2 else ins.size
    return total + program.literal_bytes


def compute_ablations():
    rows = []
    base = kernel_cycles_m3(flash_access_cycles=2, flash_prefetch=True)
    no_prefetch = kernel_cycles_m3(flash_access_cycles=2, flash_prefetch=False)
    rows.append(("flash prefetch off", base, no_prefetch))

    cached = kernel_cycles_1156(caches_enabled=True)
    uncached = kernel_cycles_1156(caches_enabled=False)
    rows.append(("ARM1156 caches off", cached, uncached))

    narrow = suite_bytes(wide_everything=False)
    wide = suite_bytes(wide_everything=True)
    rows.append(("narrow encodings off (bytes)", narrow, wide))
    return rows


def test_ablations(benchmark):
    rows = benchmark.pedantic(compute_ablations, rounds=1, iterations=1)
    lines = [f"{'ablation':30} {'with':>9} {'without':>9} {'cost':>8}"]
    for name, with_feature, without_feature in rows:
        assert without_feature > with_feature, name
        cost = without_feature / with_feature - 1
        lines.append(f"{name:30} {with_feature:9} {without_feature:9} "
                     f"{cost:8.1%}")
    report("Ablations: the mechanisms that carry the paper's results", lines)
    benchmark.extra_info["rows"] = rows
