"""E4 / sections 2.1 & 2.3: what each new Thumb-2 instruction buys.

Four micro-kernels isolate the features the paper calls out: the hardware
divide (sensor scaling), bitfield insert/extract (port I/O), IT blocks
(predication without branches), and the table branch (switch dispatch).
Each is measured on 16-bit Thumb (expansion sequences / helper calls) and
Thumb-2 (native), on the matching cores.
"""

from conftest import report

from repro.codegen import IrBuilder, compile_program
from repro.core import FLASH_BASE, build_arm7, build_cortexm3


def divide_kernel():
    b = IrBuilder("scale_sensors", num_params=2)
    raw, count = b.params
    acc = b.const(0, "acc")
    b.label("loop")
    scaled = b.udiv(raw, count)
    b.assign(acc, b.add(acc, scaled))
    b.assign(count, b.sub(count, 1))
    b.brcond("ne", count, 0, "loop")
    b.ret(acc)
    return b.build(), (48_000, 24)


def bitfield_kernel():
    b = IrBuilder("pack_io", num_params=2)
    port, count = b.params
    acc = b.const(0, "acc")
    b.label("loop")
    field = b.ubfx(port, 3, 7)
    b.bfi(acc, field, 8, 7)
    b.assign(acc, b.add(b.ror(acc, 7), 1))
    b.assign(count, b.sub(count, 1))
    b.brcond("ne", count, 0, "loop")
    b.ret(acc)
    return b.build(), (0xDEADBEEF, 32)


def predication_kernel():
    b = IrBuilder("clamp_chain", num_params=2)
    x, count = b.params
    acc = b.const(0, "acc")
    b.label("loop")
    clamped = b.select("hi", x, 100, 100, x)
    step = b.select("lo", clamped, 50, 1, 2)
    b.assign(acc, b.add(acc, step))
    b.assign(x, b.add(x, 7))
    b.assign(count, b.sub(count, 1))
    b.brcond("ne", count, 0, "loop")
    b.ret(acc)
    return b.build(), (3, 64)


def switch_kernel():
    b = IrBuilder("mode_dispatch", num_params=2)
    x, count = b.params
    acc = b.const(0, "acc")
    b.label("loop")
    mode = b.and_(x, 3)
    b.switch(mode, ["m0", "m1", "m2"])
    b.assign(acc, b.add(acc, 7))
    b.br("next")
    b.label("m0")
    b.assign(acc, b.add(acc, 1))
    b.br("next")
    b.label("m1")
    b.assign(acc, b.add(acc, 3))
    b.br("next")
    b.label("m2")
    b.assign(acc, b.add(acc, 5))
    b.label("next")
    b.assign(x, b.add(x, 1))
    b.assign(count, b.sub(count, 1))
    b.brcond("ne", count, 0, "loop")
    b.ret(acc)
    return b.build(), (0, 64)


FEATURES = [
    ("hw divide", divide_kernel),
    ("bitfield ops", bitfield_kernel),
    ("IT predication", predication_kernel),
    ("table branch", switch_kernel),
]


def measure(fn, args, isa):
    program = compile_program([fn], isa, base=FLASH_BASE)
    machine = build_cortexm3(program) if isa == "thumb2" else build_arm7(program)
    result = machine.call(fn.name, *args)
    return result, machine.cpu.cycles, program.code_bytes + program.literal_bytes


def compute_features():
    rows = []
    for label, builder in FEATURES:
        fn, args = builder()
        r_thumb, cycles_thumb, bytes_thumb = measure(fn, args, "thumb")
        fn2, _ = builder()
        r_t2, cycles_t2, bytes_t2 = measure(fn2, args, "thumb2")
        assert r_thumb == r_t2, label
        rows.append({
            "feature": label,
            "thumb_cycles": cycles_thumb, "t2_cycles": cycles_t2,
            "thumb_bytes": bytes_thumb, "t2_bytes": bytes_t2,
            "speedup": cycles_thumb / cycles_t2,
        })
    return rows


def test_thumb2_feature_wins(benchmark):
    rows = benchmark.pedantic(compute_features, rounds=1, iterations=1)
    for row in rows:
        assert row["speedup"] > 1.0, row         # every feature must pay off
        # size: no worse than Thumb plus a rounding word (IT blocks trade
        # a couple of bytes for straight-line execution)
        assert row["t2_bytes"] <= row["thumb_bytes"] + 4, row
    divide = next(r for r in rows if r["feature"] == "hw divide")
    assert divide["speedup"] > 2.0               # SDIV/UDIV is the big one

    lines = [f"{'feature':16} {'Thumb cyc':>10} {'T2 cyc':>8} "
             f"{'speedup':>8} {'Thumb B':>8} {'T2 B':>6}"]
    for row in rows:
        lines.append(f"{row['feature']:16} {row['thumb_cycles']:10} "
                     f"{row['t2_cycles']:8} {row['speedup']:8.2f} "
                     f"{row['thumb_bytes']:8} {row['t2_bytes']:6}")
    report("E4 / section 2.1-2.3: new Thumb-2 instruction wins", lines)
    benchmark.extra_info["rows"] = rows
