"""Shared helpers for the experiment benchmarks."""

from __future__ import annotations

import json
import os


def report(title: str, lines: list[str]) -> None:
    """Print a paper-style results block (visible with ``pytest -s``)."""
    width = max([len(title)] + [len(line) for line in lines]) + 2
    print()
    print("=" * width)
    print(title)
    print("-" * width)
    for line in lines:
        print(line)
    print("=" * width)


#: engine -> suite -> ns/instruction, flushed to BENCH_summary.json at
#: session end: a flat, greppable cross-PR perf trajectory next to the
#: pytest-benchmark artifact (which needs downloading and jq to compare)
_SUMMARY: dict[str, dict[str, float]] = {}


def record_summary(engine: str, suite: str, ns_per_instruction: float) -> None:
    """Register one (engine, suite) cell for the flat summary artifact."""
    _SUMMARY.setdefault(engine, {})[suite] = round(ns_per_instruction, 1)


def pytest_sessionfinish(session, exitstatus):
    if not _SUMMARY:
        return
    path = os.environ.get("REPRO_BENCH_SUMMARY", "BENCH_summary.json")
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(_SUMMARY, stream, indent=1, sort_keys=True)
        stream.write("\n")
