"""Shared helpers for the experiment benchmarks."""

from __future__ import annotations


def report(title: str, lines: list[str]) -> None:
    """Print a paper-style results block (visible with ``pytest -s``)."""
    width = max([len(title)] + [len(line) for line in lines]) + 2
    print()
    print("=" * width)
    print(title)
    print("-" * width)
    for line in lines:
        print(line)
    print("=" * width)
