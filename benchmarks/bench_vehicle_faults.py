"""Fault-campaign throughput and the cost of injection.

Two rates for the ``vehicle_fault`` domain:

* **cells per second** - how fast a campaign host clears fault cells,
  each of which co-simulates the network *twice* (fault-free twin plus
  faulted run) and judges the per-claim verdicts;
* **fault overhead** - what arming a scenario (injected traffic, forced
  error windows, confinement bookkeeping) costs on top of the identical
  fault-free co-simulation, with the faulted guest ns/instruction
  recorded into the flat ``BENCH_summary.json`` trajectory.

``REPRO_BENCH_REDUCED=1`` shrinks the horizon and cell count for CI.
"""

from __future__ import annotations

import os
import time

from conftest import record_summary, report

from repro.sim.campaign import run_scenario
from repro.sim.domains.vehicle import synthesize_network
from repro.sim.domains.vehicle_fault import vehicle_fault_matrix
from repro.sim.rng import DeterministicRng
from repro.vehicle import build_body_network, scenario_for, synthesize_fault

REDUCED = os.environ.get("REPRO_BENCH_REDUCED") == "1"

HORIZON_US = 100_000 if REDUCED else 400_000


def test_fault_campaign_cells_per_second(benchmark):
    specs = vehicle_fault_matrix(seed=2005)
    if REDUCED:
        specs = specs[:3]
    records = []

    def run():
        records.clear()
        records.extend(run_scenario(spec) for spec in specs)
        return records

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r.verified for r in records), [r.label for r in records
                                              if not r.verified]
    seconds = benchmark.stats["mean"]
    report(
        "vehicle_fault campaign throughput"
        + (" [reduced]" if REDUCED else ""),
        [
            f"{len(records)} fault cells (twin + faulted co-sim each), "
            f"kinds: {', '.join(sorted({r.fault_kind for r in records}))}",
            f"{len(records) / seconds:8.2f} cells / second",
            f"{sum(r.errors_injected for r in records):8d} errors injected, "
            f"{sum(r.frames_injected for r in records)} frames injected, "
            f"{sum(r.bus_off_events for r in records)} bus-off events",
        ])
    benchmark.extra_info["cells_per_second"] = round(len(records) / seconds, 2)


def test_fault_injection_overhead_vs_fault_free(benchmark):
    net_spec = synthesize_network(DeterministicRng(11).fork(1), 3,
                                  125_000, 200)
    fault = synthesize_fault(DeterministicRng(11).fork(2), "babbling-idiot",
                             net_spec, HORIZON_US)

    def cosim(faulted: bool):
        network = build_body_network(net_spec)
        if faulted:
            scenario_for(fault).arm(network)
        network.run(horizon_us=HORIZON_US)
        return network

    # the fault-free twin timed outside the benchmark fixture (pytest-
    # benchmark tracks one statistic per test): same spec, same horizon
    begin = time.perf_counter()
    twin = cosim(faulted=False)
    twin_seconds = time.perf_counter() - begin
    assert twin.report().healthy

    built = {}

    def run():
        built["network"] = cosim(faulted=True)
        return built["network"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    network = built["network"]
    assert network.report().bound_violations > 0   # the fault really bit

    seconds = benchmark.stats["mean"]
    instructions = sum(ecu.cpu.instructions_executed
                       for ecu in network.vehicle.ecus)
    ns_per_instruction = seconds * 1e9 / instructions
    overhead = (seconds - twin_seconds) / twin_seconds * 100

    record_summary("cosim", "body-network-faulted", ns_per_instruction)
    report(
        "fault-injection overhead (babbling idiot)"
        + (" [reduced]" if REDUCED else ""),
        [
            f"horizon {HORIZON_US / 1e6:.2f} simulated bus-seconds, "
            f"{len(network.vehicle.ecus)} ECUs",
            f"fault-free {twin_seconds * 1e3:8.1f} ms, "
            f"faulted {seconds * 1e3:8.1f} ms "
            f"({overhead:+.1f}% wall-clock)",
            f"{instructions:8d} guest instructions "
            f"({ns_per_instruction:.0f} ns/instruction faulted)",
            f"{len(network.vehicle.can.deliveries):8d} CAN frames, "
            f"{network.vehicle.can.errors_injected} errors injected, "
            f"{network.vehicle.frame_conservation()['injected']}"
            f" frames injected",
        ])
    benchmark.extra_info["fault_overhead_pct"] = round(overhead, 1)
