"""E10 / section 3.2.2, figure 3: single-wire debug and the flash patch.

The claims: SWD reaches JTAG-class debug over one data wire (vs five
pins), and eight flash-patch comparators give breakpoints/calibration
writes on otherwise read-only flash.
"""

from conftest import report

from repro.debug import FlashPatchUnit, FpbError, JtagProbe, SwdProbe

TRANSACTIONS = 64


def compute_experiment():
    jtag = JtagProbe()
    jtag_clocks = 0
    for i in range(TRANSACTIONS):
        jtag_clocks += jtag.write_register(instruction=0x8, value=i * 7)
    swd = SwdProbe()
    for i in range(TRANSACTIONS):
        swd.write("ap", 0x4, i * 7)

    fpb = FlashPatchUnit()
    patched = 0
    try:
        while True:
            fpb.patch(0x0800_0000 + 4 * patched, patched)
            patched += 1
    except FpbError:
        pass

    return {
        "jtag_pins": jtag.tap.pin_count,
        "swd_pins": swd.pin_count,
        "jtag_bits_per_write": jtag_clocks / TRANSACTIONS,
        "swd_bits_per_write": swd.bits_per_transaction(),
        "fpb_comparators": patched,
    }


def test_fig3_debug_access(benchmark):
    result = benchmark.pedantic(compute_experiment, rounds=1, iterations=1)

    assert result["swd_pins"] < result["jtag_pins"]   # 2 wires vs 5 pins
    assert result["jtag_pins"] == 5
    assert result["fpb_comparators"] == 8             # "equivalent of eight breakpoints"
    # SWD also spends fewer wire clocks per 32-bit write (no TAP walking)
    assert result["swd_bits_per_write"] < result["jtag_bits_per_write"]

    lines = [
        f"JTAG: {result['jtag_pins']} pins, "
        f"{result['jtag_bits_per_write']:.1f} clocks per 32-bit write",
        f"SWD : {result['swd_pins']} pins (one data wire), "
        f"{result['swd_bits_per_write']:.1f} bits per 32-bit write",
        f"flash patch comparators available: {result['fpb_comparators']} (paper: 8)",
    ]
    report("E10 / section 3.2.2: debug port cost, JTAG vs single-wire", lines)
    benchmark.extra_info.update(result)
