"""Fast-path execution engine: speedup and bit-exactness on AutoIndy.

Runs every Table 1 configuration of the AutoIndy suite twice - once through
the predecoded fast path and once through the reference interpreter - with
compile time excluded, and asserts that

* registers-out, cycle counts, and instruction counts are **identical**
  (the fast path is an execution engine, not an approximation), and
* the fast path is at least ``SPEEDUP_FLOOR`` times faster wall-clock.

Also fans a Figure 4-flavoured interrupt-storm matrix through the campaign
runner at two worker counts and asserts byte-identical campaign output.

Reduced-iteration mode (CI smoke): set ``REPRO_BENCH_REDUCED=1`` to shrink
the workload scale and drop the speedup floor to just-above-parity - tiny
runs on noisy shared runners measure compile caches more than execution, so
the smoke job checks machinery and bit-exactness, not the headline ratio.
"""

from __future__ import annotations

import os
import time

from conftest import report

from repro.codegen import compile_program
from repro.core import FLASH_BASE, SRAM_BASE, build_machine
from repro.sim.campaign import interrupt_sweep_matrix, run_campaign
from repro.sim.rng import DeterministicRng
from repro.workloads import TABLE1_CONFIGS
from repro.workloads.kernels import AUTOINDY_SUITE

REDUCED = os.environ.get("REPRO_BENCH_REDUCED") == "1"
SCALE = 4 if REDUCED else 16
ROUNDS = 2 if REDUCED else 3
SPEEDUP_FLOOR = 1.05 if REDUCED else 2.0


def run_config(core: str, isa: str, fastpath: bool) -> tuple[float, list[tuple]]:
    """Execution-only wall time (best-of-ROUNDS per kernel) + run records."""
    total = 0.0
    records = []
    for workload in AUTOINDY_SUITE:
        fn = workload.build()
        program = compile_program([fn], isa, base=FLASH_BASE)
        prepared = workload.make_input(DeterministicRng(2005), SCALE)
        expected = workload.reference(prepared.data, *prepared.args(0))
        best = None
        record = None
        for _ in range(ROUNDS):
            machine = build_machine(core, program)
            machine.cpu.fastpath = fastpath
            machine.load_data(SRAM_BASE, prepared.data)
            t0 = time.perf_counter()
            result = machine.call(fn.name, *prepared.args(SRAM_BASE))
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
            record = (workload.name, result, machine.cpu.cycles,
                      machine.cpu.instructions_executed)
            assert result == expected
        total += best
        records.append(record)
    return total, records


def compute_fastpath():
    rows = []
    total_fast = total_slow = 0.0
    for label, core, isa in TABLE1_CONFIGS:
        fast_time, fast_records = run_config(core, isa, fastpath=True)
        slow_time, slow_records = run_config(core, isa, fastpath=False)
        assert fast_records == slow_records, (
            f"fast path diverged from reference on {label}")
        rows.append((label, fast_time, slow_time))
        total_fast += fast_time
        total_slow += slow_time
    speedup = total_slow / total_fast

    # campaign determinism under parallel fan-out (Figure 4-style storm)
    matrix = interrupt_sweep_matrix(rates=(800, 200), scale=2 if REDUCED else 4)
    serial = run_campaign(matrix, workers=1)
    parallel = run_campaign(matrix, workers=2)
    assert serial.to_json() == parallel.to_json(), "campaign worker-count dependence"
    assert serial.all_verified

    return {"rows": rows, "speedup": speedup,
            "campaign_records": len(serial.records)}


def test_fastpath_speedup(benchmark):
    outcome = benchmark.pedantic(compute_fastpath, rounds=1, iterations=1)
    assert outcome["speedup"] >= SPEEDUP_FLOOR, (
        f"fast path only {outcome['speedup']:.2f}x (floor {SPEEDUP_FLOOR}x)")

    lines = [
        f"{label:<22} fast {fast * 1000:7.1f} ms   reference {slow * 1000:7.1f} ms"
        f"   ({slow / fast:4.2f}x)"
        for label, fast, slow in outcome["rows"]
    ]
    lines.append(f"{'suite total':<22} speedup {outcome['speedup']:.2f}x "
                 f"(identical cycles/results; floor {SPEEDUP_FLOOR}x)")
    lines.append(f"campaign: {outcome['campaign_records']} interrupt-storm "
                 f"scenarios byte-identical at 1 and 2 workers")
    report("Fast-path execution engine vs reference interpreter (AutoIndy)",
           lines)
    benchmark.extra_info["speedup"] = round(outcome["speedup"], 2)
    benchmark.extra_info["reduced"] = REDUCED
