"""Embedded flash with a streaming prefetch buffer (paper section 2.2).

Flash arrays run far slower than the core (30-40 MHz vs 80-200+ MHz), so the
interface fetches a whole line per array access and *streams*: as long as
accesses walk forward sequentially, the prefetcher stays ahead and imposes no
stalls.  Any non-sequential access - a taken branch, or crucially a **literal
pool data fetch** landing in the middle of an instruction stream - throws the
prefetcher away and pays the full array latency, and the *next* instruction
fetch pays it again to re-establish the stream.

This is exactly the ~15 % degradation mechanism the paper describes, and why
``MOVW``/``MOVT`` (which keep constants inside the instruction stream) win on
flash-based parts.  Experiment E3 sweeps it.
"""

from __future__ import annotations

from repro.memory.bus import BusFault, RamBackedDevice


class Flash(RamBackedDevice):
    """Single-ported flash with line buffer + optional streaming prefetch.

    Parameters
    ----------
    access_cycles:
        CPU cycles per flash-array access (cpu_hz / flash_hz, rounded up).
        E.g. an 80 MHz core on 40 MHz flash -> 2.
    line_bytes:
        Width of one array fetch (the line buffer), typically 8-16 bytes.
    prefetch:
        When True, sequential accesses that cross into the next line are
        free (the prefetcher fetched ahead while the core consumed the
        buffer).  When False every line crossing pays ``access_cycles``.
    """

    def __init__(self, base: int, size: int, access_cycles: int = 2,
                 line_bytes: int = 16, prefetch: bool = True) -> None:
        super().__init__(base, size)
        if line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a power of two")
        self.access_cycles = access_cycles
        self.line_bytes = line_bytes
        self.prefetch = prefetch
        self._buffered_line: int | None = None
        self._streaming = False
        # statistics
        self.array_accesses = 0
        self.sequential_hits = 0
        self.stream_breaks = 0

    @property
    def worst_stall(self) -> int:
        """Declared timing contract: an access can straddle two lines and
        break the stream on both, paying the array latency twice."""
        return 2 * self.access_cycles

    def _line_of(self, addr: int) -> int:
        return addr & ~(self.line_bytes - 1)

    def _access(self, addr: int) -> int:
        """Stall cycles for an access at ``addr``; updates stream state."""
        line = self._line_of(addr)
        if self._buffered_line is not None and line == self._buffered_line:
            self.sequential_hits += 1
            return 0
        if (self._streaming and self._buffered_line is not None
                and line == self._buffered_line + self.line_bytes):
            self._buffered_line = line
            self.array_accesses += 1
            if self.prefetch:
                self.sequential_hits += 1
                return 0
            return self.access_cycles
        # non-sequential: stream broken, pay the array latency
        if self._buffered_line is not None:
            self.stream_breaks += 1
        self._buffered_line = line
        self._streaming = True
        self.array_accesses += 1
        return self.access_cycles

    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        stalls = self._access(addr)
        if addr + size > self._line_of(addr) + self.line_bytes:
            stalls += self._access(addr + size - 1)  # straddles two lines
        offset = addr - self.base
        if offset < 0 or offset > self.size - size:
            raise BusFault(addr, "access beyond device")
        return int.from_bytes(self.data[offset:offset + size], "little"), stalls

    def fetch_stalls(self, addr: int, size: int) -> int:
        """Timing of an instruction fetch without materialising the value.

        The stream/prefetch state advances exactly as :meth:`read` would;
        only the (discarded) data extraction is skipped.  The execution
        engine fetches through this on the hot path - the bounds check and
        stream update are inlined (no helper frames) for that reason.
        """
        offset = addr - self.base  # same bounds check as a real read
        if offset < 0 or offset > self.size - size:
            raise BusFault(addr, "access beyond device")
        line = addr & ~(self.line_bytes - 1)
        buffered = self._buffered_line
        if buffered is not None and line == buffered:
            self.sequential_hits += 1
            stalls = 0
        else:
            stalls = self._access(addr)
        if addr + size > line + self.line_bytes:
            stalls += self._access(addr + size - 1)
        return stalls

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        # Program-time writes (loader/flash-patch); not timed as runtime cost.
        self._set(addr, size, value)
        return 0

    def reset_stream(self) -> None:
        """Forget the buffered line (e.g. after deep sleep)."""
        self._buffered_line = None
        self._streaming = False

    def stats(self) -> dict[str, int]:
        return {
            "array_accesses": self.array_accesses,
            "sequential_hits": self.sequential_hits,
            "stream_breaks": self.stream_breaks,
        }
