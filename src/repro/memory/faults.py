"""Soft-error injection (paper section 3.1.3).

Cosmic-ray upsets are modelled as a Poisson process over simulated time,
with each event flipping one uniformly-random bit in one of the protected
arrays (cache data, cache tags, TCM).  Targets are weighted by their bit
capacity, as a real flux would be.

The injector is deliberately decoupled from the memories: it only needs a
``flip_random_bit(rng)`` (TCM) or ``flip_random_bit(rng, target=...)``
(cache) hook, so tests can aim it at anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import DeterministicRng


@dataclass
class InjectionTarget:
    name: str
    flip: object                      # callable(rng) -> None/bool
    capacity: object                  # callable() -> int  (bits)


@dataclass
class InjectionLog:
    time: int
    target: str


class SoftErrorInjector:
    """Schedules bit flips at a given rate (flips per million cycles)."""

    def __init__(self, rng: DeterministicRng,
                 rate_per_mcycle: float = 1.0) -> None:
        self.rng = rng
        self.rate_per_mcycle = rate_per_mcycle
        self.targets: list[InjectionTarget] = []
        self.log: list[InjectionLog] = []

    def add_target(self, name: str, flip, capacity) -> None:
        self.targets.append(InjectionTarget(name=name, flip=flip, capacity=capacity))

    # ------------------------------------------------------------------
    def _pick_target(self) -> InjectionTarget | None:
        weights = [max(t.capacity(), 0) for t in self.targets]
        total = sum(weights)
        if total == 0:
            return None
        point = self.rng.randint(1, total)
        for target, weight in zip(self.targets, weights):
            point -= weight
            if point <= 0:
                return target
        return self.targets[-1]

    def inject_one(self, time: int = 0) -> str | None:
        """Flip one bit in a capacity-weighted random target."""
        target = self._pick_target()
        if target is None:
            return None
        target.flip(self.rng)
        self.log.append(InjectionLog(time=time, target=target.name))
        return target.name

    def arrival_times(self, horizon_cycles: int) -> list[int]:
        """Poisson upset times over [0, horizon_cycles)."""
        rate = self.rate_per_mcycle / 1_000_000.0
        if rate <= 0:
            return []
        return self.rng.poisson_arrivals(rate, horizon_cycles)

    def run_over(self, horizon_cycles: int) -> int:
        """Inject all upsets for a time window at once (batch mode)."""
        times = self.arrival_times(horizon_cycles)
        for time in times:
            self.inject_one(time)
        return len(times)
