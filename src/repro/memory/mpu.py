"""Memory protection units: classic 4 KB-granular vs ARMv6 fine-grained.

Paper section 3.1.1 / figure 2: OSEK wants every small software module
locked into its own protection region, but classic MPUs with 4 KB minimum
region sizes cannot segregate many small tasks - several tasks end up
sharing one region.  The re-engineered ARMv6 MPU provides small
power-of-two regions (down to 32 B) with 8 subregion-disable bits, so the
effective granularity is region_size/8.

Two layers live here:

* :class:`Mpu` - the runtime access checker cores consult on every access.
* :func:`plan_task_isolation` - the static planner experiment E5 sweeps:
  given task footprints, how many regions / how much wasted RAM does each
  MPU generation need to give every task its own region?
"""

from __future__ import annotations

from dataclasses import dataclass, field

PERM_NONE = "none"
PERM_RO = "ro"
PERM_RW = "rw"


class MpuFault(Exception):
    """Access denied by the MPU."""

    def __init__(self, address: int, access: str) -> None:
        super().__init__(f"MPU fault: {access} at {address:#010x}")
        self.address = address
        self.access = access


@dataclass
class MpuRegion:
    base: int
    size: int
    perms: str = PERM_RW
    subregion_disable: int = 0  # 8 bits; only honoured if the MPU supports it
    enabled: bool = True

    def covers(self, addr: int, supports_subregions: bool) -> bool:
        if not self.enabled:
            return False
        if not self.base <= addr < self.base + self.size:
            return False
        if supports_subregions and self.subregion_disable and self.size >= 256:
            subregion = (addr - self.base) * 8 // self.size
            if self.subregion_disable & (1 << subregion):
                return False
        return True


class Mpu:
    """Region-based protection checker.

    ``min_region_size`` is the generation parameter: 4096 for the classic
    MPU the paper criticises, 32 for the re-engineered ARMv6 one.
    """

    def __init__(self, num_regions: int = 8, min_region_size: int = 4096,
                 supports_subregions: bool = False,
                 background_perms: str = PERM_NONE) -> None:
        self.num_regions = num_regions
        self.min_region_size = min_region_size
        self.supports_subregions = supports_subregions
        self.background_perms = background_perms
        self.regions: list[MpuRegion | None] = [None] * num_regions
        self.enabled = True
        self.faults = 0

    def configure(self, index: int, base: int, size: int, perms: str = PERM_RW,
                  subregion_disable: int = 0) -> None:
        if not 0 <= index < self.num_regions:
            raise ValueError(f"region index {index} out of range")
        if size < self.min_region_size:
            raise ValueError(
                f"region size {size} below minimum {self.min_region_size}")
        if size & (size - 1):
            raise ValueError("region size must be a power of two")
        if base % size:
            raise ValueError("region base must be aligned to its size")
        if subregion_disable and not self.supports_subregions:
            raise ValueError("this MPU generation has no subregion support")
        self.regions[index] = MpuRegion(base, size, perms, subregion_disable)

    def disable_region(self, index: int) -> None:
        if self.regions[index] is not None:
            self.regions[index].enabled = False

    def check(self, addr: int, size: int, is_write: bool) -> None:
        """Raise :class:`MpuFault` unless the access is permitted.

        This is the per-access hot path every core (and every fused
        superblock with an MPU attached) runs, so the two probe points are
        checked without building a tuple, and the second probe is skipped
        when it coincides with the first - observably identical, since a
        passing probe passes twice and a failing first probe raises before
        the second is reached.  ``faults`` counts denied accesses (one per
        raise), which the conformance corpus fingerprints across engines.
        """
        if not self.enabled:
            return
        perms = self._perms_at(addr)
        if perms == PERM_NONE or (is_write and perms == PERM_RO):
            self.faults += 1
            raise MpuFault(addr, "write" if is_write else "read")
        last = addr + size - 1
        if last != addr:
            perms = self._perms_at(last)
            if perms == PERM_NONE or (is_write and perms == PERM_RO):
                self.faults += 1
                raise MpuFault(last, "write" if is_write else "read")

    def _perms_at(self, addr: int) -> str:
        # highest-numbered matching region wins, as on real ARM MPUs; the
        # cover test is inlined (a transcription of MpuRegion.covers) so
        # the scan costs no method frame per configured region
        subregions = self.supports_subregions
        for region in reversed(self.regions):
            if region is None or not region.enabled:
                continue
            base = region.base
            size = region.size
            if not base <= addr < base + size:
                continue
            if subregions and region.subregion_disable and size >= 256:
                if region.subregion_disable & (1 << ((addr - base) * 8 // size)):
                    continue
            return region.perms
        return self.background_perms

    def effective_granularity(self) -> int:
        """Smallest protectable unit."""
        if self.supports_subregions:
            return max(self.min_region_size // 8, 32)
        return self.min_region_size


def classic_mpu(num_regions: int = 8) -> Mpu:
    """The pre-ARMv6 MPU generation the paper criticises (4 KB regions)."""
    return Mpu(num_regions=num_regions, min_region_size=4096,
               supports_subregions=False)


def armv6_mpu(num_regions: int = 16) -> Mpu:
    """The re-engineered fine-grained MPU of the ARM1156T2F-S."""
    return Mpu(num_regions=num_regions, min_region_size=32,
               supports_subregions=True)


# ----------------------------------------------------------------------
# static isolation planning (experiment E5)
# ----------------------------------------------------------------------

@dataclass
class IsolationPlan:
    """Result of fitting task footprints onto an MPU generation."""

    isolated_tasks: int
    shared_tasks: int          # tasks that had to share a region with others
    regions_used: int
    allocated_bytes: int       # RAM actually reserved (aligned, padded)
    requested_bytes: int       # sum of raw task footprints
    assignments: list[tuple[str, int, int]] = field(default_factory=list)

    @property
    def waste_bytes(self) -> int:
        return self.allocated_bytes - self.requested_bytes

    @property
    def waste_ratio(self) -> float:
        if self.allocated_bytes == 0:
            return 0.0
        return self.waste_bytes / self.allocated_bytes


def _region_allocation(size: int, mpu: Mpu) -> int:
    """Bytes reserved to give one task of ``size`` bytes its own region."""
    size = max(size, 1)
    region = 1 << (size - 1).bit_length()  # next power of two >= size
    region = max(region, mpu.min_region_size)
    if not mpu.supports_subregions or region < 256:
        return region
    # subregion disable: only ceil(size / (region/8)) eighths are enabled
    subregion = region // 8
    enabled = -(-size // subregion)  # ceil division
    return enabled * subregion


def plan_task_isolation(task_sizes: dict[str, int], mpu: Mpu,
                        ram_budget: int | None = None) -> IsolationPlan:
    """Give each task its own MPU region, smallest tasks first.

    Tasks that do not fit (out of regions or out of RAM) are packed
    together into one shared region - the failure mode the paper
    describes for coarse MPUs ("several tasks will have to be included
    within the same protection scheme").
    """
    plan = IsolationPlan(isolated_tasks=0, shared_tasks=0, regions_used=0,
                         allocated_bytes=0,
                         requested_bytes=sum(task_sizes.values()))
    budget = ram_budget if ram_budget is not None else float("inf")
    shared: list[str] = []
    # leave one region spare for the shared pool
    available_regions = mpu.num_regions - 1
    for name, size in sorted(task_sizes.items(), key=lambda kv: kv[1]):
        allocation = _region_allocation(size, mpu)
        if plan.regions_used < available_regions and plan.allocated_bytes + allocation <= budget:
            plan.regions_used += 1
            plan.allocated_bytes += allocation
            plan.isolated_tasks += 1
            plan.assignments.append((name, plan.regions_used - 1, allocation))
        else:
            shared.append(name)
    if shared:
        shared_size = sum(task_sizes[name] for name in shared)
        allocation = _region_allocation(shared_size, mpu)
        plan.regions_used += 1
        plan.allocated_bytes += allocation
        plan.shared_tasks = len(shared)
        for name in shared:
            plan.assignments.append((name, plan.regions_used - 1, 0))
    return plan
