"""Tightly-coupled memory with SEC-DED ECC and 'hold and repair'.

The ARM1156T2F-S supports fault-tolerant TCM (paper section 3.1.3): the
normal mode keeps the TCM streaming to the core, and when an error is
detected the core is *stalled* while the correction logic repairs the word
- no interrupt, no software involvement.  This module implements a real
Hamming(38,32) SEC-DED code per 32-bit word: single-bit errors are
corrected in place (costing ``repair_cycles`` of stall), double-bit errors
raise :class:`EccUncorrectable`.
"""

from __future__ import annotations

from repro.memory.bus import RamBackedDevice

# Codeword positions 1..38; parity bits sit at power-of-two positions.
_PARITY_POSITIONS = (1, 2, 4, 8, 16, 32)
_DATA_POSITIONS = tuple(p for p in range(1, 39) if p not in _PARITY_POSITIONS)


def ecc_encode(word: int) -> int:
    """Compute the 7-bit ECC for a 32-bit word (6 syndrome + overall)."""
    word &= 0xFFFFFFFF
    codeword = {}
    for data_bit, position in enumerate(_DATA_POSITIONS):
        codeword[position] = (word >> data_bit) & 1
    syndrome_bits = 0
    for i, parity_pos in enumerate(_PARITY_POSITIONS):
        parity = 0
        for position, bit in codeword.items():
            if position & parity_pos:
                parity ^= bit
        syndrome_bits |= parity << i
    overall = bin(word).count("1") & 1
    for i in range(6):
        overall ^= (syndrome_bits >> i) & 1
    return syndrome_bits | (overall << 6)


def ecc_check(word: int, ecc: int) -> tuple[str, int | None]:
    """Classify a (word, ecc) pair.

    Returns one of:
      ('ok', None)          - no error
      ('corrected', word')  - single-bit error, corrected value returned
      ('double', None)      - detected uncorrectable double-bit error

    SEC-DED logic: the syndrome locates a flipped bit, and the *overall*
    parity of the received codeword (data + stored check bits + stored
    overall bit) distinguishes single errors (odd) from double (even).
    """
    stored_check = ecc & 0x3F
    stored_overall = (ecc >> 6) & 1
    recomputed_check = ecc_encode(word) & 0x3F
    syndrome = stored_check ^ recomputed_check
    whole_parity = (bin(word).count("1") + bin(stored_check).count("1")
                    + stored_overall) & 1
    if syndrome == 0 and whole_parity == 0:
        return "ok", None
    if whole_parity == 1:  # odd parity: a single, locatable error
        if syndrome == 0:
            return "corrected", word  # the overall parity bit itself flipped
        if syndrome in _PARITY_POSITIONS:
            return "corrected", word  # a stored check bit flipped
        if syndrome in _DATA_POSITIONS:
            data_bit = _DATA_POSITIONS.index(syndrome)
            return "corrected", word ^ (1 << data_bit)
    return "double", None


class EccUncorrectable(Exception):
    """Double-bit TCM error: hold-and-repair cannot fix it."""

    def __init__(self, address: int) -> None:
        super().__init__(f"uncorrectable ECC error at {address:#010x}")
        self.address = address


class Tcm(RamBackedDevice):
    """Zero-wait-state RAM with per-word SEC-DED ECC.

    ``fault_tolerant=False`` disables checking entirely (the baseline arm
    of experiment E7): corrupted words are returned as stored.
    """

    def __init__(self, base: int, size: int, repair_cycles: int = 3,
                 fault_tolerant: bool = True) -> None:
        if size % 4:
            raise ValueError("TCM size must be a multiple of 4")
        super().__init__(base, size)
        self.repair_cycles = repair_cycles
        self.fault_tolerant = fault_tolerant
        self._ecc = [ecc_encode(0)] * (size // 4)
        self.corrected_errors = 0
        self.uncorrectable_errors = 0
        self.silent_corruptions = 0
        self.hold_cycles = 0

    @property
    def worst_stall(self) -> int:
        """Declared timing contract: a bus access (at most one word) can
        span two ECC words, each holding ``repair_cycles`` for repair."""
        return 2 * self.repair_cycles if self.fault_tolerant else 0

    # ------------------------------------------------------------------
    def _word_index(self, addr: int) -> int:
        return (addr - self.base) // 4

    def _read_word_checked(self, word_addr: int) -> tuple[int, int]:
        """Read one aligned word with ECC check; returns (value, stalls)."""
        stored = self._get(word_addr, 4)
        if not self.fault_tolerant:
            return stored, 0
        status, fixed = ecc_check(stored, self._ecc[self._word_index(word_addr)])
        if status == "ok":
            return stored, 0
        if status == "corrected":
            # hold-and-repair: stall the core, write back the fixed word
            self._set(word_addr, 4, fixed)
            self._ecc[self._word_index(word_addr)] = ecc_encode(fixed)
            self.corrected_errors += 1
            self.hold_cycles += self.repair_cycles
            return fixed, self.repair_cycles
        self.uncorrectable_errors += 1
        raise EccUncorrectable(word_addr)

    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        first_word = addr & ~3
        last_word = (addr + size - 1) & ~3
        stalls = 0
        payload = bytearray()
        for word_addr in range(first_word, last_word + 4, 4):
            value, word_stalls = self._read_word_checked(word_addr)
            stalls += word_stalls
            payload += value.to_bytes(4, "little")
        start = addr - first_word
        return int.from_bytes(payload[start:start + size], "little"), stalls

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        # read-modify-write the covering words so ECC stays consistent
        first_word = addr & ~3
        last_word = (addr + size - 1) & ~3
        self._set(addr, size, value)
        for word_addr in range(first_word, last_word + 4, 4):
            word = self._get(word_addr, 4)
            self._ecc[self._word_index(word_addr)] = ecc_encode(word)
        return 0

    def write_raw(self, addr: int, payload: bytes) -> None:
        super().write_raw(addr, payload)
        first_word = addr & ~3
        last_word = (addr + len(payload) - 1) & ~3
        for word_addr in range(first_word, last_word + 4, 4):
            word = self._get(word_addr, 4)
            self._ecc[self._word_index(word_addr)] = ecc_encode(word)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def bit_capacity(self) -> int:
        return self.size * 8

    def flip_data_bit(self, bit: int) -> None:
        """Soft error: flip a stored data bit without updating ECC."""
        byte_index, bit_index = divmod(bit % (self.size * 8), 8)
        self.data[byte_index] ^= 1 << bit_index
        if not self.fault_tolerant:
            self.silent_corruptions += 1

    def flip_random_bit(self, rng) -> None:
        self.flip_data_bit(rng.bit_position(self.size * 8))
