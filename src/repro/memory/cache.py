"""Set-associative cache with parity-protected data and tag arrays.

Models the ARM1156T2F-S fault-tolerant cache behaviour (paper section
3.1.3): every stored word carries a parity bit computed at fill time.  A
soft error flips a stored bit *without* updating parity, so the next read
detects the mismatch and the cache recovers by invalidating the line and
refetching from the backing store (write-through keeps the backing store
current).  A tag-array error is detected the same way and simply forces a
miss.  With ``fault_tolerant=False`` the corrupted data is returned
silently - the unprotected baseline of experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def parity32(value: int) -> int:
    """Even-parity bit of a 32-bit word."""
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


@dataclass
class CacheLine:
    valid: bool = False
    tag: int = 0
    data: bytearray = field(default_factory=bytearray)
    word_parity: list[int] = field(default_factory=list)
    tag_parity: int = 0
    lru: int = 0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    parity_errors: int = 0
    tag_errors: int = 0
    recoveries: int = 0
    silent_corruptions: int = 0  # only counted when fault_tolerant=False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ParityError(Exception):
    """Unrecoverable cache data error (dirty line in a write-back cache)."""


class Cache:
    """Read-allocate, write-through cache in front of a backing store.

    ``backing`` must provide ``read(addr, size, side)`` and
    ``write(addr, size, value, side)`` returning stall counts - either a
    :class:`~repro.memory.bus.SystemBus` or a single device.
    """

    def __init__(self, backing, sets: int = 64, ways: int = 4,
                 line_bytes: int = 32, fill_penalty: int = 1,
                 fault_tolerant: bool = True) -> None:
        if sets & (sets - 1) or line_bytes & (line_bytes - 1):
            raise ValueError("sets and line_bytes must be powers of two")
        self.backing = backing
        self.sets = sets
        self.ways = ways
        self.line_bytes = line_bytes
        self.fill_penalty = fill_penalty
        self.fault_tolerant = fault_tolerant
        self.enabled = True
        self.stats = CacheStats()
        self._lines = [[CacheLine() for _ in range(ways)] for _ in range(sets)]
        self._lru_clock = 0

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.sets * self.ways * self.line_bytes

    @property
    def worst_stall(self) -> int:
        """Declared timing contract for one cache access.

        A straddling access splits into two sub-reads; each costs at most
        one line fill (either a miss, or a hit whose parity recovery
        invalidates and refetches the line).  A fill pays ``fill_penalty``
        plus, per beat, one bus cycle and the backing store's own worst
        stall - asked for, not guessed, via the same declared protocol.
        """
        backing = getattr(self.backing, "worst_stall", 0)
        fill = self.fill_penalty + (self.line_bytes // 4) * (backing + 1)
        return 2 * fill

    def _split(self, addr: int) -> tuple[int, int, int]:
        offset = addr & (self.line_bytes - 1)
        set_index = (addr // self.line_bytes) % self.sets
        tag = addr // (self.line_bytes * self.sets)
        return tag, set_index, offset

    def _line_base(self, tag: int, set_index: int) -> int:
        return (tag * self.sets + set_index) * self.line_bytes

    def lines_spanned(self, addr: int, nbytes: int) -> int:
        """How many cache lines a transfer touches (E6 uses this)."""
        first = addr // self.line_bytes
        last = (addr + nbytes - 1) // self.line_bytes
        return last - first + 1

    def lookup_plan(self, addr: int, size: int):
        """Fuse-time geometry for one constant-address access.

        Returns ``(tag, set_index, offset, ways)`` - everything the
        superblock fuser needs to emit this cache's :meth:`read` as raw
        statements (``ways`` is the live per-set line list, stable for the
        cache's lifetime; ``self.stats`` is likewise a stable binding for
        the emitted hit/miss/parity counters).  Returns ``None`` when the
        access straddles a line boundary - the split/recurse path stays a
        real :meth:`read` call.
        """
        tag, set_index, offset = self._split(addr)
        if offset + size > self.line_bytes:
            return None
        return tag, set_index, offset, self._lines[set_index]

    # ------------------------------------------------------------------
    # lookup / fill
    # ------------------------------------------------------------------
    def _lookup(self, tag: int, set_index: int) -> CacheLine | None:
        for line in self._lines[set_index]:
            if not line.valid:
                continue
            if parity32(line.tag) != line.tag_parity:
                # TAG array soft error: detected during lookup; the line is
                # invalidated so the access (and any aliased one) misses
                self.stats.tag_errors += 1
                line.valid = False
                continue
            if line.tag == tag:
                return line
        return None

    def _victim(self, set_index: int) -> CacheLine:
        ways = self._lines[set_index]
        for line in ways:
            if not line.valid:
                return line
        return min(ways, key=lambda l: l.lru)

    def _fill(self, tag: int, set_index: int, side: str) -> tuple[CacheLine, int]:
        line = self._victim(set_index)
        base = self._line_base(tag, set_index)
        data = bytearray()
        stalls = self.fill_penalty
        for word_addr in range(base, base + self.line_bytes, 4):
            value, word_stalls = self.backing.read(word_addr, 4, side)
            stalls += word_stalls + 1  # one bus cycle per beat
            data += value.to_bytes(4, "little")
        line.valid = True
        line.tag = tag
        line.data = data
        line.word_parity = [
            parity32(int.from_bytes(data[i:i + 4], "little"))
            for i in range(0, self.line_bytes, 4)
        ]
        line.tag_parity = parity32(tag)
        self.stats.fills += 1
        return line, stalls

    def _touch(self, line: CacheLine) -> None:
        self._lru_clock += 1
        line.lru = self._lru_clock

    def _check_parity(self, line: CacheLine, offset: int, size: int,
                      tag: int, set_index: int, side: str) -> int:
        """Verify parity of the words covering [offset, offset+size).

        Returns extra stalls spent on recovery.  With protection off,
        mismatches are counted but returned data stays corrupt.
        """
        first_word = offset // 4
        last_word = (offset + size - 1) // 4
        for word_index in range(first_word, last_word + 1):
            word = int.from_bytes(line.data[word_index * 4:word_index * 4 + 4], "little")
            if parity32(word) == line.word_parity[word_index]:
                continue
            self.stats.parity_errors += 1
            if not self.fault_tolerant:
                self.stats.silent_corruptions += 1
                return 0
            # invalidate and refetch the whole line (write-through: memory
            # is current, so recovery is always possible without an abort)
            line.valid = False
            _, stalls = self._fill(tag, set_index, side)
            self.stats.recoveries += 1
            return stalls
        return 0

    # ------------------------------------------------------------------
    # device interface
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        if not self.enabled:
            return self.backing.read(addr, size, side)
        tag, set_index, offset = self._split(addr)
        if offset + size > self.line_bytes:
            # split the straddling access at the line boundary
            first = self.line_bytes - offset
            low, stalls_a = self.read(addr, first, side)
            high, stalls_b = self.read(addr + first, size - first, side)
            return low | (high << (8 * first)), stalls_a + stalls_b
        line = self._lookup(tag, set_index)
        stalls = 0
        if line is None:
            self.stats.misses += 1
            line, stalls = self._fill(tag, set_index, side)
        else:
            self.stats.hits += 1
        stalls += self._check_parity(line, offset, size, tag, set_index, side)
        self._touch(line)
        value = int.from_bytes(line.data[offset:offset + size], "little")
        return value, stalls

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        # write-through, no write-allocate
        stalls = self.backing.write(addr, size, value, side)
        if not self.enabled:
            return stalls
        tag, set_index, offset = self._split(addr)
        line = self._lookup(tag, set_index)
        if line is not None and offset + size <= self.line_bytes:
            value &= (1 << (8 * size)) - 1
            line.data[offset:offset + size] = value.to_bytes(size, "little")
            first_word = offset // 4
            last_word = (offset + size - 1) // 4
            for word_index in range(first_word, last_word + 1):
                word = int.from_bytes(line.data[word_index * 4:word_index * 4 + 4], "little")
                line.word_parity[word_index] = parity32(word)
            self._touch(line)
        return stalls

    # ------------------------------------------------------------------
    # maintenance and fault injection
    # ------------------------------------------------------------------
    def invalidate_all(self) -> None:
        for ways in self._lines:
            for line in ways:
                line.valid = False

    def warm(self, addr: int, nbytes: int, side: str = "D") -> None:
        """Prefetch a range so subsequent reads hit (test/bench setup)."""
        for a in range(addr & ~(self.line_bytes - 1), addr + nbytes, self.line_bytes):
            self.read(a, 4, side)

    def valid_lines(self) -> list[tuple[int, int]]:
        """(set_index, way) of every valid line."""
        return [
            (s, w)
            for s in range(self.sets)
            for w in range(self.ways)
            if self._lines[s][w].valid
        ]

    def bit_capacity(self) -> int:
        """Total data bits currently held in valid lines (for fault models)."""
        return len(self.valid_lines()) * self.line_bytes * 8

    def flip_data_bit(self, set_index: int, way: int, bit: int) -> None:
        """Soft error: flip one stored data bit without fixing parity."""
        line = self._lines[set_index][way]
        if not line.valid:
            return
        byte_index, bit_index = divmod(bit, 8)
        line.data[byte_index % self.line_bytes] ^= 1 << bit_index

    def flip_tag_bit(self, set_index: int, way: int, bit: int) -> None:
        """Soft error in the TAG array."""
        line = self._lines[set_index][way]
        if not line.valid:
            return
        line.tag ^= 1 << (bit % 20)

    def flip_random_bit(self, rng, target: str = "data") -> bool:
        """Flip a random bit in a random valid line; False if cache empty."""
        lines = self.valid_lines()
        if not lines:
            return False
        set_index, way = rng.choice(lines)
        if target == "tag":
            self.flip_tag_bit(set_index, way, rng.bit_position(20))
        else:
            self.flip_data_bit(set_index, way, rng.bit_position(self.line_bytes * 8))
        return True
