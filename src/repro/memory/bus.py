"""System bus: address decoding, wait-state accounting, access faults.

The bus connects CPU ports to memory devices.  Every access returns the
number of *stall* cycles the device imposed beyond the single bus cycle the
core already charges, so core cycle models simply add the returned stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


class BusFault(Exception):
    """Access to an unmapped address or a device-rejected access."""

    def __init__(self, address: int, reason: str = "unmapped") -> None:
        super().__init__(f"bus fault at {address:#010x}: {reason}")
        self.address = address
        self.reason = reason


class MemoryDevice(Protocol):
    """What the bus needs from a memory-mapped device."""

    base: int
    size: int

    def read(self, addr: int, size: int, side: str) -> tuple[int, int]: ...
    def write(self, addr: int, size: int, value: int, side: str) -> tuple[None, int] | int: ...


@dataclass
class AccessRecord:
    """One bus transaction, for traces and tests."""

    addr: int
    size: int
    kind: str   # 'R' or 'W'
    side: str   # 'I' or 'D'
    stalls: int


class SystemBus:
    """Decodes addresses to devices and accumulates stall statistics."""

    def __init__(self, record: bool = False) -> None:
        self._devices: list = []
        self.record = record
        self.accesses: list[AccessRecord] = []
        self.total_stalls = 0
        self.reads = 0
        self.writes = 0

    def attach(self, device) -> None:
        """Add a device; regions must not overlap."""
        for existing in self._devices:
            if not (device.base + device.size <= existing.base
                    or existing.base + existing.size <= device.base):
                raise ValueError(
                    f"device at {device.base:#x} overlaps one at {existing.base:#x}")
        self._devices.append(device)
        self._devices.sort(key=lambda d: d.base)

    def device_at(self, addr: int):
        for device in self._devices:
            if device.base <= addr < device.base + device.size:
                return device
        return None

    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        """Read ``size`` bytes; returns (value, stall_cycles)."""
        device = self.device_at(addr)
        if device is None:
            raise BusFault(addr)
        value, stalls = device.read(addr, size, side)
        self.reads += 1
        self.total_stalls += stalls
        if self.record:
            self.accesses.append(AccessRecord(addr, size, "R", side, stalls))
        return value, stalls

    def fetch_stalls(self, addr: int, size: int) -> int:
        """Instruction-side fetch: timing only, value discarded.

        Bookkeeping (read counters, stall totals, access records) matches
        :meth:`read` exactly, so fast-path and reference execution leave
        identical bus statistics behind.
        """
        device = self.device_at(addr)
        if device is None:
            raise BusFault(addr)
        fetch = getattr(device, "fetch_stalls", None)
        if fetch is not None:
            stalls = fetch(addr, size)
        else:
            _, stalls = device.read(addr, size, "I")
        self.reads += 1
        self.total_stalls += stalls
        if self.record:
            self.accesses.append(AccessRecord(addr, size, "R", "I", stalls))
        return stalls

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        """Write ``size`` bytes; returns stall_cycles."""
        device = self.device_at(addr)
        if device is None:
            raise BusFault(addr)
        stalls = device.write(addr, size, value, side)
        self.writes += 1
        self.total_stalls += stalls
        if self.record:
            self.accesses.append(AccessRecord(addr, size, "W", side, stalls))
        return stalls

    # ------------------------------------------------------------------
    # debug/loader access (no timing, no recording)
    # ------------------------------------------------------------------
    def load_image(self, addr: int, image: bytes) -> None:
        offset = 0
        while offset < len(image):
            device = self.device_at(addr + offset)
            if device is None:
                raise BusFault(addr + offset, "load outside mapped memory")
            chunk = min(len(image) - offset, device.base + device.size - (addr + offset))
            device.write_raw(addr + offset, image[offset:offset + chunk])
            offset += chunk

    def read_raw(self, addr: int, size: int) -> int:
        device = self.device_at(addr)
        if device is None:
            raise BusFault(addr)
        return int.from_bytes(device.read_raw(addr, size), "little")


class RamBackedDevice:
    """Common base for byte-array-backed devices (flash, SRAM, TCM)."""

    def __init__(self, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("device size must be positive")
        self.base = base
        self.size = size
        self.data = bytearray(size)

    def _offset(self, addr: int, size: int) -> int:
        offset = addr - self.base
        if not 0 <= offset <= self.size - size:
            raise BusFault(addr, "access beyond device")
        return offset

    def read_raw(self, addr: int, size: int) -> bytes:
        offset = self._offset(addr, size)
        return bytes(self.data[offset:offset + size])

    def write_raw(self, addr: int, payload: bytes) -> None:
        offset = self._offset(addr, len(payload))
        self.data[offset:offset + len(payload)] = payload

    def _get(self, addr: int, size: int) -> int:
        offset = self._offset(addr, size)
        return int.from_bytes(self.data[offset:offset + size], "little")

    def _set(self, addr: int, size: int, value: int) -> None:
        offset = self._offset(addr, size)
        self.data[offset:offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
