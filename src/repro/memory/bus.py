"""System bus: address decoding, wait-state accounting, access faults.

The bus connects CPU ports to memory devices.  Every access returns the
number of *stall* cycles the device imposed beyond the single bus cycle the
core already charges, so core cycle models simply add the returned stalls.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Protocol


class BusFault(Exception):
    """Access to an unmapped address or a device-rejected access."""

    def __init__(self, address: int, reason: str = "unmapped") -> None:
        super().__init__(f"bus fault at {address:#010x}: {reason}")
        self.address = address
        self.reason = reason


class MemoryDevice(Protocol):
    """What the bus needs from a memory-mapped device.

    ``worst_stall`` is the device's *declared* timing contract: an upper
    bound on the stall cycles any single access (at most one bus word)
    can return.  The per-block cycle caps that bound speculative
    superblock execution are summed from these declarations, so a device
    that can stall MUST declare; a device without the attribute is taken
    as stall-free (the MMIO default).
    """

    base: int
    size: int
    worst_stall: int

    def read(self, addr: int, size: int, side: str) -> tuple[int, int]: ...
    def write(self, addr: int, size: int, value: int, side: str) -> tuple[None, int] | int: ...


@dataclass
class AccessRecord:
    """One bus transaction, for traces and tests."""

    addr: int
    size: int
    kind: str   # 'R' or 'W'
    side: str   # 'I' or 'D'
    stalls: int


#: never-matching span sentinel for the last-hit device caches
_NO_SPAN = (1, 0, None)


class SystemBus:
    """Decodes addresses to devices and accumulates stall statistics.

    Address decode is a bisect over the (sorted, non-overlapping) device
    bases, fronted by two last-hit caches - one for the data side, one for
    the instruction-fetch side, so the ARM7-style I/D interleave on a
    shared port does not thrash a single slot.  Sequential access patterns
    (the overwhelmingly common case: code streaming from flash, data
    walking SRAM) therefore resolve with one tuple compare instead of a
    linear scan per access.
    """

    def __init__(self, record: bool = False) -> None:
        self._devices: list = []
        self._bases: list[int] = []
        self._span_d: tuple = _NO_SPAN   # (lo, hi, device) last data hit
        self._span_i: tuple = _NO_SPAN   # (lo, hi, device) last fetch hit
        self.record = record
        self.accesses: list[AccessRecord] = []
        self.total_stalls = 0
        self.reads = 0
        self.writes = 0

    def attach(self, device) -> None:
        """Add a device; regions must not overlap.  Keeps ``_devices``
        sorted by base address so lookups can bisect."""
        for existing in self._devices:
            if not (device.base + device.size <= existing.base
                    or existing.base + existing.size <= device.base):
                raise ValueError(
                    f"device at {device.base:#x} overlaps one at {existing.base:#x}")
        self._devices.append(device)
        self._devices.sort(key=lambda d: d.base)
        self._bases = [d.base for d in self._devices]
        self._span_d = self._span_i = _NO_SPAN

    @property
    def worst_stall(self) -> int:
        """Worst per-access stall any attached device declares.

        The aggregate of the device-declared ``worst_stall`` contract
        (see :class:`MemoryDevice`): core cycle-cap computations ask the
        bus once instead of guessing.  Devices without a declaration are
        assumed stall-free - every stalling device in the tree declares.
        """
        return max((getattr(device, "worst_stall", 0)
                    for device in self._devices), default=0)

    def _lookup(self, addr: int):
        """Bisect the sorted device list; None when unmapped."""
        index = bisect_right(self._bases, addr) - 1
        if index >= 0:
            device = self._devices[index]
            if addr < device.base + device.size:
                return device
        return None

    def device_at(self, addr: int):
        span = self._span_d
        if span[0] <= addr < span[1]:
            return span[2]
        device = self._lookup(addr)
        if device is not None:
            self._span_d = (device.base, device.base + device.size, device)
        return device

    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        """Read ``size`` bytes; returns (value, stall_cycles)."""
        span = self._span_d
        if span[0] <= addr < span[1]:
            device = span[2]
        else:
            device = self._lookup(addr)
            if device is None:
                raise BusFault(addr)
            self._span_d = (device.base, device.base + device.size, device)
        value, stalls = device.read(addr, size, side)
        self.reads += 1
        self.total_stalls += stalls
        if self.record:
            self.accesses.append(AccessRecord(addr, size, "R", side, stalls))
        return value, stalls

    def fetch_stalls(self, addr: int, size: int) -> int:
        """Instruction-side fetch: timing only, value discarded.

        Bookkeeping (read counters, stall totals, access records) matches
        :meth:`read` exactly, so fast-path and reference execution leave
        identical bus statistics behind.
        """
        span = self._span_i
        if span[0] <= addr < span[1]:
            fetch = span[2]
        else:
            device = self._lookup(addr)
            if device is None:
                raise BusFault(addr)
            fetch = getattr(device, "fetch_stalls", None)
            if fetch is None:
                def fetch(addr, size, _read=device.read):
                    return _read(addr, size, "I")[1]
            self._span_i = (device.base, device.base + device.size, fetch)
        stalls = fetch(addr, size)
        self.reads += 1
        self.total_stalls += stalls
        if self.record:
            self.accesses.append(AccessRecord(addr, size, "R", "I", stalls))
        return stalls

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        """Write ``size`` bytes; returns stall_cycles."""
        span = self._span_d
        if span[0] <= addr < span[1]:
            device = span[2]
        else:
            device = self._lookup(addr)
            if device is None:
                raise BusFault(addr)
            self._span_d = (device.base, device.base + device.size, device)
        stalls = device.write(addr, size, value, side)
        self.writes += 1
        self.total_stalls += stalls
        if self.record:
            self.accesses.append(AccessRecord(addr, size, "W", side, stalls))
        return stalls

    def fetch_thunk(self, addr: int, size: int):
        """A zero-argument fetch closure prebound to the device at ``addr``.

        The execution engines predecode instruction addresses once, so the
        device decode for an instruction fetch can be done at bind time
        instead of per execution; the returned thunk performs the fetch
        with statistics accounting **identical** to :meth:`fetch_stalls`
        (read counter, stall total, access record).  Returns ``None`` when
        ``[addr, addr+size)`` is not wholly inside one mapped device - the
        caller then falls back to the per-access decode path.
        """
        device = self._lookup(addr)
        if device is None or addr + size > device.base + device.size:
            return None
        fetch = getattr(device, "fetch_stalls", None)
        if fetch is None:
            def fetch(a, s, _read=device.read):
                return _read(a, s, "I")[1]
        def thunk(bus=self, addr=addr, size=size, fetch=fetch):
            stalls = fetch(addr, size)
            bus.reads += 1
            bus.total_stalls += stalls
            if bus.record:
                bus.accesses.append(AccessRecord(addr, size, "R", "I", stalls))
            return stalls
        return thunk

    # ------------------------------------------------------------------
    # debug/loader access (no timing, no recording)
    # ------------------------------------------------------------------
    def load_image(self, addr: int, image: bytes) -> None:
        offset = 0
        while offset < len(image):
            device = self.device_at(addr + offset)
            if device is None:
                raise BusFault(addr + offset, "load outside mapped memory")
            chunk = min(len(image) - offset, device.base + device.size - (addr + offset))
            device.write_raw(addr + offset, image[offset:offset + chunk])
            offset += chunk

    def read_raw(self, addr: int, size: int) -> int:
        device = self.device_at(addr)
        if device is None:
            raise BusFault(addr)
        return int.from_bytes(device.read_raw(addr, size), "little")


class RamBackedDevice:
    """Common base for byte-array-backed devices (flash, SRAM, TCM)."""

    def __init__(self, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("device size must be positive")
        self.base = base
        self.size = size
        self.data = bytearray(size)

    def _offset(self, addr: int, size: int) -> int:
        offset = addr - self.base
        if not 0 <= offset <= self.size - size:
            raise BusFault(addr, "access beyond device")
        return offset

    def read_raw(self, addr: int, size: int) -> bytes:
        offset = self._offset(addr, size)
        return bytes(self.data[offset:offset + size])

    def write_raw(self, addr: int, payload: bytes) -> None:
        offset = self._offset(addr, len(payload))
        self.data[offset:offset + len(payload)] = payload

    def _get(self, addr: int, size: int) -> int:
        offset = self._offset(addr, size)
        return int.from_bytes(self.data[offset:offset + size], "little")

    def _set(self, addr: int, size: int, value: int) -> None:
        offset = self._offset(addr, size)
        self.data[offset:offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
