"""Bit-band aliasing (paper section 3.2.3, figure 5).

A region of real memory is aliased into a much larger *bit-band alias*
region in which each alias word addresses exactly one **bit** of the
underlying memory.  A single store to the alias atomically sets or clears
that bit - no interrupt masking, no read-modify-write sequence - which is
the paper's mechanism for cheap atomic semaphores on the Cortex-M3.

Mapping (as on the real Cortex-M3):

    alias_address = alias_base + byte_offset * 32 + bit_number * 4

so 1 MB of bit-band region consumes 32 MB of alias space.  The paper's
figure quotes 8 MB because it draws a byte-granular alias; the factor is a
presentation detail - the mechanism (one aliased store = one atomic bit
write) is identical and is what experiment E9 measures.
"""

from __future__ import annotations

from repro.memory.bus import BusFault


class BitBandAlias:
    """Alias device translating word accesses into single-bit operations.

    ``target`` is the device holding the real bits (usually an
    :class:`~repro.memory.sram.Sram`).  The alias covers
    ``target_bytes * 32`` bytes of address space from ``base``.
    """

    def __init__(self, base: int, target, target_base: int, target_bytes: int) -> None:
        self.base = base
        self.size = target_bytes * 32
        self.target = target
        self.target_base = target_base
        self.target_bytes = target_bytes
        self.bit_writes = 0
        self.bit_reads = 0

    @property
    def worst_stall(self) -> int:
        """Declared timing contract: an alias write is a read-modify-write
        against the target, paying its worst stall at most twice."""
        return 2 * getattr(self.target, "worst_stall", 0)

    def _locate(self, addr: int) -> tuple[int, int]:
        """Map an alias address to (target byte address, bit number)."""
        offset = addr - self.base
        if offset % 4:
            raise BusFault(addr, "bit-band alias accesses must be word-aligned")
        bit_index = offset // 4
        byte_offset, bit = divmod(bit_index, 8)
        return self.target_base + byte_offset, bit

    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        if size != 4:
            raise BusFault(addr, "bit-band alias reads must be words")
        byte_addr, bit = self._locate(addr)
        value, stalls = self.target.read(byte_addr, 1, side)
        self.bit_reads += 1
        return (value >> bit) & 1, stalls

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        if size != 4:
            raise BusFault(addr, "bit-band alias writes must be words")
        byte_addr, bit = self._locate(addr)
        current, read_stalls = self.target.read(byte_addr, 1, side)
        if value & 1:
            current |= 1 << bit
        else:
            current &= ~(1 << bit)
        write_stalls = self.target.write(byte_addr, 1, current, side)
        self.bit_writes += 1
        # the read-modify-write happens inside the memory controller in a
        # single bus transaction: the core sees one access
        return read_stalls + write_stalls

    def alias_address(self, byte_addr: int, bit: int) -> int:
        """The alias word address controlling ``bit`` of ``byte_addr``."""
        if not 0 <= bit < 8:
            raise ValueError("bit must be 0..7")
        offset = byte_addr - self.target_base
        if not 0 <= offset < self.target_bytes:
            raise ValueError(f"{byte_addr:#x} outside bit-band target region")
        return self.base + (offset * 8 + bit) * 4
