"""Memory-system substrate: bus, flash, SRAM, caches, TCM, bit-band, MPU.

Every timing-relevant memory behaviour the paper leans on lives here:

* :mod:`repro.memory.flash` - slow embedded flash with streaming prefetch
  (section 2.2's literal-pool disruption mechanism).
* :mod:`repro.memory.cache` - parity-protected set-associative cache
  (section 3.1.3 fault tolerance, section 3.1.2 miss predictability).
* :mod:`repro.memory.tcm` - SEC-DED ECC tightly-coupled memory with
  hold-and-repair (section 3.1.3).
* :mod:`repro.memory.bitband` - bit-band aliasing (section 3.2.3).
* :mod:`repro.memory.mpu` - classic vs ARMv6 fine-grained MPU
  (section 3.1.1).
* :mod:`repro.memory.faults` - Poisson soft-error injection.
"""

from repro.memory.bitband import BitBandAlias
from repro.memory.bus import AccessRecord, BusFault, RamBackedDevice, SystemBus
from repro.memory.cache import Cache, CacheStats, ParityError, parity32
from repro.memory.faults import SoftErrorInjector
from repro.memory.flash import Flash
from repro.memory.mpu import (
    PERM_NONE,
    PERM_RO,
    PERM_RW,
    IsolationPlan,
    Mpu,
    MpuFault,
    MpuRegion,
    armv6_mpu,
    classic_mpu,
    plan_task_isolation,
)
from repro.memory.sram import Sram
from repro.memory.tcm import EccUncorrectable, Tcm, ecc_check, ecc_encode

__all__ = [
    "BitBandAlias",
    "AccessRecord", "BusFault", "RamBackedDevice", "SystemBus",
    "Cache", "CacheStats", "ParityError", "parity32",
    "SoftErrorInjector",
    "Flash",
    "PERM_NONE", "PERM_RO", "PERM_RW",
    "IsolationPlan", "Mpu", "MpuFault", "MpuRegion",
    "armv6_mpu", "classic_mpu", "plan_task_isolation",
    "Sram",
    "EccUncorrectable", "Tcm", "ecc_check", "ecc_encode",
]
