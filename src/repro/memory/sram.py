"""On-chip SRAM: fixed (usually zero) wait states."""

from __future__ import annotations

from repro.memory.bus import RamBackedDevice


class Sram(RamBackedDevice):
    """Simple RAM with a constant stall count per access."""

    def __init__(self, base: int, size: int, wait_states: int = 0) -> None:
        super().__init__(base, size)
        self.wait_states = wait_states
        self.reads = 0
        self.writes = 0

    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        self.reads += 1
        return self._get(addr, size), self.wait_states

    def fetch_stalls(self, addr: int, size: int) -> int:
        """Instruction-fetch timing (value discarded); counts as a read."""
        self._offset(addr, size)
        self.reads += 1
        return self.wait_states

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        self.writes += 1
        self._set(addr, size, value)
        return self.wait_states
