"""On-chip SRAM: fixed (usually zero) wait states.

The access methods inline the bounds check and byte (de)serialisation that
:class:`~repro.memory.bus.RamBackedDevice` provides as helpers: SRAM is the
hot data device on every core, and the helper frames are pure overhead on
the fast execution path.  Behaviour (including the :class:`BusFault` on an
out-of-range access) is identical to the helper-based form.
"""

from __future__ import annotations

from repro.memory.bus import BusFault, RamBackedDevice


class Sram(RamBackedDevice):
    """Simple RAM with a constant stall count per access."""

    def __init__(self, base: int, size: int, wait_states: int = 0) -> None:
        super().__init__(base, size)
        self.wait_states = wait_states
        self.reads = 0
        self.writes = 0

    @property
    def worst_stall(self) -> int:
        """Declared timing contract: every access stalls ``wait_states``."""
        return self.wait_states

    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        offset = addr - self.base
        if offset < 0 or offset > self.size - size:
            raise BusFault(addr, "access beyond device")
        self.reads += 1
        return (int.from_bytes(self.data[offset:offset + size], "little"),
                self.wait_states)

    def fetch_stalls(self, addr: int, size: int) -> int:
        """Instruction-fetch timing (value discarded); counts as a read."""
        offset = addr - self.base
        if offset < 0 or offset > self.size - size:
            raise BusFault(addr, "access beyond device")
        self.reads += 1
        return self.wait_states

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        offset = addr - self.base
        if offset < 0 or offset > self.size - size:
            raise BusFault(addr, "access beyond device")
        self.writes += 1
        self.data[offset:offset + size] = \
            (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        return self.wait_states
