"""The one campaign request shape - and the one runner core under it.

Every way a campaign is run - the library call, the ``python -m
repro.sim.campaign`` CLI, the ``--launch N`` shard launcher, and the
resident service (:mod:`repro.sim.service`) - describes the sweep with the
same :class:`CampaignRequest`: either an explicit spec list or a named
matrix plus ``seed``/``scale``, an optional ``shard=(k, n)`` partition,
worker-pool and cache settings, and a service-side ``priority``.  The
request is a frozen dataclass with a canonical JSON form
(:meth:`CampaignRequest.to_obj` / :meth:`CampaignRequest.from_obj`), so the
same object rides the service's wire protocol, and a CLI-equivalent argv
(:meth:`CampaignRequest.cli_argv`), so the shard launcher can never drift
from the flag parser: both are derived from the request, not rebuilt by
hand.

:func:`execute_request` is the single local runner core (the body that
used to live in ``run_campaign``, which is now a thin shim over it).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from dataclasses import dataclass


def _thaw(value):
    """JSON arrays -> tuples, recursively.

    Spec fields (``params``, ``machine_kwargs``) are tuples *because* specs
    must stay hashable, so any list arriving from JSON can only have been a
    tuple before serialisation - restoring tuple-ness exactly is what keeps
    ``spec.key()`` (which formats values with ``str``) stable across the
    wire.
    """
    if isinstance(value, list):
        return tuple(_thaw(item) for item in value)
    return value


def spec_to_obj(spec) -> dict:
    """One :class:`~repro.sim.campaign.ScenarioSpec` as a JSON-able dict."""
    obj = dict(vars(spec))
    if spec.interrupts is not None:
        obj["interrupts"] = dict(vars(spec.interrupts))
    return obj


def spec_from_obj(obj: dict):
    """Rebuild a :class:`~repro.sim.campaign.ScenarioSpec` from its dict.

    The round trip is exact: ``spec_from_obj(json.loads(json.dumps(
    spec_to_obj(spec)))) == spec``, including nested tuples and the
    interrupt profile.
    """
    from repro.sim.campaign import InterruptProfile, ScenarioSpec

    data = dict(obj)
    interrupts = data.get("interrupts")
    if interrupts is not None:
        data["interrupts"] = InterruptProfile(**interrupts)
    data["machine_kwargs"] = _thaw(data.get("machine_kwargs", ()))
    data["params"] = _thaw(data.get("params", ()))
    return ScenarioSpec(**data)


def record_to_obj(record) -> dict:
    """One domain record as a JSON-able dict (the cell wire format).

    The inverse of :func:`record_from_obj`; the service's record pushes
    and the supervised worker's result frames both use it, so a record
    round-trips through any number of pipe/socket hops byte-identically
    once re-serialised canonically.
    """
    return dict(vars(record))


def record_from_obj(payload: dict):
    """Rebuild a domain record from its JSON dict (``domain``-tag dispatch)."""
    from repro.sim.domains import record_class_for

    return record_class_for(payload.get("domain", "kernel"))(**payload)


@dataclass(frozen=True)
class CampaignRequest:
    """Everything one campaign run needs, as one serialisable value.

    Exactly one of ``matrix`` (a built-in matrix name, resolved with
    ``seed``/``scale``) or ``specs`` (explicit cells) may be set; ``shard``
    selects the ``k``-th of ``n`` contiguous partitions of the resolved
    list.  ``workers``, ``parallel``, and ``cache`` configure local
    execution (:func:`execute_request`); a service executing the request
    uses its own shared pool and cache and ignores them.  ``parallel``
    asks co-simulation domains to advance each cell's ECUs on that many
    worker threads - like ``workers`` it is an execution-level knob, never
    part of a spec, its cache key, or a record, because output is
    byte-identical for every value.  ``priority`` orders the request
    against other clients' sweeps on a service (higher runs first); local
    execution ignores it.  ``metrics`` asks the CLI front ends to dump a
    :mod:`repro.obs` telemetry snapshot to that path after the run (the
    launcher merges per-shard dumps); like every telemetry knob it is
    out-of-band - record streams are byte-identical with or without it.
    """

    matrix: str | None = None
    specs: tuple = ()
    seed: int = 2005
    scale: int = 1
    shard: tuple[int, int] | None = None
    workers: int | None = None
    parallel: int | None = None
    cache: str | None = None
    priority: int = 0
    metrics: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.shard is not None:
            object.__setattr__(self, "shard", tuple(self.shard))
        if self.matrix and self.specs:
            raise ValueError(
                "a campaign request takes a named matrix or explicit specs, not both")

    def resolve_specs(self) -> list:
        """The concrete spec list: matrix lookup, then shard slicing."""
        from repro.sim.campaign import available_matrices, shard_bounds

        if self.matrix:
            matrices = available_matrices()
            if self.matrix not in matrices:
                raise ValueError(
                    f"unknown matrix {self.matrix!r}; "
                    f"pick from {', '.join(sorted(matrices))}")
            specs = matrices[self.matrix](self.seed, self.scale)
        else:
            specs = list(self.specs)
        if self.shard is not None:
            low, high = shard_bounds(len(specs), self.shard)
            specs = specs[low:high]
        return specs

    def with_shard(self, shard: tuple[int, int] | None) -> CampaignRequest:
        """The same request restricted to one shard partition."""
        return dataclasses.replace(self, shard=shard)

    def cli_argv(self) -> list[str]:
        """``python -m repro.sim.campaign`` flags reproducing this request.

        Only named-matrix requests can ride an argv (explicit specs have
        no flag form).  The shard launcher builds every child command from
        this - one encoding of the request shape, shared with the flag
        parser, so a new request field cannot silently miss the launcher
        path (see ``test_request_cli_argv_round_trip``).
        """
        if not self.matrix:
            raise ValueError(
                "only named-matrix requests can be rebuilt as a command line; "
                "this request carries explicit specs")
        argv = ["--matrix", self.matrix,
                "--seed", str(self.seed), "--scale", str(self.scale)]
        if self.shard is not None:
            argv += ["--shard", f"{self.shard[0]}/{self.shard[1]}"]
        if self.workers is not None:
            argv += ["--workers", str(self.workers)]
        if self.parallel is not None:
            argv += ["--parallel", str(self.parallel)]
        if self.cache:
            argv += ["--cache", self.cache]
        if self.priority:
            argv += ["--priority", str(self.priority)]
        if self.metrics:
            argv += ["--metrics", self.metrics]
        return argv

    def to_obj(self) -> dict:
        """The canonical JSON-able form (the service ``submit`` payload)."""
        return {
            "matrix": self.matrix,
            "specs": [spec_to_obj(spec) for spec in self.specs],
            "seed": self.seed,
            "scale": self.scale,
            "shard": list(self.shard) if self.shard is not None else None,
            "workers": self.workers,
            "parallel": self.parallel,
            "cache": self.cache,
            "priority": self.priority,
            "metrics": self.metrics,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> CampaignRequest:
        """Rebuild a request from :meth:`to_obj` output (exact round trip)."""
        if not isinstance(obj, dict):
            raise ValueError(f"campaign request must be an object, got {type(obj).__name__}")
        shard = obj.get("shard")
        return cls(
            matrix=obj.get("matrix"),
            specs=tuple(spec_from_obj(spec) for spec in obj.get("specs", ())),
            seed=obj.get("seed", 2005),
            scale=obj.get("scale", 1),
            shard=tuple(shard) if shard is not None else None,
            workers=obj.get("workers"),
            parallel=obj.get("parallel"),
            cache=obj.get("cache"),
            priority=obj.get("priority", 0),
            metrics=obj.get("metrics"),
        )


def execute_request(request: CampaignRequest, *, stream_path=None,
                    collect: bool | None = None, on_record=None, cache=None):
    """Run a :class:`CampaignRequest` locally - the one runner core.

    ``stream_path`` appends each record to that file as one canonical JSON
    line as soon as it comes off a worker, in input order; ``collect``
    defaults to False when streaming and True otherwise; ``on_record`` is
    called with each record in input order.  ``cache`` (a directory path
    or a :class:`~repro.sim.campaign.cache.RecordCache`) overrides
    ``request.cache``; either way, replayed cells interleave exactly where
    a cold run would have produced them, so the output - stream bytes
    included - is byte-identical to a cold run.

    Output is byte-identical for every ``workers`` value: records are pure
    functions of their specs and come back in input order regardless of
    worker scheduling.
    """
    import functools

    from repro import obs
    from repro.sim.campaign import CampaignResult, _record_json, run_scenario
    from repro.sim.campaign.cache import RecordCache

    runner = (run_scenario if request.parallel is None
              else functools.partial(run_scenario, parallel=request.parallel))
    specs = request.resolve_specs()
    workers = request.workers
    if cache is None:
        cache = request.cache
    if cache is not None and not isinstance(cache, RecordCache):
        cache = RecordCache(cache)
    if collect is None:
        collect = stream_path is None
    records: list = []
    stream = open(stream_path, "a", encoding="utf-8") if stream_path is not None else None

    def consume(record) -> None:
        if stream is not None:
            stream.write(_record_json(record) + "\n")
        if collect:
            records.append(record)
        if on_record is not None:
            on_record(record)

    cached = [None] * len(specs) if cache is None else [cache.get(s) for s in specs]
    misses = [s for s, hit in zip(specs, cached) if hit is None]

    # Out-of-band telemetry, counted parent-side so pool children (whose
    # process-local registries die with them) still show up: every cell
    # requested, every cache replay, every freshly computed record.
    if obs.REGISTRY.enabled:
        requested = obs.counter("campaign.cells.requested",
                                "Cells resolved into this run, by domain")
        replayed = obs.counter("campaign.cells.cached",
                               "Cells replayed from the record cache")
        for spec in specs:
            requested.inc(domain=spec.domain)
        for spec, hit in zip(specs, cached):
            if hit is not None:
                replayed.inc(domain=spec.domain)

    def computed(record, spec) -> object:
        if cache is not None:
            cache.put(spec, record)
        if obs.REGISTRY.enabled:
            obs.counter("campaign.cells.computed",
                        "Cells computed by this run").inc(domain=spec.domain)
        return record

    try:
        if workers is None or workers <= 1 or len(misses) <= 1:
            for spec, hit in zip(specs, cached):
                consume(hit if hit is not None
                        else computed(runner(spec), spec))
        else:
            with multiprocessing.Pool(processes=min(workers, len(misses))) as pool:
                # imap (not map): records arrive incrementally, and pulling
                # the miss iterator while walking specs in input order keeps
                # cache replays interleaved exactly where a cold run would
                # have produced those records
                miss_records = pool.imap(runner, misses, chunksize=1)
                for spec, hit in zip(specs, cached):
                    consume(hit if hit is not None
                            else computed(next(miss_records), spec))
    finally:
        if stream is not None:
            stream.close()
    return CampaignResult(records=records)
