"""Parallel, shardable scenario-matrix campaign runner.

The paper's core argument is that automotive parts differentiate on
*system scenarios* - OSEK task sets, CAN body networks, soft-error
resilience - not just core throughput.  This module turns such sweeps into
first-class objects: a list of :class:`ScenarioSpec` cells fanned across
``multiprocessing`` workers, where each cell belongs to a **scenario
domain** (see :mod:`repro.sim.domains`):

* ``kernel`` - AutoIndy kernels on the core models (Table 1 / Figure 4),
  optionally under deterministic IRQ storms;
* ``osek`` - OSEK task-set schedulability sweeps: synthesized task sets
  run on the simulated kernel (:mod:`repro.rtos.kernel`) and cross-checked
  against response-time analysis (:mod:`repro.rtos.analysis`);
* ``can`` - CAN traffic matrices on the discrete-event bus
  (:mod:`repro.network.can_bus`) against the Tindell/Davis bounds;
* ``soft_error`` - cosmic-ray upset sweeps (:mod:`repro.memory.faults`)
  into an ECC TCM feeding real CPU runs;
* ``vehicle`` / ``vehicle_fault`` - whole virtual vehicles as cells: the
  healthy co-simulated body network verified against composed analytic
  bounds, and the same network under injected faults (babbling-idiot
  senders, bus-off storms, gateway RX overload, stuck/dropped LIN slots,
  firmware soft errors) with a **verdict per safety claim** - latency
  bound held, frame conservation, fail-silence of the faulted node,
  recovery within deadline - judged against the cell's fault-free twin.
  A fault cell verifies when each verdict matches its *expected*
  outcome (a babbling idiot is supposed to break the latency bound;
  confinement is supposed to hold everything else), so demonstrated
  violations are assertions, not failures.  Faulted runs keep the full
  determinism guarantee below: injected traffic and forced error
  windows are scheduled in bus time, and mid-run memory flips settle to
  the guest's next WFI boundary, so records are byte-identical across
  engine tiers, quantum sizes, workers, and shards.

Determinism is the hard guarantee that makes campaigns distributable:

* every scenario derives its RNG stream purely from its own spec (a CRC-32
  of the scenario key mixed with the seed), never from a shared stream,
  worker identity, or shard assignment;
* results come back in input order regardless of worker count;
* :meth:`CampaignResult.to_json` and the JSONL stream are canonical
  (sorted keys, no wall-clock or host state), so a campaign's output is
  **byte-identical** for 1, 2, or N workers - and, because records are a
  pure function of each spec, across *shards*: ``run_campaign(specs,
  shard=(k, n))`` runs the k-th of ``n`` contiguous partitions, and the
  concatenation of all shard streams in ``k`` order is byte-identical to
  the unsharded stream.  That is the whole distribution recipe: give every
  host the same spec list and a distinct ``(k, n)``, then ``cat`` the
  outputs.

``python -m repro.sim.campaign --matrix smoke --shard 0/2 --stream
shard0.jsonl`` exposes the same thing on the command line (``--list``
names the built-in matrices); the CI ``campaign-smoke`` step runs a
two-shard sweep over all four domains and diffs the concatenation against
a single-process run on every push.

One request shape, many front doors
-----------------------------------

Every way a campaign runs goes through :class:`CampaignRequest`
(:mod:`repro.sim.campaign.request`): the library call
(:func:`execute_request`), the CLI (which parses its flags *into* a
request), the ``--launch N`` shard launcher (which derives each child's
argv *from* the request via :meth:`CampaignRequest.cli_argv`), and the
resident campaign service.  :func:`run_campaign` survives as a thin
backward-compatible shim over the same core.

The campaign service (``repro.sim.service``)
--------------------------------------------

``python -m repro.sim.service`` runs a long-lived asyncio sweep server
over the same worker pools; ``python -m repro.sim.campaign --connect
HOST:PORT`` (or :class:`repro.sim.service.CampaignClient`) submits
requests to it instead of running locally.  The wire protocol is
line-oriented JSON (one message per ``\\n``-terminated line, canonical
``sort_keys`` encoding) over TCP or stdio:

* ``{"op": "submit", "seq": S, "id": RID?, "request": <CampaignRequest
  .to_obj()>, "priority": P?}`` registers a sweep (named matrix or
  explicit specs, optionally sharded).  Reply: ``{"op": "submitted",
  "seq": S, "id": RID, "cells": N, "priority": P}`` or a typed error.
* ``{"op": "stream", "seq": S, "id": RID}`` subscribes: the server pushes
  ``{"op": "record", "seq": S, "id": RID, "index": I, "record": {...}}``
  for every cell **in spec order** (index 0 first, no gaps, regardless of
  worker completion order), then one ``{"op": "done", "seq": S, "status":
  "ok"|"cancelled"|"error", "cells": N, "ran": R, "verified": V,
  "replayed": ..., "joined": ..., "computed": ...}``.
* ``{"op": "status", "seq": S}`` reports global and per-request counters;
  ``{"op": "cancel", "seq": S, "id": RID}`` stops a request and frees its
  queue slots.
* Errors are typed: ``{"op": "error", "ok": false, "seq": S, "error":
  CODE, "message": ...}`` with codes such as ``bad-request``,
  ``queue-full`` (back-pressure: the bounded request/cell queues are
  full), ``unknown-request``, ``duplicate-request``, ``unknown-op``.

Ordering and dedup guarantees: a request's record stream is exactly the
bytes a local pooled run of the same request would write (records are
pure functions of specs; the client re-serialises each record in the same
canonical form).  Cells are deduplicated **across requests** through the
shared content-addressed record cache keyed by ``spec.key()`` - two
clients sweeping overlapping matrices pay for the union once: a cell
finished earlier replays from the cache (``replayed``), a cell currently
in flight for another request is joined, not recomputed (``joined``), and
only the remainder is computed (``computed``).

Run with ``--workers-proc N`` the service executes cells on a
*supervised fleet* of worker subprocesses and the guarantees above
survive worker crashes, hangs, and kills: a lost cell is requeued onto a
healthy worker (see :mod:`repro.sim.service.supervisor` for the full
failure model) and the stream stays byte-identical to a fault-free run.
A spec the fleet cannot compute surfaces *in the stream* as a
:class:`CellErrorRecord` - a typed per-cell ``status="error"`` record at
the cell's spec position (domain tag ``cell_error``) - never as a
transport error, and the ``done`` summary counts such cells in
``failed``.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field

from repro import obs
from repro.sim.rng import DeterministicRng

#: cell wall-time by domain - observed out-of-band in :func:`run_scenario`
_CELL_SECONDS = obs.histogram(
    "campaign.cell_seconds", "Cell wall time by scenario domain")

#: SRAM address of the irq_tick counter: far above workload input blobs
#: (loaded at SRAM_BASE) and far below the stack (which grows down from
#: the top of the default 128 KiB SRAM).
IRQ_COUNTER_OFFSET = 0x1_0000


@dataclass(frozen=True)
class InterruptProfile:
    """A deterministic IRQ storm delivered while the kernel runs."""

    count: int = 4
    mean_gap: int = 500        # mean cycles between asserts (exponential)
    start_cycle: int = 50
    priority_span: int = 2     # priorities cycle over [0, span)

    def schedule(self, rng: DeterministicRng) -> list[tuple[int, int, int]]:
        """(number, assert_cycle, priority) triples, reproducible per rng."""
        events = []
        cycle = self.start_cycle
        for index in range(self.count):
            cycle += 1 + int(rng.exponential(1.0 / self.mean_gap))
            events.append((index + 1, cycle, index % self.priority_span))
        return events


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of a campaign matrix.

    ``domain`` picks the scenario family (see :mod:`repro.sim.domains`);
    ``core``/``isa``/``workload`` describe the CPU-facing domains (kernel,
    soft_error) and stay empty for the discrete-event ones; ``params``
    carries domain-specific knobs as (key, value) pairs - a tuple, so
    specs stay hashable and picklable across worker processes.
    """

    label: str
    core: str = ""              # 'arm7' | 'cortex-m3' | 'm3' | 'arm1156'
    isa: str = ""               # 'arm' | 'thumb' | 'thumb2'
    workload: str = ""          # AutoIndy kernel name
    seed: int = 2005
    scale: int = 1
    interrupts: InterruptProfile | None = None
    machine_kwargs: tuple = ()  # (key, value) pairs; tuple keeps specs hashable
    fastpath: bool = True
    domain: str = "kernel"
    params: tuple = ()          # domain-specific (key, value) pairs

    def param(self, name: str, default=None):
        """Look up a domain-specific knob from ``params``."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def key(self) -> str:
        """Stable identity used for RNG derivation and result ordering."""
        extras = "/".join(f"{k}={v}" for k, v in self.params)
        return (f"{self.domain}:{self.label}/{self.core}/{self.isa}"
                f"/{self.workload}/seed{self.seed}/scale{self.scale}"
                + (f"/{extras}" if extras else ""))

    def rng(self) -> DeterministicRng:
        """The scenario's private stream: a pure function of the spec.

        Worker processes never share RNG state, so campaign output cannot
        depend on how scenarios were distributed - across workers or
        across shard hosts.
        """
        salt = zlib.crc32(self.key().encode("utf-8"))
        return DeterministicRng((self.seed * 1_000_003 + salt) & 0xFFFFFFFF)


@dataclass
class ScenarioRecord:
    """Outcome of one kernel-domain scenario (KernelRun fields + IRQ stats).

    Other domains define their own record dataclasses (same contract: flat
    JSON-able fields, a ``domain`` tag, a ``verified`` property, and a
    ``status`` property that is ``"ok"`` on every computed record); the
    stream reader dispatches on the ``domain`` field to rebuild them.
    ``status`` is a *property*, never a field: properties stay out of
    ``vars(record)`` and therefore out of the canonical stream bytes.
    Only :class:`CellErrorRecord` carries a real ``status`` field
    (``"error"``) - the one place the status must ride the wire.
    """

    label: str
    core: str
    isa: str
    workload: str
    seed: int
    scale: int
    result: int
    expected: int
    cycles: int
    instructions: int
    code_bytes: int
    total_bytes: int
    irqs_serviced: int = 0
    irqs_tail_chained: int = 0
    irq_ticks: int = 0
    domain: str = "kernel"

    @property
    def status(self) -> str:
        """Typed cell status: a computed record is always ``"ok"``."""
        return "ok"

    @property
    def verified(self) -> bool:
        return self.result == self.expected

    def to_kernel_run(self):
        """Adapt to the Table 1 harness's :class:`KernelRun` record."""
        from repro.workloads.harness import KernelRun

        return KernelRun(
            workload=self.workload, isa=self.isa, core=self.core,
            result=self.result, expected=self.expected, cycles=self.cycles,
            instructions=self.instructions, code_bytes=self.code_bytes,
            total_bytes=self.total_bytes,
        )


@dataclass
class CellErrorRecord:
    """A cell the service could not compute, surfaced *in the stream*.

    The supervised worker fleet quarantines a spec that kills two
    workers in a row (and reports a spec that raises cleanly in-worker)
    as one of these instead of failing the whole request: the client
    sees a typed per-cell ``status="error"`` record at the cell's spec
    position, every other cell streams normally, and ``verified`` is
    False so sweep exit codes stay honest.  ``error`` is the failure
    kind (``"quarantined"`` or ``"compute-error"``); ``key`` is the
    failed cell's ``spec.key()`` so the cell can be re-run alone.  Error
    records are never cached: a restarted service retries the spec.
    """

    label: str
    key: str
    error: str
    message: str
    status: str = "error"
    domain: str = "cell_error"

    @property
    def verified(self) -> bool:
        return False


def _record_json(record) -> str:
    """One record in the canonical form (sorted keys, no whitespace)."""
    return json.dumps(vars(record), sort_keys=True, separators=(",", ":"))


class CampaignStreamError(ValueError):
    """A campaign JSONL stream could not be read back faithfully."""


def _parse_stream_line(path, lineno: int, line: str):
    """One JSONL line -> the matching domain's record instance."""
    from repro.sim.domains import record_class_for

    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise CampaignStreamError(
            f"{path}:{lineno}: corrupt record (not valid JSON: {exc})") from exc
    if not isinstance(payload, dict):
        raise CampaignStreamError(
            f"{path}:{lineno}: corrupt record (expected an object, "
            f"got {type(payload).__name__})")
    domain = payload.get("domain", "kernel")
    try:
        record_class = record_class_for(domain)
    except KeyError as exc:
        raise CampaignStreamError(
            f"{path}:{lineno}: unknown scenario domain {domain!r}") from exc
    try:
        return record_class(**payload)
    except (TypeError, ValueError) as exc:
        # TypeError: fields missing/unknown; ValueError: a record class
        # rejected field *content* (e.g. a vehicle_fault record carrying
        # an unknown verdict claim)
        raise CampaignStreamError(
            f"{path}:{lineno}: corrupt {domain!r} record "
            f"(fields do not match {record_class.__name__}: {exc})") from exc


def read_campaign_stream(path, on_error: str = "raise",
                         errors: list | None = None) -> list:
    """Load the records a ``run_campaign(..., stream_path=...)`` run wrote.

    Every line must be one complete canonical record; a file that does not
    end in a newline was truncated mid-write (the writer always emits the
    trailing newline), so its last line is rejected rather than silently
    half-parsed.  ``on_error='raise'`` (default) raises
    :class:`CampaignStreamError` naming the file, line, and problem;
    ``on_error='skip'`` drops bad lines and reports each one as a
    ``(lineno, message)`` pair appended to ``errors`` (when given).
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    records = []
    # Line-by-line: million-scenario streams never sit in memory whole.
    # Only the final line of a file can lack its newline, and the writer
    # always terminates complete records, so a missing one is truncation.
    with open(path, encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, 1):
            if not line.endswith("\n"):
                message = (f"{path}:{lineno}: truncated trailing line "
                           f"(no newline; the write was interrupted): "
                           f"{line[:80]!r}")
                if on_error == "raise":
                    raise CampaignStreamError(message)
                if errors is not None:
                    errors.append((lineno, message))
                break
            line = line[:-1]
            if not line.strip():
                continue
            try:
                records.append(_parse_stream_line(path, lineno, line))
            except CampaignStreamError as exc:
                if on_error == "raise":
                    raise
                if errors is not None:
                    errors.append((lineno, str(exc)))
    return records


@dataclass
class CampaignResult:
    """All scenario records, in input order."""

    records: list = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.records)

    def by_domain(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.domain] = counts.get(record.domain, 0) + 1
        return counts

    def to_json(self) -> str:
        """Canonical serialisation: byte-identical across worker counts."""
        payload = [vars(r) for r in self.records]
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_scenario(spec: ScenarioSpec, parallel: int | None = None):
    """Run one scenario through its domain (also the worker entry point).

    ``parallel`` asks domains that support it (co-simulations) to advance
    their ECUs on that many worker threads.  It is an execution-level
    knob like ``workers`` - never part of the spec, its cache key, or the
    record, because output is byte-identical for every value.

    Telemetry (when :mod:`repro.obs` is enabled) is strictly out-of-band:
    the span and latency histogram observe the run, never influence it.
    """
    from repro.sim.domains import get_domain

    if not obs.REGISTRY.enabled:
        return get_domain(spec.domain).run(spec, parallel=parallel)
    import time

    with obs.span("cell", domain=spec.domain, label=spec.label):
        start = time.perf_counter()
        record = get_domain(spec.domain).run(spec, parallel=parallel)
        _CELL_SECONDS.labels(domain=spec.domain).observe(
            time.perf_counter() - start)
    return record


# The request core lives in its own module; import it here (after the
# spec/record definitions it rebuilds) so `repro.sim.campaign` stays the
# one public namespace.  See request.py's module docstring.
from repro.sim.campaign.request import (  # noqa: E402
    CampaignRequest,
    execute_request,
    record_from_obj,
    spec_from_obj,
    spec_to_obj,
)


def shard_bounds(total: int, shard: tuple[int, int]) -> tuple[int, int]:
    """[lo, hi) of the ``k``-th of ``n`` contiguous, balanced partitions.

    Contiguity is what makes shard streams concatenate: shard ``k`` covers
    ``specs[total*k//n : total*(k+1)//n]``, so streaming every shard in
    ``k`` order reproduces the unsharded stream byte-for-byte.
    """
    try:
        k, n = shard
    except (TypeError, ValueError) as exc:
        raise ValueError(f"shard must be a (k, n) pair, got {shard!r}") from exc
    if n <= 0 or not 0 <= k < n:
        raise ValueError(f"shard index must satisfy 0 <= k < n, got {shard!r}")
    return (total * k) // n, (total * (k + 1)) // n


def run_campaign(specs: list[ScenarioSpec], *, workers: int | None = None,
                 stream_path=None, collect: bool | None = None,
                 shard: tuple[int, int] | None = None,
                 on_record=None, cache=None) -> CampaignResult:
    """Run a scenario matrix, optionally across worker processes and hosts.

    .. deprecated::
        Thin backward-compatible shim: new code should build a
        :class:`CampaignRequest` and call :func:`execute_request` (one
        request shape shared by the library, the CLI, the shard launcher,
        and the campaign service).  This wrapper only packs its arguments
        into a request; behaviour and output bytes are identical.  Its
        arguments past ``specs`` are keyword-only.

    ``workers`` of ``None``, 0, or 1 runs serially in-process.  Output is
    identical (byte-for-byte once serialised) for every worker count.

    ``shard=(k, n)`` runs only the ``k``-th of ``n`` contiguous partitions
    of ``specs`` (see :func:`shard_bounds`).  Records are a pure function
    of each spec, so sharding is pure partitioning: the concatenation of
    all ``n`` shard streams in ``k`` order is byte-identical to the
    unsharded stream.

    ``stream_path``, ``collect``, ``on_record``, and ``cache`` behave as
    documented on :func:`execute_request`.
    """
    request = CampaignRequest(specs=tuple(specs), shard=shard, workers=workers)
    return execute_request(request, stream_path=stream_path, collect=collect,
                           on_record=on_record, cache=cache)


# ----------------------------------------------------------------------
# matrix builders
# ----------------------------------------------------------------------

def table1_matrix(seed: int = 2005, scale: int = 1,
                  machine_kwargs: tuple = ()) -> list[ScenarioSpec]:
    """The paper's Table 1 as a campaign matrix: 3 configs x 6 kernels."""
    from repro.workloads.harness import TABLE1_CONFIGS
    from repro.workloads.kernels import AUTOINDY_SUITE

    return [
        ScenarioSpec(label=label, core=core, isa=isa, workload=w.name,
                     seed=seed, scale=scale, machine_kwargs=machine_kwargs)
        for label, core, isa in TABLE1_CONFIGS
        for w in AUTOINDY_SUITE
    ]


def interrupt_sweep_matrix(rates: tuple[int, ...] = (2000, 1000, 500, 250),
                           seed: int = 2005, scale: int = 4) -> list[ScenarioSpec]:
    """A Figure 4-flavoured matrix: the M3 suite under rising IRQ pressure."""
    from repro.workloads.kernels import AUTOINDY_SUITE

    return [
        ScenarioSpec(label=f"M3 irq mean_gap={gap}", core="m3", isa="thumb2",
                     workload=w.name, seed=seed, scale=scale,
                     interrupts=InterruptProfile(count=8, mean_gap=gap))
        for gap in rates
        for w in AUTOINDY_SUITE
    ]


def smoke_matrix(seed: int = 2005, scale: int = 1) -> list[ScenarioSpec]:
    """A reduced cross-domain mix: every domain, a few cells each.

    This is the matrix the CI ``campaign-smoke`` step shards and diffs;
    it is intentionally small (seconds, not minutes) while still touching
    all four domains, both interrupt-free and IRQ-storm kernel cells, and
    both protected and unprotected soft-error arms.
    """
    from repro.sim.domains.can import can_matrix
    from repro.sim.domains.lin import lin_matrix
    from repro.sim.domains.osek import osek_matrix
    from repro.sim.domains.soft_error import soft_error_matrix
    from repro.sim.domains.vehicle import vehicle_matrix
    from repro.sim.domains.wcet import wcet_matrix

    kernel_cells = [
        ScenarioSpec(label="smoke m3", core="m3", isa="thumb2",
                     workload="ttsprk", seed=seed, scale=scale),
        ScenarioSpec(label="smoke arm7", core="arm7", isa="thumb",
                     workload="bitmnp", seed=seed, scale=scale),
        ScenarioSpec(label="smoke m3 irq", core="m3", isa="thumb2",
                     workload="canrdr", seed=seed, scale=scale,
                     interrupts=InterruptProfile(count=4, mean_gap=200)),
    ]
    cells = soft_error_matrix(seed=seed, scale=scale)
    return (kernel_cells
            + osek_matrix(seed=seed, scale=scale)[:3]
            + can_matrix(seed=seed, scale=scale)[:3]
            + [cell for cell in cells if cell.param("rate_per_mcycle") == 20.0
               and cell.workload == "tblook"]
            + vehicle_matrix(seed=seed, scale=scale)[:2]
            + lin_matrix(seed=seed, scale=scale)[:2]
            + wcet_matrix(seed=seed, scale=scale)[:2])


def vehicle_smoke_matrix(seed: int = 2005, scale: int = 1) -> list[ScenarioSpec]:
    """The co-simulation smoke mix: vehicle fleets plus the LIN sub-bus.

    Small enough for CI (a handful of seconds) while exercising all
    three guest cores, two bitrates, a non-default quantum, and the
    standalone LIN schedule model.
    """
    from repro.sim.domains.lin import lin_matrix
    from repro.sim.domains.vehicle import vehicle_matrix

    cells = vehicle_matrix(seed=seed, scale=scale)
    fleet = [cell for cell in cells if cell.param("sensors") in (1, 3)][:3]
    fine = [cell for cell in cells if cell.param("quantum_us") is not None]
    return fleet + fine + lin_matrix(seed=seed, scale=scale)[:2]


def available_matrices() -> dict:
    """Built-in matrix builders by CLI name; each is ``f(seed, scale)``."""
    from repro.sim.domains.can import can_matrix
    from repro.sim.domains.lin import lin_matrix
    from repro.sim.domains.osek import osek_matrix
    from repro.sim.domains.soft_error import soft_error_matrix
    from repro.sim.domains.vehicle import vehicle_matrix
    from repro.sim.domains.vehicle_fault import vehicle_fault_matrix
    from repro.sim.domains.wcet import wcet_matrix

    return {
        "table1": table1_matrix,
        "irq-sweep": lambda seed, scale: interrupt_sweep_matrix(
            seed=seed, scale=scale),
        "osek": osek_matrix,
        "can": can_matrix,
        "soft-error": soft_error_matrix,
        "vehicle": vehicle_matrix,
        "vehicle-fault": vehicle_fault_matrix,
        "lin": lin_matrix,
        "wcet": wcet_matrix,
        "vehicle-smoke": vehicle_smoke_matrix,
        "smoke": smoke_matrix,
    }


# ----------------------------------------------------------------------
# command line: python -m repro.sim.campaign
# ----------------------------------------------------------------------

def _parse_shard(text: str) -> tuple[int, int]:
    try:
        k, n = text.split("/")
        return int(k), int(n)
    except ValueError as exc:
        raise ValueError(f"--shard wants K/N (e.g. 0/4), got {text!r}") from exc


def launch_shards(request: CampaignRequest, count: int, stream_path: str,
                  retries: int = 2, echo=print) -> int:
    """Spawn ``count`` shard subprocesses and concatenate their streams.

    The distribution recipe, automated: every child runs the same
    named-matrix :class:`CampaignRequest` with a distinct ``shard=
    (k, count)`` and its own stream file; failed shards are retried
    (records are pure functions of specs, so a retry is always safe and,
    with a shared cache, cheap); the shard streams are concatenated in
    ``k`` order into ``stream_path``, which is byte-identical to an
    unsharded run.  Returns the worst child exit code (0 = all ran and
    verified).

    Each child's command line is derived from the request itself
    (:meth:`CampaignRequest.cli_argv`), not rebuilt flag by flag - so a
    request field added tomorrow flows through the launcher automatically.

    When the request carries a ``metrics`` path, each child dumps its own
    snapshot to ``<path>.shardK`` and the launcher merges them into
    ``<path>`` (counters and histograms sum, gauges take the max) -
    telemetry is observational only, so a shard retried without a dump
    just contributes nothing to the merge.
    """
    import dataclasses
    import subprocess
    import sys

    if request.shard is not None:
        raise ValueError("launch_shards partitions the whole request; "
                         "it cannot start from an already-sharded one")
    shard_paths = [f"{stream_path}.shard{k}" for k in range(count)]
    metric_paths = ([f"{request.metrics}.shard{k}" for k in range(count)]
                    if request.metrics else None)
    commands = [
        [sys.executable, "-m", "repro.sim.campaign",
         *dataclasses.replace(
             request.with_shard((k, count)),
             metrics=metric_paths[k] if metric_paths else None).cli_argv(),
         "--stream", shard_paths[k]]
        for k in range(count)
    ]
    exit_codes = [None] * count
    procs = [subprocess.Popen(cmd) for cmd in commands]
    for k, proc in enumerate(procs):
        exit_codes[k] = proc.wait()
    for attempt in range(retries):
        failed = [k for k in range(count)
                  if exit_codes[k] not in (0, 2)]  # 2 = ran, unverified
        if not failed:
            break
        echo(f"retrying shards {failed} (attempt {attempt + 1}/{retries})")
        retry_procs = {k: subprocess.Popen(commands[k]) for k in failed}
        for k, proc in retry_procs.items():
            exit_codes[k] = proc.wait()
    worst = max((code if code is not None else 1) for code in exit_codes)
    if any(code not in (0, 2) for code in exit_codes):
        echo(f"shard exit codes: {exit_codes}; stream not assembled")
        return worst
    with open(stream_path, "wb") as out:
        for path in shard_paths:
            with open(path, "rb") as shard_stream:
                out.write(shard_stream.read())
    import os

    for path in shard_paths:
        os.remove(path)
    if metric_paths:
        snapshots = []
        for path in metric_paths:
            try:
                with open(path, encoding="utf-8") as dump_file:
                    snapshots.append(json.load(dump_file))
                os.remove(path)
            except (OSError, json.JSONDecodeError):
                continue  # observational: a missing dump loses no records
        merged = obs.merge_snapshots(snapshots)
        with open(request.metrics, "w", encoding="utf-8") as out:
            json.dump(merged, out, indent=1, sort_keys=True)
            out.write("\n")
    echo(f"launched {count} shards -> {stream_path} "
         f"(exit codes {exit_codes})")
    return worst


def build_parser():
    """The CLI flag parser.  Flags parse into a :class:`CampaignRequest`
    via :func:`request_from_args`; :meth:`CampaignRequest.cli_argv` is the
    inverse, and the two are round-trip tested so launcher-spawned shard
    commands can never drift from the parser."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.campaign",
        description="Run a scenario-domain campaign matrix; shard streams "
                    "concatenate byte-identically to an unsharded run.")
    parser.add_argument("--matrix", help="matrix name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list built-in matrices and exit")
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--shard", type=_parse_shard, default=None,
                        metavar="K/N", help="run the K-th of N partitions")
    parser.add_argument("--launch", type=int, default=None, metavar="N",
                        help="orchestrate: spawn N --shard subprocesses "
                             "(sharing --cache when given), retry failures, "
                             "and concatenate their streams into --stream "
                             "in shard order")
    parser.add_argument("--retries", type=int, default=2,
                        help="retry budget per failed shard under --launch")
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--parallel", type=int, default=None, metavar="N",
                        help="advance each co-simulation cell's ECUs on N "
                             "worker threads (vehicle domains; ignored "
                             "elsewhere) - records are byte-identical to "
                             "a serial run for every N")
    parser.add_argument("--stream", default=None, metavar="PATH",
                        help="write records to PATH as canonical JSONL "
                             "(truncated first: shard retries must replace, "
                             "not append)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="record cache directory: cells already "
                             "computed by any earlier run are replayed "
                             "instead of re-run (output stays byte-"
                             "identical to a cold run)")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="dump a telemetry snapshot (repro.obs "
                             "registry JSON) to PATH after the run; "
                             "implies REPRO_OBS=1 for this process and, "
                             "under --launch, per-shard dumps merged "
                             "into PATH.  Purely observational: record "
                             "streams are byte-identical with or "
                             "without it")
    parser.add_argument("--priority", type=int, default=0,
                        help="service-side scheduling priority (higher "
                             "runs first; only meaningful with --connect)")
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="submit to a running campaign service "
                             "(python -m repro.sim.service) instead of "
                             "executing locally; records stream back in "
                             "spec order, byte-identical to a local run")
    return parser


def request_from_args(args) -> CampaignRequest:
    """The parsed CLI flags as a :class:`CampaignRequest`."""
    return CampaignRequest(matrix=args.matrix, seed=args.seed,
                           scale=args.scale, shard=args.shard,
                           workers=args.workers, parallel=args.parallel,
                           cache=args.cache, priority=args.priority,
                           metrics=args.metrics)


def main(argv: list[str] | None = None) -> int:
    """CLI: run one (optionally sharded) campaign matrix to a JSONL stream.

    A thin client over the request core: flags parse into one
    :class:`CampaignRequest`, which is then executed locally
    (:func:`execute_request`), fanned out as shard subprocesses
    (``--launch``), or submitted to a resident campaign service
    (``--connect``).
    """
    # Use the canonically-imported module, not this (possibly __main__)
    # namespace: worker processes and stream readers must see one set of
    # spec/record classes regardless of how the CLI was launched.
    from repro.sim import campaign as mod

    parser = mod.build_parser()
    args = parser.parse_args(argv)

    matrices = mod.available_matrices()
    if args.list:
        for name, builder in sorted(matrices.items()):
            specs = builder(args.seed, args.scale)
            domains = sorted({s.domain for s in specs})
            print(f"{name:12} {len(specs):4} cells  domains: {', '.join(domains)}")
        return 0
    if not args.matrix:
        parser.error("--matrix is required (or use --list)")
    if args.matrix not in matrices:
        parser.error(f"unknown matrix {args.matrix!r}; "
                     f"pick from {', '.join(sorted(matrices))}")
    request = mod.request_from_args(args)
    if args.metrics:
        # Telemetry on for this process; the record stream is unaffected
        # (property-tested: bytes identical with REPRO_OBS on and off).
        obs.enable()

    if args.launch is not None:
        if args.launch < 1:
            parser.error("--launch wants a positive shard count")
        if args.shard is not None:
            parser.error("--launch and --shard are mutually exclusive")
        if not args.stream:
            parser.error("--launch needs --stream for the assembled output")
        if args.connect:
            parser.error("--launch runs locally; a service already fans "
                         "out by itself (submit the request via --connect)")
        return mod.launch_shards(request, args.launch, args.stream,
                                 retries=args.retries)

    total = len(matrices[args.matrix](args.seed, args.scale))
    if args.stream:
        # Fresh file: the sharding recipe retries failed shards, and a
        # retry that appended would break the byte-identity guarantee.
        open(args.stream, "w", encoding="utf-8").close()

    # Tally incrementally so a million-scenario shard stays O(1) in
    # memory, like the library's streaming mode.
    ran = verified = 0
    domains: dict[str, int] = {}

    def tally(record) -> None:
        nonlocal ran, verified
        ran += 1
        verified += record.verified
        domains[record.domain] = domains.get(record.domain, 0) + 1

    summary = None
    cache = None
    if args.connect:
        from repro.sim.service.client import submit_and_stream
        from repro.sim.service.protocol import CampaignServiceError

        host, _, port = args.connect.rpartition(":")
        if not port.isdigit():
            parser.error(f"--connect wants HOST:PORT, got {args.connect!r}")
        try:
            summary = submit_and_stream(host or "127.0.0.1", int(port),
                                        request, stream_path=args.stream,
                                        on_record=tally)
        except CampaignServiceError as exc:
            print(f"service error [{exc.code}]: {exc.detail}")
            return 2
        except OSError as exc:
            print(f"cannot reach service at {args.connect}: {exc}")
            return 2
    else:
        if args.cache:
            from repro.sim.campaign.cache import RecordCache

            cache = RecordCache(args.cache)
        mod.execute_request(request, stream_path=args.stream,
                            collect=False, on_record=tally, cache=cache)
    shard_note = ""
    if args.shard is not None:
        low, high = mod.shard_bounds(total, args.shard)
        shard_note = (f" (shard {args.shard[0]}/{args.shard[1]}: "
                      f"cells {low}..{high - 1} of {total})")
    by_domain = ", ".join(f"{name}={count}"
                          for name, count in sorted(domains.items()))
    print(f"{args.matrix}: {ran} scenarios{shard_note}, "
          f"{verified} verified [{by_domain}]")
    if cache is not None:
        print(f"cache: {cache.hits} replayed, {cache.misses} computed "
              f"({args.cache})")
    if summary is not None:
        print(f"service: {summary.get('replayed', 0)} replayed, "
              f"{summary.get('joined', 0)} joined, "
              f"{summary.get('computed', 0)} computed "
              f"[{summary.get('status', 'ok')}, id {summary.get('id')}]")
        if summary.get("status") != "ok":
            return 2
    if args.stream:
        print(f"stream: {args.stream}")
    if args.metrics:
        obs.dump(args.metrics)
        print(f"metrics: {args.metrics}")
    return 0 if verified == ran else 2
