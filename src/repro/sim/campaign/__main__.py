"""``python -m repro.sim.campaign`` - the sharded campaign CLI."""

from repro.sim.campaign import main

if __name__ == "__main__":
    raise SystemExit(main())
