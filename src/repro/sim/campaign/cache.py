"""Campaign record cache: skip already-computed cells on resumed sweeps.

Campaign records are pure functions of their :class:`ScenarioSpec` (that
purity is what makes sharding and worker-count independence byte-exact),
and ``spec.key()`` is a stable content identity - so a record computed
once can be replayed for every later campaign that contains the same
cell.  This store keys one small JSON file per record under a cache
directory by the SHA-256 of the spec key; a resumed or re-sharded
million-scenario sweep then recomputes only the cells it has never seen,
and the replayed stream is byte-identical to a cold run (the canonical
record serialisation round-trips through the same domain record classes
the stream reader uses).

Corrupt, foreign, or colliding files are treated as misses and
recomputed (then overwritten), never trusted: the worst a damaged cache
can do is cost time.  ``put`` writes via a unique temporary file and an
atomic rename, so concurrent shard processes sharing one cache directory
cannot interleave partial writes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path


class RecordCache:
    """One-record-per-file store keyed by ``spec.key()``."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec) -> Path:
        digest = hashlib.sha256(spec.key().encode("utf-8")).hexdigest()
        return self.root / f"{digest[:40]}.json"

    def get(self, spec):
        """The cached record for ``spec``, or ``None`` (counted a miss)."""
        from repro.sim.domains import record_class_for

        try:
            with open(self.path_for(spec), encoding="utf-8") as stream:
                payload = json.load(stream)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("key") != spec.key():
            self.misses += 1  # foreign file or (theoretical) hash collision
            return None
        fields = payload.get("record")
        try:
            record = record_class_for(payload.get("domain", ""))(**fields)
        except (KeyError, TypeError):
            self.misses += 1  # stale schema: recompute and overwrite
            return None
        self.hits += 1
        return record

    def put(self, spec, record) -> None:
        """Store ``record`` for ``spec`` (atomic, last writer wins)."""
        path = self.path_for(spec)
        payload = {"key": spec.key(), "domain": record.domain,
                   "record": vars(record)}
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)

    def flush(self) -> None:
        """Make every ``put`` so far durable (fsync the cache directory).

        Record files are written atomically, but the *directory entries*
        from the renames may still sit in the page cache; a graceful
        service shutdown calls this so a machine crash right after cannot
        lose finished cells.  Best effort - filesystems without directory
        fsync just no-op.
        """
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


class MemoryRecordCache(RecordCache):
    """The same cache contract held in a plain dict - no disk at all.

    The campaign service uses this when started without a cache
    directory: cross-request dedup still works for the life of the
    process (two clients sweeping overlapping matrices pay for the union
    once), it just doesn't survive a restart.  Also handy for repeated
    in-process sweeps: ``execute_request(request,
    cache=MemoryRecordCache())``.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._records: dict[str, object] = {}

    def path_for(self, spec):
        raise TypeError("MemoryRecordCache keeps records in memory; "
                        "there is no file path")

    def get(self, spec):
        record = self._records.get(spec.key())
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, spec, record) -> None:
        self._records[spec.key()] = record

    def flush(self) -> None:
        pass  # nothing on disk to make durable
