"""The OSEK scenario domain: task-set schedulability sweeps.

Each cell synthesizes a rate-monotonic task set (UUniFast utilisation
split over an automotive period pool, all randomness from ``spec.rng()``),
runs it on the simulated OSEK kernel (:mod:`repro.rtos.kernel`) from the
critical instant (all alarms released at t=0), and cross-checks the
observed worst responses against classic response-time analysis
(:mod:`repro.rtos.analysis`).  A record *verifies* when no simulated
response exceeds its converged analytic bound - the invariant the
Driverator-style evaluation rests on.

Params (via ``ScenarioSpec.params``):

* ``tasks`` - task count (default 4)
* ``utilisation`` - target CPU utilisation for the set (default 0.65)
* ``context_switch`` - kernel dispatch cost in ticks (default 2)
* ``horizon_us`` - simulated horizon, multiplied by ``spec.scale``
  (default 400_000: four hyperperiods of the largest pool period)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtos import (
    AnalysedTask,
    Compute,
    OsekKernel,
    rate_monotonic_priorities,
    response_time_analysis,
)
from repro.sim.domains import ScenarioDomain

#: Typical body/powertrain periods (microseconds).
PERIOD_POOL_US = (5_000, 10_000, 20_000, 50_000, 100_000)


@dataclass
class OsekRecord:
    """Outcome of one task-set cell: simulation vs analysis."""

    label: str
    seed: int
    scale: int
    tasks: int
    utilisation: float          # sum of C/T over the synthesized set
    context_switch: int
    horizon_us: int
    schedulable: bool           # analysis verdict
    sim_max_response: int       # worst observed response, any task
    rta_max_response: int       # worst converged analytic bound (0 if none)
    bound_violations: int       # tasks where sim worst > converged bound
    deadline_misses: int        # sim responses beyond the period (D = T)
    activation_failures: int    # E_OS_LIMIT count (overload indicator)
    context_switches: int
    domain: str = "osek"

    @property
    def status(self) -> str:
        """Typed cell status: a computed record is always ``"ok"``."""
        return "ok"

    @property
    def verified(self) -> bool:
        """Analysis must bound reality wherever it converged."""
        return self.bound_violations == 0


def synthesize_task_set(rng, count: int, utilisation: float) -> list[AnalysedTask]:
    """A rate-monotonic task set hitting ``utilisation`` (UUniFast split)."""
    if count < 1:
        raise ValueError(f"need at least one task, got {count}")
    shares = []
    remaining = utilisation
    for index in range(count - 1):
        next_remaining = remaining * rng.random() ** (1.0 / (count - 1 - index))
        shares.append(remaining - next_remaining)
        remaining = next_remaining
    shares.append(remaining)
    tasks = []
    for index, share in enumerate(shares):
        period = rng.choice(PERIOD_POOL_US)
        wcet = max(int(share * period), 1)
        tasks.append(AnalysedTask(name=f"t{index}", wcet=wcet, period=period))
    return tasks


class OsekDomain(ScenarioDomain):
    """Synthesized task sets: simulated kernel vs response-time analysis."""

    name = "osek"
    record_class = OsekRecord

    def build(self, spec):
        count = int(spec.param("tasks", 4))
        utilisation = float(spec.param("utilisation", 0.65))
        return synthesize_task_set(spec.rng(), count, utilisation)

    def execute(self, spec, tasks):
        context_switch = int(spec.param("context_switch", 2))
        horizon = int(spec.param("horizon_us", 400_000)) * max(spec.scale, 1)

        analysis = response_time_analysis(tasks, context_switch=context_switch)

        kernel = OsekKernel(context_switch_cost=context_switch)
        priorities = rate_monotonic_priorities(tasks)
        for task in tasks:
            def body_factory(api, ticks=task.wcet):
                yield Compute(ticks)
            kernel.add_task(task.name, priority=priorities[task.name],
                            body_factory=body_factory)
            # offset 0 for every alarm: release the whole set at the
            # critical instant, the configuration the analysis bounds
            kernel.add_alarm(f"alarm_{task.name}", task.name,
                             offset=0, period=task.period)
        kernel.run(until=horizon)

        bound_violations = 0
        deadline_misses = 0
        sim_max = 0
        rta_max = 0
        for task in tasks:
            sim_task = kernel.tasks[task.name]
            observed = sim_task.worst_response()
            sim_max = max(sim_max, observed)
            deadline_misses += sum(1 for r in sim_task.response_times
                                   if r > task.period)
            bound = analysis.response_of(task.name).response
            if bound is not None:
                rta_max = max(rta_max, bound)
                if observed > bound:
                    bound_violations += 1

        return OsekRecord(
            label=spec.label, seed=spec.seed, scale=spec.scale,
            tasks=len(tasks),
            utilisation=round(analysis.utilisation, 6),
            context_switch=context_switch, horizon_us=horizon,
            schedulable=analysis.schedulable,
            sim_max_response=sim_max, rta_max_response=rta_max,
            bound_violations=bound_violations,
            deadline_misses=deadline_misses,
            activation_failures=sum(t.activation_failures
                                    for t in kernel.tasks.values()),
            context_switches=kernel.context_switches,
        )


def osek_matrix(seed: int = 2005, scale: int = 1) -> list:
    """Schedulability sweep: utilisation x task-count grid."""
    from repro.sim.campaign import ScenarioSpec

    return [
        ScenarioSpec(label=f"osek u={utilisation:.2f} n={count}",
                     seed=seed, scale=scale, domain="osek",
                     params=(("tasks", count), ("utilisation", utilisation)))
        for utilisation in (0.35, 0.55, 0.75)
        for count in (3, 5, 8)
    ]


DOMAIN = OsekDomain()
