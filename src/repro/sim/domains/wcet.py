"""The WCET scenario domain: measured kernel timing as campaign records.

Each cell runs measurement-based worst-case-execution-time extraction
(:mod:`repro.rtos.wcet`) for one AutoIndy kernel on one core model -
max observed cycles over many seeded inputs, padded by a certification
margin - and streams the estimate as a campaign record.  The point
(ROADMAP item): placement experiments over the paper's distributed-ECU
vision consume these *executed* numbers via
:func:`repro.network.distributed.tasks_from_wcet` instead of assumed
``DistributedTask.wcet_us`` values.

Params (via ``ScenarioSpec.params``):

* ``samples`` - measured inputs per estimate (default 5, scaled by
  ``spec.scale``)
* ``margin`` - safety padding over the observed maximum (default 0.2)
* ``reference_mhz`` - clock used to express the estimate in microseconds
  (default 80)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.domains import ScenarioDomain


@dataclass
class WcetRecord:
    """One measurement-based WCET estimate, campaign-streamable."""

    label: str
    seed: int
    scale: int
    workload: str
    core: str
    isa: str
    samples: int
    margin: float
    observed_min: int
    observed_max: int
    wcet_cycles: int            # observed_max padded by the margin
    reference_mhz: int
    wcet_us: int                # wcet_cycles at the reference clock
    spread: float               # (max - min) / max: input sensitivity
    domain: str = "wcet"

    @property
    def status(self) -> str:
        """Typed cell status: a computed record is always ``"ok"``."""
        return "ok"

    @property
    def verified(self) -> bool:
        """Every measured run verified against the reference (or
        measure_wcet would have raised), and the estimate is coherent."""
        return (0 < self.observed_min <= self.observed_max
                < self.wcet_cycles + 1
                and self.wcet_us >= 1)


class WcetDomain(ScenarioDomain):
    """Measured kernel WCETs feeding the distributed placement model."""

    name = "wcet"
    record_class = WcetRecord

    def build(self, spec):
        from repro.workloads.kernels import WORKLOADS_BY_NAME

        if not (spec.core and spec.isa and spec.workload):
            raise ValueError(
                f"wcet domain needs core/isa/workload, got {spec!r}")
        if spec.workload not in WORKLOADS_BY_NAME:
            raise KeyError(f"unknown workload {spec.workload!r}")
        return WORKLOADS_BY_NAME[spec.workload]

    def execute(self, spec, workload):
        from repro.rtos.wcet import measure_wcet

        samples = int(spec.param("samples", 5)) * max(spec.scale, 1)
        margin = float(spec.param("margin", 0.2))
        mhz = int(spec.param("reference_mhz", 80))
        estimate = measure_wcet(workload, core=spec.core, isa=spec.isa,
                                samples=samples, margin=margin,
                                machine_kwargs=dict(spec.machine_kwargs))
        spread = ((estimate.observed_max - estimate.observed_min)
                  / estimate.observed_max if estimate.observed_max else 0.0)
        return WcetRecord(
            label=spec.label, seed=spec.seed, scale=spec.scale,
            workload=spec.workload, core=spec.core, isa=spec.isa,
            samples=samples, margin=margin,
            observed_min=estimate.observed_min,
            observed_max=estimate.observed_max,
            wcet_cycles=estimate.wcet,
            reference_mhz=mhz,
            wcet_us=max(-(-estimate.wcet // mhz), 1),
            spread=round(spread, 6),
        )


def wcet_matrix(seed: int = 2005, scale: int = 1) -> list:
    """The whole suite on both Table 1 configurations."""
    from repro.sim.campaign import ScenarioSpec
    from repro.workloads.kernels import AUTOINDY_SUITE

    return [
        ScenarioSpec(label=f"wcet {workload.name} {core}",
                     core=core, isa=isa, workload=workload.name,
                     seed=seed, scale=scale, domain="wcet")
        for core, isa in (("m3", "thumb2"), ("arm7", "thumb"))
        for workload in AUTOINDY_SUITE
    ]


DOMAIN = WcetDomain()
