"""The CPU-kernel scenario domain: AutoIndy kernels on the core models.

The original campaign axis (Table 1 / Figure 4): compile a kernel for a
(core, ISA) configuration, run it on the matching core model with a
deterministic input, verify against the pure-Python reference, and record
cycles and code size - optionally under a deterministic IRQ storm.

Interrupt profiles
------------------
A scenario may carry an :class:`~repro.sim.campaign.InterruptProfile`: a
deterministic storm of IRQs raised against the NVIC while the kernel
runs.  Profiles are limited to the Cortex-M3, and that restriction is the
paper's own section 3.2.1 point: hardware stacking makes handlers plain
compiled functions, so a C-level ``irq_tick`` can preempt an arbitrary
kernel without corrupting it.  On the VIC cores a compiled handler would
clobber caller-saved registers (the software preamble the paper
contrasts), so asking for a profile there raises ``ValueError`` rather
than silently mis-executing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.campaign import IRQ_COUNTER_OFFSET, ScenarioRecord
from repro.sim.domains import ScenarioDomain
from repro.sim.rng import DeterministicRng


@dataclass
class KernelOutcome:
    """One verified machine execution (shared with the soft_error domain)."""

    result: int
    expected: int
    cycles: int
    instructions: int
    code_bytes: int
    total_bytes: int
    machine: object
    program: object
    data: bytes


def _run_compiled(core: str, program, workload, entry: str, seed: int,
                  scale: int, machine_kwargs: tuple = (),
                  fastpath: bool = True, data: bytes | None = None,
                  before_call=None) -> KernelOutcome:
    """The one compile-free half of the kernel pipeline: build a machine
    for an already-compiled program, seed the input exactly as the Table 1
    harness does, run, and verify against the pure-Python reference.

    ``data`` overrides the seeded input blob (same length) - the
    soft_error domain uses this to run the CPU on an upset-corrupted
    image while ``expected`` still reflects the loaded bytes.
    ``before_call(machine)`` runs after loading, before execution (the
    kernel domain schedules its IRQ storm there).
    """
    from repro.core import SRAM_BASE, build_machine

    machine = build_machine(core, program, **dict(machine_kwargs))
    machine.cpu.fastpath = fastpath
    prepared = workload.make_input(DeterministicRng(seed), scale)
    blob = prepared.data if data is None else data
    if len(blob) != len(prepared.data):
        raise ValueError("data override must match the seeded input length")
    machine.load_data(SRAM_BASE, blob)
    if before_call is not None:
        before_call(machine)
    result = machine.call(entry, *prepared.args(SRAM_BASE))
    expected = workload.reference(blob, *prepared.args(0))
    return KernelOutcome(
        result=result, expected=expected,
        cycles=machine.cpu.cycles,
        instructions=machine.cpu.instructions_executed,
        code_bytes=program.code_bytes,
        total_bytes=program.code_bytes + program.literal_bytes,
        machine=machine, program=program, data=blob,
    )


def execute_workload(core: str, isa: str, workload_name: str, seed: int,
                     scale: int, machine_kwargs: tuple = (),
                     fastpath: bool = True,
                     data: bytes | None = None) -> KernelOutcome:
    """Compile and run one AutoIndy kernel on a real core model."""
    # Imports are local so the module stays import-light for worker spawn.
    from repro.codegen import compile_program
    from repro.core import FLASH_BASE
    from repro.workloads.kernels import WORKLOADS_BY_NAME

    if workload_name not in WORKLOADS_BY_NAME:
        raise KeyError(f"unknown workload {workload_name!r}")
    workload = WORKLOADS_BY_NAME[workload_name]
    fn = workload.build()
    program = compile_program([fn], isa, base=FLASH_BASE)
    return _run_compiled(core, program, workload, fn.name, seed, scale,
                         machine_kwargs=machine_kwargs, fastpath=fastpath,
                         data=data)


def _build_irq_tick():
    """A compiled handler: bump a counter word.  Safe to enter from any
    kernel instruction *on the Cortex-M3 only* (hardware stacking)."""
    from repro.codegen import IrBuilder
    from repro.core import SRAM_BASE

    b = IrBuilder("irq_tick", num_params=0)
    addr = b.const(SRAM_BASE + IRQ_COUNTER_OFFSET)
    b.store(b.add(b.load(addr, 0), 1), addr, 0)
    b.ret(b.const(0))
    return b.build()


class KernelDomain(ScenarioDomain):
    """AutoIndy kernels on the core models, optionally under IRQ storms."""

    name = "kernel"
    record_class = ScenarioRecord

    def build(self, spec):
        from repro.codegen import compile_program
        from repro.core import FLASH_BASE
        from repro.workloads.kernels import WORKLOADS_BY_NAME

        if not (spec.core and spec.isa and spec.workload):
            raise ValueError(
                f"kernel domain needs core/isa/workload, got {spec!r}")
        if spec.workload not in WORKLOADS_BY_NAME:
            raise KeyError(f"unknown workload {spec.workload!r}")
        if spec.interrupts is not None and spec.core not in ("m3", "cortex-m3"):
            raise ValueError(
                "interrupt profiles require the Cortex-M3's hardware stacking; "
                f"core {spec.core!r} would corrupt caller-saved registers")
        workload = WORKLOADS_BY_NAME[spec.workload]
        functions = [workload.build()]
        if spec.interrupts is not None:
            functions.append(_build_irq_tick())
        program = compile_program(functions, spec.isa, base=FLASH_BASE)
        return workload, functions, program

    def execute(self, spec, built):
        from repro.core import SRAM_BASE

        workload, functions, program = built

        def schedule_storm(machine) -> None:
            if spec.interrupts is None:
                return
            handler = program.symbols["irq_tick"]
            for number, cycle, priority in spec.interrupts.schedule(spec.rng()):
                machine.cpu.nvic.raise_irq(number, handler=handler,
                                           at_cycle=cycle, priority=priority)

        # Inputs are seeded exactly as the Table 1 harness seeds them, so a
        # campaign over the same matrix reproduces run_kernel()
        # cycle-for-cycle; the scenario-private stream (spec.rng) drives
        # the stochastic extras.
        outcome = _run_compiled(spec.core, program, workload,
                                functions[0].name, spec.seed, spec.scale,
                                machine_kwargs=spec.machine_kwargs,
                                fastpath=spec.fastpath,
                                before_call=schedule_storm)

        serviced = tail_chained = irq_ticks = 0
        if spec.interrupts is not None:
            stats = outcome.machine.cpu.nvic.stats
            serviced = stats.serviced
            tail_chained = stats.tail_chained
            irq_ticks = outcome.machine.bus.read_raw(
                SRAM_BASE + IRQ_COUNTER_OFFSET, 4)

        return ScenarioRecord(
            label=spec.label, core=spec.core, isa=spec.isa,
            workload=spec.workload, seed=spec.seed, scale=spec.scale,
            result=outcome.result, expected=outcome.expected,
            cycles=outcome.cycles, instructions=outcome.instructions,
            code_bytes=outcome.code_bytes, total_bytes=outcome.total_bytes,
            irqs_serviced=serviced, irqs_tail_chained=tail_chained,
            irq_ticks=irq_ticks,
        )


DOMAIN = KernelDomain()
