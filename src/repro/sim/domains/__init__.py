"""Scenario-domain registry: pluggable build -> run -> record families.

A *scenario domain* is one family of campaign cells - CPU kernels, OSEK
task sets, CAN traffic matrices, soft-error sweeps - behind a common
contract so the campaign runner (:mod:`repro.sim.campaign`) can sweep,
shard, and stream any mix of them:

* ``build(spec)`` synthesizes the scenario from the spec alone (task sets,
  traffic matrices, compiled programs); all randomness comes from
  ``spec.rng()``, so the built scenario is a pure function of the spec;
* ``execute(spec, built)`` runs it and returns the domain's record - a
  flat dataclass of JSON-able fields carrying a ``domain`` tag, a
  ``verified`` property, and a ``status`` property (``"ok"`` on every
  computed record; only the service's :class:`~repro.sim.campaign.
  CellErrorRecord` carries ``status`` as a real ``"error"`` field,
  because that is the one status that must ride the stream);
* ``run(spec)`` is build + execute (the campaign worker entry).

Domains register here by name; :func:`record_class_for` lets the stream
reader rebuild the right record type from a JSONL line's ``domain`` tag.
Third-party domains can call :func:`register_domain` themselves - nothing
in the runner is specific to the four built-ins.
"""

from __future__ import annotations


class ScenarioDomain:
    """Base contract for one scenario family (build -> run -> record)."""

    #: registry name; also the ``domain`` field on specs and records
    name: str = ""
    #: the record dataclass this domain produces (stream reconstruction)
    record_class: type | None = None
    #: True for domains whose ``execute`` accepts ``parallel=N`` (co-sim
    #: ECU quanta on worker threads, byte-identical to serial); the knob
    #: is execution-level only and never reaches specs or records
    supports_parallel: bool = False

    def build(self, spec):
        """Synthesize the scenario from the spec (pure function of it)."""
        raise NotImplementedError

    def execute(self, spec, built):
        """Run a built scenario; return an instance of ``record_class``."""
        raise NotImplementedError

    def run(self, spec, parallel=None):
        """Worker entry: build then execute.

        ``parallel`` is forwarded only to domains declaring
        ``supports_parallel`` - everywhere else it is ignored, so the
        knob is always safe to pass campaign-wide.
        """
        if parallel is not None and self.supports_parallel:
            return self.execute(spec, self.build(spec), parallel=parallel)
        return self.execute(spec, self.build(spec))


_REGISTRY: dict[str, ScenarioDomain] = {}


def _check_record_contract(name: str, record_class: type) -> None:
    """Record classes must expose the typed accessors the service and
    stream readers rely on.  ``hasattr`` sees properties on the class
    without instantiating, so field-less contracts validate for free."""
    for accessor in ("status", "verified"):
        if not hasattr(record_class, accessor):
            raise ValueError(
                f"record class {record_class.__name__!r} for {name!r} "
                f"must define a {accessor!r} property (or field)")


def register_domain(domain: ScenarioDomain) -> ScenarioDomain:
    """Add a domain to the registry (name must be new and non-empty)."""
    if not domain.name:
        raise ValueError("scenario domain needs a non-empty name")
    if domain.record_class is None:
        raise ValueError(f"domain {domain.name!r} needs a record_class")
    if domain.name in _REGISTRY:
        raise ValueError(f"scenario domain {domain.name!r} already registered")
    _check_record_contract(domain.name, domain.record_class)
    _REGISTRY[domain.name] = domain
    return domain


def get_domain(name: str) -> ScenarioDomain:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario domain {name!r}; "
                       f"registered: {', '.join(domain_names())}") from None


def domain_names() -> list[str]:
    return sorted(_REGISTRY)


#: record classes with no runnable domain behind them (e.g. the campaign
#: service's per-cell ``cell_error`` records): the stream reader must
#: rebuild them, but no spec may name them as a scenario family
_RECORD_ONLY: dict[str, type] = {}


def register_record_class(name: str, record_class: type) -> None:
    """Register a stream-reconstructible record with no scenario domain."""
    if not name:
        raise ValueError("record class registration needs a non-empty name")
    if name in _REGISTRY or name in _RECORD_ONLY:
        raise ValueError(f"record domain {name!r} already registered")
    _check_record_contract(name, record_class)
    _RECORD_ONLY[name] = record_class


def record_class_for(name: str) -> type:
    if name in _RECORD_ONLY:
        return _RECORD_ONLY[name]
    return get_domain(name).record_class


# Built-in domains register on import (import order is alphabetical-ish
# but irrelevant: registration is name-keyed and side-effect free).
from repro.sim.domains import can as _can            # noqa: E402
from repro.sim.domains import kernel as _kernel      # noqa: E402
from repro.sim.domains import lin as _lin            # noqa: E402
from repro.sim.domains import osek as _osek          # noqa: E402
from repro.sim.domains import soft_error as _soft    # noqa: E402
from repro.sim.domains import vehicle as _vehicle    # noqa: E402
from repro.sim.domains import vehicle_fault as _vfault  # noqa: E402
from repro.sim.domains import wcet as _wcet          # noqa: E402

for _module in (_kernel, _osek, _can, _soft, _vehicle, _lin, _wcet,
                _vfault):
    register_domain(_module.DOMAIN)

# The service's per-cell failure records ride the same streams as domain
# records (same JSONL framing, same ``domain`` tag dispatch) but no spec
# can name them: record-only registration.
from repro.sim.campaign import CellErrorRecord as _cell_error  # noqa: E402

register_record_class("cell_error", _cell_error)

__all__ = [
    "ScenarioDomain",
    "register_domain",
    "register_record_class",
    "get_domain",
    "domain_names",
    "record_class_for",
]
