"""The LIN scenario domain: schedule-table latency sweeps.

Each cell synthesizes a LIN schedule table (slot count, payload sizes,
and padding from ``spec.rng()``), attaches counter-backed slave
responders, fires signal updates at deterministic but rng-chosen times,
and replays the whole thing on the schedule-table master
(:mod:`repro.network.lin`).  LIN has no arbitration, so the worst-case
latency is read straight off the schedule - and the cell verifies it:
every update must appear on the wire within
``LinMaster.worst_case_latency_us`` of its frame, every response
checksum must verify, and slot accounting must balance (deliveries +
no-response slots == slots elapsed).

Params (via ``ScenarioSpec.params``):

* ``slots`` - schedule-table length (default 4)
* ``baud`` - bus baud rate (default 19_200)
* ``updates`` - signal updates fired across the horizon (default 12)
* ``horizon_us`` - simulated horizon, multiplied by ``spec.scale``
  (default 600_000)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.lin import LinMaster, ScheduleSlot, frame_bits
from repro.sim.domains import ScenarioDomain
from repro.sim.events import EventScheduler


@dataclass
class LinRecord:
    """Outcome of one schedule-table cell: simulation vs the table bound."""

    label: str
    seed: int
    scale: int
    slots: int
    baud: int
    cycle_us: int
    utilisation: float
    horizon_us: int
    deliveries: int
    no_response: int
    checksum_errors: int
    updates: int
    updates_delivered: int
    worst_latency_us: int
    worst_bound_us: int
    bound_violations: int
    slot_balance_ok: bool
    domain: str = "lin"

    @property
    def status(self) -> str:
        """Typed cell status: a computed record is always ``"ok"``."""
        return "ok"

    @property
    def verified(self) -> bool:
        """The deterministic schedule keeps its promise: every observed
        update latency is at or under the table bound, checksums hold,
        and slot accounting balances."""
        return (self.deliveries > 0 and self.updates_delivered > 0
                and self.bound_violations == 0
                and self.checksum_errors == 0 and self.slot_balance_ok)


def synthesize_schedule(rng, count: int, baud: int) -> list[ScheduleSlot]:
    """A schedule table with rng-padded slots (all of them responsive)."""
    if count < 1:
        raise ValueError(f"need at least one slot, got {count}")
    slots = []
    used = set()
    for _ in range(count):
        frame_id = rng.randint(0, 0x3B)
        while frame_id in used:
            frame_id = (frame_id + 1) & 0x3F
        used.add(frame_id)
        payload = rng.randint(1, 8)
        wire_us = -(-frame_bits(payload) * 1_000_000 // baud)
        slots.append(ScheduleSlot(
            frame_id=frame_id, payload_bytes=payload,
            slot_us=wire_us + rng.randint(200, 2_000)))
    return slots


class LinDomain(ScenarioDomain):
    """Synthesized schedule tables: simulated master vs the table bound."""

    name = "lin"
    record_class = LinRecord

    def build(self, spec):
        count = int(spec.param("slots", 4))
        baud = int(spec.param("baud", 19_200))
        return synthesize_schedule(spec.rng().fork(1), count, baud)

    def execute(self, spec, schedule):
        baud = int(spec.param("baud", 19_200))
        updates = int(spec.param("updates", 12))
        horizon = int(spec.param("horizon_us", 600_000)) * max(spec.scale, 1)

        scheduler = EventScheduler()
        master = LinMaster(schedule, baud=baud, scheduler=scheduler)
        signals = {slot.frame_id: 0 for slot in schedule}
        for slot in schedule:
            def respond(frame_id=slot.frame_id,
                        size=slot.payload_bytes) -> bytes:
                return signals[frame_id].to_bytes(4, "little")[:size]
            master.attach_slave(slot.frame_id, respond)

        # deterministic update plan: (time, frame, value); latencies are
        # measured from these instants against the schedule-table bound
        rng = spec.rng().fork(2)
        pending: list[tuple[int, int, int]] = []
        for index in range(updates):
            slot = schedule[rng.randint(0, len(schedule) - 1)]
            at_us = rng.randint(0, max(horizon - 2 * master.cycle_us, 1))
            value = (index + 1) & 0xFFFFFF

            def fire(frame_id=slot.frame_id, value=value) -> None:
                signals[frame_id] = value
                pending.append((scheduler.now, frame_id, value))

            scheduler.at(at_us, fire)

        master.start(offset_us=0)
        scheduler.run(until=horizon)

        worst_latency = 0
        worst_bound = 0
        violations = 0
        delivered = 0
        for at_us, frame_id, value in pending:
            slot = next(s for s in schedule if s.frame_id == frame_id)
            expected = value.to_bytes(4, "little")[:slot.payload_bytes]
            arrival = next((d.at_us for d in master.deliveries
                            if d.frame_id == frame_id and d.at_us > at_us
                            and d.data == expected), None)
            if arrival is None:
                continue  # a later update overwrote it, or horizon tail
            delivered += 1
            bound = master.worst_case_latency_us(frame_id)
            latency = arrival - at_us
            worst_latency = max(worst_latency, latency)
            worst_bound = max(worst_bound, bound)
            if latency > bound:
                violations += 1

        slots_elapsed = horizon // master.cycle_us * len(schedule)
        balance_ok = (len(master.deliveries) + master.no_response
                      >= slots_elapsed)
        return LinRecord(
            label=spec.label, seed=spec.seed, scale=spec.scale,
            slots=len(schedule), baud=baud,
            cycle_us=master.cycle_us,
            utilisation=round(master.utilisation(), 6),
            horizon_us=horizon,
            deliveries=len(master.deliveries),
            no_response=master.no_response,
            checksum_errors=sum(1 for d in master.deliveries
                                if not d.checksum_ok),
            updates=len(pending),
            updates_delivered=delivered,
            worst_latency_us=worst_latency,
            worst_bound_us=worst_bound,
            bound_violations=violations,
            slot_balance_ok=balance_ok,
        )


def lin_matrix(seed: int = 2005, scale: int = 1) -> list:
    """Schedule sweep: table length x baud grid."""
    from repro.sim.campaign import ScenarioSpec

    return [
        ScenarioSpec(label=f"lin slots={count} baud={baud}",
                     seed=seed, scale=scale, domain="lin",
                     params=(("slots", count), ("baud", baud)))
        for count in (2, 4, 6)
        for baud in (9_600, 19_200)
    ]


DOMAIN = LinDomain()
