"""The CAN scenario domain: traffic-matrix latency sweeps.

Each cell synthesizes a periodic message set (identifiers, payloads, and
periods from ``spec.rng()``, periods rescaled toward a target bus load),
replays it on the discrete-event bus (:mod:`repro.network.can_bus`) from
the synchronous critical instant, and cross-checks observed worst-case
latencies against the Tindell/Davis response-time bounds
(:mod:`repro.network.can_analysis`).  With a non-zero ``error_rate`` the
bus injects deterministic bit errors and the cell instead verifies the
retry machinery (every frame that won arbitration is eventually
delivered); the error-free bounds do not apply under retransmission.

Params (via ``ScenarioSpec.params``):

* ``messages`` - stream count (default 6)
* ``load`` - target bus utilisation (default 0.4)
* ``bitrate`` - bits per second (default 250_000, body-bus class)
* ``error_rate`` - per-frame corruption probability (default 0.0)
* ``horizon_us`` - simulated horizon, multiplied by ``spec.scale``
  (default 400_000)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.can_analysis import MessageSpec, can_response_times
from repro.network.can_bus import CanBus, PeriodicSender
from repro.sim.domains import ScenarioDomain

#: Typical body-network periods (microseconds).
PERIOD_POOL_US = (10_000, 20_000, 50_000, 100_000)


@dataclass
class CanRecord:
    """Outcome of one traffic-matrix cell: simulation vs analysis."""

    label: str
    seed: int
    scale: int
    messages: int
    bitrate: int
    error_rate: float
    horizon_us: int
    analysis_schedulable: bool
    utilisation_bound: float    # analysis bus utilisation
    utilisation_sim: float      # observed busy fraction of the horizon
    frames_sent: int
    frames_delivered: int
    backlog: int                # frames still queued/on the wire at horizon
    errors_injected: int
    retries: int                # delivery attempts beyond the first
    worst_response_us: int      # worst observed latency, any stream
    worst_bound_us: int         # worst converged analytic bound (0 if none)
    bound_violations: int       # streams where observed > converged bound
    domain: str = "can"

    @property
    def status(self) -> str:
        """Typed cell status: a computed record is always ``"ok"``."""
        return "ok"

    @property
    def verified(self) -> bool:
        """Frames are conserved (delivered + still-queued == sent, so
        error retries never lose traffic), and error-free traffic must
        additionally respect the analytic bounds."""
        if self.frames_delivered == 0:
            return False
        if self.frames_sent - self.frames_delivered != self.backlog:
            return False
        return self.error_rate > 0 or self.bound_violations == 0


def synthesize_traffic(rng, count: int, load: float,
                       bitrate: int) -> list[MessageSpec]:
    """A periodic message set rescaled toward ``load`` bus utilisation."""
    if count < 1:
        raise ValueError(f"need at least one message, got {count}")
    streams = []
    for index in range(count):
        streams.append(MessageSpec(
            # spaced identifier blocks keep ids unique while the low bits
            # still vary (arbitration order is the identifier order)
            can_id=0x080 + 0x10 * index + rng.randint(0, 7),
            payload_bytes=rng.randint(1, 8),
            period_us=rng.choice(PERIOD_POOL_US),
        ))
    raw_load = sum(s.transmission_us(bitrate) / s.period_us for s in streams)
    factor = raw_load / load if load > 0 else 1.0
    return [
        MessageSpec(can_id=s.can_id, payload_bytes=s.payload_bytes,
                    period_us=max(int(s.period_us * factor),
                                  2 * s.transmission_us(bitrate)))
        for s in streams
    ]


class CanDomain(ScenarioDomain):
    """Synthesized periodic traffic: simulated bus vs analytic bounds."""

    name = "can"
    record_class = CanRecord

    def build(self, spec):
        count = int(spec.param("messages", 6))
        load = float(spec.param("load", 0.4))
        bitrate = int(spec.param("bitrate", 250_000))
        return synthesize_traffic(spec.rng().fork(1), count, load, bitrate)

    def execute(self, spec, streams):
        bitrate = int(spec.param("bitrate", 250_000))
        error_rate = float(spec.param("error_rate", 0.0))
        horizon = int(spec.param("horizon_us", 400_000)) * max(spec.scale, 1)

        analysis = can_response_times(streams, bitrate_bps=bitrate)

        bus = CanBus(bitrate_bps=bitrate, error_rate=error_rate,
                     rng=spec.rng().fork(2))
        senders = []
        for stream in streams:
            sender = PeriodicSender(bus, can_id=stream.can_id,
                                    payload=b"\x00" * stream.payload_bytes,
                                    period_us=stream.period_us,
                                    node=f"ecu{stream.can_id:03x}")
            # offset 0 for every sender: the synchronous release the
            # non-preemptive analysis takes as the critical instant
            sender.start(offset_us=0)
            senders.append(sender)
        bus.scheduler.run(until=horizon)

        bound_violations = 0
        worst_observed = 0
        worst_bound = 0
        for stream in streams:
            observed = bus.worst_response(stream.can_id)
            worst_observed = max(worst_observed, observed)
            bound = analysis.response_of(stream.can_id).response_us
            if bound is not None:
                worst_bound = max(worst_bound, bound)
                if error_rate == 0 and observed > bound:
                    bound_violations += 1

        frames_sent = sum(s.sent for s in senders)
        retries = sum(d.attempts - 1 for d in bus.deliveries)
        return CanRecord(
            label=spec.label, seed=spec.seed, scale=spec.scale,
            messages=len(streams), bitrate=bitrate, error_rate=error_rate,
            horizon_us=horizon,
            analysis_schedulable=analysis.schedulable,
            utilisation_bound=round(analysis.utilisation, 6),
            utilisation_sim=round(bus.utilisation(horizon), 6),
            frames_sent=frames_sent,
            frames_delivered=len(bus.deliveries),
            backlog=len(bus.pending) + (1 if bus.transmitting else 0),
            errors_injected=bus.errors_injected,
            retries=retries,
            worst_response_us=worst_observed, worst_bound_us=worst_bound,
            bound_violations=bound_violations,
        )


def can_matrix(seed: int = 2005, scale: int = 1) -> list:
    """Latency sweep: load x stream-count grid plus a noisy-bus cell."""
    from repro.sim.campaign import ScenarioSpec

    cells = [
        ScenarioSpec(label=f"can load={load:.2f} n={count}",
                     seed=seed, scale=scale, domain="can",
                     params=(("messages", count), ("load", load)))
        for load in (0.25, 0.45, 0.65)
        for count in (4, 8)
    ]
    cells.append(ScenarioSpec(
        label="can noisy", seed=seed, scale=scale, domain="can",
        params=(("messages", 5), ("load", 0.35), ("error_rate", 0.05))))
    return cells


DOMAIN = CanDomain()
