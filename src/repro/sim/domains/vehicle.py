"""The vehicle scenario domain: whole-network co-simulation cells.

Each cell synthesizes a body-network fleet (sensor ECUs with cores cycled
over all three models, a gateway, and a LIN window-lift actuator - the
signal matrix's identifiers, periods, and sample salts from
``spec.rng()``), runs it end-to-end on the cycle-coupled co-simulation
(:mod:`repro.vehicle`), and verifies the executed network against the
analytic layers: every observed signal latency at the gateway and the
actuator must respect its composed bound (per-ECU response-time analysis
over measured handler WCETs + Tindell/Davis CAN response times + the LIN
schedule-table worst case), CAN frames must be conserved, and every
applied value must equal the pure-Python mirror of the guest transforms.

Params (via ``ScenarioSpec.params``):

* ``sensors`` - sensor-ECU count (default 2)
* ``bitrate`` - CAN bits per second (default 125_000)
* ``quantum_us`` - co-simulation quantum (default 200)
* ``horizon_us`` - simulated horizon, multiplied by ``spec.scale``
  (default 200_000)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.domains import ScenarioDomain

#: body-network signal periods (microseconds)
PERIOD_POOL_US = (20_000, 25_000, 40_000, 50_000)

#: sensor cores cycle over every model the repo has
CORE_POOL = (("m3", 80), ("arm7", 48), ("arm1156", 160))


@dataclass
class VehicleRecord:
    """Outcome of one co-simulated body network: execution vs analysis."""

    label: str
    seed: int
    scale: int
    sensors: int
    cores: str                  # comma-joined sensor core names
    bitrate: int
    quantum_us: int
    horizon_us: int
    samples_generated: int
    gateway_applied: int
    actuator_applied: int
    frames_queued: int
    frames_delivered: int
    frames_backlog: int
    lin_deliveries: int
    lin_no_response: int
    worst_latency_us: int
    worst_bound_us: int
    bound_violations: int
    value_errors: int
    conservation_ok: bool
    checksum_ok: bool
    guest_instructions: int
    guest_cycles: int
    irqs_serviced: int
    fused_blocks: int
    domain: str = "vehicle"

    @property
    def status(self) -> str:
        """Typed cell status: a computed record is always ``"ok"``."""
        return "ok"

    @property
    def verified(self) -> bool:
        """The executed network respects every analytic bound, conserves
        frames and signal sequences, reproduces the mirrored values, and
        actually ran guest code on the fused trace engine."""
        return (self.gateway_applied > 0 and self.actuator_applied > 0
                and self.bound_violations == 0 and self.value_errors == 0
                and self.conservation_ok and self.checksum_ok
                and self.fused_blocks > 0)


def synthesize_network(rng, sensors: int, bitrate: int, quantum_us: int):
    """A body-network spec: pure function of the rng stream."""
    from repro.vehicle import BodyNetworkSpec, SensorNode

    if sensors < 1:
        raise ValueError(f"need at least one sensor ECU, got {sensors}")
    nodes = []
    for index in range(sensors):
        core, mhz = CORE_POOL[index % len(CORE_POOL)]
        nodes.append(SensorNode(
            name=f"sensor{index}", core=core, mhz=mhz,
            can_id=0x100 + 0x20 * index + rng.randint(0, 7),
            period_us=rng.choice(PERIOD_POOL_US),
            offset_us=1_000 + 500 * index,
            raw_salt=rng.randint(0, 255)))
    return BodyNetworkSpec(
        sensors=tuple(nodes),
        forward_index=rng.randint(0, sensors - 1),
        can_bitrate=bitrate,
        quantum_us=quantum_us)


class VehicleDomain(ScenarioDomain):
    """Synthesized ECU fleets: executed co-simulation vs analytic bounds."""

    name = "vehicle"
    record_class = VehicleRecord
    supports_parallel = True

    def build(self, spec):
        sensors = int(spec.param("sensors", 2))
        bitrate = int(spec.param("bitrate", 125_000))
        quantum = int(spec.param("quantum_us", 200))
        return synthesize_network(spec.rng().fork(1), sensors, bitrate,
                                  quantum)

    def execute(self, spec, network_spec, parallel=None):
        from repro.vehicle import build_body_network

        horizon = int(spec.param("horizon_us", 200_000)) * max(spec.scale, 1)
        network = build_body_network(network_spec)
        network.run(horizon_us=horizon, parallel=parallel)
        report = network.report()
        conservation = network.vehicle.frame_conservation()
        ecus = network.vehicle.ecus
        return VehicleRecord(
            label=spec.label, seed=spec.seed, scale=spec.scale,
            sensors=len(network_spec.sensors),
            cores=",".join(node.core for node in network_spec.sensors),
            bitrate=network_spec.can_bitrate,
            quantum_us=network_spec.quantum_us,
            horizon_us=horizon,
            samples_generated=report.generated,
            gateway_applied=report.gateway_applied,
            actuator_applied=report.actuator_applied,
            frames_queued=conservation["queued"],
            frames_delivered=conservation["delivered"],
            frames_backlog=conservation["backlog"],
            lin_deliveries=report.lin_deliveries,
            lin_no_response=report.lin_no_response,
            worst_latency_us=report.worst_latency_us,
            worst_bound_us=report.worst_bound_us,
            bound_violations=report.bound_violations,
            value_errors=report.value_errors,
            conservation_ok=report.conservation_ok,
            checksum_ok=report.checksum_ok,
            guest_instructions=sum(e.cpu.instructions_executed for e in ecus),
            guest_cycles=sum(e.cpu.cycles for e in ecus),
            irqs_serviced=sum(e.controller.stats.serviced for e in ecus),
            fused_blocks=sum(e.fused_block_count() for e in ecus),
        )


def vehicle_matrix(seed: int = 2005, scale: int = 1) -> list:
    """Fleet sweep: sensor count x bitrate grid plus a fine-quantum cell."""
    from repro.sim.campaign import ScenarioSpec

    cells = [
        ScenarioSpec(label=f"vehicle n={count} {bitrate // 1000}kbps",
                     seed=seed, scale=scale, domain="vehicle",
                     params=(("sensors", count), ("bitrate", bitrate)))
        for count in (1, 2, 3)
        for bitrate in (125_000, 250_000)
    ]
    cells.append(ScenarioSpec(
        label="vehicle fine-quantum", seed=seed, scale=scale,
        domain="vehicle",
        params=(("sensors", 2), ("bitrate", 125_000), ("quantum_us", 50))))
    return cells


DOMAIN = VehicleDomain()
