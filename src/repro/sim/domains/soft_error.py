"""The soft-error scenario domain: upset sweeps into real CPU runs.

Each cell models a mission window (paper section 3.1.3): a kernel's input
table lives in TCM while the kernel re-runs periodically; cosmic-ray
upsets arrive as a Poisson process (:mod:`repro.memory.faults`) and flip
stored bits between runs.  Every kernel pass reads the whole table, so
each simulated run scrubs the TCM through the ECC path - single-bit
errors are repaired by hold-and-repair before they can accumulate into
double-bit ones.  At the end of the mission the (possibly corrupted)
table image is fed to a *real CPU run* of the kernel and the result is
compared against the clean-run golden answer.

A protected cell verifies when every upset was corrected (or detected as
uncorrectable - a detected double flip is the ECC doing its job, not a
silent failure).  Unprotected cells are the measurement arm: they verify
whenever the accounting holds (every flip either corrupted a word
silently or landed back on a flipped bit), and their ``wrong`` field is
the observable damage.

Params (via ``ScenarioSpec.params``):

* ``protected`` - fault-tolerant TCM on/off (default True)
* ``rate_per_mcycle`` - upset rate per million cycles (default 10.0)
* ``mission_factor`` - mission length as a multiple of one kernel run,
  multiplied by ``spec.scale`` (default 5000)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.faults import SoftErrorInjector
from repro.memory.tcm import EccUncorrectable, Tcm
from repro.sim.domains import ScenarioDomain


@dataclass
class SoftErrorRecord:
    """Outcome of one upset-sweep cell."""

    label: str
    core: str
    isa: str
    workload: str
    seed: int
    scale: int
    protected: bool
    rate_per_mcycle: float
    mission_cycles: int
    run_cycles: int             # one clean kernel run (the scrub interval)
    upsets: int
    corrected: int
    hold_cycles: int            # stalls spent in hold-and-repair
    silent_corruptions: int     # flips into the unprotected array
    uncorrectable: int          # distinct double-bit words detected (protected)
    golden: int                 # clean-run kernel result
    result: int                 # kernel result on the post-mission image
    wrong: bool                 # result != golden (silent data corruption)
    domain: str = "soft_error"

    @property
    def status(self) -> str:
        """Typed cell status: a computed record is always ``"ok"``."""
        return "ok"

    @property
    def verified(self) -> bool:
        if self.protected:
            # every upset either corrected or *detected*; never silent
            return not self.wrong or self.uncorrectable > 0
        # measurement arm: the flips must all be accounted for
        return self.silent_corruptions == self.upsets


def _scrub(tcm: Tcm) -> set[int]:
    """Read every word through the ECC path (what a kernel pass does);
    returns the word offsets detected as uncorrectable.  Hold-and-repair
    cannot fix a double-bit word, so the same offset shows up on every
    scrub - callers union the sets to count *distinct* bad words."""
    detected = set()
    for offset in range(0, tcm.size, 4):
        try:
            tcm.read(offset, 4)
        except EccUncorrectable:
            detected.add(offset)
    return detected


class SoftErrorDomain(ScenarioDomain):
    """Poisson upsets into a TCM-resident table feeding real CPU runs."""

    name = "soft_error"
    record_class = SoftErrorRecord

    def build(self, spec):
        from repro.sim.domains.kernel import execute_workload

        if not (spec.core and spec.isa and spec.workload):
            raise ValueError(
                f"soft_error domain needs core/isa/workload, got {spec!r}")
        # the clean run: the golden answer and the scrub interval
        return execute_workload(spec.core, spec.isa, spec.workload,
                                spec.seed, spec.scale,
                                machine_kwargs=spec.machine_kwargs,
                                fastpath=spec.fastpath)

    def execute(self, spec, clean):
        from repro.sim.domains.kernel import execute_workload

        protected = bool(spec.param("protected", True))
        rate = float(spec.param("rate_per_mcycle", 10.0))
        mission = clean.cycles * int(spec.param("mission_factor", 5000)) \
            * max(spec.scale, 1)

        size = max((len(clean.data) + 3) & ~3, 64)
        tcm = Tcm(base=0, size=size, fault_tolerant=protected)
        tcm.write_raw(0, clean.data)

        injector = SoftErrorInjector(spec.rng(), rate_per_mcycle=rate)
        injector.add_target("tcm", tcm.flip_random_bit, tcm.bit_capacity)

        # Upsets land between kernel passes; each pass re-reads the whole
        # table, so crossing a run boundary scrubs the accumulated flips.
        bad_words: set[int] = set()
        window = 0
        for arrival in injector.arrival_times(mission):
            this_window = arrival // max(clean.cycles, 1)
            if protected and this_window != window:
                bad_words |= _scrub(tcm)
            window = this_window
            injector.inject_one(arrival)
        if protected:
            bad_words |= _scrub(tcm)
        uncorrectable = len(bad_words)

        # Post-mission: run the kernel - on a real core model - over the
        # surviving image.  Detected-uncorrectable words pass through
        # as-stored (the raw array), which is what a real hold-and-repair
        # TCM hands the core after signalling the fault.
        image = bytes(tcm.data[:len(clean.data)])
        outcome = execute_workload(spec.core, spec.isa, spec.workload,
                                   spec.seed, spec.scale,
                                   machine_kwargs=spec.machine_kwargs,
                                   fastpath=spec.fastpath, data=image)

        return SoftErrorRecord(
            label=spec.label, core=spec.core, isa=spec.isa,
            workload=spec.workload, seed=spec.seed, scale=spec.scale,
            protected=protected, rate_per_mcycle=rate,
            mission_cycles=mission, run_cycles=clean.cycles,
            upsets=len(injector.log),
            corrected=tcm.corrected_errors,
            hold_cycles=tcm.hold_cycles,
            silent_corruptions=tcm.silent_corruptions,
            uncorrectable=uncorrectable,
            golden=clean.result, result=outcome.result,
            wrong=outcome.result != clean.result,
        )


def soft_error_matrix(seed: int = 2005, scale: int = 1) -> list:
    """Protection on/off x rate sweep on the table-driven kernels."""
    from repro.sim.campaign import ScenarioSpec

    return [
        ScenarioSpec(label=f"soft {workload} rate={rate:g} "
                           f"{'ecc' if protected else 'raw'}",
                     core="arm1156", isa="thumb2", workload=workload,
                     seed=seed, scale=scale, domain="soft_error",
                     params=(("protected", protected),
                             ("rate_per_mcycle", rate)))
        for workload in ("tblook", "canrdr")
        for protected in (True, False)
        for rate in (5.0, 20.0)
    ]


DOMAIN = SoftErrorDomain()
