"""The vehicle-fault scenario domain: co-simulated failure injection.

Each cell synthesizes a body network exactly like the ``vehicle`` domain,
then a fault scenario for it (:func:`repro.vehicle.faults.
synthesize_fault` - babbling idiot, bus-off storm, gateway RX overload,
stuck/dropped LIN slots, or a firmware soft error), runs the *fault-free
twin* and the *faulted* network over the same horizon, and records a
**verdict per safety claim** (:data:`repro.vehicle.faults.VERDICT_CLAIMS`):
latency bounds held, frame conservation, fail-silence of the faulted
node, recovery within the scenario deadline.

A cell *verifies* when the faulted run's verdicts match the cell's
**expected** outcomes (a latency violation under a babbling idiot is the
demonstration, not a failure), the checksum outcome matches (a soft
error must be detected), the twin is healthy, and guest code really ran
on the fused trace engine.  Expected outcomes default per fault kind and
are overridable per cell via ``expect_*`` params.

Determinism: both runs are pure functions of the spec (network and fault
synthesis draw from forked ``spec.rng()`` streams; injected traffic,
forced error windows, and soft-error flip points are all scheduled in
bus time or settled to WFI boundaries), so records are byte-identical
across engine tiers, quantum sizes, workers, and shards - property-tested
like every other domain.

Params (via ``ScenarioSpec.params``):

* ``kind`` - fault kind (default ``babbling-idiot``)
* ``sensors`` - sensor-ECU count (default 3; ``gateway-overload`` needs 2+)
* ``bitrate`` - CAN bits per second (default 125_000)
* ``quantum_us`` - co-simulation quantum (default 200)
* ``horizon_us`` - simulated horizon x ``spec.scale`` (default 200_000)
* ``expect_latency_bound`` / ``expect_frame_conservation`` /
  ``expect_fail_silence`` / ``expect_recovery`` / ``expect_checksum_ok``
  - per-cell expected outcomes (default per kind)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.domains import ScenarioDomain
from repro.sim.domains.vehicle import synthesize_network
from repro.vehicle.faults import (
    FAULT_KINDS,
    VERDICT_CLAIMS,
    scenario_for,
    synthesize_fault,
)

#: expected per-claim outcomes by fault kind - what fault confinement
#: *specifies* should happen, demonstrated (not merely hoped) per cell
EXPECTED_BY_KIND = {
    "babbling-idiot": {"latency_bound": False, "frame_conservation": True,
                       "fail_silence": False, "recovery": True},
    "bus-off-storm": {"latency_bound": False, "frame_conservation": True,
                      "fail_silence": True, "recovery": True},
    "gateway-overload": {"latency_bound": False, "frame_conservation": False,
                         "fail_silence": True, "recovery": True},
    # a slot outage delays the command's first sight past its end-to-end
    # bound: the latency violation is the specified consequence
    "lin-drop": {"latency_bound": False, "frame_conservation": True,
                 "fail_silence": True, "recovery": True},
    "lin-stuck": {"latency_bound": False, "frame_conservation": True,
                  "fail_silence": True, "recovery": True},
    "soft-error": {"latency_bound": True, "frame_conservation": True,
                   "fail_silence": True, "recovery": True},
}


def _validated_claims(name: str, claims: dict) -> None:
    if set(claims) != set(VERDICT_CLAIMS):
        raise ValueError(
            f"{name} must carry exactly the claims {VERDICT_CLAIMS}, "
            f"got {sorted(claims)}")
    for claim, value in claims.items():
        if not isinstance(value, bool):
            raise ValueError(f"{name}[{claim!r}] must be a bool, "
                             f"got {value!r}")


@dataclass
class VehicleFaultRecord:
    """Outcome of one faulted co-simulation vs its fault-free twin."""

    label: str
    seed: int
    scale: int
    fault_kind: str
    fault_node: str
    fault_start_us: int
    fault_end_us: int
    fault_activations: int
    sensors: int
    cores: str
    bitrate: int
    quantum_us: int
    horizon_us: int
    samples_generated: int
    gateway_applied: int
    actuator_applied: int
    frames_queued: int
    frames_injected: int
    frames_delivered: int
    frames_backlog: int
    errors_injected: int
    bus_off_events: int
    rx_dropped: int
    lin_no_response: int
    worst_latency_us: int
    worst_bound_us: int
    bound_violations: int
    value_errors: int
    conservation_ok: bool
    checksum_ok: bool
    expected_checksum_ok: bool
    twin_worst_latency_us: int
    twin_bound_violations: int
    twin_healthy: bool
    fused_blocks: int
    verdicts: dict = field(default_factory=dict)
    expected: dict = field(default_factory=dict)
    domain: str = "vehicle_fault"

    def __post_init__(self) -> None:
        _validated_claims("verdicts", self.verdicts)
        _validated_claims("expected", self.expected)

    @property
    def status(self) -> str:
        """Typed cell status: a computed record is always ``"ok"``."""
        return "ok"

    @property
    def verified(self) -> bool:
        """Fault confinement behaved exactly as specified: every claim's
        verdict matches the cell's expectation, the (possibly negative)
        checksum outcome matches, the fault-free twin passed every bound,
        and the guest ran on the fused trace engine."""
        return (self.twin_healthy and self.fused_blocks > 0
                and self.checksum_ok == self.expected_checksum_ok
                and all(self.verdicts[claim] == self.expected[claim]
                        for claim in VERDICT_CLAIMS))


class VehicleFaultDomain(ScenarioDomain):
    """Injected network/ECU failures with per-cell safety verdicts."""

    name = "vehicle_fault"
    record_class = VehicleFaultRecord
    supports_parallel = True

    def _horizon(self, spec) -> int:
        return int(spec.param("horizon_us", 200_000)) * max(spec.scale, 1)

    def build(self, spec):
        kind = str(spec.param("kind", "babbling-idiot"))
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; "
                             f"known: {', '.join(FAULT_KINDS)}")
        sensors = int(spec.param("sensors", 3))
        bitrate = int(spec.param("bitrate", 125_000))
        quantum = int(spec.param("quantum_us", 200))
        network_spec = synthesize_network(spec.rng().fork(1), sensors,
                                          bitrate, quantum)
        fault = synthesize_fault(spec.rng().fork(2), kind, network_spec,
                                 self._horizon(spec))
        return network_spec, fault

    def execute(self, spec, built, parallel=None):
        from repro.vehicle import build_body_network

        network_spec, fault = built
        horizon = self._horizon(spec)

        # the fault-free twin: same cell, same horizon, no scenario
        twin = build_body_network(network_spec)
        twin.run(horizon_us=horizon, parallel=parallel)
        twin_report = twin.report()

        # the faulted run
        network = build_body_network(network_spec)
        scenario = scenario_for(fault)
        scenario.arm(network)
        network.run(horizon_us=horizon, parallel=parallel)
        report = network.report()
        verdicts = scenario.verdicts(network, report)

        defaults = EXPECTED_BY_KIND[fault.kind]
        expected = {claim: bool(spec.param(f"expect_{claim}",
                                           defaults[claim]))
                    for claim in VERDICT_CLAIMS}
        expected_checksum = bool(spec.param("expect_checksum_ok",
                                            fault.kind != "soft-error"))

        conservation = network.vehicle.frame_conservation()
        bus = network.vehicle.can
        ecus = network.vehicle.ecus
        return VehicleFaultRecord(
            label=spec.label, seed=spec.seed, scale=spec.scale,
            fault_kind=fault.kind,
            fault_node=fault.node,
            fault_start_us=fault.start_us,
            fault_end_us=fault.end_us,
            fault_activations=scenario.activations,
            sensors=len(network_spec.sensors),
            cores=",".join(node.core for node in network_spec.sensors),
            bitrate=network_spec.can_bitrate,
            quantum_us=network_spec.quantum_us,
            horizon_us=horizon,
            samples_generated=report.generated,
            gateway_applied=report.gateway_applied,
            actuator_applied=report.actuator_applied,
            frames_queued=conservation["queued"],
            frames_injected=conservation["injected"],
            frames_delivered=conservation["delivered"],
            frames_backlog=conservation["backlog"],
            errors_injected=bus.errors_injected,
            bus_off_events=bus.bus_off_events,
            rx_dropped=network.gateway_can.fifo.dropped,
            lin_no_response=report.lin_no_response,
            worst_latency_us=report.worst_latency_us,
            worst_bound_us=report.worst_bound_us,
            bound_violations=report.bound_violations,
            value_errors=report.value_errors,
            conservation_ok=report.conservation_ok,
            checksum_ok=report.checksum_ok,
            expected_checksum_ok=expected_checksum,
            twin_worst_latency_us=twin_report.worst_latency_us,
            twin_bound_violations=twin_report.bound_violations,
            twin_healthy=twin_report.healthy,
            fused_blocks=sum(e.fused_block_count() for e in ecus),
            verdicts=verdicts,
            expected=expected,
        )


def vehicle_fault_matrix(seed: int = 2005, scale: int = 1) -> list:
    """Fault sweep: every scenario kind, plus a fine-quantum babbler."""
    from repro.sim.campaign import ScenarioSpec

    cells = [
        ScenarioSpec(label=f"fault {kind}", seed=seed, scale=scale,
                     domain="vehicle_fault", params=(("kind", kind),))
        for kind in FAULT_KINDS
    ]
    cells.append(ScenarioSpec(
        label="fault babbling-idiot fine-quantum", seed=seed, scale=scale,
        domain="vehicle_fault",
        params=(("kind", "babbling-idiot"), ("quantum_us", 50))))
    return cells


DOMAIN = VehicleFaultDomain()
