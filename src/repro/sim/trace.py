"""Structured trace recording shared by the CPU, RTOS, and bus simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped simulation event."""

    time: int
    category: str
    label: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.time:>10}] {self.category:<10} {self.label} {extra}".rstrip()


class TraceRecorder:
    """Collects :class:`TraceRecord` objects with cheap category filtering.

    Recording can be disabled wholesale (``enabled=False``) so simulations
    pay nothing for tracing in benchmark runs.
    """

    def __init__(self, enabled: bool = True, categories: set[str] | None = None) -> None:
        self.enabled = enabled
        self.categories = categories
        self.records: list[TraceRecord] = []

    def emit(self, time: int, category: str, label: str, **data: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time=time, category=category, label=label, data=data))

    def by_category(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def between(self, start: int, end: int) -> list[TraceRecord]:
        """Records with start <= time < end."""
        return [r for r in self.records if start <= r.time < end]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
