"""A deterministic discrete-event scheduler.

Time is an integer number of *ticks*; the interpretation of a tick (CPU
cycle, CAN bit time, microsecond) is up to the model built on top.  Events
scheduled for the same tick fire in (priority, sequence) order, which makes
runs reproducible regardless of hash seeds or dict ordering.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationEnded(Exception):
    """Raised by callbacks to stop the scheduler immediately."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering key: (time, priority, seq)."""

    time: int
    priority: int
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        self.cancelled = True


class EventScheduler:
    """Priority-queue discrete-event engine with integer time."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[Event] = []
        self._seq = 0
        self._events_fired = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, callback: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time=int(time), priority=priority, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def after(self, delay: int, callback: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``callback`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + int(delay), callback, priority)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek_time(self) -> int | None:
        """Time of the next live event, or None if the queue is drained."""
        self._drop_cancelled()
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        self._drop_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.now = event.time
        self._events_fired += 1
        event.callback()
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until`` is passed, or
        ``max_events`` have fired.  Returns the number of events fired."""
        fired = 0
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                self.step()
                fired += 1
        except SimulationEnded:
            fired += 1
        return fired

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
