"""Seeded random-number helpers for reproducible fault and traffic models."""

from __future__ import annotations

import math
import random


class DeterministicRng:
    """A thin wrapper over :class:`random.Random` with simulation helpers.

    All stochastic models in the library take one of these rather than the
    module-level :mod:`random` so that a single seed reproduces a full run.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Inclusive integer in [low, high]."""
        return self._random.randint(low, high)

    def choice(self, items):
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def random(self) -> float:
        return self._random.random()

    def exponential(self, rate: float) -> float:
        """Exponential inter-arrival time with the given rate (events/tick)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return -math.log(1.0 - self._random.random()) / rate

    def poisson_arrivals(self, rate: float, horizon: int) -> list[int]:
        """Integer arrival times of a Poisson process on [0, horizon)."""
        arrivals: list[int] = []
        t = 0.0
        while True:
            t += self.exponential(rate)
            if t >= horizon:
                break
            arrivals.append(int(t))
        return arrivals

    def bit_position(self, width_bits: int) -> int:
        """Uniformly random bit index for fault injection."""
        return self._random.randrange(width_bits)

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent child stream (stable for a given salt)."""
        return DeterministicRng(seed=(self.seed * 1_000_003 + salt) & 0xFFFFFFFF)
