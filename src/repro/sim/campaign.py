"""Parallel scenario-matrix campaign runner.

The paper's headline numbers are *sweeps*: Table 1 runs the whole AutoIndy
suite on three (core, ISA) configurations, Figure 4 sweeps interrupt storms
across both interrupt architectures.  This module turns such sweeps into a
first-class object - a list of :class:`ScenarioSpec` fanned across
``multiprocessing`` workers - while keeping a hard determinism guarantee:

* every scenario derives its RNG stream purely from its own spec (a CRC-32
  of the scenario key mixed with the seed), never from a shared stream or
  from worker identity;
* results come back in input order regardless of worker count;
* :meth:`CampaignResult.to_json` is canonical (sorted keys, no wall-clock
  or host state), so a campaign's output is **byte-identical** for 1, 2,
  or N workers - ``tests/test_campaign.py`` asserts exactly that.

Scenario execution itself reuses the verified kernel harness pieces
(compile -> load -> run -> check against the pure-Python reference) and
runs on the predecoded fast path by default, so large matrices finish in
seconds instead of minutes.

Interrupt profiles
------------------
A scenario may carry an :class:`InterruptProfile`: a deterministic storm of
IRQs raised against the NVIC while the kernel runs.  Profiles are limited
to the Cortex-M3, and that restriction is the paper's own section 3.2.1
point: hardware stacking makes handlers plain compiled functions, so a
C-level ``irq_tick`` can preempt an arbitrary kernel without corrupting it.
On the VIC cores a compiled handler would clobber caller-saved registers
(the software preamble the paper contrasts), so asking for a profile there
raises ``ValueError`` rather than silently mis-executing.
"""

from __future__ import annotations

import json
import multiprocessing
import zlib
from dataclasses import dataclass, field

from repro.sim.rng import DeterministicRng

#: SRAM address of the irq_tick counter: far above workload input blobs
#: (loaded at SRAM_BASE) and far below the stack (which grows down from
#: the top of the default 128 KiB SRAM).
IRQ_COUNTER_OFFSET = 0x1_0000


@dataclass(frozen=True)
class InterruptProfile:
    """A deterministic IRQ storm delivered while the kernel runs."""

    count: int = 4
    mean_gap: int = 500        # mean cycles between asserts (exponential)
    start_cycle: int = 50
    priority_span: int = 2     # priorities cycle over [0, span)

    def schedule(self, rng: DeterministicRng) -> list[tuple[int, int, int]]:
        """(number, assert_cycle, priority) triples, reproducible per rng."""
        events = []
        cycle = self.start_cycle
        for index in range(self.count):
            cycle += 1 + int(rng.exponential(1.0 / self.mean_gap))
            events.append((index + 1, cycle, index % self.priority_span))
        return events


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of a campaign matrix."""

    label: str
    core: str                   # 'arm7' | 'cortex-m3' | 'm3' | 'arm1156'
    isa: str                    # 'arm' | 'thumb' | 'thumb2'
    workload: str               # AutoIndy kernel name
    seed: int = 2005
    scale: int = 1
    interrupts: InterruptProfile | None = None
    machine_kwargs: tuple = ()  # (key, value) pairs; tuple keeps specs hashable
    fastpath: bool = True

    def key(self) -> str:
        """Stable identity used for RNG derivation and result ordering."""
        return (f"{self.label}/{self.core}/{self.isa}/{self.workload}"
                f"/seed{self.seed}/scale{self.scale}")

    def rng(self) -> DeterministicRng:
        """The scenario's private stream: a pure function of the spec.

        Worker processes never share RNG state, so campaign output cannot
        depend on how scenarios were distributed.
        """
        salt = zlib.crc32(self.key().encode("utf-8"))
        return DeterministicRng((self.seed * 1_000_003 + salt) & 0xFFFFFFFF)


@dataclass
class ScenarioRecord:
    """Outcome of one scenario (KernelRun fields + interrupt statistics)."""

    label: str
    core: str
    isa: str
    workload: str
    seed: int
    scale: int
    result: int
    expected: int
    cycles: int
    instructions: int
    code_bytes: int
    total_bytes: int
    irqs_serviced: int = 0
    irqs_tail_chained: int = 0
    irq_ticks: int = 0

    @property
    def verified(self) -> bool:
        return self.result == self.expected

    def to_kernel_run(self):
        """Adapt to the Table 1 harness's :class:`KernelRun` record."""
        from repro.workloads.harness import KernelRun

        return KernelRun(
            workload=self.workload, isa=self.isa, core=self.core,
            result=self.result, expected=self.expected, cycles=self.cycles,
            instructions=self.instructions, code_bytes=self.code_bytes,
            total_bytes=self.total_bytes,
        )


def _record_json(record: ScenarioRecord) -> str:
    """One record in the canonical form (sorted keys, no whitespace)."""
    return json.dumps(vars(record), sort_keys=True, separators=(",", ":"))


def read_campaign_stream(path) -> list[ScenarioRecord]:
    """Load the records a ``run_campaign(..., stream_path=...)`` run wrote."""
    records = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(ScenarioRecord(**json.loads(line)))
    return records


@dataclass
class CampaignResult:
    """All scenario records, in input order."""

    records: list[ScenarioRecord] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        return all(r.verified for r in self.records)

    def to_json(self) -> str:
        """Canonical serialisation: byte-identical across worker counts."""
        payload = [vars(r) for r in self.records]
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _build_irq_tick():
    """A compiled handler: bump a counter word.  Safe to enter from any
    kernel instruction *on the Cortex-M3 only* (hardware stacking)."""
    from repro.codegen import IrBuilder
    from repro.core import SRAM_BASE

    b = IrBuilder("irq_tick", num_params=0)
    addr = b.const(SRAM_BASE + IRQ_COUNTER_OFFSET)
    b.store(b.add(b.load(addr, 0), 1), addr, 0)
    b.ret(b.const(0))
    return b.build()


def run_scenario(spec: ScenarioSpec) -> ScenarioRecord:
    """Compile, execute, and verify one scenario (also the worker entry)."""
    # Imports are local so the module stays import-light for worker spawn.
    from repro.codegen import compile_program
    from repro.core import FLASH_BASE, SRAM_BASE, build_machine
    from repro.workloads.kernels import WORKLOADS_BY_NAME

    if spec.workload not in WORKLOADS_BY_NAME:
        raise KeyError(f"unknown workload {spec.workload!r}")
    if spec.interrupts is not None and spec.core not in ("m3", "cortex-m3"):
        raise ValueError(
            "interrupt profiles require the Cortex-M3's hardware stacking; "
            f"core {spec.core!r} would corrupt caller-saved registers")
    workload = WORKLOADS_BY_NAME[spec.workload]
    functions = [workload.build()]
    if spec.interrupts is not None:
        functions.append(_build_irq_tick())
    program = compile_program(functions, spec.isa, base=FLASH_BASE)
    machine = build_machine(spec.core, program, **dict(spec.machine_kwargs))
    machine.cpu.fastpath = spec.fastpath

    # Inputs are seeded exactly as the Table 1 harness seeds them, so a
    # campaign over the same matrix reproduces run_kernel() cycle-for-cycle;
    # the scenario-private stream (spec.rng) drives the stochastic extras.
    prepared = workload.make_input(DeterministicRng(spec.seed), spec.scale)
    machine.load_data(SRAM_BASE, prepared.data)

    irq_ticks = 0
    if spec.interrupts is not None:
        handler = program.symbols["irq_tick"]
        for number, cycle, priority in spec.interrupts.schedule(spec.rng()):
            machine.cpu.nvic.raise_irq(number, handler=handler,
                                       at_cycle=cycle, priority=priority)

    result = machine.call(functions[0].name, *prepared.args(SRAM_BASE))
    expected = workload.reference(prepared.data, *prepared.args(0))

    serviced = tail_chained = 0
    if spec.interrupts is not None:
        stats = machine.cpu.nvic.stats
        serviced = stats.serviced
        tail_chained = stats.tail_chained
        irq_ticks = machine.bus.read_raw(SRAM_BASE + IRQ_COUNTER_OFFSET, 4)

    return ScenarioRecord(
        label=spec.label, core=spec.core, isa=spec.isa,
        workload=spec.workload, seed=spec.seed, scale=spec.scale,
        result=result, expected=expected,
        cycles=machine.cpu.cycles,
        instructions=machine.cpu.instructions_executed,
        code_bytes=program.code_bytes,
        total_bytes=program.code_bytes + program.literal_bytes,
        irqs_serviced=serviced, irqs_tail_chained=tail_chained,
        irq_ticks=irq_ticks,
    )


def run_campaign(specs: list[ScenarioSpec], workers: int | None = None,
                 stream_path=None, collect: bool | None = None) -> CampaignResult:
    """Run a scenario matrix, optionally across worker processes.

    ``workers`` of ``None``, 0, or 1 runs serially in-process.  Output is
    identical (byte-for-byte once serialised) for every worker count.

    ``stream_path`` appends each :class:`ScenarioRecord` to that file as
    one canonical JSON line (the same serialisation ``to_json`` uses) as
    soon as it comes off a worker, in input order - so million-scenario
    sweeps can be tailed while running, survive interruption up to the
    last completed scenario, and need not hold every record in memory:
    ``collect`` defaults to False when streaming (the returned
    ``CampaignResult`` is then empty; read the file back with
    :func:`read_campaign_stream`) and True otherwise.
    """
    specs = list(specs)
    if collect is None:
        collect = stream_path is None
    records: list[ScenarioRecord] = []
    stream = open(stream_path, "a", encoding="utf-8") if stream_path is not None else None

    def consume(record: ScenarioRecord) -> None:
        if stream is not None:
            stream.write(_record_json(record) + "\n")
        if collect:
            records.append(record)

    try:
        if workers is None or workers <= 1 or len(specs) <= 1:
            for spec in specs:
                consume(run_scenario(spec))
        else:
            with multiprocessing.Pool(processes=min(workers, len(specs))) as pool:
                # imap (not map): records arrive incrementally, in input order
                for record in pool.imap(run_scenario, specs, chunksize=1):
                    consume(record)
    finally:
        if stream is not None:
            stream.close()
    return CampaignResult(records=records)


def table1_matrix(seed: int = 2005, scale: int = 1,
                  machine_kwargs: tuple = ()) -> list[ScenarioSpec]:
    """The paper's Table 1 as a campaign matrix: 3 configs x 6 kernels."""
    from repro.workloads.harness import TABLE1_CONFIGS
    from repro.workloads.kernels import AUTOINDY_SUITE

    return [
        ScenarioSpec(label=label, core=core, isa=isa, workload=w.name,
                     seed=seed, scale=scale, machine_kwargs=machine_kwargs)
        for label, core, isa in TABLE1_CONFIGS
        for w in AUTOINDY_SUITE
    ]


def interrupt_sweep_matrix(rates: tuple[int, ...] = (2000, 1000, 500, 250),
                           seed: int = 2005, scale: int = 4) -> list[ScenarioSpec]:
    """A Figure 4-flavoured matrix: the M3 suite under rising IRQ pressure."""
    from repro.workloads.kernels import AUTOINDY_SUITE

    return [
        ScenarioSpec(label=f"M3 irq mean_gap={gap}", core="m3", isa="thumb2",
                     workload=w.name, seed=seed, scale=scale,
                     interrupts=InterruptProfile(count=8, mean_gap=gap))
        for gap in rates
        for w in AUTOINDY_SUITE
    ]
