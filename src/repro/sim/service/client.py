"""Client API for the campaign service.

:class:`CampaignClient` is the async client: connect, ``submit`` a
:class:`~repro.sim.campaign.CampaignRequest`, then ``stream`` its records
- which arrive in spec order and are re-serialised in the campaign's
canonical record form, so a streamed file is byte-identical to a local
pooled run of the same request.  One connection multiplexes freely:
``status`` and ``cancel`` work while a stream is in flight (every
operation carries a ``seq`` the server echoes on its replies).

:func:`submit_and_stream` is the blocking convenience wrapper the CLI
uses (``python -m repro.sim.campaign --connect HOST:PORT``): one request
in, records to a file and/or callback, the ``done`` summary out.

Degrading gracefully
--------------------
A ``--connect`` client neither hangs nor dies on a flaky service:

* :meth:`CampaignClient.connect` bounds each attempt with a connect
  timeout and retries connection failures with exponential backoff
  (``connect-failed`` after the budget is spent);
* one-shot calls (submit/status/cancel) bound their reply wait with a
  read timeout (``timeout``);
* ``queue-full`` back-pressure on submit is retried with the same
  exponential backoff - the server's bounded queues drain as requests
  finish - and surfaces as the typed error only once the retry budget
  is exhausted.

All failures stay typed (:class:`CampaignServiceError`), so callers
match on ``exc.code``, never on transport exception zoo.

Per-cell failure is **data, not a transport error**: a cell the
supervised worker fleet quarantined (it killed two workers in a row, or
raised cleanly in-worker) arrives through :meth:`CampaignClient.stream`
as an ordinary record with ``domain: "cell_error"`` and ``status:
"error"`` - the stream completes normally and the ``done`` summary
counts it under ``failed``.  Only request-level problems (the whole
request errored, the service is draining) raise.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.sim.campaign import _record_json, record_from_obj
from repro.sim.service.protocol import (
    CampaignServiceError,
    decode_message,
    encode_message,
    error_payload,
    raise_on_error,
)


#: default per-attempt connect timeout (seconds)
CONNECT_TIMEOUT = 5.0
#: default reply timeout for one-shot calls (seconds); streams are
#: unbounded - a long sweep legitimately stays quiet between records
READ_TIMEOUT = 30.0
#: default retry budget for connection failures and queue-full submits
RETRIES = 3
#: first backoff delay (seconds); doubles per retry
BACKOFF = 0.2


class CampaignClient:
    """Async client for one connection to a campaign service."""

    def __init__(self, reader, writer, *, read_timeout: float = READ_TIMEOUT,
                 retries: int = RETRIES, backoff: float = BACKOFF):
        self._reader = reader
        self._writer = writer
        self._read_timeout = read_timeout
        self._retries = retries
        self._backoff = backoff
        self._seq = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._streams: dict[int, asyncio.Queue] = {}
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0, *,
                      connect_timeout: float = CONNECT_TIMEOUT,
                      retries: int = RETRIES,
                      backoff: float = BACKOFF,
                      read_timeout: float = READ_TIMEOUT) -> CampaignClient:
        """Connect with a per-attempt timeout and bounded retry.

        Each attempt is bounded by ``connect_timeout``; connection
        refusals and timeouts retry up to ``retries`` times with
        exponential backoff (``backoff``, doubling).  Exhaustion raises
        :class:`CampaignServiceError` with code ``connect-failed``.
        """
        delay = backoff
        last: Exception | None = None
        for attempt in range(retries + 1):
            if attempt:
                await asyncio.sleep(delay)
                delay *= 2
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), connect_timeout)
                return cls(reader, writer, read_timeout=read_timeout,
                           retries=retries, backoff=backoff)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                last = exc
        raise CampaignServiceError(
            "connect-failed",
            f"{host}:{port} unreachable after {retries + 1} attempts: "
            f"{last!r}")

    async def _read_loop(self) -> None:
        """Route every incoming frame by its echoed ``seq``: stream
        subscriptions get a queue, one-shot calls get a future."""
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    msg = decode_message(line)
                except CampaignServiceError:
                    continue  # unparseable push; nothing to route it to
                seq = msg.get("seq")
                if seq in self._streams:
                    self._streams[seq].put_nowait(msg)
                elif seq in self._pending:
                    future = self._pending.pop(seq)
                    if not future.done():
                        future.set_result(msg)
        finally:
            dropped = CampaignServiceError("connection-closed", "service connection closed")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(dropped)
            self._pending.clear()
            for queue in self._streams.values():
                queue.put_nowait(error_payload("connection-closed", "service connection closed"))

    async def _call(self, payload: dict) -> dict:
        """Send one message, await the ``seq``-matched reply (bounded by
        the read timeout; ``timeout`` is raised typed, never hangs)."""
        seq = next(self._seq)
        payload["seq"] = seq
        future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future
        self._writer.write(encode_message(payload))
        await self._writer.drain()
        try:
            reply = await asyncio.wait_for(future, self._read_timeout)
        except asyncio.TimeoutError:
            self._pending.pop(seq, None)
            raise CampaignServiceError(
                "timeout",
                f"no reply to {payload.get('op')!r} (seq {seq}) within "
                f"{self._read_timeout}s") from None
        return raise_on_error(reply)

    async def submit(self, request, *, rid: str | None = None, priority: int | None = None) -> str:
        """Register a sweep; returns the request id for stream/cancel.

        ``queue-full`` back-pressure retries with exponential backoff up
        to the client's retry budget (the server's bounded queues drain
        as requests complete), then surfaces typed.
        """
        payload: dict = {"op": "submit", "request": request.to_obj()}
        if rid is not None:
            payload["id"] = rid
        if priority is not None:
            payload["priority"] = priority
        delay = self._backoff
        for attempt in range(self._retries + 1):
            if attempt:
                await asyncio.sleep(delay)
                delay *= 2
            try:
                reply = await self._call(dict(payload))
            except CampaignServiceError as exc:
                if exc.code == "queue-full" and attempt < self._retries:
                    continue
                raise
            return reply["id"]
        raise AssertionError("unreachable")  # loop always returns/raises

    async def stream(self, rid: str, *, on_record=None, stream_path=None) -> dict:
        """Consume a request's records in spec order; return the ``done``
        summary.

        ``stream_path`` appends each record as one canonical JSON line
        (the same bytes :func:`~repro.sim.campaign.execute_request` would
        write); ``on_record`` receives each rebuilt record instance.
        Raises :class:`CampaignServiceError` (``request-failed``) if a
        cell raised server-side; a cancelled request returns its summary
        with ``status: "cancelled"``.
        """
        seq = next(self._seq)
        queue: asyncio.Queue = asyncio.Queue()
        self._streams[seq] = queue
        out = None
        try:
            self._writer.write(encode_message({"op": "stream", "id": rid, "seq": seq}))
            await self._writer.drain()
            if stream_path is not None:
                out = open(stream_path, "a", encoding="utf-8")
            while True:
                msg = raise_on_error(await queue.get())
                if msg.get("op") == "record":
                    record = record_from_obj(msg["record"])
                    if out is not None:
                        out.write(_record_json(record) + "\n")
                    if on_record is not None:
                        on_record(record)
                elif msg.get("op") == "done":
                    if msg.get("status") == "error":
                        raise CampaignServiceError("request-failed", msg.get("message", ""))
                    return msg
        finally:
            if out is not None:
                out.close()
            self._streams.pop(seq, None)

    async def status(self) -> dict:
        return await self._call({"op": "status"})

    async def metrics(self) -> dict:
        """The server's telemetry snapshot (``metrics`` op): a dict with
        ``metrics`` (the :mod:`repro.obs` registry snapshot) and
        ``spans`` (recent tracer spans).  Empty series - not an error -
        when the server runs with telemetry disabled."""
        return await self._call({"op": "metrics"})

    async def cancel(self, rid: str) -> dict:
        return await self._call({"op": "cancel", "id": rid})

    async def close(self) -> None:
        self._reader_task.cancel()
        await asyncio.gather(self._reader_task, return_exceptions=True)
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def submit_and_stream(
    host: str,
    port: int,
    request,
    *,
    rid: str | None = None,
    priority: int | None = None,
    stream_path=None,
    on_record=None,
    connect_timeout: float = CONNECT_TIMEOUT,
    retries: int = RETRIES,
    backoff: float = BACKOFF,
    read_timeout: float = READ_TIMEOUT,
) -> dict:
    """Blocking one-shot: connect, submit, stream to completion.

    The CLI's ``--connect`` path; also the simplest way to use a service
    from synchronous code.  Returns the ``done`` summary dict.  Inherits
    the client's graceful degradation: bounded connect retries with
    backoff, read timeouts on the submit acknowledgement, and
    ``queue-full`` retry.
    """

    async def go() -> dict:
        client = await CampaignClient.connect(
            host, port, connect_timeout=connect_timeout, retries=retries,
            backoff=backoff, read_timeout=read_timeout)
        try:
            actual = await client.submit(request, rid=rid, priority=priority)
            return await client.stream(actual, on_record=on_record, stream_path=stream_path)
        finally:
            await client.close()

    return asyncio.run(go())
