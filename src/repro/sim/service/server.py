"""The resident campaign sweep server: asyncio over the worker pools.

:class:`CampaignService` holds the shared state - one worker pool, one
content-addressed record cache, one priority queue of cells - and any
number of transports feed it connections (:func:`serve_tcp`,
:func:`serve_stdio`, or tests calling :meth:`CampaignService.submit`
directly).  The design invariants:

* **Spec-order streaming.**  Each request's records are delivered in spec
  order no matter how workers interleave; a streaming client's file is
  byte-identical to a local pooled run of the same request.
* **Cross-request dedup.**  A cell is identified by ``spec.key()``.
  Before computing, a request consults the shared cache (cells finished
  by *anyone*, ever, with a disk cache) and the in-flight table (cells
  being computed *right now* for another request, joined instead of
  recomputed).  Overlapping sweeps from concurrent clients therefore pay
  for the union once.
* **Priorities.**  Cells enter one global priority queue ordered by
  (request priority desc, submit order); a high-priority sweep overtakes
  the undispatched tail of earlier work without preempting running cells.
* **Back-pressure.**  ``max_pending`` bounds simultaneously-active
  requests and ``max_active_cells`` bounds their total cells; a submit
  that would exceed either is rejected with a typed ``queue-full`` error.
  Cancelling a request frees its slots immediately.
* **Crash resume.**  Every computed cell is ``put`` into the cache as it
  completes, so a service killed mid-sweep and restarted on the same
  cache directory replays the finished cells and computes only the rest.
* **Supervised workers.**  With ``workers_proc=N`` cells execute on a
  supervised fleet of worker *subprocesses*
  (:mod:`repro.sim.service.supervisor`): worker death (SIGKILL, crash,
  closed pipe), hangs (heartbeat silence), and per-cell deadline
  overruns are detected and the lost cell is requeued onto a healthy
  worker with bounded exponential backoff, with dead workers respawned
  up to a budget.  **At-most-once compute + content-addressed dedup =
  exactly-once records**: a cell computed twice because its worker died
  after finishing but before reporting resolves to the same bytes, so
  the client-visible stream is byte-identical to a fault-free run - the
  property the deterministic chaos harness
  (:mod:`repro.sim.service.chaos`) asserts under seeded kill/stall/
  sever/poison schedules.  A spec that kills two workers in a row is
  quarantined as a typed per-cell ``status="error"`` record
  (:class:`~repro.sim.campaign.CellErrorRecord`) instead of retried
  forever; so is a spec that raises cleanly in-worker.
* **Graceful drain.**  :meth:`CampaignService.shutdown` finishes the
  cells already executing (they land in the cache), fails the rest
  typed, answers every open stream with a ``shutting-down`` error frame
  (its ``seq`` echoed) instead of a bare closed socket, flushes the disk
  cache, and only then stops the pool.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro import obs
from repro.sim.campaign import CellErrorRecord, run_scenario
from repro.sim.campaign.cache import MemoryRecordCache, RecordCache
from repro.sim.campaign.request import CampaignRequest, record_to_obj
from repro.sim.service.protocol import (
    PROTOCOL_VERSION,
    CampaignServiceError,
    decode_message,
    encode_message,
    error_payload,
)
from repro.sim.service.supervisor import CellFailed, WorkerSupervisor

# Out-of-band telemetry (repro.obs).  Every series here observes the
# service; none may influence scheduling, caching, or record bytes -
# the property the telemetry-on/off stream-diff tests enforce.
_REQUESTS_SUBMITTED = obs.counter(
    "service.requests.submitted", "Requests accepted by submit()")
_REQUESTS_FINISHED = obs.counter(
    "service.requests.finished", "Requests finished, by final status")
_CELLS_REQUESTED = obs.counter(
    "service.cells.requested", "Cells across submitted requests, by domain")
_CELLS_RESOLVED = obs.counter(
    "service.cells.resolved",
    "Cells resolved per request: how=replayed|joined|computed")
_DEDUP_HITS = obs.counter(
    "service.dedup.hits",
    "Cells deduplicated across requests (cache replays + in-flight joins)")
_CELLS_FAILED = obs.counter(
    "service.cells.failed", "Cells surfaced as error records, by kind")
_RECORDS_STREAMED = obs.counter(
    "service.records.streamed", "Record frames pushed to stream subscribers")
_CELL_SECONDS = obs.histogram(
    "service.cell_seconds", "Cell compute wall time by domain")
_STREAM_FIRST = obs.histogram(
    "service.stream.first_record_seconds",
    "Subscribe-to-first-record latency per stream")
_STREAM_DRAIN = obs.histogram(
    "service.stream.drain_seconds", "Subscribe-to-done latency per stream")


class _CellJob:
    """One unique cell being (or waiting to be) computed.

    ``waiters`` counts the active requests that still want the result; a
    job whose waiters all cancelled is dropped unstarted when the
    dispatcher reaches it.  The future resolves for every joiner at once.
    """

    __slots__ = ("key", "spec", "future", "waiters", "started")

    def __init__(self, key, spec, future):
        self.key = key
        self.spec = spec
        self.future = future
        self.waiters = 0
        self.started = False


class _RequestState:
    """Server-side bookkeeping for one submitted request."""

    def __init__(self, rid: str, request: CampaignRequest, specs: list, priority: int):
        self.rid = rid
        self.request = request
        self.specs = specs
        self.priority = priority
        self.records: list = []  # delivered records, spec order
        self.done = False
        self.cancelled = False
        self.error: str | None = None
        self.finished = False  # slots released (done or cancelled)
        self.cond = asyncio.Condition()  # notifies streamers of progress
        self.jobs: list[_CellJob] = []  # jobs this request holds a waiter on
        self.replayed = 0  # cells served from the cache
        self.joined = 0  # cells joined in flight
        self.computed = 0  # cells this request had to schedule

    @property
    def status(self) -> str:
        if self.cancelled:
            return "cancelled"
        if self.error:
            return "error"
        return "ok" if self.done else "running"

    def summary(self) -> dict:
        return {
            "id": self.rid,
            "status": self.status,
            "message": self.error or "",
            "priority": self.priority,
            "cells": len(self.specs),
            "ran": len(self.records),
            "verified": sum(1 for r in self.records if r.verified),
            # every record class exposes a typed ``status`` accessor
            # (enforced at domain registration) - no getattr probing:
            # quarantined/compute-error cells count exactly
            "failed": sum(1 for r in self.records if r.status == "error"),
            "replayed": self.replayed,
            "joined": self.joined,
            "computed": self.computed,
        }


class CampaignService:
    """A long-running sweep server many concurrent clients submit to.

    ``workers`` sizes the cell pool: 2+ uses a process pool (the same
    worker entry the campaign runner forks, ``run_scenario``); 0/1/None
    computes serially on a single thread (determinism is unaffected -
    records are pure functions of specs).  ``cache`` is a directory path,
    a :class:`RecordCache`, or None for a process-lifetime in-memory
    cache.  Call :meth:`start` inside a running event loop, then hand
    :meth:`handle_connection` to any stream transport.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache=None,
        max_pending: int = 8,
        max_active_cells: int = 100_000,
        workers_proc: int | None = None,
        cell_timeout: float | None = None,
        respawn_budget: int | None = None,
        chaos=None,
        supervisor_options: dict | None = None,
    ):
        if cache is None:
            cache = MemoryRecordCache()
        elif not isinstance(cache, RecordCache):
            cache = RecordCache(cache)
        self.cache = cache
        if workers_proc is not None and workers is not None:
            raise ValueError("pick one pool: workers (in-process) or "
                             "workers_proc (supervised subprocesses)")
        self.workers_proc = workers_proc
        self.workers = max(1, workers_proc or workers or 1)
        self._supervisor_kwargs = dict(supervisor_options or {})
        if cell_timeout is not None:
            self._supervisor_kwargs.setdefault("cell_timeout", cell_timeout)
        if respawn_budget is not None:
            self._supervisor_kwargs.setdefault("respawn_budget", respawn_budget)
        if chaos is not None:
            self._supervisor_kwargs.setdefault("chaos", chaos)
        self.max_pending = max_pending
        self.max_active_cells = max_active_cells
        self.requests: dict[str, _RequestState] = {}
        self.computed = 0  # cells actually executed
        self.dispatch_log: list[str] = []  # cell keys in dispatch order
        self._inflight: dict[str, _CellJob] = {}
        self._seq = itertools.count()
        self._active = 0  # unfinished requests
        self._active_cells = 0  # their total cells
        self._closing = False
        self._executor = None
        self._supervisor: WorkerSupervisor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._request_tasks: set[asyncio.Task] = set()
        self._cell_tasks: set[asyncio.Task] = set()
        self._stream_tasks: set[asyncio.Task] = set()
        self._queue: asyncio.PriorityQueue | None = None
        self._slots: asyncio.Semaphore | None = None
        self._unpaused: asyncio.Event | None = None
        self._started: float | None = None  # monotonic, set by start()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Create the worker pool and start the cell dispatcher."""
        if self.workers_proc is not None:
            self._supervisor = WorkerSupervisor(self.workers_proc,
                                                **self._supervisor_kwargs)
            await self._supervisor.start()
        elif self.workers >= 2:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        else:
            self._executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="campaign-cell")
        self._queue = asyncio.PriorityQueue()
        self._slots = asyncio.Semaphore(self.workers)
        self._unpaused = asyncio.Event()
        self._unpaused.set()
        self._started = time.monotonic()
        self._register_gauges()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    def _register_gauges(self) -> None:
        """Lazily-read gauges: evaluated at snapshot time, so they cost
        nothing between scrapes.  Last started service wins the series -
        fine, because a process hosts one live service at a time."""
        obs.gauge("service.queue.depth",
                  "Cells waiting in the dispatch queue").set_fn(
            lambda: self._queue.qsize() if self._queue is not None else 0)
        obs.gauge("service.requests.active",
                  "Unfinished requests").set_fn(lambda: self._active)
        obs.gauge("service.cells.active",
                  "Cells belonging to active requests").set_fn(
            lambda: self._active_cells)
        obs.gauge("service.cells.inflight",
                  "Cells being computed right now").set_fn(
            lambda: len(self._inflight))
        obs.gauge("service.uptime_s",
                  "Seconds since the service started").set_fn(
            lambda: round(time.monotonic() - self._started, 3)
            if self._started is not None else 0.0)

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop the service without stranding anyone mid-socket.

        ``drain=True`` (default): cells already *executing* run to
        completion and land in the cache; queued-but-unstarted cells are
        abandoned, their requests finish with a shutdown error, and
        every open stream is answered with a typed ``shutting-down``
        error frame (its ``seq`` echoed) - no client ever sees a bare
        closed socket.  The disk cache is flushed before the pool stops,
        so a new service started on the same cache directory completes
        interrupted sweeps from where this one stopped (the crash-resume
        recipe; a SIGKILL'd service resumes the same way, it just drains
        nothing first).

        ``drain=False`` is kill-like: running cells are cancelled too.
        """
        self._closing = True
        # nothing new starts: stop the dispatcher first
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            await asyncio.gather(self._dispatcher, return_exceptions=True)
        cell_tasks = [t for t in self._cell_tasks if not t.done()]
        if not drain:
            for task in cell_tasks:
                task.cancel()
        if cell_tasks:
            await asyncio.gather(*cell_tasks, return_exceptions=True)
        # queued cells nobody will ever run: fail their joiners typed
        for job in list(self._inflight.values()):
            if not job.future.done():
                job.future.cancel()
        self._inflight.clear()
        # requests observe the cancellations, finish, and wake streamers
        request_tasks = [t for t in self._request_tasks if not t.done()]
        if request_tasks:
            await asyncio.gather(*request_tasks, return_exceptions=True)
        # every open stream sends its final typed frame (bounded: the
        # requests are finished, so streams only flush and say goodbye)
        stream_tasks = [t for t in self._stream_tasks if not t.done()]
        if stream_tasks:
            _, pending = await asyncio.wait(stream_tasks, timeout=5.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self.cache.flush()
        if self._supervisor is not None:
            await self._supervisor.stop()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def pause(self) -> None:
        """Hold the dispatcher (cells queue but none start).  Tests use
        this to make priority ordering and back-pressure deterministic."""
        self._unpaused.clear()

    def resume(self) -> None:
        self._unpaused.set()

    @staticmethod
    def _track(tasks: set, task: asyncio.Task) -> None:
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    # -- the core API (transport-free) ----------------------------------

    def submit(
        self,
        request: CampaignRequest,
        *,
        rid: str | None = None,
        priority: int | None = None,
    ) -> _RequestState:
        """Register a sweep; raises typed errors, returns its state."""
        if self._closing:
            raise CampaignServiceError("shutting-down", "the service is draining")
        try:
            specs = request.resolve_specs()
        except (TypeError, ValueError) as exc:
            raise CampaignServiceError("bad-request", str(exc)) from exc
        if rid is None:
            rid = f"req-{next(self._seq)}"
        if rid in self.requests:
            raise CampaignServiceError("duplicate-request", f"request id {rid!r} already exists")
        if self._active >= self.max_pending:
            raise CampaignServiceError(
                "queue-full",
                f"{self._active} requests already pending "
                f"(max_pending={self.max_pending}); cancel one or retry "
                f"after a sweep finishes",
            )
        if self._active_cells + len(specs) > self.max_active_cells:
            raise CampaignServiceError(
                "queue-full",
                f"{len(specs)} cells would exceed the bounded queue "
                f"({self._active_cells} active, "
                f"max_active_cells={self.max_active_cells})",
            )
        if priority is None:
            priority = request.priority
        state = _RequestState(rid, request, specs, priority)
        self.requests[rid] = state
        self._active += 1
        self._active_cells += len(specs)
        _REQUESTS_SUBMITTED.inc()
        if obs.REGISTRY.enabled:
            for spec in specs:
                _CELLS_REQUESTED.inc(domain=spec.domain)
        self._track(self._request_tasks, asyncio.create_task(self._serve_request(state)))
        return state

    async def cancel(self, rid: str) -> dict:
        """Stop a request and free its queue slots immediately."""
        state = self._get(rid)
        if not state.finished:
            state.cancelled = True
            for job in state.jobs:
                if not job.future.done():
                    job.waiters -= 1
            await self._finish(state)
        return state.summary()

    @property
    def pool_mode(self) -> str:
        """The worker-pool flavour: ``"workers-proc"`` (supervised
        subprocess fleet), ``"process-pool"``, or ``"in-proc"``."""
        if self.workers_proc is not None:
            return "workers-proc"
        if self.workers >= 2:
            return "process-pool"
        return "in-proc"

    def status(self) -> dict:
        """Global and per-request counters (the ``status`` op payload).

        The full payload schema is documented in
        :mod:`repro.sim.service.protocol`.
        """
        payload = {
            "op": "status",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": (round(time.monotonic() - self._started, 3)
                         if self._started is not None else 0.0),
            "pool": self.pool_mode,
            "active": self._active,
            "active_cells": self._active_cells,
            "computed": self.computed,
            "cache_hits": self.cache.hits,
            "cache_misses": self.cache.misses,
            "inflight": len(self._inflight),
            "workers": self.workers,
            "supervised": self._supervisor is not None,
            "max_pending": self.max_pending,
            "max_active_cells": self.max_active_cells,
            "requests": {rid: state.summary() for rid, state in self.requests.items()},
        }
        if self._supervisor is not None:
            payload["supervisor"] = self._supervisor.summary()
        return payload

    def _get(self, rid) -> _RequestState:
        state = self.requests.get(rid)
        if state is None:
            raise CampaignServiceError("unknown-request", f"no request with id {rid!r}")
        return state

    async def stream_records(self, state: _RequestState):
        """Yield ``(index, record)`` in spec order until the request ends.

        Already-delivered records replay from the buffer first, so a
        streamer attaching late (or re-attaching after a dropped
        connection) still sees the complete, gapless sequence.
        """
        index = 0
        while True:
            async with state.cond:
                await state.cond.wait_for(lambda: len(state.records) > index or state.done)
                fresh = state.records[index:]
            for record in fresh:
                yield index, record
                index += 1
            if state.done and index >= len(state.records):
                return

    # -- internals ------------------------------------------------------

    async def _finish(self, state: _RequestState) -> None:
        if state.finished:
            return
        state.finished = True
        self._active -= 1
        self._active_cells -= len(state.specs)
        _REQUESTS_FINISHED.inc(status=state.status)
        async with state.cond:
            state.done = True
            state.cond.notify_all()

    async def _serve_request(self, state: _RequestState) -> None:
        """Resolve every cell (cache replay, in-flight join, or fresh
        compute) and deliver records in spec order."""
        loop = asyncio.get_running_loop()
        pending: list = []
        for spec in state.specs:
            if state.cancelled:
                # cancelled before this task first ran: enqueue nothing, or
                # the cells would hold phantom waiters and compute for nobody
                break
            record = self.cache.get(spec)
            if record is not None:
                state.replayed += 1
                _CELLS_RESOLVED.inc(how="replayed", domain=spec.domain)
                _DEDUP_HITS.inc()
                pending.append(record)
                continue
            key = spec.key()
            job = self._inflight.get(key)
            if job is None:
                job = _CellJob(key, spec, loop.create_future())
                self._inflight[key] = job
                self._queue.put_nowait((-state.priority, next(self._seq), job))
                state.computed += 1
                _CELLS_RESOLVED.inc(how="computed", domain=spec.domain)
            else:
                state.joined += 1
                _CELLS_RESOLVED.inc(how="joined", domain=spec.domain)
                _DEDUP_HITS.inc()
            job.waiters += 1
            state.jobs.append(job)
            pending.append(job)
        try:
            for item in pending:
                if state.cancelled:
                    break
                if isinstance(item, _CellJob):
                    # shield: the job may be shared with other requests,
                    # so this task's cancellation must not cancel the cell
                    record = await asyncio.shield(item.future)
                else:
                    record = item
                if state.cancelled:
                    break
                async with state.cond:
                    state.records.append(record)
                    state.cond.notify_all()
        except asyncio.CancelledError:
            if not state.cancelled:
                state.error = state.error or "interrupted by service shutdown"
        except Exception as exc:  # a cell raised while computing
            state.error = f"{type(exc).__name__}: {exc}"
        finally:
            await self._finish(state)

    async def _dispatch_loop(self) -> None:
        """Pull cells off the global priority queue into worker slots."""
        while True:
            _, _, job = await self._queue.get()
            await self._unpaused.wait()
            if job.started or job.future.done():
                continue
            if job.waiters <= 0:
                self._drop(job)
                continue
            await self._slots.acquire()
            # re-check: waiters may have cancelled while we held no slot
            if job.started or job.future.done() or job.waiters <= 0:
                self._slots.release()
                if not job.started:
                    self._drop(job)
                continue
            job.started = True
            self.dispatch_log.append(job.key)
            self._track(self._cell_tasks, asyncio.create_task(self._run_cell(job)))

    def _drop(self, job: _CellJob) -> None:
        """Abandon a queued cell nobody wants any more."""
        self._inflight.pop(job.key, None)
        if not job.future.done():
            job.future.cancel()

    async def _run_cell(self, job: _CellJob) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        try:
            if self._supervisor is not None:
                record = await self._supervisor.run_cell(job.spec)
            else:
                record = await loop.run_in_executor(self._executor, run_scenario, job.spec)
        except asyncio.CancelledError:
            self._inflight.pop(job.key, None)
            if not job.future.done():
                job.future.cancel()
            raise
        except CellFailed as exc:
            # the fleet gave up on this spec (quarantined, or it raised
            # in-worker): surface a typed per-cell error *record* in the
            # stream, never cached - a restarted service retries it
            record = CellErrorRecord(label=job.spec.label, key=job.key,
                                     error=exc.kind, message=exc.detail)
            _CELLS_FAILED.inc(kind=exc.kind)
            self._inflight.pop(job.key, None)
            if not job.future.done():
                job.future.set_result(record)
        except Exception as exc:
            self._inflight.pop(job.key, None)
            if not job.future.done():
                job.future.set_exception(exc)
                job.future.exception()  # mark retrieved even if abandoned
        else:
            self.cache.put(job.spec, record)
            self.computed += 1
            _CELL_SECONDS.labels(domain=job.spec.domain).observe(
                time.perf_counter() - started)
            self._inflight.pop(job.key, None)
            if not job.future.done():
                job.future.set_result(record)
        finally:
            self._slots.release()

    # -- transport ------------------------------------------------------

    async def handle_connection(self, reader, writer) -> None:
        """Serve one JSONL client connection (TCP or stdio).

        Each incoming message is handled independently; ``stream``
        subscriptions run as their own tasks so status/cancel/submit stay
        responsive mid-stream.  Dropping the connection abandons its
        streams but **not** its submitted requests - they keep computing
        (into the shared cache), which is what lets a killed client
        reconnect and resume.
        """
        lock = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()

        async def send(payload: dict) -> None:
            async with lock:
                writer.write(encode_message(payload))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = decode_message(line)
                except CampaignServiceError as exc:
                    await send(error_payload(exc.code, exc.detail))
                    continue
                seq = msg.get("seq")
                try:
                    await self._handle_message(msg, seq, send, conn_tasks)
                except CampaignServiceError as exc:
                    await send(error_payload(exc.code, exc.detail, seq=seq, rid=msg.get("id")))
                except Exception as exc:  # never kill the connection loop
                    await send(error_payload("internal", f"{type(exc).__name__}: {exc}", seq=seq))
        finally:
            for task in conn_tasks:
                task.cancel()
            if conn_tasks:
                await asyncio.gather(*conn_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_message(self, msg, seq, send, conn_tasks) -> None:
        op = msg.get("op")
        if op == "submit":
            try:
                request = CampaignRequest.from_obj(msg.get("request"))
            except (TypeError, ValueError) as exc:
                raise CampaignServiceError("bad-request", str(exc)) from exc
            state = self.submit(request, rid=msg.get("id"), priority=msg.get("priority"))
            reply = {
                "op": "submitted",
                "seq": seq,
                "id": state.rid,
                "cells": len(state.specs),
                "priority": state.priority,
            }
            await send(reply)
        elif op == "stream":
            state = self._get(msg.get("id"))
            task = asyncio.create_task(self._stream_guarded(state, seq, send))
            conn_tasks.add(task)
            task.add_done_callback(conn_tasks.discard)
            self._track(self._stream_tasks, task)  # shutdown waits on these
        elif op == "status":
            payload = self.status()
            payload["seq"] = seq
            await send(payload)
        elif op == "metrics":
            # a telemetry-disabled server answers with empty series, not
            # an error: scrapers need no knowledge of REPRO_OBS
            await send({"op": "metrics", "seq": seq,
                        "metrics": obs.snapshot(),
                        "spans": obs.TRACER.snapshot()})
        elif op == "cancel":
            summary = await self.cancel(msg.get("id"))
            await send({"op": "cancelled", "seq": seq, **summary})
        else:
            raise CampaignServiceError("unknown-op", f"unknown op {op!r}")

    async def _stream_guarded(self, state: _RequestState, seq, send) -> None:
        """Run a stream subscription with the connection-loop error
        contract: a failure inside the (fire-and-forget) stream task must
        reach the client as a typed ``internal`` error with the request's
        ``seq`` echoed - not vanish into a dropped task result.  The
        request's compute side is untouched: its queue slots are freed by
        ``_serve_request``'s own finally, streamed or not.
        """
        try:
            await self._stream_to(state, seq, send)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            try:
                await send(error_payload(
                    "internal", f"{type(exc).__name__}: {exc}",
                    seq=seq, rid=state.rid))
            except (ConnectionError, OSError):
                pass  # client went away mid-report; nothing left to tell

    async def _stream_to(self, state: _RequestState, seq, send) -> None:
        subscribed = time.perf_counter()
        first_pushed = False
        async for index, record in self.stream_records(state):
            push = {
                "op": "record",
                "seq": seq,
                "id": state.rid,
                "index": index,
                "record": record_to_obj(record),
            }
            await send(push)
            _RECORDS_STREAMED.inc()
            if not first_pushed:
                first_pushed = True
                _STREAM_FIRST.observe(time.perf_counter() - subscribed)
        _STREAM_DRAIN.observe(time.perf_counter() - subscribed)
        if self._closing and state.error and not state.cancelled:
            # drained away mid-sweep: the client gets a typed goodbye with
            # its stream seq echoed, never a bare closed socket
            await send(error_payload("shutting-down", state.error,
                                     seq=seq, rid=state.rid))
            return
        await send({"op": "done", "seq": seq, **state.summary()})


async def serve_tcp(service: CampaignService, host: str = "127.0.0.1", port: int = 0):
    """Listen on TCP; ``port=0`` picks an ephemeral port (see
    ``server.sockets[0].getsockname()``)."""
    return await asyncio.start_server(service.handle_connection, host, port)


async def serve_stdio(service: CampaignService) -> None:
    """Serve exactly one client over this process's stdin/stdout."""
    import sys

    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    protocol = asyncio.StreamReaderProtocol(reader)
    await loop.connect_read_pipe(lambda: protocol, sys.stdin)
    transport, writer_protocol = await loop.connect_write_pipe(
        asyncio.streams.FlowControlMixin,
        sys.stdout,
    )
    writer = asyncio.StreamWriter(transport, writer_protocol, reader, loop)
    await service.handle_connection(reader, writer)
