"""Deterministic chaos harness for the supervised worker fleet.

Robustness claims are only trustworthy when the faults that prove them
are reproducible.  This module describes worker-fleet fault schedules as
plain frozen data - *which* worker (by spawn sequence number) dies or
stalls, at which of *its* cells, in which phase - so a test, a benchmark,
or the CI ``chaos-smoke`` job can replay the exact same injection and
assert the exact same outcome: the client-visible record stream is
byte-identical to a fault-free run, and the queue-slot accounting returns
to zero.

The injection path is the worker subprocess itself
(:mod:`repro.sim.service.worker`): the supervisor serialises each spawned
worker's :class:`WorkerFaultPlan` into the ``REPRO_WORKER_CHAOS``
environment variable, and the worker executes its own faults -
``os._exit`` at the scheduled cell (before computing or after computing
but *before reporting*, the juiciest window: the cell is lost and must be
recomputed elsewhere), or a stall (silent: heartbeats stop, the
supervisor's liveness timeout fires; busy: heartbeats continue, the hard
per-cell deadline fires).  Poisoned spec keys are global - *every*
worker, respawns included, dies on them - which is what drives the
supervisor's two-strike quarantine.

Client-side faults (severing a connection mid-stream) have no schedule
entry: they are plain test actions, listed here only in
:class:`ChaosSchedule.seeded`'s docstring for completeness.

Schedules are built three ways:

* explicitly (tests pinning one precise failure window);
* :meth:`ChaosSchedule.seeded` - an RNG-derived schedule from one integer
  seed (the property suite sweeps seeds);
* :meth:`ChaosSchedule.from_spec` - the ``--chaos "seed=7,kills=2,
  stalls=1"`` command-line form the CI job uses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.sim.rng import DeterministicRng

#: the environment variable a worker reads its fault plan from
CHAOS_ENV = "REPRO_WORKER_CHAOS"


@dataclass(frozen=True)
class WorkerFaultPlan:
    """The faults one spawned worker inflicts on itself.

    ``kill_at_cell``/``stall_at_cell`` count the cells *that worker*
    handles (0-based), not global dispatch order - which spec lands in
    the window depends on scheduling, and must not matter: the stream
    bytes are asserted equal regardless.  ``kill_phase`` is ``"recv"``
    (die before computing: the cell is simply lost) or ``"report"`` (die
    after computing, before writing the result line: the work is lost
    *and* may race a requeue - the dedup-by-construction case).
    """

    kill_at_cell: int | None = None
    kill_phase: str = "report"  # 'recv' | 'report'
    stall_at_cell: int | None = None
    stall_seconds: float = 0.0
    stall_silent: bool = True  # silent: heartbeats stop (liveness fires);
    #                            busy: heartbeats continue (deadline fires)


@dataclass(frozen=True)
class ChaosSchedule:
    """A full fleet fault schedule: per-spawn plans plus global poison.

    ``plans`` maps worker *spawn sequence numbers* (0..N-1 are the
    initial fleet; N, N+1, ... are respawns in order) to their fault
    plans; workers without an entry run clean - so a seeded schedule's
    respawned workers are healthy and recovery always converges.
    ``poison`` spec keys crash any worker that receives them, every
    time - the supervisor must quarantine them, not retry forever.
    """

    plans: tuple[tuple[int, WorkerFaultPlan], ...] = ()
    poison: tuple[str, ...] = ()

    def plan_for(self, spawn_index: int) -> WorkerFaultPlan | None:
        for index, plan in self.plans:
            if index == spawn_index:
                return plan
        return None

    def plan_env(self, spawn_index: int) -> str | None:
        """The ``REPRO_WORKER_CHAOS`` value for one spawned worker."""
        payload: dict = {}
        plan = self.plan_for(spawn_index)
        if plan is not None:
            if plan.kill_at_cell is not None:
                payload["kill"] = {"cell": plan.kill_at_cell, "phase": plan.kill_phase}
            if plan.stall_at_cell is not None:
                payload["stall"] = {
                    "cell": plan.stall_at_cell,
                    "seconds": plan.stall_seconds,
                    "silent": plan.stall_silent,
                }
        if self.poison:
            payload["poison"] = list(self.poison)
        if not payload:
            return None
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        workers: int = 2,
        cells: int = 8,
        kills: int = 1,
        stalls: int = 0,
        stall_seconds: float = 1.5,
        poison: tuple[str, ...] = (),
    ) -> ChaosSchedule:
        """An RNG-derived schedule: one seed reproduces one fault pattern.

        ``kills`` workers die (random initial spawn index, random cell in
        the first ``max(1, cells // workers)`` they handle, random
        phase); ``stalls`` workers stall silently past the liveness
        window at a random cell.  Kill and stall targets are drawn from
        the *initial* fleet only, so respawned workers are healthy and
        every schedule terminates.  The remaining chaos mode the property
        suite exercises - severing a client mid-stream - is a test-side
        action with no worker plan.
        """
        rng = DeterministicRng(seed)
        window = max(1, cells // max(1, workers))
        plans: dict[int, dict] = {}
        targets = list(range(workers))
        rng.shuffle(targets)
        for _ in range(kills):
            victim = targets[0] if len(targets) == 1 else targets.pop()
            plans.setdefault(victim, {})["kill_at_cell"] = rng.randint(0, window - 1)
            plans[victim]["kill_phase"] = rng.choice(["recv", "report"])
        for _ in range(stalls):
            victim = targets[0] if len(targets) == 1 else targets.pop()
            plans.setdefault(victim, {})["stall_at_cell"] = rng.randint(0, window - 1)
            plans[victim]["stall_seconds"] = stall_seconds
            plans[victim]["stall_silent"] = True
        return cls(
            plans=tuple(
                (index, WorkerFaultPlan(**fields)) for index, fields in sorted(plans.items())
            ),
            poison=tuple(poison),
        )

    @classmethod
    def from_spec(cls, spec: str, *, workers: int = 2) -> ChaosSchedule:
        """Parse the CLI form: ``"seed=7,kills=2,stalls=1[,cells=8]
        [,stall-seconds=2]"`` (``cells`` sizes the fault window; keep it
        near the real per-worker cell count so the faults actually fire).
        """
        fields = {"seed": 0, "kills": 1, "stalls": 0, "cells": 8,
                  "stall-seconds": 1.5}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                key, value = part.split("=", 1)
            except ValueError:
                raise ValueError(f"--chaos wants key=value pairs, got {part!r}") from None
            if key not in fields:
                raise ValueError(
                    f"unknown --chaos key {key!r}; pick from {', '.join(sorted(fields))}"
                )
            fields[key] = float(value) if key == "stall-seconds" else int(value)
        return cls.seeded(
            fields["seed"],
            workers=workers,
            cells=fields["cells"],
            kills=fields["kills"],
            stalls=fields["stalls"],
            stall_seconds=fields["stall-seconds"],
        )
