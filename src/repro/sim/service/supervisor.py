"""The supervised worker fleet: cell execution that survives its workers.

:class:`WorkerSupervisor` owns a pool of worker *subprocesses*
(:mod:`repro.sim.service.worker`) speaking the service's line-JSON
framing over pipes, and gives the campaign server one call -
:meth:`run_cell` - with a hard robustness contract:

* **Failure detection.**  A worker is declared lost on a closed pipe or
  exit (SIGKILL, crash), on heartbeat silence longer than the liveness
  window (a wedged process), or when a cell outlives its deadline -
  ``max(timeout_floor, cell_timeout * spec.scale)``, so big cells get
  proportionally more rope but a floor keeps tiny cells from flapping.
* **Bounded recovery.**  A lost cell is requeued onto a healthy worker
  after a bounded exponential backoff (``backoff * 2^attempt``, capped);
  the dead worker is respawned while the respawn budget lasts.  Because
  records are pure functions of specs and the service dedups through the
  content-addressed cache, a cell computed twice (the worker died after
  finishing but before reporting) is indistinguishable from a cell
  computed once: **at-most-once report + requeue + dedup = exactly-once
  records**, byte-identical to a fault-free run.
* **Quarantine.**  A spec that kills ``quarantine_strikes`` (default 2)
  workers in a row is not retried forever: :meth:`run_cell` raises
  :class:`CellFailed` (kind ``"quarantined"``) and the server turns it
  into a typed ``status="error"`` record in the stream.  A spec that
  merely *raises* inside a worker costs one round trip, no respawn:
  the worker reports ``cell-error`` and stays in the fleet
  (:class:`CellFailed`, kind ``"compute-error"``).
* **Exhaustion is loud.**  If the fleet dies faster than the budget
  allows and no workers remain, :meth:`run_cell` raises
  :class:`WorkerPoolError` - the request fails typed instead of hanging.
* **Graceful drain.**  :meth:`stop` sends every idle worker ``exit``,
  waits briefly, and kills stragglers.

Fault injection for the deterministic chaos harness rides each spawned
worker's environment (:mod:`repro.sim.service.chaos`); the supervisor
itself contains no test-only code paths.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import sys
import time
from pathlib import Path

from repro import obs
from repro.sim.campaign.request import record_from_obj, spec_to_obj
from repro.sim.service.chaos import CHAOS_ENV, ChaosSchedule
from repro.sim.service.protocol import encode_message
from repro.sim.service.worker import HEARTBEAT_ENV

#: default per-cell compute budget, scaled by ``spec.scale``
CELL_TIMEOUT = 60.0
#: no cell deadline is ever shorter than this
TIMEOUT_FLOOR = 10.0
#: default heartbeat interval handed to workers (seconds)
HEARTBEAT = 1.0
#: first requeue backoff (seconds); doubles per attempt, capped
BACKOFF = 0.05
BACKOFF_CAP = 1.0
#: default total respawns allowed over the supervisor's lifetime
RESPAWN_BUDGET = 8
#: worker-fatal attempts on one spec before it is quarantined
QUARANTINE_STRIKES = 2
#: liveness slack for a just-spawned worker (interpreter boot + imports
#: happen before its first frame; only then does the normal window apply)
SPAWN_GRACE = 15.0

# Out-of-band fleet telemetry (repro.obs): counters mirror the summary()
# fields but accumulate across supervisor lifetimes in one process.
_WORKERS_SPAWNED = obs.counter(
    "service.workers.spawned", "Worker subprocesses spawned (incl. respawns)")
_WORKERS_LOST = obs.counter(
    "service.workers.lost", "Workers declared dead (crash, hang, deadline)")
_WORKERS_RESPAWNED = obs.counter(
    "service.workers.respawned", "Replacement workers spawned after a loss")
_CELLS_REQUEUED = obs.counter(
    "service.cells.requeued", "Lost cells requeued onto a healthy worker")
_CELLS_QUARANTINED = obs.counter(
    "service.cells.quarantined", "Specs given up on after repeated kills")


class WorkerLost(Exception):
    """Internal: the worker serving a cell died, hung, or timed out."""


class CellFailed(Exception):
    """A cell could not produce a record; ``kind`` says why, typed.

    ``"quarantined"``: the spec killed ``quarantine_strikes`` workers in
    a row.  ``"compute-error"``: the spec raised inside a (healthy)
    worker.  The server renders both as per-cell ``status="error"``
    records, never as transport errors.
    """

    def __init__(self, kind: str, detail: str):
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


class WorkerPoolError(Exception):
    """The fleet is gone: no live workers and no respawn budget left."""


class _Worker:
    """One spawned subprocess plus its pipes and per-life counters."""

    __slots__ = ("index", "proc", "cells", "ready")

    def __init__(self, index: int, proc: asyncio.subprocess.Process):
        self.index = index  # spawn sequence number (chaos plans key on it)
        self.proc = proc
        self.cells = 0
        self.ready = False  # first frame seen (spawn grace no longer applies)

    @property
    def alive(self) -> bool:
        return self.proc.returncode is None

    async def send(self, payload: dict) -> None:
        self.proc.stdin.write(encode_message(payload))
        await self.proc.stdin.drain()

    def kill(self) -> None:
        if self.alive:
            try:
                self.proc.kill()
            except ProcessLookupError:
                pass


class WorkerSupervisor:
    """Spawn, watch, bury, respawn, and drain a fleet of cell workers."""

    def __init__(
        self,
        workers: int,
        *,
        cell_timeout: float | None = None,
        timeout_floor: float | None = None,
        heartbeat: float | None = None,
        liveness: float | None = None,
        backoff: float = BACKOFF,
        respawn_budget: int | None = None,
        quarantine_strikes: int = QUARANTINE_STRIKES,
        chaos: ChaosSchedule | None = None,
    ):
        self.size = max(1, workers)
        self.cell_timeout = CELL_TIMEOUT if cell_timeout is None else cell_timeout
        self.timeout_floor = TIMEOUT_FLOOR if timeout_floor is None else timeout_floor
        self.heartbeat = HEARTBEAT if heartbeat is None else heartbeat
        #: a worker with no output for this long is hung (heartbeats
        #: arrive every ``heartbeat`` seconds while a cell computes)
        self.liveness = max(4 * self.heartbeat, 0.2) if liveness is None else liveness
        self.backoff = backoff
        self.respawn_budget = RESPAWN_BUDGET if respawn_budget is None else respawn_budget
        self.quarantine_strikes = max(1, quarantine_strikes)
        self.chaos = chaos
        # observability counters (surfaced via the service's status op)
        self.respawns = 0
        self.lost = 0
        self.requeues = 0
        self.quarantined = 0
        self._spawned = 0
        self._alive: set[_Worker] = set()
        self._idle: asyncio.Queue[_Worker] = asyncio.Queue()
        self._strikes: dict[str, int] = {}
        self._jobs = itertools.count()
        self._closing = False
        self._failed: str | None = None
        self._last_frame: float | None = None  # monotonic, newest worker frame

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        for _ in range(self.size):
            await self._spawn()
        # lazily-read fleet gauges (evaluated only at snapshot time)
        obs.gauge("service.workers.alive",
                  "Live worker subprocesses").set_fn(
            lambda: len(self._alive))
        obs.gauge("service.workers.heartbeat_age_s",
                  "Seconds since the newest frame from any worker").set_fn(
            lambda: (round(time.monotonic() - self._last_frame, 3)
                     if self._last_frame is not None else -1.0))

    async def stop(self) -> None:
        """Drain gracefully: ask workers to exit, then kill stragglers."""
        self._closing = True
        for worker in list(self._alive):
            try:
                await worker.send({"op": "exit"})
            except (ConnectionError, OSError):
                pass
        waits = [worker.proc.wait() for worker in self._alive]
        if waits:
            done, pending = await asyncio.wait(
                [asyncio.ensure_future(w) for w in waits], timeout=2.0
            )
            if pending:
                for worker in list(self._alive):
                    worker.kill()
                await asyncio.gather(*pending, return_exceptions=True)
        self._alive.clear()

    async def _spawn(self) -> None:
        env = os.environ.copy()
        # the worker must import repro however the server itself was run
        src = str(Path(__file__).resolve().parents[3])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        env[HEARTBEAT_ENV] = str(self.heartbeat)
        env.pop(CHAOS_ENV, None)
        if self.chaos is not None:
            plan = self.chaos.plan_env(self._spawned)
            if plan is not None:
                env[CHAOS_ENV] = plan
        # -c, not -m: the package __init__ imports this module, so runpy
        # would warn about re-executing an already-imported module
        proc = await asyncio.create_subprocess_exec(
            sys.executable,
            "-c",
            "from repro.sim.service.worker import main; raise SystemExit(main())",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )
        worker = _Worker(self._spawned, proc)
        self._spawned += 1
        _WORKERS_SPAWNED.inc()
        self._alive.add(worker)
        self._idle.put_nowait(worker)

    async def _bury(self, worker: _Worker) -> None:
        """A worker is lost: kill, reap, and respawn within budget."""
        self.lost += 1
        _WORKERS_LOST.inc()
        worker.kill()
        self._alive.discard(worker)
        await worker.proc.wait()
        if self._closing:
            return
        if self.respawns < self.respawn_budget:
            self.respawns += 1
            _WORKERS_RESPAWNED.inc()
            await self._spawn()
        elif not self._alive:
            self._failed = (
                f"worker pool exhausted: {self.lost} workers lost, "
                f"respawn budget {self.respawn_budget} spent"
            )

    # -- the one public call --------------------------------------------

    def deadline_for(self, spec) -> float:
        """Per-cell compute budget: scaled by spec size, floored."""
        scale = max(1, getattr(spec, "scale", 1) or 1)
        return max(self.timeout_floor, self.cell_timeout * scale)

    async def run_cell(self, spec):
        """Compute one cell on the fleet; requeue across failures.

        Returns the domain record.  Raises :class:`CellFailed` for
        quarantined or cleanly-failing specs, :class:`WorkerPoolError`
        when the fleet is gone.
        """
        key = spec.key()
        attempt = 0
        while True:
            worker = await self._checkout()
            try:
                reply = await self._execute(worker, spec)
            except WorkerLost as lost:
                await self._bury(worker)
                strikes = self._strikes[key] = self._strikes.get(key, 0) + 1
                if strikes >= self.quarantine_strikes:
                    self._strikes.pop(key, None)
                    self.quarantined += 1
                    _CELLS_QUARANTINED.inc()
                    raise CellFailed(
                        "quarantined",
                        f"cell killed {strikes} workers in a row; not retrying ({lost})",
                    ) from lost
                attempt += 1
                self.requeues += 1
                _CELLS_REQUEUED.inc()
                await asyncio.sleep(min(self.backoff * (2 ** (attempt - 1)), BACKOFF_CAP))
                continue
            self._strikes.pop(key, None)
            worker.cells += 1
            self._idle.put_nowait(worker)
            if reply.get("op") == "cell-error":
                raise CellFailed("compute-error", reply.get("message", "worker reported failure"))
            return record_from_obj(reply["record"])

    async def _checkout(self) -> _Worker:
        """An idle, live worker - or :class:`WorkerPoolError`, loudly."""
        while True:
            if self._failed is not None:
                raise WorkerPoolError(self._failed)
            try:
                worker = await asyncio.wait_for(self._idle.get(), timeout=0.1)
            except asyncio.TimeoutError:
                continue  # re-check pool health, then keep waiting
            if worker.alive:
                return worker
            await self._bury(worker)  # died while idle; replacement queued

    async def _execute(self, worker: _Worker, spec) -> dict:
        """One job round trip; every failure mode becomes WorkerLost."""
        job = next(self._jobs)
        try:
            await worker.send({"op": "cell", "job": job, "spec": spec_to_obj(spec)})
        except (ConnectionError, OSError):
            raise WorkerLost("pipe closed while dispatching") from None
        loop = asyncio.get_running_loop()
        deadline = self.deadline_for(spec)
        end = loop.time() + deadline
        while True:
            remaining = end - loop.time()
            if remaining <= 0:
                raise WorkerLost(f"cell exceeded its {deadline:.1f}s deadline")
            liveness = self.liveness if worker.ready else max(self.liveness, SPAWN_GRACE)
            try:
                line = await asyncio.wait_for(
                    worker.proc.stdout.readline(), timeout=min(liveness, remaining)
                )
            except asyncio.TimeoutError:
                if loop.time() >= end:
                    raise WorkerLost(f"cell exceeded its {deadline:.1f}s deadline") from None
                raise WorkerLost(f"no heartbeat within {liveness:.1f}s (hung)") from None
            if not line:
                raise WorkerLost(f"worker died (exit {worker.proc.returncode})")
            try:
                msg = json.loads(line)
            except json.JSONDecodeError:
                raise WorkerLost("garbled frame from worker") from None
            worker.ready = True
            self._last_frame = time.monotonic()
            if msg.get("op") in ("heartbeat", "ready"):
                continue  # alive; the hard deadline still stands
            if msg.get("job") != job:
                continue  # stale frame from an abandoned life; resync
            return msg

    def summary(self) -> dict:
        """Counters for the service's ``status`` payload."""
        return {
            "workers": self.size,
            "alive": len(self._alive),
            "idle": self._idle.qsize(),
            "lost": self.lost,
            "respawns": self.respawns,
            "respawn_budget": self.respawn_budget,
            "requeues": self.requeues,
            "quarantined": self.quarantined,
        }
