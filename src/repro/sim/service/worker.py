"""The supervised cell worker: one subprocess of the service's fleet.

``python -m repro.sim.service.worker`` speaks the campaign service's
line-JSON framing over its own stdin/stdout (see
:mod:`repro.sim.service.protocol`, "worker wire"):

* supervisor -> worker: ``{"op": "cell", "job": J, "spec":
  <spec_to_obj>}`` asks for one cell, ``{"op": "exit"}`` asks for a
  graceful drain (EOF on stdin means the same thing);
* worker -> supervisor: ``{"op": "heartbeat", "job": J}`` roughly every
  ``REPRO_WORKER_HEARTBEAT`` seconds while a cell computes (a background
  thread; silence is how the supervisor tells a wedged worker from a
  slow cell), then exactly one of ``{"op": "result", "job": J,
  "record": <record_to_obj>}`` or ``{"op": "cell-error", "job": J,
  "message": ...}`` (the spec raised cleanly; the worker itself is
  healthy and keeps serving).

Workers are *fail-silent by construction*: they never write anything but
complete frames, so the supervisor's failure model collapses to three
observable events - a closed pipe (death), heartbeat silence (hang), and
the per-cell deadline (livelock).  Computing a cell twice (a worker died
after finishing but before reporting, and the cell was requeued) is
harmless: records are pure functions of specs, so the requeued result is
byte-identical and the service's content-addressed dedup keeps the
client stream single-copy.

Chaos injection (tests and the CI ``chaos-smoke`` job only): the
``REPRO_WORKER_CHAOS`` environment variable carries this worker's
:class:`~repro.sim.service.chaos.WorkerFaultPlan` - scheduled
``os._exit`` (before computing, or after computing but before
reporting), scheduled stalls (silent or with heartbeats), and globally
poisoned spec keys that kill any worker on receipt.  Without the
variable the fault paths do not exist.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

from repro.sim.service.chaos import CHAOS_ENV
from repro.sim.service.protocol import encode_message

#: seconds between heartbeats while a cell computes
HEARTBEAT_ENV = "REPRO_WORKER_HEARTBEAT"
DEFAULT_HEARTBEAT = 1.0


def main() -> int:
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    write_lock = threading.Lock()  # heartbeat thread and main thread share stdout
    heartbeat_s = float(os.environ.get(HEARTBEAT_ENV, str(DEFAULT_HEARTBEAT)))
    plan = json.loads(os.environ.get(CHAOS_ENV) or "{}")
    kill = plan.get("kill") or {}
    stall = plan.get("stall") or {}
    poison = frozenset(plan.get("poison") or ())

    def emit(payload: dict) -> None:
        frame = encode_message(payload)
        with write_lock:
            stdout.write(frame)
            stdout.flush()

    # These are light imports (the heavy domain modules load lazily
    # inside run_scenario, under the first cell's heartbeat cover);
    # the ready frame tells the supervisor to drop its spawn grace and
    # hold this worker to the normal liveness window.
    from repro.sim.campaign import run_scenario
    from repro.sim.campaign.request import record_to_obj, spec_from_obj

    emit({"op": "ready"})

    cells = 0  # cells *this worker* has handled (chaos plans count these)
    while True:
        line = stdin.readline()
        if not line:
            return 0
        try:
            msg = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn supervisor write; the next frame resyncs
        op = msg.get("op")
        if op == "exit":
            return 0
        if op != "cell":
            continue
        job = msg.get("job")
        spec = spec_from_obj(msg["spec"])

        # -- chaos: scheduled and poisoned deaths ----------------------
        if kill.get("cell") == cells and kill.get("phase", "report") == "recv":
            os._exit(9)  # die before computing: the cell is simply lost
        if spec.key() in poison:
            os._exit(9)  # a poisoned spec kills every worker it reaches

        beating = threading.Event()

        def beat(job=job) -> None:
            while not beating.wait(heartbeat_s):
                emit({"op": "heartbeat", "job": job})

        heartbeat = threading.Thread(target=beat, daemon=True)
        heartbeat.start()
        try:
            record = run_scenario(spec)
            reply = {"op": "result", "job": job, "record": record_to_obj(record)}
        except Exception as exc:  # the spec raised; the worker is fine
            reply = {
                "op": "cell-error",
                "job": job,
                "message": f"{type(exc).__name__}: {exc}",
            }

        # -- chaos: scheduled stalls and report-phase deaths -----------
        if stall.get("cell") == cells:
            if stall.get("silent", True):
                beating.set()  # a wedged process heartbeats nothing
                heartbeat.join()
            time.sleep(float(stall.get("seconds", 0.0)))
        beating.set()
        heartbeat.join()
        if kill.get("cell") == cells and kill.get("phase", "report") == "report":
            os._exit(9)  # computed but never reported: the dedup window

        try:
            emit(reply)
        except (BrokenPipeError, OSError):
            return 0  # the supervisor gave up on us (e.g. after a stall)
        cells += 1


if __name__ == "__main__":
    raise SystemExit(main())
