"""Campaign-as-a-service: a resident async sweep server for heavy traffic.

The one-shot campaign CLI pays full price for every sweep; this package
turns the runner into a long-lived **service** that many concurrent
clients submit :class:`~repro.sim.campaign.CampaignRequest`\\ s to, with:

* per-request **streaming** of records as cells complete, always in spec
  order, byte-identical to a local pooled run of the same request;
* **cross-request dedup** through the shared content-addressed record
  cache (``spec.key()``): overlapping sweeps from concurrent clients
  compute the union of cells once;
* per-request **priorities**, bounded queues with typed ``queue-full``
  **back-pressure**, **cancellation** that frees queue slots, and crash
  **resume** from the cache.

Run it:  ``python -m repro.sim.service --port 0 --port-file port.txt
--workers 4 --cache sweep-cache`` (or ``--stdio`` for a single piped
client).  Talk to it: ``python -m repro.sim.campaign --matrix smoke
--connect 127.0.0.1:PORT --stream out.jsonl``, or programmatically via
:class:`CampaignClient` / :func:`submit_and_stream`.

The wire protocol (line-oriented JSON) is specified in
:mod:`repro.sim.service.protocol` and in the campaign module docstring;
the server design invariants are documented in
:mod:`repro.sim.service.server`.
"""

from repro.sim.service.protocol import (
    PROTOCOL_VERSION,
    CampaignServiceError,
    decode_message,
    encode_message,
)
from repro.sim.service.client import CampaignClient, submit_and_stream
from repro.sim.service.server import CampaignService, serve_stdio, serve_tcp

__all__ = [
    "PROTOCOL_VERSION",
    "CampaignService",
    "CampaignServiceError",
    "CampaignClient",
    "decode_message",
    "encode_message",
    "serve_stdio",
    "serve_tcp",
    "submit_and_stream",
]
