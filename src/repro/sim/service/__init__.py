"""Campaign-as-a-service: a resident async sweep server for heavy traffic.

The one-shot campaign CLI pays full price for every sweep; this package
turns the runner into a long-lived **service** that many concurrent
clients submit :class:`~repro.sim.campaign.CampaignRequest`\\ s to, with:

* per-request **streaming** of records as cells complete, always in spec
  order, byte-identical to a local pooled run of the same request;
* **cross-request dedup** through the shared content-addressed record
  cache (``spec.key()``): overlapping sweeps from concurrent clients
  compute the union of cells once;
* per-request **priorities**, bounded queues with typed ``queue-full``
  **back-pressure**, **cancellation** that frees queue slots, and crash
  **resume** from the cache.

Run it:  ``python -m repro.sim.service --port 0 --port-file port.txt
--workers 4 --cache sweep-cache`` (or ``--stdio`` for a single piped
client).  Talk to it: ``python -m repro.sim.campaign --matrix smoke
--connect 127.0.0.1:PORT --stream out.jsonl``, or programmatically via
:class:`CampaignClient` / :func:`submit_and_stream`.

**The failure model** (``--workers-proc N``): cells execute on a
supervised fleet of worker *subprocesses* (:class:`WorkerSupervisor`
over :mod:`repro.sim.service.worker`), so a segfault, OOM kill, wedged
cell, or plain SIGKILL takes out one worker, never the service.  The
supervisor observes exactly three failure signals - a closed pipe
(death), heartbeat silence (hang), and the per-cell deadline
``max(timeout_floor, cell_timeout * spec.scale)`` (livelock) - and
responds the same way to each: kill and reap the worker, requeue its
cell with bounded exponential backoff, respawn a replacement while the
respawn budget lasts.  Compute is therefore **at-most-once per
attempt**, and because records are pure functions of their specs and
dedup is content-addressed (``spec.key()``), any recomputation resolves
to the same bytes: **at-most-once compute + dedup = exactly-once
records**, and the client-visible stream is byte-identical to a
fault-free run.  A spec that kills two workers in a row is
**quarantined** - streamed as a typed per-cell
:class:`~repro.sim.campaign.CellErrorRecord` (``domain: "cell_error"``,
``status: "error"``) instead of retried forever, and never cached, so a
restarted service retries it fresh.  :meth:`CampaignService.shutdown`
drains gracefully: executing cells finish into the cache, the rest fail
typed, every open stream gets a ``shutting-down`` frame (``seq``
echoed), and the disk cache is flushed before the fleet stops.

All of this is proven reproducibly by the deterministic chaos harness
(:mod:`repro.sim.service.chaos`): :meth:`ChaosSchedule.seeded` derives a
fault schedule (worker kills in the recv or report phase, silent or
heartbeating stalls, poisoned specs) from one integer seed, the worker
executes its own faults from the ``REPRO_WORKER_CHAOS`` environment
variable, and the property suite (``tests/test_service_chaos.py``) plus
the CI ``chaos-smoke`` job assert stream bytes and slot accounting match
an undisturbed run - ``--chaos "seed=7,kills=2,stalls=1"`` replays any
schedule from the command line.

Observability
-------------

The service is instrumented end to end with :mod:`repro.obs` - a
process-local metrics registry (counters, gauges, histograms) plus a
span tracer - under one hard rule: **telemetry is out-of-band**.  No
metric or span ever enters a spec, a cache key, record bytes, or stream
order; the property suite diffs streams with ``REPRO_OBS=1`` vs ``0``
and requires byte identity.  With telemetry enabled (``--obs`` or
``REPRO_OBS=1``) the server counts submits, per-domain cell
resolutions (replayed/joined/computed), dedup hits, stream first-record
and drain latencies, and the supervised fleet's spawns, losses,
respawns, requeues, and quarantines, plus lazily-read gauges for queue
depth, in-flight cells, worker liveness, and heartbeat age.

Three ways to look at it:

* the ``metrics`` protocol op (:meth:`CampaignClient.metrics`) returns
  a registry snapshot plus recent spans, ``seq``-echoed like any other
  reply - and answers empty series, not an error, when telemetry is off;
* ``python -m repro.sim.campaign --metrics out.json`` dumps a snapshot
  after a CLI or ``--launch`` run (shard dumps are merged);
* ``python -m repro.sim.service.dashboard HOST:PORT`` renders a live
  terminal dashboard - queue depth, fleet health, cells/sec, dedup
  rate, per-domain progress - by polling ``status`` + ``metrics``
  (``examples/dashboard_demo.py`` drives it against a chaos-injected
  fleet).

The wire protocol (line-oriented JSON) is specified in
:mod:`repro.sim.service.protocol` and in the campaign module docstring;
the server design invariants are documented in
:mod:`repro.sim.service.server`.
"""

from repro.sim.service.protocol import (
    PROTOCOL_VERSION,
    CampaignServiceError,
    decode_message,
    encode_message,
)
from repro.sim.service.chaos import ChaosSchedule, WorkerFaultPlan
from repro.sim.service.client import CampaignClient, submit_and_stream
from repro.sim.service.server import CampaignService, serve_stdio, serve_tcp
from repro.sim.service.supervisor import (
    CellFailed,
    WorkerPoolError,
    WorkerSupervisor,
)

__all__ = [
    "PROTOCOL_VERSION",
    "CampaignService",
    "CampaignServiceError",
    "CampaignClient",
    "CellFailed",
    "ChaosSchedule",
    "WorkerFaultPlan",
    "WorkerPoolError",
    "WorkerSupervisor",
    "decode_message",
    "encode_message",
    "serve_stdio",
    "serve_tcp",
    "submit_and_stream",
]
