"""``python -m repro.sim.service`` - run the resident campaign server."""

from __future__ import annotations

import argparse
import asyncio
import os


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.service",
        description="Long-running campaign sweep service: clients submit "
        "CampaignRequests over a line-oriented JSON protocol and stream "
        "records back in spec order; overlapping sweeps dedup through "
        "the shared record cache.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 picks an ephemeral one; the chosen port is "
        "printed and, with --port-file, written to a file)",
    )
    parser.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port number to PATH once listening (for "
        "scripts that started the service with --port 0)",
    )
    parser.add_argument(
        "--stdio",
        action="store_true",
        help="serve exactly one client over stdin/stdout instead of TCP",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="cell worker pool size (2+ uses a process pool; default serial)",
    )
    parser.add_argument(
        "--workers-proc",
        type=int,
        default=None,
        metavar="N",
        help="run cells on a supervised fleet of N worker subprocesses "
        "instead of --workers: crashes/hangs are detected, lost cells "
        "requeue with backoff, dead workers respawn up to a budget",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervised fleet: per-cell hard deadline per unit of spec "
        "scale (a deadline overrun kills the worker and requeues the cell)",
    )
    parser.add_argument(
        "--respawn-budget",
        type=int,
        default=None,
        metavar="N",
        help="supervised fleet: total worker respawns before the pool "
        "declares itself failed",
    )
    parser.add_argument(
        "--quarantine-strikes",
        type=int,
        default=None,
        metavar="N",
        help="supervised fleet: worker-fatal attempts on one spec before "
        "it is quarantined as a per-cell error record (default 2; chaos "
        "runs set it above the scheduled fault count so injected faults "
        "can never quarantine a healthy spec)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help="supervised fleet: worker heartbeat interval (hang detection "
        "window is 4x this)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject a deterministic fault schedule into the supervised "
        "fleet, e.g. 'seed=7,kills=2,stalls=1' (testing/CI only; see "
        "repro.sim.service.chaos)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="shared record cache directory (cross-request and cross-"
        "restart dedup); default is in-memory for the service lifetime",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=8,
        help="bounded queue: max simultaneously-active requests before submits get 'queue-full'",
    )
    parser.add_argument(
        "--max-cells",
        type=int,
        default=100_000,
        help="bounded queue: max total cells across active requests",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="enable repro.obs telemetry for this server (same as "
        "REPRO_OBS=1): the 'metrics' op then reports live counters, "
        "gauges, and histograms.  Out-of-band: record streams are "
        "byte-identical with or without it",
    )
    return parser


async def _amain(args) -> int:
    from repro.sim.service.server import CampaignService, serve_stdio, serve_tcp

    if args.obs:
        from repro import obs

        obs.enable()
    chaos = None
    if args.chaos is not None:
        from repro.sim.service.chaos import ChaosSchedule

        chaos = ChaosSchedule.from_spec(args.chaos, workers=args.workers_proc or 1)
    supervisor_options = {}
    if args.heartbeat is not None:
        supervisor_options["heartbeat"] = args.heartbeat
    if args.quarantine_strikes is not None:
        supervisor_options["quarantine_strikes"] = args.quarantine_strikes
    service = CampaignService(
        workers=args.workers,
        cache=args.cache,
        max_pending=args.max_pending,
        max_active_cells=args.max_cells,
        workers_proc=args.workers_proc,
        cell_timeout=args.cell_timeout,
        respawn_budget=args.respawn_budget,
        chaos=chaos,
        supervisor_options=supervisor_options or None,
    )
    await service.start()
    try:
        if args.stdio:
            await serve_stdio(service)
            return 0
        server = await serve_tcp(service, args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"campaign service listening on {host}:{port}", flush=True)
        if args.port_file:
            # write-then-rename: a polling launcher never reads a
            # half-written port number
            tmp = f"{args.port_file}.{os.getpid()}.tmp"
            with open(tmp, "w", encoding="utf-8") as stream:
                stream.write(f"{port}\n")
            os.replace(tmp, args.port_file)
        async with server:
            await server.serve_forever()
        return 0
    finally:
        await service.shutdown()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
