"""Live terminal dashboard for a running campaign service.

``python -m repro.sim.service.dashboard HOST:PORT`` polls the service's
``status`` and ``metrics`` ops and redraws one compact frame per
interval: uptime and pool mode, queue depth against its bounds, fleet
health (alive workers, respawns, requeues, quarantines, heartbeat age),
throughput (cells/sec from the delta between polls), dedup rate, and a
per-domain progress breakdown from the ``service.cells.resolved``
counter.  It is a *read-only* client - polling never perturbs record
streams (telemetry is out-of-band by construction) - and works equally
against a server running with telemetry disabled, where the metrics
sections simply render as idle.

The frame is produced by the pure function :func:`render` (status dict
+ metrics dict + previous sample in, list of lines out), so tests drive
it without a terminal, and ``--once --json`` emits the raw sample for
scripts (the CI smoke job uses it to cross-check counter consistency).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from repro.sim.service.client import CampaignClient


def _counter_total(metrics: dict, name: str) -> int:
    """Sum of one counter across its label series (0 when absent)."""
    return sum((metrics.get("counters", {}).get(name) or {}).values())


def _counter_series(metrics: dict, name: str) -> dict:
    return metrics.get("counters", {}).get(name) or {}


def _gauge(metrics: dict, name: str, default=None):
    series = metrics.get("gauges", {}).get(name) or {}
    return next(iter(series.values()), default)


def _bar(value: float, limit: float, width: int = 20) -> str:
    """A bounded ASCII meter: ``[####----------------]``."""
    if limit <= 0:
        return "[" + "-" * width + "]"
    filled = min(width, round(width * min(value, limit) / limit))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def sample(status: dict, metrics: dict) -> dict:
    """The derived quantities one poll contributes (JSON-able).

    ``cells_resolved``/``records_streamed`` are cumulative counters, so
    rates come from differencing two samples; everything else is
    point-in-time.
    """
    resolved = _counter_series(metrics, "service.cells.resolved")
    by_domain: dict = {}
    for key, count in resolved.items():
        labels = dict(part.split("=", 1) for part in key.split(",") if "=" in part)
        domain = labels.get("domain", "?")
        by_domain[domain] = by_domain.get(domain, 0) + count
    return {
        "time": time.time(),
        "uptime_s": status.get("uptime_s", 0.0),
        "pool": status.get("pool", "?"),
        "protocol": status.get("protocol"),
        "active": status.get("active", 0),
        "active_cells": status.get("active_cells", 0),
        "max_pending": status.get("max_pending", 0),
        "max_active_cells": status.get("max_active_cells", 0),
        "inflight": status.get("inflight", 0),
        "cache_hits": status.get("cache_hits", 0),
        "cache_misses": status.get("cache_misses", 0),
        "requests": {
            rid: {k: summary.get(k) for k in ("status", "cells", "ran", "failed")}
            for rid, summary in (status.get("requests") or {}).items()
        },
        "supervisor": status.get("supervisor"),
        "cells_resolved": _counter_total(metrics, "service.cells.resolved"),
        "cells_by_domain": by_domain,
        "records_streamed": _counter_total(metrics, "service.records.streamed"),
        "dedup_hits": _counter_total(metrics, "service.dedup.hits"),
        "cells_failed": _counter_total(metrics, "service.cells.failed"),
        "requests_submitted": _counter_total(metrics, "service.requests.submitted"),
        "heartbeat_age_s": _gauge(metrics, "service.workers.heartbeat_age_s"),
        "workers_alive": _gauge(metrics, "service.workers.alive"),
    }


def render(status: dict, metrics: dict, prev: dict | None = None,
           elapsed: float | None = None) -> list[str]:
    """One dashboard frame as a list of lines (pure; no I/O, no clock).

    ``prev`` is the previous :func:`sample` and ``elapsed`` the seconds
    between the two polls; both may be omitted (rates then show ``-``).
    """
    cur = sample(status, metrics)
    lines = [
        f"campaign service  up {cur['uptime_s']:.1f}s  pool={cur['pool']}"
        f"  protocol={cur['protocol']}",
    ]

    queue = _bar(cur["active"], cur["max_pending"])
    cells = _bar(cur["active_cells"], cur["max_active_cells"])
    lines.append(
        f"queue   {queue} {cur['active']}/{cur['max_pending']} requests"
        f"   cells {cells} {cur['active_cells']}/{cur['max_active_cells']}")

    if elapsed and elapsed > 0 and prev is not None:
        rate = (cur["cells_resolved"] - prev.get("cells_resolved", 0)) / elapsed
        stream_rate = (cur["records_streamed"]
                       - prev.get("records_streamed", 0)) / elapsed
        rate_text = f"{rate:6.1f} cells/s  {stream_rate:6.1f} records/s"
    else:
        rate_text = "     - cells/s       - records/s"
    lookups = cur["cache_hits"] + cur["cache_misses"]
    dedup = (f"{100.0 * cur['cache_hits'] / lookups:5.1f}%"
             if lookups else "    -")
    lines.append(
        f"rate    {rate_text}   dedup {dedup}"
        f"  inflight {cur['inflight']}  failed {cur['cells_failed']}")

    fleet = cur["supervisor"]
    if fleet:
        age = cur["heartbeat_age_s"]
        age_text = f"{age:.2f}s" if isinstance(age, (int, float)) and age >= 0 else "-"
        lines.append(
            f"fleet   {fleet['alive']}/{fleet['workers']} alive"
            f"  lost {fleet['lost']}  respawns {fleet['respawns']}"
            f"/{fleet['respawn_budget']}  requeues {fleet['requeues']}"
            f"  quarantined {fleet['quarantined']}  heartbeat {age_text}")

    if cur["cells_by_domain"]:
        total = sum(cur["cells_by_domain"].values())
        parts = [f"{domain}:{count}" for domain, count
                 in sorted(cur["cells_by_domain"].items())]
        lines.append(f"domains {total} resolved  " + "  ".join(parts))

    for rid, summary in sorted(cur["requests"].items()):
        done = summary.get("ran") or 0
        cells_total = summary.get("cells") or 0
        progress = _bar(done, cells_total, width=12)
        lines.append(
            f"  {rid:<12} {summary.get('status', '?'):<9} {progress}"
            f" {done}/{cells_total}"
            + (f"  failed {summary['failed']}" if summary.get("failed") else ""))
    if not cur["requests"]:
        lines.append("  (no requests)")
    return lines


async def _poll(host: str, port: int, *, interval: float, frames: int | None,
                as_json: bool, out=None) -> int:
    out = out or sys.stdout
    client = await CampaignClient.connect(host, port)
    prev = None
    prev_time = None
    count = 0
    try:
        while True:
            status = await client.status()
            metrics_reply = await client.metrics()
            metrics = metrics_reply.get("metrics") or {}
            now = time.monotonic()
            elapsed = (now - prev_time) if prev_time is not None else None
            if as_json:
                print(json.dumps(sample(status, metrics), sort_keys=True),
                      file=out, flush=True)
            else:
                frame = render(status, metrics, prev, elapsed)
                print("\n".join(frame) + "\n", file=out, flush=True)
            prev = sample(status, metrics)
            prev_time = now
            count += 1
            if frames is not None and count >= frames:
                return 0
            await asyncio.sleep(interval)
    finally:
        await client.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.service.dashboard",
        description="Live terminal dashboard for a campaign service: "
        "polls the status and metrics ops and renders queue depth, "
        "fleet health, throughput, dedup rate, and per-domain progress.")
    parser.add_argument("address", metavar="HOST:PORT",
                        help="service address, e.g. 127.0.0.1:7321")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between polls (default 1.0)")
    parser.add_argument("--frames", type=int, default=None, metavar="N",
                        help="exit after N frames (default: run until ^C)")
    parser.add_argument("--once", action="store_true",
                        help="poll exactly once and exit (same as --frames 1)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one JSON sample per poll instead of the "
                        "rendered frame (for scripts and CI checks)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    host, _, port_text = args.address.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"bad address {args.address!r}: expected HOST:PORT",
              file=sys.stderr)
        return 2
    frames = 1 if args.once else args.frames
    try:
        return asyncio.run(_poll(host, int(port_text), interval=args.interval,
                                 frames=frames, as_json=args.as_json))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
