"""Wire protocol for the campaign service: one JSON message per line.

Both directions speak the same framing: a message is one JSON object,
canonically encoded (sorted keys, no whitespace), terminated by a single
``\\n``.  Clients tag each message with a ``seq`` number; the server
echoes that ``seq`` on every reply the message provoked - the direct
acknowledgement, and, for ``stream``, every pushed ``record`` plus the
final ``done`` - so one connection can multiplex many operations.

Failures are *typed*: the server never closes a connection on a bad
message, it answers ``{"op": "error", "ok": false, "error": <code>,
"message": ...}``.  Codes:

=================  =====================================================
``bad-message``    the line was not a JSON object with an ``op``
``unknown-op``     the ``op`` is not one of
                   submit/stream/status/cancel/metrics
``bad-request``    the submit payload is not a valid CampaignRequest
``queue-full``     back-pressure: the bounded request/cell queues are at
                   capacity; retry after a request finishes or is
                   cancelled
``duplicate-request``  the client-chosen request id is already taken
``unknown-request``    no request with that id
``request-failed``     a cell raised while computing (stream ``done``
                       with ``status: "error"``)
``shutting-down``  the service is draining: new submits are refused, and
                   every stream left open when the drain started is
                   answered with this frame (its ``seq`` echoed) after
                   the last drained record - never a bare closed socket
``connection-closed``  client-side: the transport dropped mid-operation
``connect-failed``     client-side: the service could not be reached
                       within the connect timeout and retry budget
``timeout``            client-side: a reply did not arrive within the
                       read timeout
=================  =====================================================

:class:`CampaignServiceError` is the client-facing exception carrying the
code; tests match on ``exc.code``, not message text.

**status** (``{"op": "status", "seq": S}``) answers with one frame whose
payload schema is stable and additive (new keys may appear; existing
keys keep their meaning):

=====================  ================================================
``op``                 ``"status"`` (the ``seq`` is echoed alongside)
``protocol``           :data:`PROTOCOL_VERSION` of the serving process
``uptime_s``           seconds since :meth:`CampaignService.start`
                       (monotonic clock, rounded to milliseconds)
``pool``               worker-pool mode: ``"workers-proc"`` (supervised
                       worker-subprocess fleet), ``"process-pool"``
                       (multiprocessing pool), or ``"in-proc"``
``active``             requests not yet finished or cancelled
``active_cells``       cells belonging to active requests
``computed``           cells computed since start (global)
``cache_hits`` /       shared record-cache outcomes since start
``cache_misses``
``inflight``           cells currently being computed
``workers``            configured worker count
``supervised``         true under the supervised fleet
``max_pending`` /      the bounded queue capacities (back-pressure)
``max_active_cells``
``requests``           per-request objects: ``id``, ``state``,
                       ``cells``, ``streamed``, ``priority``
``supervisor``         (supervised fleet only) the supervisor summary:
                       spawned/lost/respawns/requeues/quarantined plus
                       per-worker state
=====================  ================================================

**metrics** (``{"op": "metrics", "seq": S}``) answers ``{"op":
"metrics", "seq": S, "metrics": <registry snapshot>, "spans": [...]}``
- the server's :mod:`repro.obs` registry snapshot (counters, gauges,
histograms keyed by name then label set) plus recent spans.  Telemetry
is strictly out-of-band: the snapshot never influences scheduling,
caching, or record bytes, and a server running with telemetry disabled
answers with empty series rather than an error.

A cell the supervised worker fleet gave up on (quarantined after killing
two workers in a row, or raising cleanly in-worker) is **not** a
transport error: it streams as an ordinary ``record`` push whose record
has ``domain: "cell_error"`` and ``status: "error"`` - per-cell failure
is data, request-level failure is an error frame.

**Worker wire** (supervisor <-> worker subprocess, same line-JSON
framing over the worker's stdin/stdout; internal to
:mod:`repro.sim.service.supervisor` / ``.worker``): the supervisor sends
``{"op": "cell", "job": J, "spec": ...}`` and ``{"op": "exit"}``; the
worker answers ``{"op": "ready"}`` once booted, ``{"op": "heartbeat",
"job": J}`` while computing, and one ``result`` or ``cell-error`` frame
per cell.
"""

from __future__ import annotations

import json

#: protocol revision, reported in every ``status`` payload; bump on
#: incompatible change (adding an op or a status key is compatible)
PROTOCOL_VERSION = 1

#: client -> server operations
OPS = ("submit", "stream", "status", "cancel", "metrics")


class CampaignServiceError(Exception):
    """A typed failure from the campaign service (or its transport)."""

    def __init__(self, code: str, message: str = ""):
        super().__init__(f"{code}: {message}" if message else code)
        self.code = code
        self.detail = message


def encode_message(message: dict) -> bytes:
    """One message in the canonical frame: sorted keys, one line."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line) -> dict:
    """Parse one frame; raise ``bad-message`` on anything malformed."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise CampaignServiceError("bad-message", f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise CampaignServiceError(
            "bad-message",
            f"expected an object, got {type(payload).__name__}",
        )
    if "op" not in payload:
        raise CampaignServiceError("bad-message", "missing 'op'")
    return payload


def error_payload(code: str, message: str, *, seq=None, rid=None) -> dict:
    """The server's typed-error reply frame."""
    payload = {"op": "error", "ok": False, "error": code, "message": message}
    if seq is not None:
        payload["seq"] = seq
    if rid is not None:
        payload["id"] = rid
    return payload


def raise_on_error(payload: dict) -> dict:
    """Client side: turn an error frame into :class:`CampaignServiceError`."""
    if payload.get("op") == "error" or payload.get("ok") is False:
        raise CampaignServiceError(payload.get("error", "unknown"), payload.get("message", ""))
    return payload
