"""Deterministic simulation substrate: event scheduler, tracing, seeded RNG.

Every stochastic or time-driven component in :mod:`repro` (the OSEK kernel,
the CAN bus, the soft-error injector) runs on top of this subpackage so that
simulations are reproducible bit-for-bit from a seed.
"""

from repro.sim.events import Event, EventScheduler, SimulationEnded
from repro.sim.rng import DeterministicRng
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventScheduler",
    "SimulationEnded",
    "DeterministicRng",
    "TraceRecord",
    "TraceRecorder",
]
