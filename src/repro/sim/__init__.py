"""Deterministic simulation substrate: event scheduler, tracing, seeded RNG.

Every stochastic or time-driven component in :mod:`repro` (the OSEK kernel,
the CAN bus, the soft-error injector) runs on top of this subpackage so that
simulations are reproducible bit-for-bit from a seed.
"""

from repro.sim.events import Event, EventScheduler, SimulationEnded
from repro.sim.rng import DeterministicRng
from repro.sim.trace import TraceRecord, TraceRecorder
# campaign last: it lazily imports the higher layers (codegen, core,
# workloads) inside its functions, never at module import time.
from repro.sim.campaign import (
    CampaignRequest,
    CampaignResult,
    CampaignStreamError,
    InterruptProfile,
    ScenarioRecord,
    ScenarioSpec,
    available_matrices,
    execute_request,
    interrupt_sweep_matrix,
    read_campaign_stream,
    run_campaign,
    run_scenario,
    shard_bounds,
    smoke_matrix,
    table1_matrix,
)

__all__ = [
    "Event",
    "EventScheduler",
    "SimulationEnded",
    "DeterministicRng",
    "TraceRecord",
    "TraceRecorder",
    "CampaignRequest",
    "CampaignResult",
    "CampaignStreamError",
    "InterruptProfile",
    "ScenarioRecord",
    "ScenarioSpec",
    "available_matrices",
    "execute_request",
    "interrupt_sweep_matrix",
    "read_campaign_stream",
    "run_campaign",
    "run_scenario",
    "shard_bounds",
    "smoke_matrix",
    "table1_matrix",
]
