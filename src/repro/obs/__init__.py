"""Determinism-safe telemetry: one metrics registry + span tracer.

Every layer of the system - the four-tier execution engine, the
campaign runner, the sweep service and its supervised worker fleet, and
the parallel co-simulation - instruments itself through this package:
labeled counters, gauges, and fixed-layout histograms
(:mod:`repro.obs.metrics`) plus a bounded span tracer
(:mod:`repro.obs.tracing`).

**The one hard rule is that telemetry is out-of-band.**  The repo's
foundational guarantee is that records are pure functions of specs and
streams are byte-identical across workers, shards, engine tiers, quanta,
and faults; no metric or span value may therefore enter a spec, a cache
key, a record field, or the bytes/order of a stream.  Telemetry on and
off must be observationally equivalent to every record consumer -
property-tested in ``tests/test_obs.py`` by diffing campaign CLI,
shard-launcher, and service streams under ``REPRO_OBS=1`` vs ``0``.

Three export surfaces, all read-only:

* the service's ``metrics`` protocol op (snapshot JSON, ``seq``-echoed);
* ``python -m repro.sim.campaign ... --metrics out.json`` dumps (the
  shard launcher merges per-shard dumps via :func:`merge_snapshots`);
* the live terminal dashboard, ``python -m repro.sim.service.dashboard
  HOST:PORT``.

``obs.enable()`` / ``obs.disable()`` flip the whole process's telemetry
(metrics and spans share the switch); ``REPRO_OBS=0`` in the
environment starts it off, which is how the bare arms of overhead
benchmarks and the telemetry-off sides of the property tests run.
"""

from repro.obs import metrics, tracing
from repro.obs.metrics import (
    FAST_SECONDS_BUCKETS,
    MAX_SERIES,
    REGISTRY,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    dump,
    gauge,
    histogram,
    merge_snapshots,
    snapshot,
)
from repro.obs.tracing import TRACER, Tracer, span


def enable() -> None:
    """Turn process telemetry on (metrics and spans share the switch)."""
    REGISTRY.enable()


def disable() -> None:
    """Turn process telemetry off; prebound handles become no-ops."""
    REGISTRY.disable()


def enabled() -> bool:
    return REGISTRY.enabled


__all__ = [
    "FAST_SECONDS_BUCKETS",
    "MAX_SERIES",
    "REGISTRY",
    "SECONDS_BUCKETS",
    "TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "counter",
    "disable",
    "dump",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "merge_snapshots",
    "metrics",
    "snapshot",
    "span",
    "tracing",
]
