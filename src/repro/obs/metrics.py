"""Process-local metrics: labeled counters, gauges, and histograms.

One :class:`MetricsRegistry` per process (the module-level ``REGISTRY``)
holds every metric; layers prebind series handles at import time
(``_CELLS = counter("campaign.cells.computed").labels(domain="osek")``)
so hot paths pay one attribute add, gated on ``registry.enabled``, and
nothing else.

**The out-of-band contract.**  Metric state may observe the system but
never steer it: no value in this registry may reach a
:class:`~repro.sim.campaign.ScenarioSpec`, a ``spec.key()``, a record
field, or the bytes/order of a record stream.  Telemetry on and
telemetry off must produce byte-identical campaign output - the property
``tests/test_obs.py`` enforces by diffing streams with ``REPRO_OBS=1``
vs ``REPRO_OBS=0``.  Snapshots travel on their own channels only: the
service's ``metrics`` op, ``--metrics out.json`` dumps, and the
dashboard.

Semantics, deliberately small:

* **Counter** - monotonically non-decreasing (``add`` rejects negative
  increments, so successive snapshots never show a counter shrink);
* **Gauge** - last-write-wins value, or a lazily evaluated callback
  (``set_fn``) sampled at snapshot time (queue depths, heartbeat age);
* **Histogram** - fixed bucket layout chosen at creation
  (:data:`SECONDS_BUCKETS` / :data:`FAST_SECONDS_BUCKETS`), cumulative
  ``le`` counts plus ``count``/``sum``; layouts are part of the metric's
  identity so shard snapshots merge bucket-by-bucket.

**Label cardinality is bounded**: a metric holds at most
:data:`MAX_SERIES` label combinations; the excess folds into one
``other="overflow"`` series instead of growing without limit (a campaign
sweeping a million cells must not allocate a million series).

Everything is process-local.  Worker subprocesses and multiprocessing
pool children accumulate into their own registries, which die with them;
parent-side metrics therefore time and count at *observation* points
(the dispatcher's await, the cache-put callback), and the shard launcher
merges child ``--metrics`` dumps explicitly (:func:`merge_snapshots`).
Increments are plain attribute updates - atomic enough under the GIL for
telemetry; series *creation* is locked.

``REPRO_OBS=0`` in the environment disables the default registry at
import (benchmarks use it to measure the bare path; the flag inherits
into launcher shards and fleet workers automatically).
"""

from __future__ import annotations

import json
import os
import threading

#: environment switch for the default registry: "0" starts it disabled
ENV_FLAG = "REPRO_OBS"

#: default latency layout (seconds): cells, requests, stream drains
SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: fine-grained layout (seconds): superblock compiles, barrier waits
FAST_SECONDS_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 0.1,
)

#: label-combination cap per metric; the excess folds into one series
MAX_SERIES = 64

#: the fold-target label key for past-the-cap combinations
OVERFLOW_KEY = (("other", "overflow"),)


class _CounterSeries:
    """One labeled counter cell; ``add`` is the hot-path handle."""

    __slots__ = ("_registry", "value")

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self.value = 0

    def add(self, n=1) -> None:
        if self._registry.enabled:
            if n < 0:
                raise ValueError(f"counters are monotonic; cannot add {n}")
            self.value += n

    inc = add


class _GaugeSeries:
    """One labeled gauge cell: set/add, or a snapshot-time callback."""

    __slots__ = ("_registry", "value", "_fn")

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self.value = 0
        self._fn = None

    def set(self, value) -> None:
        if self._registry.enabled:
            self.value = value

    def add(self, delta) -> None:
        if self._registry.enabled:
            self.value += delta

    def set_fn(self, fn) -> None:
        """Evaluate ``fn()`` lazily at snapshot time (last caller wins)."""
        self._fn = fn

    def read(self):
        if self._fn is not None:
            try:
                return self._fn()
            except Exception:
                return self.value  # a dead callback never breaks a snapshot
        return self.value


class _HistogramSeries:
    """One labeled histogram cell with a fixed cumulative-``le`` layout."""

    __slots__ = ("_registry", "buckets", "counts", "count", "sum")

    def __init__(self, registry: MetricsRegistry, buckets: tuple):
        self._registry = registry
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value) -> None:
        if not self._registry.enabled:
            return
        self.count += 1
        self.sum += value
        for index, le in enumerate(self.buckets):
            if value <= le:
                self.counts[index] += 1
                return
        self.counts[-1] += 1


class Metric:
    """Base: a named family of series keyed by sorted label items."""

    kind = ""

    def __init__(self, name: str, help: str, registry: MetricsRegistry):
        self.name = name
        self.help = help
        self._registry = registry
        self._series: dict[tuple, object] = {}

    def _make_series(self):
        raise NotImplementedError

    def labels(self, **labels):
        """The series for one label combination (created on first use).

        Past :data:`MAX_SERIES` distinct combinations, every new one
        folds into the single overflow series - bounded cardinality by
        construction, not by operator discipline.
        """
        key = tuple(sorted(labels.items()))
        series = self._series.get(key)
        if series is None:
            with self._registry._lock:
                series = self._series.get(key)
                if series is None:
                    if len(self._series) >= MAX_SERIES and key not in self._series:
                        key = OVERFLOW_KEY
                        series = self._series.get(key)
                    if series is None:
                        series = self._make_series()
                        self._series[key] = series
        return series

    @property
    def series_count(self) -> int:
        return len(self._series)


class Counter(Metric):
    kind = "counter"

    def _make_series(self):
        return _CounterSeries(self._registry)

    def inc(self, n=1, **labels) -> None:
        self.labels(**labels).add(n)

    add = inc


class Gauge(Metric):
    kind = "gauge"

    def _make_series(self):
        return _GaugeSeries(self._registry)

    def set(self, value, **labels) -> None:
        self.labels(**labels).set(value)

    def set_fn(self, fn, **labels) -> None:
        self.labels(**labels).set_fn(fn)


class Histogram(Metric):
    kind = "histogram"

    def __init__(self, name, help, registry, buckets=SECONDS_BUCKETS):
        super().__init__(name, help, registry)
        self.buckets = tuple(buckets)

    def _make_series(self):
        return _HistogramSeries(self._registry, self.buckets)

    def observe(self, value, **labels) -> None:
        self.labels(**labels).observe(value)


def _label_key(key: tuple) -> str:
    """The snapshot form of one label combination (``""`` = unlabeled)."""
    return ",".join(f"{k}={v}" for k, v in key)


class MetricsRegistry:
    """All metrics of one process; snapshots are canonical JSON-able dicts."""

    def __init__(self, enabled: bool | None = None):
        if enabled is None:
            enabled = os.environ.get(ENV_FLAG, "1") != "0"
        self.enabled = enabled
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- creation (get-or-create: prebinding is idempotent) -------------

    def _get(self, cls, name: str, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, help, self, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as a {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets=SECONDS_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    # -- switches --------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every series *in place* - prebound handles stay live."""
        with self._lock:
            for metric in self._metrics.values():
                for series in metric._series.values():
                    if isinstance(series, _HistogramSeries):
                        series.counts = [0] * len(series.counts)
                        series.count = 0
                        series.sum = 0.0
                    else:
                        series.value = 0

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything, as one JSON-able dict (the ``metrics`` op payload)."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for name, metric in sorted(self._metrics.items()):
            series = {_label_key(key): value
                      for key, value in sorted(metric._series.items())}
            if metric.kind == "counter":
                counters[name] = {k: s.value for k, s in series.items()}
            elif metric.kind == "gauge":
                gauges[name] = {k: s.read() for k, s in series.items()}
            else:
                histograms[name] = {
                    k: {"count": s.count, "sum": s.sum,
                        "le": list(s.buckets), "buckets": list(s.counts)}
                    for k, s in series.items()
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


#: the process-wide default registry every layer prebinds against
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "") -> Counter:
    return REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return REGISTRY.gauge(name, help)


def histogram(name: str, help: str = "", buckets=SECONDS_BUCKETS) -> Histogram:
    return REGISTRY.histogram(name, help, buckets=buckets)


def snapshot() -> dict:
    return REGISTRY.snapshot()


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Aggregate snapshots from several processes (the launcher recipe).

    Counters and histogram buckets sum (the layouts must match - they are
    part of the metric's identity); gauges take the max, the only
    aggregate that is meaningful for point-in-time values like queue
    depth without inventing per-process identity labels.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for name, series in snap.get("counters", {}).items():
            out = merged["counters"].setdefault(name, {})
            for key, value in series.items():
                out[key] = out.get(key, 0) + value
        for name, series in snap.get("gauges", {}).items():
            out = merged["gauges"].setdefault(name, {})
            for key, value in series.items():
                out[key] = max(out.get(key, value), value)
        for name, series in snap.get("histograms", {}).items():
            out = merged["histograms"].setdefault(name, {})
            for key, cell in series.items():
                into = out.get(key)
                if into is None:
                    out[key] = {"count": cell["count"], "sum": cell["sum"],
                                "le": list(cell["le"]),
                                "buckets": list(cell["buckets"])}
                    continue
                if into["le"] != cell["le"]:
                    raise ValueError(
                        f"histogram {name!r} bucket layouts differ; "
                        f"snapshots are not mergeable")
                into["count"] += cell["count"]
                into["sum"] += cell["sum"]
                into["buckets"] = [a + b for a, b in
                                   zip(into["buckets"], cell["buckets"])]
    return merged


def dump(path, registry: MetricsRegistry | None = None) -> None:
    """Write one snapshot to ``path`` as JSON (write-then-rename)."""
    snap = (registry or REGISTRY).snapshot()
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as stream:
        json.dump(snap, stream, indent=1, sort_keys=True)
        stream.write("\n")
    os.replace(tmp, path)
