"""Lightweight span tracing: cell-, request-, and quantum-scoped timings.

A *span* is one named, timed region with optional attributes and a
parent link (spans opened inside another span on the same task/thread
nest via a :mod:`contextvars` stack, so async service code and pool
threads each see their own ancestry).  Finished spans land in a bounded
ring buffer - the tracer never grows without limit and dropping the
oldest spans is the designed behaviour, not a failure.

The same out-of-band contract as :mod:`repro.obs.metrics` applies: span
state never reaches specs, cache keys, records, or stream bytes, and the
tracer obeys the same enabled switch as the default metrics registry
(one flag turns all telemetry off; ``REPRO_OBS=0`` starts it off).

Usage::

    from repro import obs

    with obs.span("cell", domain=spec.domain, label=spec.label):
        record = domain.run(spec)

Disabled spans cost one attribute check; enabled spans cost two
``perf_counter`` calls and one ring append.
"""

from __future__ import annotations

import contextvars
import itertools
from collections import deque
from time import perf_counter

from repro.obs import metrics as _metrics

#: finished spans kept per tracer (oldest dropped first)
CAPACITY = 2048


class _Span:
    """One open span; context-manager protocol closes and records it."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "_start", "_token", "_live")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = None
        self._start = 0.0
        self._token = None
        self._live = False

    def __enter__(self) -> _Span:
        if not self._tracer._registry.enabled:
            return self
        self._live = True
        self.span_id = next(self._tracer._ids)
        parent = self._tracer._current.get()
        self.parent_id = parent.span_id if parent is not None else None
        self._token = self._tracer._current.set(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._live:
            return
        duration = perf_counter() - self._start
        self._tracer._current.reset(self._token)
        self._tracer._spans.append({
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": self.attrs,
            "start_s": round(self._start - self._tracer._epoch, 6),
            "duration_s": round(duration, 6),
            "error": exc_type.__name__ if exc_type is not None else None,
        })


class Tracer:
    """A bounded ring of finished spans plus the open-span stack."""

    def __init__(self, capacity: int = CAPACITY,
                 registry: _metrics.MetricsRegistry | None = None):
        self._spans: deque = deque(maxlen=capacity)
        self._current: contextvars.ContextVar = contextvars.ContextVar(
            "repro-obs-span", default=None)
        self._ids = itertools.count(1)
        self._registry = registry if registry is not None else _metrics.REGISTRY
        self._epoch = perf_counter()

    def span(self, name: str, **attrs) -> _Span:
        """Open one span as a context manager (no-op while disabled)."""
        return _Span(self, name, attrs)

    def snapshot(self, limit: int = 100) -> list[dict]:
        """The most recent finished spans, oldest first."""
        spans = list(self._spans)
        return spans[-limit:] if limit else spans

    def clear(self) -> None:
        self._spans.clear()


#: the process-wide default tracer (shares the default registry's switch)
TRACER = Tracer()


def span(name: str, **attrs) -> _Span:
    """Open a span on the default tracer."""
    return TRACER.span(name, **attrs)
