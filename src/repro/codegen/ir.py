"""A small typed IR for the benchmark kernels.

Kernels are written once against :class:`IrBuilder` and lowered to all
three instruction sets by the backends in this package.  That is what
makes the paper's Table 1 comparison *generated* rather than hard-coded:
the same kernel definition produces genuinely different instruction
sequences (and therefore code sizes and cycle counts) per ISA, with the
ISA-specific expansions (software divide on ARM7, mask sequences instead
of bitfield ops on Thumb, IT blocks on Thumb-2, ...) supplied by each
backend.

The IR is deliberately low-level - virtual registers, explicit loads and
stores, structured only by labels and branches - so the lowering is an
honest instruction-selection problem rather than a compiler project.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

BINARY_OPS = frozenset({
    "add", "sub", "mul", "and", "orr", "eor", "bic",
    "lsl", "lsr", "asr", "ror", "udiv", "sdiv",
})
UNARY_OPS = frozenset({"mov", "mvn", "neg", "clz", "rbit", "rev", "sxtb", "sxth", "uxtb", "uxth"})
CMP_CONDS = frozenset({"eq", "ne", "lt", "le", "gt", "ge", "lo", "ls", "hi", "hs"})
LOAD_SIZES = frozenset({1, 2, 4, -1, -2})   # negative = sign-extended
STORE_SIZES = frozenset({1, 2, 4})


@dataclass(frozen=True)
class VReg:
    """A virtual register."""

    index: int
    name: str = ""

    def __repr__(self) -> str:
        return f"%{self.name or self.index}"


Value = VReg | int  # operands are virtual registers or immediates


@dataclass
class Op:
    """One IR operation.  Field meaning depends on ``kind``:

    ====================  =================================================
    const                 dst = imm
    mov/mvn/neg/...       dst = op(a)
    add/sub/...           dst = a OP b
    bfi                   dst[lsb+w-1:lsb] = a[w-1:0]   (b unused)
    ubfx / sbfx           dst = a[lsb+w-1:lsb] (zero/sign extended)
    load                  dst = mem[a + offset] (size bytes; <0 = signed)
    load_idx              dst = mem[a + (b << shift)]
    store                 mem[a + offset] = b
    store_idx             mem[a + (b << shift)] = dst  (dst reused as src)
    label                 name
    br                    target
    brcond                if (a CMP b) goto target
    select                dst = (a CMP b) ? t : f
    switch                jump targets[a] (dense 0..n-1; falls to next op
                          when a out of range)
    ret                   return a
    ====================  =================================================
    """

    kind: str
    dst: VReg | None = None
    a: Value | None = None
    b: Value | None = None
    cond: str | None = None
    t: Value | None = None
    f: Value | None = None
    offset: int = 0
    size: int = 4
    shift: int = 0
    lsb: int = 0
    width: int = 0
    name: str = ""
    target: str = ""
    targets: tuple[str, ...] = ()


@dataclass
class Function:
    """An IR function: name, parameters, and a linear op list."""

    name: str
    params: list[VReg]
    ops: list[Op] = field(default_factory=list)
    vreg_count: int = 0

    def labels(self) -> dict[str, int]:
        return {op.name: index for index, op in enumerate(self.ops) if op.kind == "label"}

    def validate(self) -> None:
        labels = self.labels()
        defined: set[int] = {p.index for p in self.params}
        for op in self.ops:
            for operand in (op.a, op.b, op.t, op.f):
                if isinstance(operand, VReg) and operand.index not in defined:
                    raise ValueError(
                        f"{self.name}: {operand!r} used before definition in {op.kind}")
            if op.dst is not None and op.kind not in ("store_idx",):
                defined.add(op.dst.index)
            if op.kind in ("br", "brcond") and op.target not in labels:
                raise ValueError(f"{self.name}: branch to unknown label {op.target!r}")
            if op.kind == "switch":
                for target in op.targets:
                    if target not in labels:
                        raise ValueError(f"{self.name}: switch to unknown label {target!r}")
            if op.kind == "brcond" and op.cond not in CMP_CONDS:
                raise ValueError(f"{self.name}: bad condition {op.cond!r}")


class IrBuilder:
    """Fluent construction API for :class:`Function`."""

    def __init__(self, name: str, num_params: int = 0) -> None:
        self._counter = itertools.count()
        params = [VReg(next(self._counter), f"arg{i}") for i in range(num_params)]
        self.fn = Function(name=name, params=params)

    # ------------------------------------------------------------------
    def _new(self, name: str = "") -> VReg:
        return VReg(next(self._counter), name)

    def _emit(self, op: Op) -> VReg | None:
        self.fn.ops.append(op)
        return op.dst

    @property
    def params(self) -> list[VReg]:
        return self.fn.params

    # -- constants and moves -------------------------------------------
    def const(self, value: int, name: str = "") -> VReg:
        dst = self._new(name)
        self._emit(Op("const", dst=dst, a=value & 0xFFFFFFFF))
        return dst

    def mov(self, a: Value, name: str = "") -> VReg:
        dst = self._new(name)
        self._emit(Op("mov", dst=dst, a=a))
        return dst

    def assign(self, dst: VReg, a: Value) -> VReg:
        """Re-assign an existing vreg (for loop-carried values)."""
        self._emit(Op("mov", dst=dst, a=a))
        return dst

    # -- arithmetic ------------------------------------------------------
    def _binary(self, kind: str, a: Value, b: Value, name: str = "") -> VReg:
        dst = self._new(name)
        self._emit(Op(kind, dst=dst, a=a, b=b))
        return dst

    def add(self, a, b, name=""):
        return self._binary("add", a, b, name)

    def sub(self, a, b, name=""):
        return self._binary("sub", a, b, name)

    def mul(self, a, b, name=""):
        return self._binary("mul", a, b, name)

    def udiv(self, a, b, name=""):
        return self._binary("udiv", a, b, name)

    def sdiv(self, a, b, name=""):
        return self._binary("sdiv", a, b, name)

    def and_(self, a, b, name=""):
        return self._binary("and", a, b, name)

    def orr(self, a, b, name=""):
        return self._binary("orr", a, b, name)

    def eor(self, a, b, name=""):
        return self._binary("eor", a, b, name)

    def bic(self, a, b, name=""):
        return self._binary("bic", a, b, name)

    def lsl(self, a, b, name=""):
        return self._binary("lsl", a, b, name)

    def lsr(self, a, b, name=""):
        return self._binary("lsr", a, b, name)

    def asr(self, a, b, name=""):
        return self._binary("asr", a, b, name)

    def ror(self, a, b, name=""):
        return self._binary("ror", a, b, name)

    def _unary(self, kind: str, a: Value, name: str = "") -> VReg:
        dst = self._new(name)
        self._emit(Op(kind, dst=dst, a=a))
        return dst

    def mvn(self, a, name=""):
        return self._unary("mvn", a, name)

    def neg(self, a, name=""):
        return self._unary("neg", a, name)

    def clz(self, a, name=""):
        return self._unary("clz", a, name)

    def rbit(self, a, name=""):
        return self._unary("rbit", a, name)

    def rev(self, a, name=""):
        return self._unary("rev", a, name)

    def sxtb(self, a, name=""):
        return self._unary("sxtb", a, name)

    def sxth(self, a, name=""):
        return self._unary("sxth", a, name)

    def uxtb(self, a, name=""):
        return self._unary("uxtb", a, name)

    def uxth(self, a, name=""):
        return self._unary("uxth", a, name)

    # -- bitfields (the paper's section 2.1 feature) ---------------------
    def bfi(self, dst: VReg, src: Value, lsb: int, width: int) -> VReg:
        self._emit(Op("bfi", dst=dst, a=src, lsb=lsb, width=width))
        return dst

    def ubfx(self, a: Value, lsb: int, width: int, name: str = "") -> VReg:
        dst = self._new(name)
        self._emit(Op("ubfx", dst=dst, a=a, lsb=lsb, width=width))
        return dst

    def sbfx(self, a: Value, lsb: int, width: int, name: str = "") -> VReg:
        dst = self._new(name)
        self._emit(Op("sbfx", dst=dst, a=a, lsb=lsb, width=width))
        return dst

    # -- memory -----------------------------------------------------------
    def load(self, base: VReg, offset: int = 0, size: int = 4, name: str = "") -> VReg:
        if size not in LOAD_SIZES:
            raise ValueError(f"bad load size {size}")
        dst = self._new(name)
        self._emit(Op("load", dst=dst, a=base, offset=offset, size=size))
        return dst

    def load_idx(self, base: VReg, index: Value, shift: int = 0, size: int = 4,
                 name: str = "") -> VReg:
        if size not in LOAD_SIZES:
            raise ValueError(f"bad load size {size}")
        dst = self._new(name)
        self._emit(Op("load_idx", dst=dst, a=base, b=index, shift=shift, size=size))
        return dst

    def store(self, value: Value, base: VReg, offset: int = 0, size: int = 4) -> None:
        if size not in STORE_SIZES:
            raise ValueError(f"bad store size {size}")
        self._emit(Op("store", a=base, b=value, offset=offset, size=size))

    def store_idx(self, value: VReg, base: VReg, index: Value, shift: int = 0,
                  size: int = 4) -> None:
        if size not in STORE_SIZES:
            raise ValueError(f"bad store size {size}")
        self._emit(Op("store_idx", dst=value, a=base, b=index, shift=shift, size=size))

    # -- control flow -----------------------------------------------------
    def label(self, name: str) -> None:
        self._emit(Op("label", name=name))

    def br(self, target: str) -> None:
        self._emit(Op("br", target=target))

    def brcond(self, cond: str, a: Value, b: Value, target: str) -> None:
        if cond not in CMP_CONDS:
            raise ValueError(f"bad condition {cond!r}")
        self._emit(Op("brcond", cond=cond, a=a, b=b, target=target))

    def select(self, cond: str, a: Value, b: Value, t: Value, f: Value,
               name: str = "") -> VReg:
        if cond not in CMP_CONDS:
            raise ValueError(f"bad condition {cond!r}")
        for operand in (t, f):
            if isinstance(operand, int) and not 0 <= operand <= 255:
                raise ValueError(
                    "select arms must be vregs or 0..255 immediates; "
                    "hoist larger constants with const()")
        dst = self._new(name)
        self._emit(Op("select", dst=dst, cond=cond, a=a, b=b, t=t, f=f))
        return dst

    def switch(self, index: Value, targets: list[str]) -> None:
        self._emit(Op("switch", a=index, targets=tuple(targets)))

    def ret(self, value: Value) -> None:
        self._emit(Op("ret", a=value))

    # ------------------------------------------------------------------
    def build(self) -> Function:
        self.fn.vreg_count = next(self._counter)
        self.fn.validate()
        return self.fn
