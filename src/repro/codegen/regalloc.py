"""Linear-scan register allocation for kernel lowering.

Live ranges are computed textually and then extended across loop back
edges (a value read inside a loop body stays live for the whole loop, or
the next iteration would read a clobbered register).  There is no
spilling: kernels are written to fit the target's register budget, and the
allocator raises :class:`AllocationError` if one does not - a loud failure
beats silently wrong code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.ir import Function, VReg


class AllocationError(Exception):
    """Register pressure exceeded the ISA's allocatable set."""


@dataclass
class Allocation:
    """vreg index -> physical register, plus prologue bookkeeping."""

    mapping: dict[int, int]
    used_registers: set[int]

    def reg(self, operand: VReg) -> int:
        return self.mapping[operand.index]

    def callee_saved_used(self, callee_saved: tuple[int, ...] = (4, 5, 6, 7, 8, 9, 10, 11)) -> list[int]:
        return sorted(r for r in self.used_registers if r in callee_saved)


def _operands_of(op) -> list[VReg]:
    regs = [v for v in (op.a, op.b, op.t, op.f) if isinstance(v, VReg)]
    if op.kind == "store_idx" and op.dst is not None:
        regs.append(op.dst)  # dst is a *source* for store_idx
    return regs


def live_ranges(fn: Function) -> dict[int, tuple[int, int]]:
    """(first_def, last_use) per vreg, extended across loop back edges."""
    ranges: dict[int, list[int]] = {}

    def touch(index: int, position: int) -> None:
        if index not in ranges:
            ranges[index] = [position, position]
        ranges[index][0] = min(ranges[index][0], position)
        ranges[index][1] = max(ranges[index][1], position)

    for param in fn.params:
        touch(param.index, 0)
    for position, op in enumerate(fn.ops):
        for operand in _operands_of(op):
            touch(operand.index, position)
        if op.dst is not None and op.kind != "store_idx":
            touch(op.dst.index, position)

    # loop extension: for each backward branch, ranges overlapping the loop
    # body stretch to cover the whole body
    labels = fn.labels()
    loops: list[tuple[int, int]] = []
    for position, op in enumerate(fn.ops):
        if op.kind in ("br", "brcond") and labels[op.target] < position:
            loops.append((labels[op.target], position))
        if op.kind == "switch":
            for target in op.targets:
                if labels[target] < position:
                    loops.append((labels[target], position))
    # A value defined before a loop and still used inside it must stay
    # allocated until the loop's back edge (the next iteration reads it).
    # Values defined inside the loop are always re-defined before use
    # (the builder's SSA-with-assign discipline), so their starts never
    # move - only ends grow.
    changed = True
    while changed:
        changed = False
        for start, end in loops:
            for bounds in ranges.values():
                if bounds[0] < start and start <= bounds[1] < end:
                    bounds[1] = end
                    changed = True
    return {index: (b[0], b[1]) for index, b in ranges.items()}


def allocate(fn: Function, pool: list[int], param_registers: list[int]) -> Allocation:
    """Assign physical registers.

    ``pool`` is the ordered free list (prefer-low-first for Thumb density).
    Parameters are pinned to ``param_registers`` (AAPCS r0-r3).
    """
    ranges = live_ranges(fn)
    mapping: dict[int, int] = {}
    used: set[int] = set()
    free = [r for r in pool]
    # pin parameters
    for param, reg in zip(fn.params, param_registers):
        mapping[param.index] = reg
        used.add(reg)
        if reg in free:
            free.remove(reg)
    if len(fn.params) > len(param_registers):
        raise AllocationError(f"{fn.name}: more than {len(param_registers)} parameters")

    # events: allocate at range start, free after range end
    starts: dict[int, list[int]] = {}
    ends: dict[int, list[int]] = {}
    for index, (start, end) in ranges.items():
        if index in mapping:
            ends.setdefault(end, []).append(index)
            continue
        starts.setdefault(start, []).append(index)
        ends.setdefault(end, []).append(index)

    active: dict[int, int] = {index: mapping[index] for index in mapping}

    def release(index: int) -> None:
        reg = active.pop(index, None)
        if reg is not None:
            free.append(reg)
            free.sort()

    for position in range(len(fn.ops) + 1):
        # a value's destination may alias a source dying at the same op:
        # every backend handles read-before-write, so free ends first
        for index in ends.get(position, ()):
            release(index)
        for index in starts.get(position, ()):
            if not free:
                raise AllocationError(
                    f"{fn.name}: out of registers at op {position} "
                    f"(pool size {len(pool)}); simplify the kernel or "
                    f"widen the pool")
            reg = free.pop(0)
            mapping[index] = reg
            active[index] = reg
            used.add(reg)
        for index in starts.get(position, ()):
            if ranges[index][1] == position:  # defined and never used
                release(index)
    return Allocation(mapping=mapping, used_registers=used)
