"""Instruction selection: IR -> ARM / Thumb / Thumb-2 assembly items.

Each backend captures its instruction set's character:

* :class:`ArmBackend` - classic 32-bit ARM: 3-address everything,
  conditional execution, rotated immediates, **no** divide/bitfield/MOVW
  (all expanded: software divide helpers, shift-mask sequences, literal
  pools for large constants).
* :class:`ThumbBackend` - 16-bit Thumb: low registers, 2-address ALU ops,
  8-bit immediates, branch diamonds instead of conditional execution, and
  the same expansions as ARM - this is where the extra instructions that
  cost Thumb its 21 % in Table 1 come from.
* :class:`Thumb2Backend` - the paper's contribution: narrow encodings
  where possible, plus MOVW/MOVT, IT blocks, TBB tables, BFI/UBFX/RBIT,
  and hardware SDIV/UDIV.  Its ``const_policy`` knob switches between
  MOVW/MOVT and literal pools for experiment E3.

Helper routines (software divide) are emitted once per program by
:func:`compile_program`.
"""

from __future__ import annotations

import itertools

from repro.codegen.ir import Function, Op, VReg
from repro.codegen.regalloc import Allocation, allocate
from repro.isa.arm32 import encode_arm_immediate
from repro.isa.assembler import (
    AsmItem,
    DeltaDirective,
    Directive,
    Label,
    LiteralRef,
    assemble_items,
    parse_line,
)
from repro.isa.conditions import Condition
from repro.isa.instructions import ISA_ARM, ISA_THUMB, ISA_THUMB2, Mem, Shift, instr
from repro.isa.registers import LR, PC
from repro.isa.thumb import encode_thumb2_imm

_COND = {
    "eq": Condition.EQ, "ne": Condition.NE,
    "lt": Condition.LT, "le": Condition.LE,
    "gt": Condition.GT, "ge": Condition.GE,
    "lo": Condition.CC, "ls": Condition.LS,
    "hi": Condition.HI, "hs": Condition.CS,
}

_BINARY_MNEMONIC = {
    "add": "ADD", "sub": "SUB", "mul": "MUL", "and": "AND",
    "orr": "ORR", "eor": "EOR", "bic": "BIC",
    "lsl": "LSL", "lsr": "LSR", "asr": "ASR", "ror": "ROR",
}

_LOAD_MNEMONIC = {4: "LDR", 2: "LDRH", 1: "LDRB", -1: "LDRSB", -2: "LDRSH"}
_STORE_MNEMONIC = {4: "STR", 2: "STRH", 1: "STRB"}


class LoweringError(Exception):
    """The backend cannot lower this IR construct."""


def _parse_asm(text: str) -> list[AsmItem]:
    items: list[AsmItem] = []
    for line in text.splitlines():
        items.extend(parse_line(line))
    return items


class Backend:
    """Shared lowering machinery (3-address flavoured; Thumb overrides)."""

    isa: str = ""
    pool: list[int] = []
    param_regs = [0, 1, 2, 3]
    scratch: int = 12

    def __init__(self) -> None:
        self._label_counter = itertools.count()
        self.helpers_needed: set[str] = set()

    # ------------------------------------------------------------------
    # per-function state
    # ------------------------------------------------------------------
    def lower_function(self, fn: Function) -> list[AsmItem]:
        self.fn = fn
        self.alloc: Allocation = allocate(fn, list(self.pool), self.param_regs)
        self.items: list[AsmItem] = []
        self.needs_lr = False
        self.exit_label = f"{fn.name}__exit"
        for op in fn.ops:
            self._lower_op(op)
        body = self.items
        saved = self.alloc.callee_saved_used()
        prologue: list[AsmItem] = [Label(fn.name)]
        epilogue: list[AsmItem] = [Label(self.exit_label)]
        if self.needs_lr or saved:
            push_list = tuple(saved + ([LR] if self.needs_lr or saved else []))
            prologue.append(instr("PUSH", reglist=push_list))
            pop_list = tuple(saved + [PC])
            epilogue.append(instr("POP", reglist=pop_list))
        else:
            epilogue.append(instr("BX", rm=LR))
        return prologue + body + epilogue

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------
    def emit(self, item: AsmItem) -> None:
        self.items.append(item)

    def _shift_imm_or_mov(self, kind: str, rd: int, rn: int, amount: int,
                          setflags: bool = False) -> None:
        """Shift-by-immediate that tolerates amount == 0 (a plain move).

        Full-width bitfield extracts (lsb=0, width=32) reduce the mask
        sequence's shifts to zero, which 16-bit Thumb cannot encode as
        LSL/LSR #0."""
        if amount == 0:
            if rd != rn:
                self.emit(instr("MOV", rd=rd, rm=rn))
            return
        self.emit(instr(kind, rd=rd, rn=rn, imm=amount, setflags=setflags))

    def local(self, name: str) -> str:
        return f"{self.fn.name}__{name}"

    def fresh_label(self, hint: str) -> str:
        return f"{self.fn.name}__{hint}_{next(self._label_counter)}"

    def reg(self, operand: VReg) -> int:
        return self.alloc.reg(operand)

    def value_reg(self, operand, preferred: int | None = None) -> int:
        """Physical register holding ``operand`` (materializing ints)."""
        if isinstance(operand, VReg):
            return self.reg(operand)
        target = self.scratch if preferred is None else preferred
        self.materialize(target, operand)
        return target

    def temp_reg(self, exclude: set[int]) -> int:
        """A register safe to use after push (caller must emit the pop)."""
        for candidate in self.pool:
            if candidate not in exclude:
                return candidate
        raise LoweringError("no temp register available")

    # -- ISA-specific hooks ---------------------------------------------
    def materialize(self, reg: int, value: int) -> None:
        raise NotImplementedError

    def imm_ok(self, kind: str, value: int) -> bool:
        raise NotImplementedError

    def setflags_default(self) -> bool:
        return False

    # ------------------------------------------------------------------
    # op dispatch
    # ------------------------------------------------------------------
    def _lower_op(self, op: Op) -> None:
        handler = getattr(self, f"_op_{op.kind}", None)
        if handler is None:
            raise LoweringError(f"{self.isa}: no lowering for {op.kind!r}")
        handler(op)

    # -- trivia -----------------------------------------------------------
    def _op_label(self, op: Op) -> None:
        self.emit(Label(self.local(op.name)))

    def _op_br(self, op: Op) -> None:
        self.emit(instr("B", label=self.local(op.target)))

    def _op_const(self, op: Op) -> None:
        self.materialize(self.reg(op.dst), op.a)

    def _op_mov(self, op: Op) -> None:
        if isinstance(op.a, VReg):
            src = self.reg(op.a)
            dst = self.reg(op.dst)
            if src != dst:
                self.emit(instr("MOV", rd=dst, rm=src))
        else:
            self.materialize(self.reg(op.dst), op.a)

    def _op_ret(self, op: Op) -> None:
        if isinstance(op.a, VReg):
            src = self.reg(op.a)
            if src != 0:
                self.emit(instr("MOV", rd=0, rm=src))
        else:
            self.materialize(0, op.a)
        self.emit(instr("B", label=self.exit_label))

    # -- data processing ---------------------------------------------------
    def _emit_binary(self, mnemonic: str, dst: int, a: int, b, setflags: bool) -> None:
        """3-address form; ``b`` is an int immediate or a register number."""
        if isinstance(b, tuple) and b[0] == "imm":
            self.emit(instr(mnemonic, rd=dst, rn=a, imm=b[1], setflags=setflags))
        else:
            self.emit(instr(mnemonic, rd=dst, rn=a, rm=b, setflags=setflags))

    def _binary_operand(self, kind: str, operand):
        """('imm', v) when directly encodable, else a register number."""
        if isinstance(operand, VReg):
            return self.reg(operand)
        if self.imm_ok(kind, operand):
            return ("imm", operand)
        self.materialize(self.scratch, operand)
        return self.scratch

    def _op_binary_generic(self, op: Op) -> None:
        mnemonic = _BINARY_MNEMONIC[op.kind]
        dst = self.reg(op.dst)
        a = self.value_reg(op.a)
        if op.kind == "mul":
            b = self.value_reg(op.b, preferred=self.scratch)
            self.emit(instr("MUL", rd=dst, rn=a, rm=b))
            return
        b = self._binary_operand(op.kind, op.b)
        self._emit_binary(mnemonic, dst, a, b, self.setflags_default())

    _op_add = _op_sub = _op_mul = _op_and = _op_orr = _op_eor = _op_bic = \
        _op_lsl = _op_lsr = _op_asr = _op_ror = _op_binary_generic

    def _op_neg(self, op: Op) -> None:
        self.emit(instr("RSB", rd=self.reg(op.dst), rn=self.value_reg(op.a),
                        imm=0, setflags=self.setflags_default()))

    def _op_mvn(self, op: Op) -> None:
        self.emit(instr("MVN", rd=self.reg(op.dst), rm=self.value_reg(op.a),
                        setflags=self.setflags_default()))

    # -- division: native on Thumb-2, helpers elsewhere ---------------------
    def _op_udiv(self, op: Op) -> None:
        self._divide_helper(op, "__udiv")

    def _op_sdiv(self, op: Op) -> None:
        self._divide_helper(op, "__sdiv")

    def _divide_helper(self, op: Op, helper: str) -> None:
        """AAPCS-ish call: args r0/r1, result r0, r2+ preserved by helper."""
        self.helpers_needed.add(helper)
        self.needs_lr = True
        a = self.value_reg(op.a, preferred=self.scratch)
        self.emit(instr("PUSH", reglist=(0, 1)))
        if a != self.scratch:
            self.emit(instr("MOV", rd=self.scratch, rm=a))
        b = op.b
        if isinstance(b, VReg):
            breg = self.reg(b)
            if breg != 1:
                self.emit(instr("MOV", rd=1, rm=breg))
        else:
            self.materialize(1, b)
        self.emit(instr("MOV", rd=0, rm=self.scratch))
        self.emit(instr("BL", label=helper))
        self.emit(instr("MOV", rd=self.scratch, rm=0))
        self.emit(instr("POP", reglist=(0, 1)))
        dst = self.reg(op.dst)
        if dst != self.scratch:
            self.emit(instr("MOV", rd=dst, rm=self.scratch))

    # -- extends -----------------------------------------------------------
    def _op_uxtb(self, op: Op) -> None:
        self.emit(instr("UXTB", rd=self.reg(op.dst), rm=self.value_reg(op.a)))

    def _op_uxth(self, op: Op) -> None:
        self.emit(instr("UXTH", rd=self.reg(op.dst), rm=self.value_reg(op.a)))

    def _op_sxtb(self, op: Op) -> None:
        self.emit(instr("SXTB", rd=self.reg(op.dst), rm=self.value_reg(op.a)))

    def _op_sxth(self, op: Op) -> None:
        self.emit(instr("SXTH", rd=self.reg(op.dst), rm=self.value_reg(op.a)))

    def _op_rev(self, op: Op) -> None:
        self.emit(instr("REV", rd=self.reg(op.dst), rm=self.value_reg(op.a)))

    # -- memory -------------------------------------------------------------
    def load_offset_ok(self, size: int, offset: int) -> bool:
        raise NotImplementedError

    def _op_load(self, op: Op) -> None:
        mnemonic = _LOAD_MNEMONIC[op.size]
        dst = self.reg(op.dst)
        base = self.reg(op.a)
        if self.load_offset_ok(op.size, op.offset):
            self.emit(instr(mnemonic, rd=dst, mem=Mem(rn=base, offset=op.offset)))
        else:
            self.materialize(self.scratch, op.offset)
            self.emit(instr(mnemonic, rd=dst, mem=Mem(rn=base, rm=self.scratch)))

    def _op_store(self, op: Op) -> None:
        mnemonic = _STORE_MNEMONIC[op.size]
        base = self.reg(op.a)
        if self.load_offset_ok(op.size, op.offset):
            src = self.value_reg(op.b, preferred=self.scratch)
            self.emit(instr(mnemonic, rd=src, mem=Mem(rn=base, offset=op.offset)))
            return
        if not isinstance(op.b, VReg):
            raise LoweringError(
                f"{self.isa}: store of a constant at out-of-range offset "
                f"{op.offset}; hoist the value into a vreg")
        self.materialize(self.scratch, op.offset)
        self.emit(instr(mnemonic, rd=self.reg(op.b), mem=Mem(rn=base, rm=self.scratch)))

    def _op_load_idx(self, op: Op) -> None:
        mnemonic = _LOAD_MNEMONIC[op.size]
        dst = self.reg(op.dst)
        base = self.reg(op.a)
        index = self.value_reg(op.b, preferred=self.scratch)
        self.emit(instr(mnemonic, rd=dst, mem=Mem(rn=base, rm=index, shift=op.shift)))

    def _op_store_idx(self, op: Op) -> None:
        mnemonic = _STORE_MNEMONIC[op.size]
        base = self.reg(op.a)
        index = self.value_reg(op.b, preferred=self.scratch)
        src = self.reg(op.dst)
        self.emit(instr(mnemonic, rd=src, mem=Mem(rn=base, rm=index, shift=op.shift)))

    # -- compare-and-branch ---------------------------------------------------
    def _emit_compare(self, a, b) -> None:
        areg = self.value_reg(a)
        if isinstance(b, int) and self.imm_ok("cmp", b):
            self.emit(instr("CMP", rn=areg, imm=b))
        else:
            breg = self.value_reg(b, preferred=self.scratch)
            self.emit(instr("CMP", rn=areg, rm=breg))

    def _op_brcond(self, op: Op) -> None:
        self._emit_compare(op.a, op.b)
        self.emit(instr("B", cond=_COND[op.cond], label=self.local(op.target)))


# ======================================================================
# ARM backend
# ======================================================================

class ArmBackend(Backend):
    """Classic 32-bit ARM lowering."""

    isa = ISA_ARM
    pool = list(range(0, 12))  # r0-r11; r12 (IP) is the scratch
    scratch = 12

    def materialize(self, reg: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if encode_arm_immediate(value) is not None:
            self.emit(instr("MOV", rd=reg, imm=value))
        elif encode_arm_immediate(~value & 0xFFFFFFFF) is not None:
            self.emit(instr("MVN", rd=reg, imm=~value & 0xFFFFFFFF))
        else:
            # classic ARM: constants come from the literal pool
            self.emit(LiteralRef(instr("LDR", rd=reg), value))

    def imm_ok(self, kind: str, value: int) -> bool:
        if kind in ("lsl", "lsr", "asr", "ror"):
            return 0 <= value <= 31 or (kind in ("lsr", "asr") and value == 32)
        return encode_arm_immediate(value & 0xFFFFFFFF) is not None

    def load_offset_ok(self, size: int, offset: int) -> bool:
        if abs(size) == 4 or size == 1:
            return -4095 <= offset <= 4095
        return -255 <= offset <= 255

    _NO_SHIFTED_INDEX = frozenset({2, -1, -2})  # LDRH/LDRSB/LDRSH/STRH forms

    def _op_load_idx(self, op: Op) -> None:
        if op.shift and op.size in self._NO_SHIFTED_INDEX:
            index = self.value_reg(op.b, preferred=self.scratch)
            self.emit(instr("LSL", rd=self.scratch, rn=index, imm=op.shift))
            self.emit(instr(_LOAD_MNEMONIC[op.size], rd=self.reg(op.dst),
                            mem=Mem(rn=self.reg(op.a), rm=self.scratch)))
            return
        super()._op_load_idx(op)

    def _op_store_idx(self, op: Op) -> None:
        if op.shift and op.size in self._NO_SHIFTED_INDEX:
            index = self.value_reg(op.b, preferred=self.scratch)
            self.emit(instr("LSL", rd=self.scratch, rn=index, imm=op.shift))
            self.emit(instr(_STORE_MNEMONIC[op.size], rd=self.reg(op.dst),
                            mem=Mem(rn=self.reg(op.a), rm=self.scratch)))
            return
        super()._op_store_idx(op)

    # conditional execution: the ARM way to do select
    def _op_select(self, op: Op) -> None:
        dst = self.reg(op.dst)
        cond = _COND[op.cond]
        self._emit_compare(op.a, op.b)
        for arm_cond, value in ((cond, op.t), (cond.inverse, op.f)):
            if isinstance(value, VReg):
                self.emit(instr("MOV", cond=arm_cond, rd=dst, rm=self.reg(value)))
            else:
                self.emit(instr("MOV", cond=arm_cond, rd=dst, imm=value))

    def _op_switch(self, op: Op) -> None:
        index = self.value_reg(op.a)
        count = len(op.targets)
        after = self.fresh_label("swafter")
        self.emit(instr("CMP", rn=index, imm=count - 1))
        self.emit(instr("B", cond=Condition.HI, label=after))
        # ADD pc, pc, index, LSL #2 reads pc as .+8, landing on the table
        self.emit(instr("ADD", rd=PC, rn=PC, rm=index, shift=Shift("LSL", 2)))
        self.emit(instr("NOP"))
        for target in op.targets:
            self.emit(instr("B", label=self.local(target)))
        self.emit(Label(after))

    def _op_clz(self, op: Op) -> None:
        self.emit(instr("CLZ", rd=self.reg(op.dst), rm=self.value_reg(op.a)))

    def _op_rev(self, op: Op) -> None:
        # ARMv4/v5 has no REV: the classic EOR/BIC/ROR byte-swap
        dst = self.reg(op.dst)
        src = self.value_reg(op.a)
        exclude = {dst, src, self.scratch}
        temp = self.temp_reg(exclude)
        self.emit(instr("PUSH", reglist=(temp,)))
        self.emit(instr("EOR", rd=temp, rn=src, rm=src, shift=Shift("ROR", 16)))
        self.emit(instr("BIC", rd=temp, rn=temp, imm=0x00FF0000))
        if dst != src:
            self.emit(instr("MOV", rd=dst, rm=src))
        self.emit(instr("MOV", rd=dst, rm=dst, shift=Shift("ROR", 8)))
        self.emit(instr("EOR", rd=dst, rn=dst, rm=temp, shift=Shift("LSR", 8)))
        self.emit(instr("POP", reglist=(temp,)))

    def _op_rbit(self, op: Op) -> None:
        # three swap stages (masks from the literal pool) + byte reverse
        dst = self.reg(op.dst)
        src = self.value_reg(op.a)
        exclude = {dst, src, self.scratch}
        temp = self.temp_reg(exclude)
        self.emit(instr("PUSH", reglist=(temp,)))
        if dst != src:
            self.emit(instr("MOV", rd=dst, rm=src))
        for mask, shift in ((0x55555555, 1), (0x33333333, 2), (0x0F0F0F0F, 4)):
            self.materialize(self.scratch, mask)
            # temp = (x >> shift) & mask ; x = (x & mask) << shift ; x |= temp
            self.emit(instr("AND", rd=temp, rn=self.scratch, rm=dst,
                            shift=Shift("LSR", shift)))
            self.emit(instr("AND", rd=dst, rn=dst, rm=self.scratch))
            self.emit(instr("ORR", rd=dst, rn=temp, rm=dst, shift=Shift("LSL", shift)))
        # byte reverse (same trick as _op_rev, reusing temp)
        self.emit(instr("EOR", rd=temp, rn=dst, rm=dst, shift=Shift("ROR", 16)))
        self.emit(instr("BIC", rd=temp, rn=temp, imm=0x00FF0000))
        self.emit(instr("MOV", rd=dst, rm=dst, shift=Shift("ROR", 8)))
        self.emit(instr("EOR", rd=dst, rn=dst, rm=temp, shift=Shift("LSR", 8)))
        self.emit(instr("POP", reglist=(temp,)))

    # extends: expanded (pre-ARMv6 ARM state has no SXTB/UXTH...)
    def _op_uxtb(self, op: Op) -> None:
        self.emit(instr("AND", rd=self.reg(op.dst), rn=self.value_reg(op.a), imm=0xFF))

    def _op_uxth(self, op: Op) -> None:
        dst, src = self.reg(op.dst), self.value_reg(op.a)
        self.emit(instr("LSL", rd=dst, rn=src, imm=16))
        self.emit(instr("LSR", rd=dst, rn=dst, imm=16))

    def _op_sxtb(self, op: Op) -> None:
        dst, src = self.reg(op.dst), self.value_reg(op.a)
        self.emit(instr("LSL", rd=dst, rn=src, imm=24))
        self.emit(instr("ASR", rd=dst, rn=dst, imm=24))

    def _op_sxth(self, op: Op) -> None:
        dst, src = self.reg(op.dst), self.value_reg(op.a)
        self.emit(instr("LSL", rd=dst, rn=src, imm=16))
        self.emit(instr("ASR", rd=dst, rn=dst, imm=16))

    # bitfields: shift-mask expansions (the pre-Thumb-2 cost, section 2.1)
    def _op_ubfx(self, op: Op) -> None:
        dst, src = self.reg(op.dst), self.value_reg(op.a)
        self._shift_imm_or_mov("LSL", dst, src, 32 - op.lsb - op.width)
        self._shift_imm_or_mov("LSR", dst, dst, 32 - op.width)

    def _op_sbfx(self, op: Op) -> None:
        dst, src = self.reg(op.dst), self.value_reg(op.a)
        self._shift_imm_or_mov("LSL", dst, src, 32 - op.lsb - op.width)
        self._shift_imm_or_mov("ASR", dst, dst, 32 - op.width)

    def _op_bfi(self, op: Op) -> None:
        dst = self.reg(op.dst)
        src = self.value_reg(op.a)
        mask = ((1 << op.width) - 1) << op.lsb
        exclude = {dst, src, self.scratch}
        temp = self.temp_reg(exclude)
        self.emit(instr("PUSH", reglist=(temp,)))
        self._shift_imm_or_mov("LSL", temp, src, 32 - op.width)
        self._shift_imm_or_mov("LSR", temp, temp, 32 - op.width - op.lsb)
        self.materialize(self.scratch, mask)
        self.emit(instr("BIC", rd=dst, rn=dst, rm=self.scratch))
        self.emit(instr("ORR", rd=dst, rn=dst, rm=temp))
        self.emit(instr("POP", reglist=(temp,)))


# ======================================================================
# Thumb (16-bit) backend
# ======================================================================

class ThumbBackend(Backend):
    """16-bit Thumb lowering: low registers, 2-address ALU, no predication."""

    isa = ISA_THUMB
    pool = [0, 1, 2, 3, 4, 5, 6]  # low registers; r7 is the scratch
    scratch = 7

    def setflags_default(self) -> bool:
        return True  # 16-bit ALU encodings all set flags

    def materialize(self, reg: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if value <= 0xFF:
            self.emit(instr("MOV", rd=reg, imm=value, setflags=True))
            return
        inverted = ~value & 0xFFFFFFFF
        if inverted <= 0xFF:
            self.emit(instr("MOV", rd=reg, imm=inverted, setflags=True))
            self.emit(instr("MVN", rd=reg, rm=reg, setflags=True))
            return
        shift = (value & -value).bit_length() - 1  # trailing zeros
        if value >> shift <= 0xFF:
            self.emit(instr("MOV", rd=reg, imm=value >> shift, setflags=True))
            self.emit(instr("LSL", rd=reg, rn=reg, imm=shift, setflags=True))
            return
        self.emit(LiteralRef(instr("LDR", rd=reg), value))

    def imm_ok(self, kind: str, value: int) -> bool:
        if kind in ("lsl", "lsr", "asr"):
            return 0 <= value <= 31 or (kind in ("lsr", "asr") and value == 32)
        if kind == "ror":
            return False  # no immediate ROR in 16-bit Thumb
        if kind in ("add", "sub"):
            return 0 <= value <= 255
        if kind == "cmp":
            return 0 <= value <= 255
        return False  # AND/ORR/EOR/BIC have no immediate forms

    def load_offset_ok(self, size: int, offset: int) -> bool:
        if size == 4:
            return 0 <= offset <= 124 and offset % 4 == 0
        if size == 2:
            return 0 <= offset <= 62 and offset % 2 == 0
        if size == 1:
            return 0 <= offset <= 31
        return False  # signed loads have no immediate form

    # -- 2-address ALU handling -----------------------------------------
    _TWO_ADDRESS = frozenset({"and", "orr", "eor", "bic", "ror"})

    def _op_binary_generic(self, op: Op) -> None:
        kind = op.kind
        dst = self.reg(op.dst)
        a = self.value_reg(op.a)

        if kind == "mul":
            b = self.value_reg(op.b, preferred=self.scratch)
            if dst == b:
                self.emit(instr("MUL", rd=dst, rn=a, rm=b, setflags=True))
            else:
                if dst != a:
                    self.emit(instr("MOV", rd=dst, rm=a))
                    a = dst
                self.emit(instr("MUL", rd=dst, rn=b, rm=dst, setflags=True))
            return

        if kind in ("add", "sub"):
            if isinstance(op.b, int):
                if 0 <= op.b <= 7:
                    self.emit(instr(kind.upper(), rd=dst, rn=a, imm=op.b, setflags=True))
                    return
                if dst == a and 0 <= op.b <= 255:
                    self.emit(instr(kind.upper(), rd=dst, rn=a, imm=op.b, setflags=True))
                    return
                if 0 <= op.b <= 255:
                    if dst != a:
                        self.emit(instr("MOV", rd=dst, rm=a))
                    self.emit(instr(kind.upper(), rd=dst, rn=dst, imm=op.b, setflags=True))
                    return
                self.materialize(self.scratch, op.b)
                self.emit(instr(kind.upper(), rd=dst, rn=a, rm=self.scratch, setflags=True))
                return
            self.emit(instr(kind.upper(), rd=dst, rn=a,
                            rm=self.reg(op.b), setflags=True))
            return

        if kind in ("lsl", "lsr", "asr") and isinstance(op.b, int):
            self.emit(instr(kind.upper(), rd=dst, rn=a, imm=op.b, setflags=True))
            return

        # two-address ALU ops (and register-amount shifts): dst op= b
        b = self.value_reg(op.b, preferred=self.scratch)
        mnemonic = _BINARY_MNEMONIC[kind]
        commutative = kind in ("and", "orr", "eor")
        if dst == a:
            self.emit(instr(mnemonic, rd=dst, rn=dst, rm=b, setflags=True))
            return
        if dst == b:
            if commutative:
                self.emit(instr(mnemonic, rd=dst, rn=dst, rm=a, setflags=True))
                return
            # dst aliases the right operand: stage it in the scratch
            if b != self.scratch:
                self.emit(instr("MOV", rd=self.scratch, rm=b))
                b = self.scratch
            self.emit(instr("MOV", rd=dst, rm=a))
            self.emit(instr(mnemonic, rd=dst, rn=dst, rm=b, setflags=True))
            return
        self.emit(instr("MOV", rd=dst, rm=a))
        self.emit(instr(mnemonic, rd=dst, rn=dst, rm=b, setflags=True))

    _op_add = _op_sub = _op_mul = _op_and = _op_orr = _op_eor = _op_bic = \
        _op_lsl = _op_lsr = _op_asr = _op_ror = _op_binary_generic

    def _op_mvn(self, op: Op) -> None:
        self.emit(instr("MVN", rd=self.reg(op.dst), rm=self.value_reg(op.a),
                        setflags=True))

    def _op_load(self, op: Op) -> None:
        dst = self.reg(op.dst)
        base = self.reg(op.a)
        if op.size in (-1, -2):
            # no immediate form for LDRSB/LDRSH: zero-extending load + extend
            unsigned = {-1: 1, -2: 2}[op.size]
            extend = {-1: "SXTB", -2: "SXTH"}[op.size]
            if self.load_offset_ok(unsigned, op.offset):
                self.emit(instr(_LOAD_MNEMONIC[unsigned], rd=dst,
                                mem=Mem(rn=base, offset=op.offset)))
                self.emit(instr(extend, rd=dst, rm=dst))
                return
        super()._op_load(op)

    def _op_load_idx(self, op: Op) -> None:
        # no shifted index in 16-bit Thumb: pre-scale into the scratch
        mnemonic = _LOAD_MNEMONIC[op.size]
        dst = self.reg(op.dst)
        base = self.reg(op.a)
        index = self.value_reg(op.b, preferred=self.scratch)
        if op.shift:
            self.emit(instr("LSL", rd=self.scratch, rn=index, imm=op.shift,
                            setflags=True))
            index = self.scratch
        self.emit(instr(mnemonic, rd=dst, mem=Mem(rn=base, rm=index)))

    def _op_store_idx(self, op: Op) -> None:
        mnemonic = _STORE_MNEMONIC[op.size]
        base = self.reg(op.a)
        index = self.value_reg(op.b, preferred=self.scratch)
        if op.shift:
            self.emit(instr("LSL", rd=self.scratch, rn=index, imm=op.shift,
                            setflags=True))
            index = self.scratch
        self.emit(instr(mnemonic, rd=self.reg(op.dst), mem=Mem(rn=base, rm=index)))

    def _op_select(self, op: Op) -> None:
        # no conditional execution: branch diamond
        dst = self.reg(op.dst)
        take = self.fresh_label("selt")
        done = self.fresh_label("seld")
        t_reg = self.value_reg(op.t, preferred=self.scratch) if isinstance(op.t, VReg) else None
        f_reg = self.reg(op.f) if isinstance(op.f, VReg) else None
        self._emit_compare(op.a, op.b)
        self.emit(instr("B", cond=_COND[op.cond], label=take))
        if f_reg is not None:
            self.emit(instr("MOV", rd=dst, rm=f_reg))
        else:
            self.materialize(dst, op.f)
        self.emit(instr("B", label=done))
        self.emit(Label(take))
        if t_reg is not None:
            self.emit(instr("MOV", rd=dst, rm=t_reg))
        else:
            self.materialize(dst, op.t)
        self.emit(Label(done))

    def _op_switch(self, op: Op) -> None:
        index = self.value_reg(op.a)
        for case, target in enumerate(op.targets):
            self.emit(instr("CMP", rn=index, imm=case))
            self.emit(instr("B", cond=Condition.EQ, label=self.local(target)))

    def _op_clz(self, op: Op) -> None:
        # no CLZ in 16-bit Thumb: count by shifting left until the MSB set
        dst = self.reg(op.dst)
        src = self.value_reg(op.a)
        loop = self.fresh_label("clzl")
        done = self.fresh_label("clzd")
        self.emit(instr("MOV", rd=self.scratch, rm=src))
        self.emit(instr("MOV", rd=dst, imm=0, setflags=True))
        self.emit(instr("CMP", rn=self.scratch, imm=0))
        self.emit(instr("B", cond=Condition.NE, label=loop))
        self.emit(instr("MOV", rd=dst, imm=32, setflags=True))
        self.emit(instr("B", label=done))
        self.emit(Label(loop))
        self.emit(instr("CMP", rn=self.scratch, imm=0))
        self.emit(instr("B", cond=Condition.MI, label=done))
        self.emit(instr("LSL", rd=self.scratch, rn=self.scratch, imm=1, setflags=True))
        self.emit(instr("ADD", rd=dst, rn=dst, imm=1, setflags=True))
        self.emit(instr("B", label=loop))
        self.emit(Label(done))

    def _op_rbit(self, op: Op) -> None:
        dst = self.reg(op.dst)
        src = self.value_reg(op.a)
        exclude = {dst, src, self.scratch}
        temp = self.temp_reg(exclude)
        self.emit(instr("PUSH", reglist=(temp,)))
        if dst != src:
            self.emit(instr("MOV", rd=dst, rm=src))
        for mask, shift in ((0x55555555, 1), (0x33333333, 2), (0x0F0F0F0F, 4)):
            self.materialize(self.scratch, mask)
            # temp = (x >> shift) & mask
            self.emit(instr("MOV", rd=temp, rm=dst))
            self.emit(instr("LSR", rd=temp, rn=temp, imm=shift, setflags=True))
            self.emit(instr("AND", rd=temp, rn=temp, rm=self.scratch, setflags=True))
            # x = (x & mask) << shift
            self.emit(instr("AND", rd=dst, rn=dst, rm=self.scratch, setflags=True))
            self.emit(instr("LSL", rd=dst, rn=dst, imm=shift, setflags=True))
            # x |= temp
            self.emit(instr("ORR", rd=dst, rn=dst, rm=temp, setflags=True))
        self.emit(instr("REV", rd=dst, rm=dst))
        self.emit(instr("POP", reglist=(temp,)))

    def _op_ubfx(self, op: Op) -> None:
        dst, src = self.reg(op.dst), self.value_reg(op.a)
        self._shift_imm_or_mov("LSL", dst, src, 32 - op.lsb - op.width, setflags=True)
        self._shift_imm_or_mov("LSR", dst, dst, 32 - op.width, setflags=True)

    def _op_sbfx(self, op: Op) -> None:
        dst, src = self.reg(op.dst), self.value_reg(op.a)
        self._shift_imm_or_mov("LSL", dst, src, 32 - op.lsb - op.width, setflags=True)
        self._shift_imm_or_mov("ASR", dst, dst, 32 - op.width, setflags=True)

    def _op_bfi(self, op: Op) -> None:
        dst = self.reg(op.dst)
        src = self.value_reg(op.a)
        mask = ((1 << op.width) - 1) << op.lsb
        exclude = {dst, src, self.scratch}
        temp = self.temp_reg(exclude)
        self.emit(instr("PUSH", reglist=(temp,)))
        self.emit(instr("MOV", rd=temp, rm=src))
        self._shift_imm_or_mov("LSL", temp, temp, 32 - op.width, setflags=True)
        self._shift_imm_or_mov("LSR", temp, temp, 32 - op.width - op.lsb, setflags=True)
        self.materialize(self.scratch, mask)
        self.emit(instr("BIC", rd=dst, rn=dst, rm=self.scratch, setflags=True))
        self.emit(instr("ORR", rd=dst, rn=dst, rm=temp, setflags=True))
        self.emit(instr("POP", reglist=(temp,)))


# ======================================================================
# Thumb-2 backend
# ======================================================================

class Thumb2Backend(Backend):
    """Blended 16/32-bit lowering with the paper's new instructions.

    ``const_policy``:
      * ``'movw'`` (default) - build constants with MOVW/MOVT, keeping the
        instruction stream sequential (paper section 2.2);
      * ``'literal'`` - force large constants through the literal pool,
        modelling pre-Thumb-2 code for experiment E3.
    """

    isa = ISA_THUMB2
    pool = list(range(0, 12))
    scratch = 12

    def __init__(self, const_policy: str = "movw") -> None:
        super().__init__()
        if const_policy not in ("movw", "literal"):
            raise ValueError(f"bad const_policy {const_policy!r}")
        self.const_policy = const_policy

    def setflags_default(self) -> bool:
        return True  # flag-setting forms get the narrow encodings

    def materialize(self, reg: int, value: int) -> None:
        value &= 0xFFFFFFFF
        if value <= 0xFF:
            self.emit(instr("MOV", rd=reg, imm=value, setflags=True))
            return
        if self.const_policy == "literal":
            self.emit(LiteralRef(instr("LDR", rd=reg), value))
            return
        if encode_thumb2_imm(value) is not None:
            self.emit(instr("MOV", rd=reg, imm=value))
            return
        self.emit(instr("MOVW", rd=reg, imm=value & 0xFFFF))
        if value >> 16:
            self.emit(instr("MOVT", rd=reg, imm=value >> 16))

    def imm_ok(self, kind: str, value: int) -> bool:
        if kind in ("lsl", "lsr", "asr", "ror"):
            return 0 <= value <= 31 or (kind in ("lsr", "asr") and value == 32)
        return encode_thumb2_imm(value & 0xFFFFFFFF) is not None

    def load_offset_ok(self, size: int, offset: int) -> bool:
        return -255 <= offset <= 4095

    def _op_binary_generic(self, op: Op) -> None:
        # flags must not be set inside an IT block; selects emit their own
        # instructions, so the generic path always may set flags
        super()._op_binary_generic(op)

    _op_add = _op_sub = _op_mul = _op_and = _op_orr = _op_eor = _op_bic = \
        _op_lsl = _op_lsr = _op_asr = _op_ror = _op_binary_generic

    def _op_mul(self, op: Op) -> None:
        dst = self.reg(op.dst)
        a = self.value_reg(op.a)
        b = self.value_reg(op.b, preferred=self.scratch)
        # narrow MULS needs dst == one operand; the encoder picks width
        self.emit(instr("MUL", rd=dst, rn=a, rm=b,
                        setflags=(dst in (a, b) and dst < 8 and a < 8 and b < 8)))

    def _op_udiv(self, op: Op) -> None:
        self.emit(instr("UDIV", rd=self.reg(op.dst), rn=self.value_reg(op.a),
                        rm=self.value_reg(op.b, preferred=self.scratch)))

    def _op_sdiv(self, op: Op) -> None:
        self.emit(instr("SDIV", rd=self.reg(op.dst), rn=self.value_reg(op.a),
                        rm=self.value_reg(op.b, preferred=self.scratch)))

    def _op_clz(self, op: Op) -> None:
        self.emit(instr("CLZ", rd=self.reg(op.dst), rm=self.value_reg(op.a)))

    def _op_rbit(self, op: Op) -> None:
        self.emit(instr("RBIT", rd=self.reg(op.dst), rm=self.value_reg(op.a)))

    def _op_ubfx(self, op: Op) -> None:
        self.emit(instr("UBFX", rd=self.reg(op.dst), rn=self.value_reg(op.a),
                        bf_lsb=op.lsb, bf_width=op.width))

    def _op_sbfx(self, op: Op) -> None:
        self.emit(instr("SBFX", rd=self.reg(op.dst), rn=self.value_reg(op.a),
                        bf_lsb=op.lsb, bf_width=op.width))

    def _op_bfi(self, op: Op) -> None:
        self.emit(instr("BFI", rd=self.reg(op.dst), rn=self.value_reg(op.a),
                        bf_lsb=op.lsb, bf_width=op.width))

    def _op_select(self, op: Op) -> None:
        # the paper's IT instruction: predicated straight-line code
        dst = self.reg(op.dst)
        cond = _COND[op.cond]
        self._emit_compare(op.a, op.b)
        self.emit(instr("IT", cond=cond, it_mask="TE"))
        for arm_cond, value in ((cond, op.t), (cond.inverse, op.f)):
            if isinstance(value, VReg):
                self.emit(instr("MOV", cond=arm_cond, rd=dst, rm=self.reg(value)))
            else:
                self.emit(instr("MOV", cond=arm_cond, rd=dst, imm=value))

    def _op_switch(self, op: Op) -> None:
        # the paper's table branch instruction
        index = self.value_reg(op.a)
        table = self.fresh_label("tbb")
        after = self.fresh_label("swafter")
        self.emit(instr("CMP", rn=index, imm=len(op.targets)))
        self.emit(instr("B", cond=Condition.CS, label=after))
        self.emit(instr("TBB", rn=PC, rm=index))
        self.emit(Label(table))
        for target in op.targets:
            self.emit(DeltaDirective(target=self.local(target), base=table, scale=2))
        self.emit(Directive("align", 2))
        self.emit(Label(after))


# ======================================================================
# helper routines (software divide for ARM and Thumb)
# ======================================================================

_ARM_HELPERS = {
    # Shift-up / shift-down restoring division, as in __aeabi_uidiv: the
    # iteration count tracks the quotient's bit length instead of always
    # running 32 steps.
    "__udiv": """
__udiv:
    cmp r1, #0
    moveq r0, #0
    bxeq lr
    push {r2, r3, r4, lr}
    mov r3, #0
    mov r4, #0
__udiv_up:
    cmp r1, r0
    bhs __udiv_down
    cmp r1, #0x80000000
    bhs __udiv_down
    mov r1, r1, lsl #1
    add r4, r4, #1
    b __udiv_up
__udiv_down:
    mov r3, r3, lsl #1
    cmp r0, r1
    subhs r0, r0, r1
    orrhs r3, r3, #1
    mov r1, r1, lsr #1
    subs r4, r4, #1
    bge __udiv_down
    mov r0, r3
    pop {r2, r3, r4, pc}
""",
    "__sdiv": """
__sdiv:
    push {r2, lr}
    eor r2, r0, r1
    cmp r0, #0
    rsblt r0, r0, #0
    cmp r1, #0
    rsblt r1, r1, #0
    bl __udiv
    cmp r2, #0
    rsblt r0, r0, #0
    pop {r2, pc}
""",
}

_THUMB_HELPERS = {
    "__udiv": """
__udiv:
    cmp r1, #0
    bne __udiv_go
    movs r0, #0
    bx lr
__udiv_go:
    push {r2, r3, r4, lr}
    movs r3, #0
    movs r4, #0
__udiv_up:
    cmp r1, r0
    bhs __udiv_down
    cmp r1, #0
    blt __udiv_down
    lsls r1, r1, #1
    adds r4, r4, #1
    b __udiv_up
__udiv_down:
    lsls r3, r3, #1
    cmp r0, r1
    blo __udiv_next
    subs r0, r0, r1
    adds r3, r3, #1
__udiv_next:
    lsrs r1, r1, #1
    subs r4, r4, #1
    bge __udiv_down
    movs r0, r3
    pop {r2, r3, r4, pc}
""",
    "__sdiv": """
__sdiv:
    push {r2, lr}
    movs r2, #0
    cmp r0, #0
    bge __sdiv_apos
    rsbs r0, r0, #0
    adds r2, r2, #1
__sdiv_apos:
    cmp r1, #0
    bge __sdiv_bpos
    rsbs r1, r1, #0
    adds r2, r2, #1
__sdiv_bpos:
    bl __udiv
    lsls r2, r2, #31
    beq __sdiv_done
    rsbs r0, r0, #0
__sdiv_done:
    pop {r2, pc}
""",
}


def helper_items(isa: str, name: str) -> list[AsmItem]:
    if isa == ISA_ARM:
        table = _ARM_HELPERS
    elif isa == ISA_THUMB:
        table = _THUMB_HELPERS
    else:
        raise LoweringError(f"no helpers needed for {isa}")
    if name not in table:
        raise LoweringError(f"unknown helper {name!r}")
    return _parse_asm(table[name])


def make_backend(isa: str, **options) -> Backend:
    if isa == ISA_ARM:
        return ArmBackend(**options)
    if isa == ISA_THUMB:
        return ThumbBackend(**options)
    if isa == ISA_THUMB2:
        return Thumb2Backend(**options)
    raise ValueError(f"unknown ISA {isa!r}")


def compile_functions(functions: list[Function], isa: str, **options) -> list[AsmItem]:
    """Lower several IR functions plus any helpers they need."""
    backend = make_backend(isa, **options)
    items: list[AsmItem] = []
    for fn in functions:
        items.extend(backend.lower_function(fn))
    helpers = set(backend.helpers_needed)
    if "__sdiv" in helpers:
        helpers.add("__udiv")
    for name in sorted(helpers):
        items.extend(helper_items(isa, name))
    return items


def compile_program(functions: list[Function], isa: str, base: int = 0, **options):
    """Lower and assemble into a ready-to-run Program."""
    return assemble_items(compile_functions(functions, isa, **options), isa, base)
