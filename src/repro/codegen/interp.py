"""Reference interpreter for the kernel IR.

The interpreter is the semantic oracle: every backend's generated code is
cross-checked against it (and against the pure-Python workload references)
in the integration tests.
"""

from __future__ import annotations

from repro.codegen.ir import Function, Op, VReg

MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value & 0x8000_0000 else value


class IrMemory:
    """Flat little-endian memory for the interpreter."""

    def __init__(self, size: int = 0x10000, base: int = 0) -> None:
        self.base = base
        self.data = bytearray(size)

    def read(self, addr: int, size: int) -> int:
        offset = addr - self.base
        return int.from_bytes(self.data[offset:offset + size], "little")

    def write(self, addr: int, size: int, value: int) -> None:
        offset = addr - self.base
        self.data[offset:offset + size] = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")

    def load_bytes(self, addr: int, payload: bytes) -> None:
        offset = addr - self.base
        self.data[offset:offset + len(payload)] = payload

    def dump(self, addr: int, length: int) -> bytes:
        offset = addr - self.base
        return bytes(self.data[offset:offset + length])


def _compare(cond: str, a: int, b: int) -> bool:
    sa, sb = _signed(a), _signed(b)
    ua, ub = a & MASK32, b & MASK32
    return {
        "eq": ua == ub, "ne": ua != ub,
        "lt": sa < sb, "le": sa <= sb, "gt": sa > sb, "ge": sa >= sb,
        "lo": ua < ub, "ls": ua <= ub, "hi": ua > ub, "hs": ua >= ub,
    }[cond]


class IrInterpreter:
    """Executes a :class:`Function` over an :class:`IrMemory`."""

    def __init__(self, memory: IrMemory | None = None, max_steps: int = 2_000_000) -> None:
        self.memory = memory or IrMemory()
        self.max_steps = max_steps
        self.steps = 0

    def run(self, fn: Function, *args: int) -> int:
        if len(args) != len(fn.params):
            raise ValueError(f"{fn.name} takes {len(fn.params)} args, got {len(args)}")
        regs: dict[int, int] = {p.index: a & MASK32 for p, a in zip(fn.params, args)}
        labels = fn.labels()
        pc = 0
        while pc < len(fn.ops):
            self.steps += 1
            if self.steps > self.max_steps:
                raise RuntimeError(f"{fn.name}: interpreter step budget exhausted")
            op = fn.ops[pc]
            pc += 1
            result = self._execute(op, regs, labels)
            if result is None:
                continue
            kind, value = result
            if kind == "ret":
                return value & MASK32
            pc = value  # branch
        raise RuntimeError(f"{fn.name}: fell off the end without ret")

    # ------------------------------------------------------------------
    def _value(self, regs: dict[int, int], operand) -> int:
        if isinstance(operand, VReg):
            return regs[operand.index]
        return operand & MASK32

    def _execute(self, op: Op, regs: dict[int, int], labels: dict[str, int]):
        kind = op.kind
        value = lambda operand: self._value(regs, operand)  # noqa: E731

        if kind == "label":
            return None
        if kind == "const":
            regs[op.dst.index] = op.a & MASK32
            return None
        if kind == "mov":
            regs[op.dst.index] = value(op.a)
            return None
        if kind == "mvn":
            regs[op.dst.index] = (~value(op.a)) & MASK32
            return None
        if kind == "neg":
            regs[op.dst.index] = (-value(op.a)) & MASK32
            return None
        if kind == "clz":
            regs[op.dst.index] = 32 - value(op.a).bit_length()
            return None
        if kind == "rbit":
            regs[op.dst.index] = int(f"{value(op.a):032b}"[::-1], 2)
            return None
        if kind == "rev":
            v = value(op.a)
            regs[op.dst.index] = int.from_bytes(v.to_bytes(4, "little"), "big")
            return None
        if kind in ("sxtb", "sxth", "uxtb", "uxth"):
            v = value(op.a)
            bits = 8 if kind.endswith("b") else 16
            v &= (1 << bits) - 1
            if kind.startswith("s") and v & (1 << (bits - 1)):
                v |= MASK32 ^ ((1 << bits) - 1)
            regs[op.dst.index] = v
            return None
        if kind in ("add", "sub", "mul", "and", "orr", "eor", "bic",
                    "lsl", "lsr", "asr", "ror", "udiv", "sdiv"):
            a, b = value(op.a), value(op.b)
            regs[op.dst.index] = self._binary(kind, a, b)
            return None
        if kind == "bfi":
            mask = ((1 << op.width) - 1) << op.lsb
            current = regs[op.dst.index]
            regs[op.dst.index] = (current & ~mask) | ((value(op.a) << op.lsb) & mask)
            return None
        if kind in ("ubfx", "sbfx"):
            field = (value(op.a) >> op.lsb) & ((1 << op.width) - 1)
            if kind == "sbfx" and field & (1 << (op.width - 1)):
                field |= MASK32 ^ ((1 << op.width) - 1)
            regs[op.dst.index] = field
            return None
        if kind in ("load", "load_idx"):
            if kind == "load":
                addr = value(op.a) + op.offset
            else:
                addr = value(op.a) + (value(op.b) << op.shift)
            nbytes = abs(op.size)
            v = self.memory.read(addr, nbytes)
            if op.size < 0 and v & (1 << (8 * nbytes - 1)):
                v |= MASK32 ^ ((1 << (8 * nbytes)) - 1)
            regs[op.dst.index] = v & MASK32
            return None
        if kind == "store":
            self.memory.write(value(op.a) + op.offset, op.size, value(op.b))
            return None
        if kind == "store_idx":
            addr = value(op.a) + (value(op.b) << op.shift)
            self.memory.write(addr, op.size, regs[op.dst.index])
            return None
        if kind == "br":
            return ("br", labels[op.target])
        if kind == "brcond":
            if _compare(op.cond, value(op.a), value(op.b)):
                return ("br", labels[op.target])
            return None
        if kind == "select":
            chosen = op.t if _compare(op.cond, value(op.a), value(op.b)) else op.f
            regs[op.dst.index] = value(chosen)
            return None
        if kind == "switch":
            index = value(op.a)
            if index < len(op.targets):
                return ("br", labels[op.targets[index]])
            return None
        if kind == "ret":
            return ("ret", value(op.a))
        raise ValueError(f"unknown IR op {kind!r}")

    @staticmethod
    def _binary(kind: str, a: int, b: int) -> int:
        if kind == "add":
            return (a + b) & MASK32
        if kind == "sub":
            return (a - b) & MASK32
        if kind == "mul":
            return (a * b) & MASK32
        if kind == "and":
            return a & b
        if kind == "orr":
            return a | b
        if kind == "eor":
            return a ^ b
        if kind == "bic":
            return a & ~b & MASK32
        if kind == "lsl":
            return (a << (b & 0xFF)) & MASK32 if (b & 0xFF) < 32 else 0
        if kind == "lsr":
            return (a >> (b & 0xFF)) if (b & 0xFF) < 32 else 0
        if kind == "asr":
            amount = min(b & 0xFF, 31)
            return (_signed(a) >> amount) & MASK32
        if kind == "ror":
            amount = (b & 0xFF) % 32
            return ((a >> amount) | (a << (32 - amount))) & MASK32 if amount else a
        if kind == "udiv":
            return (a // b) & MASK32 if b else 0
        if kind == "sdiv":
            if b == 0:
                return 0
            sa, sb = _signed(a), _signed(b)
            quotient = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                quotient = -quotient
            return quotient & MASK32
        raise ValueError(kind)
