"""Kernel code generation: one IR, three instruction sets.

This subpackage regenerates the paper's Table 1/Figure 1 comparison from
first principles: each workload kernel is written once in a small IR
(:mod:`repro.codegen.ir`), cross-checked by a reference interpreter
(:mod:`repro.codegen.interp`), and lowered by three backends
(:mod:`repro.codegen.lower`) whose instruction-selection differences *are*
the ISA differences the paper discusses.
"""

from repro.codegen.interp import IrInterpreter, IrMemory
from repro.codegen.ir import Function, IrBuilder, Op, VReg
from repro.codegen.lower import (
    ArmBackend,
    Backend,
    LoweringError,
    Thumb2Backend,
    ThumbBackend,
    compile_functions,
    compile_program,
    make_backend,
)
from repro.codegen.regalloc import Allocation, AllocationError, allocate, live_ranges

__all__ = [
    "IrInterpreter", "IrMemory",
    "Function", "IrBuilder", "Op", "VReg",
    "ArmBackend", "Backend", "LoweringError", "Thumb2Backend", "ThumbBackend",
    "compile_functions", "compile_program", "make_backend",
    "Allocation", "AllocationError", "allocate", "live_ranges",
]
