"""Debug access substrate: 5-pin JTAG vs single-wire debug, flash patch."""

from repro.debug.fpb import (
    NUM_COMPARATORS,
    Comparator,
    FlashPatchUnit,
    FpbError,
    PatchedFlash,
)
from repro.debug.jtag import JtagProbe, JtagTap
from repro.debug.swd import SwdProbe, SwdTarget

__all__ = [
    "NUM_COMPARATORS", "Comparator", "FlashPatchUnit", "FpbError",
    "PatchedFlash",
    "JtagProbe", "JtagTap",
    "SwdProbe", "SwdTarget",
]
