"""Serial-wire debug: the paper's single-wire JTAG replacement (3.2.2).

Transactions follow the SWD packet shape: an 8-bit request header, a
turnaround bit, a 3-bit acknowledge, then 32 data bits plus parity (and a
final turnaround on writes).  Everything rides one bidirectional data
wire plus the clock - the pin-count win for 16/32-pin automotive packages
that experiment E10 quantifies against the 5-pin JTAG port.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PIN_COUNT = 2  # SWDIO (the single data wire) + SWCLK

ACK_OK = 0b001
ACK_WAIT = 0b010
ACK_FAULT = 0b100


def _parity32(value: int) -> int:
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


@dataclass
class SwdTarget:
    """Debug-port register file reachable over the wire."""

    registers: dict[tuple[str, int], int] = field(default_factory=dict)
    parity_errors: int = 0

    def read(self, port: str, address: int) -> int:
        return self.registers.get((port, address), 0)

    def write(self, port: str, address: int, value: int) -> None:
        self.registers[(port, address)] = value & 0xFFFFFFFF


@dataclass
class SwdProbe:
    """Bit-level SWD master talking to an :class:`SwdTarget`."""

    target: SwdTarget = field(default_factory=SwdTarget)
    bits_on_wire: int = 0
    transactions: int = 0
    faults: int = 0

    @property
    def pin_count(self) -> int:
        return PIN_COUNT

    # ------------------------------------------------------------------
    def _request_header(self, port: str, address: int, read: bool) -> int:
        """Start(1) APnDP RnW A[2:3] parity stop(0) park(1)."""
        apndp = 1 if port == "ap" else 0
        rnw = 1 if read else 0
        a23 = (address >> 2) & 0b11
        parity = (apndp + rnw + ((a23 >> 1) & 1) + (a23 & 1)) & 1
        return (1 | (apndp << 1) | (rnw << 2) | (a23 << 3)
                | (parity << 5) | (0 << 6) | (1 << 7))

    def read(self, port: str, address: int) -> int:
        """One read transaction; returns the 32-bit value."""
        self._request_header(port, address, read=True)
        value = self.target.read(port, address)
        # 8 header + 1 turnaround + 3 ack + 32 data + 1 parity + 1 turnaround
        self.bits_on_wire += 8 + 1 + 3 + 32 + 1 + 1
        self.transactions += 1
        if _parity32(value) != _parity32(value):  # wire is ideal in-model
            self.faults += 1
        return value

    def write(self, port: str, address: int, value: int) -> None:
        self._request_header(port, address, read=False)
        self.target.write(port, address, value)
        # 8 header + 2 turnarounds + 3 ack + 32 data + 1 parity
        self.bits_on_wire += 8 + 1 + 3 + 1 + 32 + 1
        self.transactions += 1

    def bits_per_transaction(self) -> float:
        if not self.transactions:
            return 0.0
        return self.bits_on_wire / self.transactions
