"""Flash patch and breakpoint unit (paper section 3.2.2).

Eight comparators watch flash addresses.  Each can either *remap* a
matching word to a RAM-resident replacement (the "on-the-fly flash memory
patch" used during calibration) or flag a breakpoint.  The
:class:`PatchedFlash` wrapper splices the unit into a memory hierarchy in
front of a flash device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NUM_COMPARATORS = 8


class FpbError(Exception):
    pass


@dataclass
class Comparator:
    address: int
    remap_value: int = 0
    breakpoint: bool = False
    enabled: bool = True
    hits: int = 0


@dataclass
class FlashPatchUnit:
    """Eight word-granular comparators over code addresses."""

    comparators: list[Comparator | None] = field(
        default_factory=lambda: [None] * NUM_COMPARATORS)
    breakpoints_hit: list[int] = field(default_factory=list)

    def free_slot(self) -> int:
        for index, slot in enumerate(self.comparators):
            if slot is None:
                return index
        raise FpbError("all eight comparators are in use")

    def patch(self, address: int, value: int) -> int:
        """Remap the word at ``address`` to ``value``; returns the slot."""
        if address % 4:
            raise FpbError("patches are word-granular")
        slot = self.free_slot()
        self.comparators[slot] = Comparator(address=address, remap_value=value)
        return slot

    def set_breakpoint(self, address: int) -> int:
        slot = self.free_slot()
        self.comparators[slot] = Comparator(address=address, breakpoint=True)
        return slot

    def clear(self, slot: int) -> None:
        self.comparators[slot] = None

    def active_count(self) -> int:
        return sum(1 for c in self.comparators if c is not None)

    # ------------------------------------------------------------------
    def match(self, address: int) -> Comparator | None:
        word = address & ~3
        for comparator in self.comparators:
            if comparator is not None and comparator.enabled and comparator.address == word:
                return comparator
        return None

    def intercept_read(self, address: int, size: int) -> int | None:
        """Remapped value for a read, or None to pass through."""
        comparator = self.match(address)
        if comparator is None:
            return None
        comparator.hits += 1
        if comparator.breakpoint:
            self.breakpoints_hit.append(address & ~3)
            return None
        shift = (address & 3) * 8
        mask = (1 << (8 * size)) - 1
        return (comparator.remap_value >> shift) & mask


class PatchedFlash:
    """A flash device wrapped by a flash patch unit."""

    def __init__(self, flash, fpb: FlashPatchUnit | None = None) -> None:
        self.flash = flash
        self.fpb = fpb or FlashPatchUnit()
        self.base = flash.base
        self.size = flash.size

    @property
    def worst_stall(self) -> int:
        """Patching is free; the wrapped flash's declared bound carries."""
        return self.flash.worst_stall

    def read(self, addr: int, size: int, side: str = "D") -> tuple[int, int]:
        value, stalls = self.flash.read(addr, size, side)
        patched = self.fpb.intercept_read(addr, size)
        if patched is not None:
            return patched, stalls
        return value, stalls

    def write(self, addr: int, size: int, value: int, side: str = "D") -> int:
        return self.flash.write(addr, size, value, side)

    def read_raw(self, addr: int, size: int) -> bytes:
        return self.flash.read_raw(addr, size)

    def write_raw(self, addr: int, payload: bytes) -> None:
        self.flash.write_raw(addr, payload)
