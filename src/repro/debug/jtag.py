"""IEEE 1149.1 JTAG TAP model: the 5-pin baseline of paper section 3.2.2.

A real TAP state machine is driven by TMS on each TCK edge; register
accesses walk IR-scan and DR-scan paths.  The model counts clocks and pin
usage so experiment E10 can compare the wire cost of a debug transaction
against the single-wire protocol in :mod:`repro.debug.swd`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PIN_COUNT = 5  # TCK, TMS, TDI, TDO, TRST

# TAP controller state transition table: state -> (tms=0, tms=1)
_TAP_TRANSITIONS = {
    "test-logic-reset": ("run-test-idle", "test-logic-reset"),
    "run-test-idle": ("run-test-idle", "select-dr-scan"),
    "select-dr-scan": ("capture-dr", "select-ir-scan"),
    "capture-dr": ("shift-dr", "exit1-dr"),
    "shift-dr": ("shift-dr", "exit1-dr"),
    "exit1-dr": ("pause-dr", "update-dr"),
    "pause-dr": ("pause-dr", "exit2-dr"),
    "exit2-dr": ("shift-dr", "update-dr"),
    "update-dr": ("run-test-idle", "select-dr-scan"),
    "select-ir-scan": ("capture-ir", "test-logic-reset"),
    "capture-ir": ("shift-ir", "exit1-ir"),
    "shift-ir": ("shift-ir", "exit1-ir"),
    "exit1-ir": ("pause-ir", "update-ir"),
    "pause-ir": ("pause-ir", "exit2-ir"),
    "exit2-ir": ("shift-ir", "update-ir"),
    "update-ir": ("run-test-idle", "select-dr-scan"),
}


@dataclass
class JtagTap:
    """A TAP with a 4-bit instruction register and 32-bit data registers."""

    ir_length: int = 4
    state: str = "test-logic-reset"
    ir: int = 0
    registers: dict[int, int] = field(default_factory=dict)
    clocks: int = 0
    _shift: int = 0
    _shift_bits: int = 0

    @property
    def pin_count(self) -> int:
        return PIN_COUNT

    # ------------------------------------------------------------------
    def clock(self, tms: int, tdi: int = 0) -> int:
        """One TCK cycle; returns TDO."""
        self.clocks += 1
        tdo = self._shift & 1
        if self.state in ("shift-dr", "shift-ir"):
            self._shift = (self._shift >> 1) | (tdi << (self._shift_bits - 1))
        previous = self.state
        self.state = _TAP_TRANSITIONS[self.state][tms]
        if previous == "capture-dr":
            pass
        if self.state == "capture-ir":
            self._shift = 0b0101  # mandated capture pattern (LSBs 01)
            self._shift_bits = self.ir_length
        elif self.state == "capture-dr":
            self._shift = self.registers.get(self.ir, 0)
            self._shift_bits = 32
        elif self.state == "update-ir":
            self.ir = self._shift & ((1 << self.ir_length) - 1)
        elif self.state == "update-dr":
            self.registers[self.ir] = self._shift & 0xFFFFFFFF
        return tdo

    def reset(self) -> None:
        """Five TMS-high clocks reach test-logic-reset from any state."""
        for _ in range(5):
            self.clock(tms=1)


class JtagProbe:
    """Drives a :class:`JtagTap` through complete IR/DR transactions."""

    def __init__(self, tap: JtagTap | None = None) -> None:
        self.tap = tap or JtagTap()
        self.tap.reset()
        self.tap.clock(tms=0)  # settle in run-test-idle

    def _walk(self, tms_bits: str, data: int = 0, capture: bool = False) -> int:
        out = 0
        position = 0
        for tms in tms_bits:
            tdo = self.tap.clock(tms=int(tms), tdi=(data >> position) & 1)
            if capture:
                out |= tdo << position
            position += 1
        return out

    def write_ir(self, instruction: int) -> None:
        self._walk("1100")  # idle -> select-dr -> select-ir -> capture -> shift
        bits = self.tap.ir_length
        # shift bits; last shift happens while leaving to exit1
        for index in range(bits):
            tms = 1 if index == bits - 1 else 0
            self.tap.clock(tms=tms, tdi=(instruction >> index) & 1)
        self._walk("10")  # update-ir -> run-test-idle

    def access_dr(self, value: int = 0) -> int:
        self._walk("100")  # select-dr -> capture-dr -> shift-dr
        out = 0
        for index in range(32):
            tms = 1 if index == 31 else 0
            tdo = self.tap.clock(tms=tms, tdi=(value >> index) & 1)
            out |= tdo << index
        self._walk("10")  # update-dr -> idle
        return out

    def write_register(self, instruction: int, value: int) -> int:
        """Complete transaction: IR scan + DR scan.  Returns clocks used."""
        before = self.tap.clocks
        self.write_ir(instruction)
        self.access_dr(value)
        return self.tap.clocks - before

    def read_register(self, instruction: int) -> tuple[int, int]:
        """Returns (value, clocks used).

        A DR scan is destructive (Update-DR latches whatever was shifted
        in), so the probe captures on the first scan and restores the
        register with a second - the naive-but-correct probe behaviour.
        """
        before = self.tap.clocks
        self.write_ir(instruction)
        value = self.access_dr(0)
        self.access_dr(value)  # put the old contents back
        return value, self.tap.clocks - before
