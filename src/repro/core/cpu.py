"""Base CPU executor: fetch / predicate / execute / account cycles.

Concrete cores (:class:`~repro.core.arm7.Arm7Core`,
:class:`~repro.core.arm1156.Arm1156Core`,
:class:`~repro.core.cortexm3.CortexM3Core`) subclass this and provide

* ``fetch_stalls(addr, size)`` - instruction-side memory timing,
* ``data_read`` / ``data_write`` - data-side memory path,
* ``instruction_cycles(ins, outcome)`` - microarchitectural base cost,
* ``check_interrupts()`` - their interrupt scheme.

Execution semantics are shared (:mod:`repro.isa.semantics`); only *timing*
and *interrupt architecture* differ between cores, which is precisely the
contrast the paper draws between its two implementations.

Execution engines
-----------------
Four tiers produce bit-identical architectural results (registers, flags,
cycle counts, bus statistics, traces); the property tests in
``tests/test_fastpath_properties.py`` diff complete machine state across
all four on randomised programs:

* ``step()`` - the **reference interpreter**: full decode and dispatch
  every instruction.  Always used for single-stepping, IT-block
  predication, sleep (WFI) ticks, and anything a core defers (the
  ARM1156's restartable LDM/STM windows).  This tier is the semantic
  ground truth the other three are checked against.
* the **predecoded engine** (``run()`` with ``superblocks = False``) -
  dispatches one bound micro-op per loop iteration through a predecoded
  table (:mod:`repro.isa.predecode`) with per-core cycle costs prebound by
  :meth:`BaseCpu.compile_cycles`.  Polls the interrupt controller before
  every instruction whenever requests are queued, exactly like ``step()``.
* the **superblock engine** (``superblocks = True`` with
  ``trace_superblocks = False``) - links chainable micro-ops to their
  fall-through successor at bind time, groups straight-line runs into
  *superblocks*, and executes each as a single Python loop with no
  per-step dict dispatch, no per-step interrupt poll, and slimmer bound
  steps (pure ALU steps skip all memory/outcome bookkeeping).  Hot blocks
  are *fused* into single generated code objects
  (:mod:`repro.core.superblock`).  Interrupt exactness is preserved by an
  **event horizon**: the earliest ``assert_cycle`` of any queued request,
  conservatively ignoring masking and priority.  While ``cycles`` is
  below the horizon no controller poll can have an effect, so chained
  execution is unobservable; once the horizon is reached the engine drops
  to poll-per-instruction dispatch, which is the predecoded engine's
  behaviour.  Superblocks are built lazily per entry address (so a branch
  target mid-block simply starts its own block) and invalidated with the
  micro-op table when the program's execution index is reassigned.
* the **trace engine** (the default: ``trace_superblocks = True``) -
  everything the superblock engine does, plus a predictable taken branch
  no longer terminates fusion: a fused block ending in a loop *back-edge*
  (a direct branch whose target is the block's own head) loops inside the
  generated code object under an inline guard that revalidates the branch
  condition and the event horizon each iteration, so a whole loop
  iteration is one generated function executed N times with zero engine
  dispatch between iterations.  When the guard fails (loop exit, an IRQ
  entering the queue, instruction budget) the function returns with the
  machine bit-exactly where per-step execution would have left it.  The
  fuser also closes the two per-core fetch/data fast-path holes: the
  ARM1156's cached instruction fetch is emitted inline (hit/miss/parity
  accounting transcribed from ``Cache.read``), and MPU-guarded data
  accesses (Cortex-M3, cacheless ARM1156) inline the bus fast path behind
  a per-access MPU check that faults bit-exactly mid-block.

``cpu.fastpath = False`` forces the reference interpreter for a whole
``run()`` (the equivalence benchmarks and property tests do); with
``fastpath`` on, ``step()`` is still used for the states noted above.

:meth:`BaseCpu.run_until_cycle` is the **cycle-coupled** entry used by the
multi-ECU co-simulation (:mod:`repro.vehicle`): it runs the configured
engine tier up to a cycle ceiling, stopping at the first instruction
boundary at or past it, with the quantum folded into the event horizon so
fused trace superblocks stay fused between bus events.  Bounded runs
compose exactly: any sequence of ceilings executes the same instruction
stream as one run to the final ceiling.
"""

from __future__ import annotations

from repro.isa.assembler import Program
from repro.isa.conditions import Condition
from repro.isa.instructions import Instruction
from repro.isa.predecode import compile_uop, predecode
from repro.core.superblock import FUSE_THRESHOLD, fuse_block
from repro.isa.registers import MASK32, Apsr, RegisterFile
from repro.isa.semantics import Outcome, execute
from repro.core.exceptions import ExecutionError
from repro.sim.trace import TraceRecorder
from repro import obs

# Out-of-band engine telemetry (repro.obs).  Series handles are prebound
# at import so hot paths pay one enabled-flag check per event; every
# site observes execution and never alters it - architectural results
# stay bit-identical with telemetry on or off.
_RUNS = obs.counter("engine.runs", "run()/run_until_cycle() entries by tier")
_RUNS_REFERENCE = _RUNS.labels(tier="reference")
_RUNS_UOPS = _RUNS.labels(tier="uops")
_RUNS_SUPERBLOCK = _RUNS.labels(tier="superblock")
_DISPATCHES = obs.counter(
    "engine.superblock.dispatches",
    "Superblock-engine dispatches by mode: fused generated code, "
    "list-of-steps, poll-per-instruction (at the event horizon), or "
    "guarded per-step prefix (horizon/budget boundary)")
_DISPATCH_FUSED = _DISPATCHES.labels(mode="fused")
_DISPATCH_LIST = _DISPATCHES.labels(mode="list")
_DISPATCH_POLL = _DISPATCHES.labels(mode="poll")
_DISPATCH_STEP = _DISPATCHES.labels(mode="step")
_SB_BUILT = obs.counter(
    "engine.superblocks.built", "Superblocks built (lazily, per entry pc)")
_SB_INVALIDATED = obs.counter(
    "engine.superblocks.invalidated",
    "Superblock cache invalidations (bound configuration changed)")

#: Branching here halts the simulation (the reset value of LR).
HALT_ADDRESS = 0xFFFFFFFE

#: sentinel: no interrupt queue has been bound into fused blocks yet
_UNBOUND_QUEUE = object()


def return_stack_branch_inline(target: int) -> list[str] | None:
    """Constant-target ``branch()`` inline for the VIC cores (ARM7 and
    ARM1156 share the same override shape): a plain PC write, with the
    rare interrupt return-stack unwind routed through the real method -
    re-running its PC write is idempotent."""
    target &= MASK32
    if target == HALT_ADDRESS:
        return None
    return [f"rvals[15] = {target}",
            "rs = cpu._return_stack",
            f"if rs and rs[-1][1] == {target}:",
            f"    BR({target})"]


class BaseCpu:
    """Shared machinery for the three core models."""

    #: human-readable core name, overridden by subclasses
    name = "base"

    #: True while the cycle-coupled engine (:meth:`run_until_cycle`) owns
    #: the superblock cache: fused loop guards then also test the cycle
    #: ceiling, so co-simulation quanta join the interrupt event horizon
    #: instead of breaking fusion.  Toggling engines drops cached blocks.
    _sb_cycle_coupled = False

    #: the live interrupt-controller queue, overridden as a property by
    #: cores: when it is an empty list the fast loop may skip
    #: check_interrupts(), which returns None for an empty queue on every
    #: controller.  None means "no declared controller".
    _irq_queue: list | None = None

    def __init__(self, program: Program, trace: TraceRecorder | None = None) -> None:
        self.program = program
        # "trace or ..." would drop an *empty* recorder (TraceRecorder
        # defines __len__, so a fresh one is falsy): test for None.
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.regs = RegisterFile()
        self.apsr = Apsr()
        self.cycles = 0
        self.instructions_executed = 0
        self.instructions_skipped = 0
        self.branches_taken = 0
        self.halted = False
        self.sleeping = False
        self.interrupts_enabled = True
        self.regs.lr = HALT_ADDRESS
        self.regs.pc = program.base
        self._it_queue: list[Condition] = []
        self._data_stalls = 0
        self.current_address = 0
        self.current_size = 4
        self.svc_log: list[int] = []
        #: dispatch through the predecoded micro-op table in run()
        self.fastpath = True
        #: chain micro-ops into superblocks; set to False to fall back to
        #: per-instruction predecoded dispatch
        self.superblocks = True
        #: fuse across loop back-edges (the trace engine, the fastest
        #: tier); False reproduces the plain superblock engine, which
        #: breaks fusion at every taken branch
        self.trace_superblocks = True
        #: instruction ceiling of the current run(), read by fused loop
        #: guards (set per run by _run_superblocks)
        self._sb_limit = 0
        #: cycle ceiling read by fused loop guards in cycle-coupled mode
        #: (set per block dispatch by _run_superblocks_until)
        self._sb_cycle_limit = 0
        #: per-entry worst-case cycle caps (cycle-coupled dispatch only)
        self._sb_caps: dict[int, int] = {}
        self._fast_table: dict | None = None
        self._fast_index: dict | None = None
        self._fast_outcome = Outcome()
        self._sb_blocks: dict[int, list] = {}
        self._sb_steps: dict[int, object] = {}
        #: the interrupt queue fused blocks were bound over (loop guards
        #: bind the queue list at fuse time); a controller swap between
        #: runs drops the fused blocks so they rebind
        self._sb_bound_queue: object = _UNBOUND_QUEUE
        #: the trace_superblocks value the cached blocks were built under:
        #: block shapes (goto chaining) and fused emission both depend on
        #: it, so toggling the engine tier drops the cache
        self._sb_trace_mode: object = _UNBOUND_QUEUE

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------
    def fetch_stalls(self, addr: int, size: int) -> int:
        raise NotImplementedError

    def data_read(self, addr: int, size: int) -> tuple[int, int]:
        raise NotImplementedError

    def data_write(self, addr: int, size: int, value: int) -> int:
        raise NotImplementedError

    def instruction_cycles(self, ins: Instruction, outcome: Outcome) -> int:
        raise NotImplementedError

    def check_interrupts(self) -> bool:
        """Service a pending interrupt if any; True when one was taken."""
        return False

    # ------------------------------------------------------------------
    # ExecutionContext protocol
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> int:
        value, stalls = self.data_read(addr, size)
        self._data_stalls += stalls
        return value

    def write(self, addr: int, size: int, value: int) -> None:
        self._data_stalls += self.data_write(addr, size, value)

    def branch(self, target: int) -> None:
        target &= MASK32
        if target == HALT_ADDRESS:
            self.halted = True
            return
        if self._exception_return_hook(target):
            return
        self.regs.pc = target

    def _exception_return_hook(self, target: int) -> bool:
        """Cores with hardware exception return (M3) override this."""
        return False

    def pc_read_value(self) -> int:
        return self.current_address + (8 if self.program.isa == "arm" else 4)

    def set_interrupts_enabled(self, enabled: bool) -> None:
        self.interrupts_enabled = enabled

    def begin_it_block(self, firstcond: Condition, mask: str) -> None:
        if self._it_queue:
            raise ExecutionError("IT inside an IT block")
        conditions = [firstcond]
        for ch in mask[1:]:
            conditions.append(firstcond if ch == "T" else firstcond.inverse)
        self._it_queue = conditions

    def software_interrupt(self, number: int) -> None:
        self.svc_log.append(number)

    def wait_for_interrupt(self) -> None:
        self.sleeping = True

    # ------------------------------------------------------------------
    # execution loop
    # ------------------------------------------------------------------
    def _next_condition(self, ins: Instruction) -> Condition | None:
        if ins.mnemonic == "IT":
            return None
        if self._it_queue:
            return self._it_queue.pop(0)
        return None

    def in_it_block(self) -> bool:
        return bool(self._it_queue)

    def step(self) -> bool:
        """Execute one instruction; False when halted."""
        if self.halted:
            return False
        if self.sleeping:
            # only an interrupt can resume us; charge one idle cycle
            self.cycles += 1
            self.check_interrupts()
            return not self.halted
        self.check_interrupts()
        if self.halted:
            return False
        pc = self.regs.pc
        ins = self.program.instruction_at(pc)
        if ins is None:
            raise ExecutionError(f"no instruction at pc={pc:#010x} ({self.name})")
        self.current_address = pc
        self.current_size = ins.size
        fetch = self.fetch_stalls(pc, ins.size)
        self._data_stalls = 0
        condition = self._next_condition(ins)
        outcome = self._execute(ins, condition)
        base = self.instruction_cycles(ins, outcome)
        self.cycles += base + fetch + self._data_stalls
        self.instructions_executed += 1
        if outcome.skipped:
            self.instructions_skipped += 1
        if outcome.taken:
            self.branches_taken += 1
        if not outcome.taken and not self.halted:
            self.regs.pc = pc + ins.size
        return not self.halted

    def _execute(self, ins: Instruction, condition: Condition | None) -> Outcome:
        return execute(self, ins, condition)

    # ------------------------------------------------------------------
    # predecoded fast path
    # ------------------------------------------------------------------
    def compile_cycles(self, ins: Instruction):
        """Optionally prebind the cycle cost of ``ins`` for the fast path.

        Subclasses return a closure ``fn(outcome) -> int`` that must agree
        with :meth:`instruction_cycles` for every outcome, or ``None`` to
        fall back to calling :meth:`instruction_cycles` dynamically.
        (``tests/test_fastpath_properties.py`` sweeps the agreement across
        every mnemonic and outcome shape.)
        """
        return None

    @staticmethod
    def _static_cycle_fn(base: int, taken: int):
        """The common compile_cycles shape: cost static per instruction,
        modulated only by the skipped/taken outcome flags.

        The static costs are attached to the closure (``static_base`` /
        ``static_taken``) so the superblock binder can inline them into
        slim steps instead of calling the closure per instruction.
        """
        def cycles(outcome):
            if outcome.skipped:
                return 1
            return taken if outcome.taken else base
        cycles.static_base = base
        cycles.static_taken = taken
        return cycles

    def _fastpath_defer(self) -> bool:
        """True when the next instruction must take the reference ``step()``
        (cores with mid-instruction interrupt semantics override this)."""
        return False

    #: when True, LDM/STM/PUSH/POP micro-ops are never chained into a
    #: superblock (each forms a singleton block), so ``_fastpath_defer``
    #: sees every block transfer before it executes.  The ARM1156 enables
    #: this for its restartable-transfer windows.
    @property
    def _split_block_ops(self) -> bool:
        return False

    #: True on cores whose ``fetch_stalls`` is a plain delegation to
    #: ``self.bus`` - the fetch hooks below then bind bus-level fast paths.
    #: Cores that fetch through a cache leave it False (or override it as
    #: a property) and supply their own ``_fetch_port``/``_fetch_thunk``.
    _bus_fetch = False

    def _fetch_port(self):
        """The instruction-fetch callable bound into fast steps.

        Binding the bus method directly (``_bus_fetch`` cores) shaves a
        Python frame per executed instruction.  Must be timing- and
        statistics-identical to :meth:`fetch_stalls`.
        """
        if self._bus_fetch:
            return self.bus.fetch_stalls
        return self.fetch_stalls

    def _fetch_thunk(self, address: int, size: int):
        """A zero-argument fetch closure prebound to one instruction
        address (the device decode folded at bind time), or ``None`` when
        the core has no such shortcut.  Must be timing- and
        statistics-identical to ``fetch_stalls(address, size)``.
        """
        if self._bus_fetch:
            return self.bus.fetch_thunk(address, size)
        return None

    def _fetch_bus_device(self, address: int, size: int):
        """The bus device instruction fetches at ``address`` resolve to,
        when the core's fetch path is the plain system bus; ``None`` when
        fetches go elsewhere (caches) or the address is unmapped.  Lets
        the superblock fuser inline fetch timing for known device types.
        """
        if self._bus_fetch:
            device = self.bus._lookup(address)
            if device is not None and address + size <= device.base + device.size:
                return device
        return None

    def _data_inline_plan(self) -> str | None:
        """Whether (and how) fused code may inline the data-bus fast path.

        ``None``: never inline - ``cpu.read``/``cpu.write`` must mediate
        every access (data caches, unknown cores).  ``"direct"``: the data
        path is the bare system bus with no per-access checks, so the
        span-cache hit path is emitted as raw statements.  ``"mpu"``: same
        inline bus path, but preceded by a per-access MPU consultation
        (``cpu._mpu_check`` when ``cpu.mpu`` is attached) that faults
        bit-exactly mid-block; an MPU attached *after* fusion is honoured
        because the emitted check reads ``cpu.mpu`` dynamically.
        """
        return None

    def _fetch_cache(self):
        """The instruction cache fetches go through, or ``None``.

        Cores whose ``fetch_stalls`` is a :class:`~repro.memory.cache.Cache`
        read return it here so the superblock fuser can emit the cached
        fetch (hit/miss/parity/LRU accounting) as raw statements instead of
        a per-instruction closure call.
        """
        return None

    def _exception_return_static(self, target: int) -> bool:
        """True when ``_exception_return_hook(target)`` provably returns
        False for this *constant* target, letting fused code write the PC
        directly instead of calling :meth:`branch`."""
        return type(self)._exception_return_hook is BaseCpu._exception_return_hook

    def _branch_inline(self, target: int) -> list[str] | None:
        """Statements equivalent to ``branch(target)`` for a constant
        target, or ``None`` when only the real call is safe (halt address,
        overridden ``branch``, a possibly-live exception-return hook)."""
        target &= MASK32
        if type(self).branch is not BaseCpu.branch:
            return None
        if target == HALT_ADDRESS or not self._exception_return_static(target):
            return None
        return [f"rvals[15] = {target}"]

    def _bind_uop(self, uop):
        """Close a micro-op over this CPU: one call executes one instruction."""
        ins = uop.ins
        exec_fn = uop.exec
        cond_check = uop.cond_check
        cycle_fn = self.compile_cycles(ins)
        if cycle_fn is None:
            def cycle_fn(outcome, _ins=ins, _dyn=self.instruction_cycles):
                return _dyn(_ins, outcome)
        fetch = self._fetch_port()
        regs = self.regs
        outcome = self._fast_outcome
        address = uop.address
        size = uop.size
        next_pc = uop.next_pc

        def fast_step() -> None:
            self.current_address = address
            self.current_size = size
            stalls = fetch(address, size)
            self._data_stalls = 0
            # Only taken/skipped are read before being written each step:
            # cycle models consult regs_transferred/div_early_exit solely
            # for mnemonics whose handlers assign them, so those (and the
            # unread read/write tallies) don't need clearing here.
            outcome.taken = False
            outcome.skipped = False
            if cond_check is None or cond_check(self.apsr):
                exec_fn(self, outcome)
            else:
                outcome.skipped = True
            self.cycles += cycle_fn(outcome) + stalls + self._data_stalls
            self.instructions_executed += 1
            if outcome.skipped:
                self.instructions_skipped += 1
            if outcome.taken:
                self.branches_taken += 1
            elif not self.halted:
                regs.values[15] = next_pc

        return fast_step

    def _bind_uop_slim(self, uop):
        """Bind a *chainable* micro-op into a slim step for superblocks.

        Chainable micro-ops (kind ``alu``/``mem``) can never branch, halt,
        sleep, or start an IT block, so the slim variants drop the
        taken/halted bookkeeping, the shared-outcome resets, and the
        ``current_address`` updates of the general step; pure ALU steps
        also skip the ``_data_stalls`` round-trip.  Each slim step owns a
        private :class:`Outcome` whose ``taken``/``skipped`` flags stay
        False forever, so outcome-dependent cycle closures (divides, LDM)
        read exactly what the reference path would.

        Returns ``None`` when no slim variant applies (conditional
        execution with a dynamic cycle model); callers then fall back to
        the general bound step, which is architecturally identical.
        """
        if not uop.chainable:
            return None
        exec_fn = uop.exec
        cond_check = uop.cond_check
        cycle_fn = self.compile_cycles(uop.ins)
        if cycle_fn is None:
            def cycle_fn(outcome, _ins=uop.ins, _dyn=self.instruction_cycles):
                return _dyn(_ins, outcome)
        base = getattr(cycle_fn, "static_base", None)
        if cond_check is not None and base is None:
            return None
        fetch = self._fetch_port()
        regs = self.regs
        outcome = Outcome()  # private: taken/skipped remain False
        address = uop.address
        size = uop.size
        next_pc = uop.next_pc
        mem = uop.kind == "mem"
        if cond_check is None:
            if not mem:
                if base is not None:
                    def fast_step() -> None:
                        stalls = fetch(address, size)
                        exec_fn(self, outcome)
                        self.cycles += base + stalls
                        self.instructions_executed += 1
                        regs.values[15] = next_pc
                    return fast_step

                def fast_step() -> None:
                    stalls = fetch(address, size)
                    exec_fn(self, outcome)
                    self.cycles += cycle_fn(outcome) + stalls
                    self.instructions_executed += 1
                    regs.values[15] = next_pc
                return fast_step
            if base is not None:
                def fast_step() -> None:
                    stalls = fetch(address, size)
                    self._data_stalls = 0
                    exec_fn(self, outcome)
                    self.cycles += base + stalls + self._data_stalls
                    self.instructions_executed += 1
                    regs.values[15] = next_pc
                return fast_step

            def fast_step() -> None:
                stalls = fetch(address, size)
                self._data_stalls = 0
                exec_fn(self, outcome)
                self.cycles += cycle_fn(outcome) + stalls + self._data_stalls
                self.instructions_executed += 1
                regs.values[15] = next_pc
            return fast_step
        # conditional with a static cycle cost (skipped always costs 1)
        if not mem:
            def fast_step() -> None:
                stalls = fetch(address, size)
                if cond_check(self.apsr):
                    exec_fn(self, outcome)
                    self.cycles += base + stalls
                else:
                    self.cycles += 1 + stalls
                    self.instructions_skipped += 1
                self.instructions_executed += 1
                regs.values[15] = next_pc
            return fast_step

        def fast_step() -> None:
            stalls = fetch(address, size)
            if cond_check(self.apsr):
                self._data_stalls = 0
                exec_fn(self, outcome)
                self.cycles += base + stalls + self._data_stalls
            else:
                self.cycles += 1 + stalls
                self.instructions_skipped += 1
            self.instructions_executed += 1
            regs.values[15] = next_pc
        return fast_step

    def _fast_dispatch_table(self) -> dict:
        index = self.program._by_address
        if self._fast_table is None or self._fast_index is not index:
            # keyed on the index's identity: reassigning _by_address (the
            # merge-two-images pattern) invalidates the bound table
            self._fast_table = {
                addr: self._bind_uop(uop)
                for addr, uop in predecode(self.program).items()
            }
            self._fast_index = index
            self._sb_blocks = {}
            self._sb_steps = {}
            self._sb_caps = {}
        return self._fast_table

    #: runaway guard for a single superblock (keeps lazy build bounded)
    _SB_MAX_LEN = 128

    def _sb_step(self, table: dict, addr: int, uop):
        """The (cached) slim step for one chainable micro-op."""
        fast_step = self._sb_steps.get(addr)
        if fast_step is None:
            fast_step = self._bind_uop_slim(uop)
            if fast_step is None:
                fast_step = table.get(addr)
                if fast_step is None:
                    fast_step = self._predecode_missing(table, addr)
            self._sb_steps[addr] = fast_step
        return fast_step

    def _superblock_at(self, pc: int) -> list:
        """Build (and cache) the superblock entered at ``pc``.

        A superblock is the maximal straight-line run of chainable
        micro-ops starting at ``pc``, optionally terminated by one
        non-chainable micro-op executed through its general bound step.
        With ``trace_superblocks`` on, an *unconditional direct branch*
        does not terminate the run: the walk continues at the branch
        target (a goto is just a straight line with a relocated next
        address - the branch's own step sets the PC, and the following
        steps are exactly the target's), so diamond join points and loop
        preheaders chain into one trace.  Targets already in the trace,
        halt-address branches, and targets with exception-return semantics
        end the trace as before.  Branch targets inside an existing block
        simply get their own block on first dispatch; blocks overlap
        freely and share bound steps.

        The cached entry is ``[steps, uops, countdown, fused]``: after
        ``countdown`` list-mode dispatches the block is fused into a
        single generated function (:mod:`repro.core.superblock`), so
        compile cost is only paid for blocks that are actually hot.
        """
        table = self._fast_dispatch_table()
        uop_table = predecode(self.program)
        split_block_ops = self._split_block_ops
        chain_gotos = self.trace_superblocks
        steps: list = []
        uops: list = []
        addr = pc
        visited = {pc}
        while len(steps) < self._SB_MAX_LEN:
            uop = uop_table.get(addr)
            if uop is None:
                ins = self.program.instruction_at(addr)
                if ins is None:
                    break  # end of mapped code: dispatching here will fault
                uop = compile_uop(ins, self.program.isa)
                uop_table[addr] = uop
            if split_block_ops and uop.is_block_op and steps:
                break  # stop *before* the transfer: defer() must see it
            if not uop.chainable:
                # include the ender; its general step does full bookkeeping
                ender = table.get(addr)
                if ender is None:
                    ender = self._predecode_missing(table, addr)
                steps.append(ender)
                uops.append(uop)
                target = uop.branch_target
                if (chain_gotos and uop.ins.mnemonic == "B"
                        and uop.cond_check is None and target is not None
                        and target != HALT_ADDRESS
                        and target not in visited
                        and self._exception_return_static(target)):
                    visited.add(target)
                    addr = target  # goto: the trace continues at the target
                    continue
                break
            steps.append(self._sb_step(table, addr, uop))
            uops.append(uop)
            if split_block_ops and uop.is_block_op:
                break  # singleton: defer() screens it on every dispatch
            addr = uop.next_pc
            visited.add(addr)
        if not steps:
            raise ExecutionError(
                f"no instruction at pc={pc:#010x} ({self.name})")
        entry = [steps, uops, FUSE_THRESHOLD, None]
        self._sb_blocks[pc] = entry
        _SB_BUILT.add()
        return entry

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until halt; returns instructions executed.  Raises if the
        instruction budget is exhausted (runaway program guard).

        Picks the execution engine (see the module docstring): reference
        interpreter when ``fastpath`` is False, per-instruction predecoded
        dispatch when ``superblocks`` is False, superblock chaining
        otherwise.  Results (registers, flags, cycles, bus statistics,
        traces) are identical for all three."""
        start = self.instructions_executed
        if not self.fastpath:
            _RUNS_REFERENCE.add()
            while not self.halted:
                if self.instructions_executed - start >= max_instructions:
                    raise ExecutionError(
                        f"exceeded {max_instructions} instructions without halting")
                self.step()
            return self.instructions_executed - start
        if self.superblocks:
            _RUNS_SUPERBLOCK.add()
            return self._run_superblocks(start, max_instructions)
        _RUNS_UOPS.add()
        return self._run_uops(start, max_instructions)

    def _run_loop_env(self):
        """Shared engine state: (step, check_interrupts, defer, irq_queue,
        poll_always); captured per run() so a controller swapped in
        between runs is honoured.  ``raise_irq()`` mutates the same queue
        list, so storms raised mid-run (or from handlers) stay visible.
        """
        defer = None
        if type(self)._fastpath_defer is not BaseCpu._fastpath_defer:
            defer = self._fastpath_defer
        irq_queue = self._irq_queue
        # Unknown interrupt scheme (override without a declared queue):
        # poll unconditionally, as the reference loop does.
        poll_always = (irq_queue is None
                       and type(self).check_interrupts is not BaseCpu.check_interrupts)
        return self.step, self.check_interrupts, defer, irq_queue, poll_always

    def _run_uops(self, start: int, max_instructions: int) -> int:
        """The predecoded engine: one micro-op dispatch per loop pass."""
        table = self._fast_dispatch_table()
        table_get = table.get
        limit = start + max_instructions
        step, check_interrupts, defer, irq_queue, poll_always = self._run_loop_env()
        pc_slot = self.regs.values
        while not self.halted:
            if self.instructions_executed >= limit:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions without halting")
            if self.sleeping or self._it_queue or (defer is not None and defer()):
                step()
                continue
            if poll_always or irq_queue:
                check_interrupts()
                if self.halted:
                    break
            fast_step = table_get(pc_slot[15])
            if fast_step is None:
                fast_step = self._predecode_missing(table, pc_slot[15])
            fast_step()
        return self.instructions_executed - start

    def _sync_sb_cache(self, irq_queue, cycle_coupled: bool) -> None:
        """Drop cached superblocks when the bound configuration changed.

        Fused loop guards bind the controller's queue list and their
        emission depends on the engine tier (``trace_superblocks``) and
        on whether the run is cycle-coupled (which adds the
        ``_sb_cycle_limit`` guard): any change means the cached blocks
        were generated against a stale configuration, so the run rebuilds
        them.  Both engine loops share this one invalidation rule.
        """
        self._sb_cycle_coupled = cycle_coupled
        mode = (self.trace_superblocks, cycle_coupled)
        if (self._sb_bound_queue is not irq_queue
                or self._sb_trace_mode != mode):
            if self._sb_blocks:
                self._sb_blocks = {}
                _SB_INVALIDATED.add()
            self._sb_caps = {}
            self._sb_bound_queue = irq_queue
            self._sb_trace_mode = mode

    def _run_superblocks(self, start: int, max_instructions: int) -> int:
        """The superblock engine: straight-line runs execute as one loop.

        The **event horizon** is the earliest ``assert_cycle`` of any
        queued interrupt request, ignoring masking and priority (so it is
        always at or before the cycle at which ``check_interrupts`` could
        first do anything).  Below the horizon, polls are provably no-ops
        and whole superblocks execute with no per-instruction checks
        beyond a cycle comparison; at or past it, the engine polls and
        single-steps exactly like :meth:`_run_uops` until the queue
        drains or recedes into the future again.
        """
        table = self._fast_dispatch_table()
        limit = start + max_instructions
        # fused loop guards compare against the same ceiling this loop
        # enforces, so a loop-fused block never overruns the budget the
        # per-block dispatch would have respected
        self._sb_limit = limit
        step, check_interrupts, defer, irq_queue, poll_always = self._run_loop_env()
        self._sync_sb_cache(irq_queue, cycle_coupled=False)
        blocks_get = self._sb_blocks.get
        pc_slot = self.regs.values
        while not self.halted:
            executed = self.instructions_executed
            if executed >= limit:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions without halting")
            if self.sleeping or self._it_queue or (defer is not None and defer()):
                step()
                continue
            horizon = None
            if irq_queue:
                horizon = min(request.assert_cycle for request in irq_queue)
            if poll_always or (horizon is not None and self.cycles >= horizon):
                # an interrupt may be eligible right now (or an undeclared
                # controller needs polling): poll-per-instruction dispatch,
                # exactly the _run_uops iteration (no defer re-check after
                # the poll - the reference loop executes the instruction at
                # the post-entry PC within the same step)
                check_interrupts()
                if self.halted:
                    break
                fast_step = table.get(pc_slot[15])
                if fast_step is None:
                    fast_step = self._predecode_missing(table, pc_slot[15])
                fast_step()
                _DISPATCH_POLL.add()
                continue
            pc = pc_slot[15]
            entry = blocks_get(pc)
            if entry is None:
                entry = self._superblock_at(pc)
            steps = entry[0]
            if horizon is None and len(steps) <= limit - executed:
                fused = entry[3]
                if fused is not None:
                    fused()
                    _DISPATCH_FUSED.add()
                    continue
                for fast_step in steps:
                    fast_step()
                _DISPATCH_LIST.add()
                entry[2] -= 1
                if entry[2] <= 0:
                    entry[3] = fuse_block(self, entry[1], steps)
                continue
            if len(steps) > limit - executed:
                # budget guard: run the allowed prefix, then raise above
                steps = steps[:limit - executed]
            _DISPATCH_STEP.add()
            if horizon is None:
                for fast_step in steps:
                    fast_step()
                continue
            chain = iter(steps)
            next(chain)()  # first step: horizon was checked above
            for fast_step in chain:
                if self.cycles >= horizon:
                    break
                fast_step()
        return self.instructions_executed - start

    # ------------------------------------------------------------------
    # cycle-coupled execution (co-simulation quanta)
    # ------------------------------------------------------------------
    def run_until_cycle(self, until: int,
                        max_instructions: int = 10_000_000) -> int:
        """Advance to the first instruction boundary at or past ``until``.

        The co-simulation entry point (:mod:`repro.vehicle`): the CPU runs
        under the configured engine tier until its cycle counter reaches
        ``until``, stopping at an exact instruction boundary so repeated
        bounded runs compose: running to ``t1`` and then to ``t2`` executes
        the identical instruction stream (and leaves bit-identical state)
        as one run straight to ``t2``, for any split.  The quantum joins
        the interrupt event horizon rather than replacing it - fused trace
        superblocks keep looping below both ceilings (their generated
        guard also tests ``_sb_cycle_limit`` in this mode), so guest code
        stays on the trace engine between bus events.

        Returns the number of instructions executed.  The method returns
        early when the core goes to sleep (WFI): idle time is the
        caller's to fast-forward (sleep ticks are pure ``cycles += 1``
        polls, which :class:`repro.vehicle.Ecu` skips in O(1)).
        """
        start = self.instructions_executed
        if not self.fastpath:
            _RUNS_REFERENCE.add()
            while (not self.halted and not self.sleeping
                   and self.cycles < until):
                if self.instructions_executed - start >= max_instructions:
                    raise ExecutionError(
                        f"exceeded {max_instructions} instructions "
                        f"without reaching cycle {until}")
                self.step()
            return self.instructions_executed - start
        if self.superblocks:
            _RUNS_SUPERBLOCK.add()
            return self._run_superblocks_until(start, max_instructions, until)
        _RUNS_UOPS.add()
        return self._run_uops_until(start, max_instructions, until)

    def _run_uops_until(self, start: int, max_instructions: int,
                        until: int) -> int:
        """Predecoded dispatch with a cycle ceiling (no superblocks)."""
        table = self._fast_dispatch_table()
        table_get = table.get
        limit = start + max_instructions
        step, check_interrupts, defer, irq_queue, poll_always = self._run_loop_env()
        pc_slot = self.regs.values
        while not self.halted and not self.sleeping and self.cycles < until:
            if self.instructions_executed >= limit:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions "
                    f"without reaching cycle {until}")
            if self._it_queue or (defer is not None and defer()):
                step()
                continue
            if poll_always or irq_queue:
                check_interrupts()
                if self.halted:
                    break
            fast_step = table_get(pc_slot[15])
            if fast_step is None:
                fast_step = self._predecode_missing(table, pc_slot[15])
            fast_step()
        return self.instructions_executed - start

    #: extra per-block allowance folded into every cycle cap.  With the
    #: device-declared ``worst_stall`` protocol the caps are sound on
    #: their own, so the default is 0; it remains as a widening knob for
    #: experiments (a larger value only trades fused dispatch near the
    #: quantum edge for slack, never correctness).
    _CAP_SLACK = 0

    #: upper bound on the *core-side* cycles of any instruction whose
    #: compiled cycle model is dynamic (no ``static_taken`` attached).
    #: Cores with outcome-dependent costs (early-exit dividers) override
    #: this with their declared worst case; the base value is a
    #: conservative ceiling for cores that do not declare.
    WORST_DYNAMIC_CYCLES = 16

    def worst_access_stall(self) -> int:
        """Worst stall any single bus access can impose on this core.

        Delegates to the bus's device-declared ``worst_stall`` contract;
        cores with private memory ports (TCM, caches) fold those in.
        """
        return self.bus.worst_stall

    def _block_cycle_cap(self, uops) -> int:
        """A sound worst-case cycle bound for one superblock execution.

        Used only by the cycle-coupled engine to decide whether a whole
        block (or one more fused-loop iteration) fits under the quantum
        ceiling - and only while the interrupt queue is empty, so an IRQ
        can never be serviced late because of it.  The bound is built
        from *declared* interfaces rather than heuristics: each uop
        contributes its static taken-path cost (the maximum over outcome
        shapes; :attr:`WORST_DYNAMIC_CYCLES` covers the few dynamic
        cycle models) plus the memory system's declared
        :meth:`worst_access_stall` per access (the fetch, plus one data
        access for mem uops or one per transferred register).  An
        overestimate only means per-step dispatch near the boundary; the
        declared protocol keeps the estimate tight enough that fused
        blocks run close to the quantum edge.
        """
        stall = self.worst_access_stall()
        worst_dynamic = self.WORST_DYNAMIC_CYCLES
        total = self._CAP_SLACK
        for uop in uops:
            cycle_fn = self.compile_cycles(uop.ins)
            static = (getattr(cycle_fn, "static_taken", None)
                      if cycle_fn is not None else None)
            if static is None:
                static = worst_dynamic
            accesses = 1  # the instruction fetch
            reglist = getattr(uop.ins, "reglist", ())
            if reglist:
                accesses += len(reglist)
            elif uop.kind == "mem":
                accesses += 1
            total += static + stall * accesses
        return total

    def _run_superblocks_until(self, start: int, max_instructions: int,
                               until: int) -> int:
        """The superblock engine under a cycle ceiling (the co-sim quantum).

        Identical engine-selection rules to :meth:`_run_superblocks`, with
        the quantum folded into the event horizon: ``bound`` is the lower
        of the IRQ horizon and ``until``.  A block (or fused loop) runs
        free of per-step checks only while the interrupt queue is empty
        *and* its worst-case cycle cap fits under ``until``; fused
        back-edge loops additionally re-test ``_sb_cycle_limit`` per
        iteration (emitted only in this mode), so hot guest loops stay
        fused between bus events.  With a live horizon, or within the
        final sub-cap window, the engine falls back to per-step slim
        dispatch with an exact cycle test, which pins the stop point to
        the first instruction boundary at or past ``until`` (and IRQ
        service to the horizon, exactly as the unbounded engine does)
        regardless of quantum splits, fusion state, or cap accuracy.
        """
        table = self._fast_dispatch_table()
        limit = start + max_instructions
        self._sb_limit = limit
        step, check_interrupts, defer, irq_queue, poll_always = self._run_loop_env()
        self._sync_sb_cache(irq_queue, cycle_coupled=True)
        blocks_get = self._sb_blocks.get
        caps = self._sb_caps
        pc_slot = self.regs.values
        while not self.halted and not self.sleeping:
            if self.cycles >= until:
                break
            executed = self.instructions_executed
            if executed >= limit:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions "
                    f"without reaching cycle {until}")
            if self._it_queue or (defer is not None and defer()):
                step()
                continue
            horizon = None
            if irq_queue:
                horizon = min(request.assert_cycle for request in irq_queue)
            if poll_always or (horizon is not None and self.cycles >= horizon):
                check_interrupts()
                if self.halted:
                    break
                fast_step = table.get(pc_slot[15])
                if fast_step is None:
                    fast_step = self._predecode_missing(table, pc_slot[15])
                fast_step()
                _DISPATCH_POLL.add()
                continue
            bound = until if horizon is None or horizon > until else horizon
            pc = pc_slot[15]
            entry = blocks_get(pc)
            if entry is None:
                entry = self._superblock_at(pc)
            steps = entry[0]
            if horizon is None and len(steps) <= limit - executed:
                cap = caps.get(pc)
                if cap is None:
                    caps[pc] = cap = self._block_cycle_cap(entry[1])
                if self.cycles + cap <= until:
                    # empty queue and comfortably inside the quantum: run
                    # exactly like the unbounded engine (which also only
                    # dispatches whole blocks below the event horizon, so
                    # a cap shortfall can only overrun the *quantum*, a
                    # boundary the IRQ delivery latency already absorbs);
                    # a fused loop keeps iterating while it stays below
                    # _sb_cycle_limit (one cap of headroom)
                    self._sb_cycle_limit = until - cap
                    fused = entry[3]
                    if fused is not None:
                        fused()
                        _DISPATCH_FUSED.add()
                        continue
                    for fast_step in steps:
                        fast_step()
                    _DISPATCH_LIST.add()
                    entry[2] -= 1
                    if entry[2] <= 0:
                        entry[3] = fuse_block(self, entry[1], steps)
                    continue
            if len(steps) > limit - executed:
                # budget guard: run the allowed prefix, then raise above
                steps = steps[:limit - executed]
            _DISPATCH_STEP.add()
            for fast_step in steps:
                if self.cycles >= bound:
                    break
                fast_step()
        return self.instructions_executed - start

    def _predecode_missing(self, table: dict, pc: int):
        """Lazily bind an address the predecode pass did not see.

        Instructions can join the program's execution index after the pass
        (e.g. a second program image merged in for an ISR); predecode them
        on first dispatch so such programs stay on the fast path."""
        ins = self.program.instruction_at(pc)
        if ins is None:
            raise ExecutionError(
                f"no instruction at pc={pc:#010x} ({self.name})")
        fast_step = self._bind_uop(compile_uop(ins, self.program.isa))
        table[pc] = fast_step
        return fast_step

    def run_cycles(self, budget: int) -> None:
        """Run until at least ``budget`` cycles have elapsed (or halt)."""
        target = self.cycles + budget
        while not self.halted and self.cycles < target:
            self.step()

    # ------------------------------------------------------------------
    # conveniences for tests / harnesses
    # ------------------------------------------------------------------
    def call(self, symbol: str, *args: int, max_instructions: int = 1_000_000,
             sp: int | None = None) -> int:
        """Call a labelled routine with up to four register arguments.

        Sets up AAPCS-style r0-r3, points LR at the halt address, runs to
        completion, and returns r0.
        """
        if symbol not in self.program.symbols:
            raise KeyError(f"no symbol {symbol!r} in program")
        if len(args) > 4:
            raise ValueError("only r0-r3 argument passing is supported")
        for index, value in enumerate(args):
            self.regs.write(index, value & MASK32)
        if sp is not None:
            self.regs.sp = sp
        self.regs.lr = HALT_ADDRESS
        self.regs.pc = self.program.symbols[symbol]
        self.halted = False
        # A WFI or a dangling IT block from a previous call must not leak
        # into this one: each call starts awake with no predication state.
        self.sleeping = False
        self._it_queue.clear()
        self.run(max_instructions=max_instructions)
        return self.regs.read(0)

    def cpi(self) -> float:
        """Cycles per instruction so far."""
        if self.instructions_executed == 0:
            return 0.0
        return self.cycles / self.instructions_executed
