"""Base CPU executor: fetch / predicate / execute / account cycles.

Concrete cores (:class:`~repro.core.arm7.Arm7Core`,
:class:`~repro.core.arm1156.Arm1156Core`,
:class:`~repro.core.cortexm3.CortexM3Core`) subclass this and provide

* ``fetch_stalls(addr, size)`` - instruction-side memory timing,
* ``data_read`` / ``data_write`` - data-side memory path,
* ``instruction_cycles(ins, outcome)`` - microarchitectural base cost,
* ``check_interrupts()`` - their interrupt scheme.

Execution semantics are shared (:mod:`repro.isa.semantics`); only *timing*
and *interrupt architecture* differ between cores, which is precisely the
contrast the paper draws between its two implementations.
"""

from __future__ import annotations

from repro.isa.assembler import Program
from repro.isa.conditions import Condition
from repro.isa.instructions import Instruction
from repro.isa.registers import LR, MASK32, Apsr, RegisterFile
from repro.isa.semantics import Outcome, execute
from repro.core.exceptions import ExecutionError
from repro.sim.trace import TraceRecorder

#: Branching here halts the simulation (the reset value of LR).
HALT_ADDRESS = 0xFFFFFFFE


class BaseCpu:
    """Shared machinery for the three core models."""

    #: human-readable core name, overridden by subclasses
    name = "base"

    def __init__(self, program: Program, trace: TraceRecorder | None = None) -> None:
        self.program = program
        self.trace = trace or TraceRecorder(enabled=False)
        self.regs = RegisterFile()
        self.apsr = Apsr()
        self.cycles = 0
        self.instructions_executed = 0
        self.instructions_skipped = 0
        self.branches_taken = 0
        self.halted = False
        self.sleeping = False
        self.interrupts_enabled = True
        self.regs.lr = HALT_ADDRESS
        self.regs.pc = program.base
        self._it_queue: list[Condition] = []
        self._data_stalls = 0
        self.current_address = 0
        self.current_size = 4
        self.svc_log: list[int] = []

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------
    def fetch_stalls(self, addr: int, size: int) -> int:
        raise NotImplementedError

    def data_read(self, addr: int, size: int) -> tuple[int, int]:
        raise NotImplementedError

    def data_write(self, addr: int, size: int, value: int) -> int:
        raise NotImplementedError

    def instruction_cycles(self, ins: Instruction, outcome: Outcome) -> int:
        raise NotImplementedError

    def check_interrupts(self) -> bool:
        """Service a pending interrupt if any; True when one was taken."""
        return False

    # ------------------------------------------------------------------
    # ExecutionContext protocol
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> int:
        value, stalls = self.data_read(addr, size)
        self._data_stalls += stalls
        return value

    def write(self, addr: int, size: int, value: int) -> None:
        self._data_stalls += self.data_write(addr, size, value)

    def branch(self, target: int) -> None:
        target &= MASK32
        if target == HALT_ADDRESS:
            self.halted = True
            return
        if self._exception_return_hook(target):
            return
        self.regs.pc = target

    def _exception_return_hook(self, target: int) -> bool:
        """Cores with hardware exception return (M3) override this."""
        return False

    def pc_read_value(self) -> int:
        return self.current_address + (8 if self.program.isa == "arm" else 4)

    def set_interrupts_enabled(self, enabled: bool) -> None:
        self.interrupts_enabled = enabled

    def begin_it_block(self, firstcond: Condition, mask: str) -> None:
        if self._it_queue:
            raise ExecutionError("IT inside an IT block")
        conditions = [firstcond]
        for ch in mask[1:]:
            conditions.append(firstcond if ch == "T" else firstcond.inverse)
        self._it_queue = conditions

    def software_interrupt(self, number: int) -> None:
        self.svc_log.append(number)

    def wait_for_interrupt(self) -> None:
        self.sleeping = True

    # ------------------------------------------------------------------
    # execution loop
    # ------------------------------------------------------------------
    def _next_condition(self, ins: Instruction) -> Condition | None:
        if ins.mnemonic == "IT":
            return None
        if self._it_queue:
            return self._it_queue.pop(0)
        return None

    def in_it_block(self) -> bool:
        return bool(self._it_queue)

    def step(self) -> bool:
        """Execute one instruction; False when halted."""
        if self.halted:
            return False
        if self.sleeping:
            # only an interrupt can resume us; charge one idle cycle
            self.cycles += 1
            self.check_interrupts()
            return not self.halted
        self.check_interrupts()
        if self.halted:
            return False
        pc = self.regs.pc
        ins = self.program.instruction_at(pc)
        if ins is None:
            raise ExecutionError(f"no instruction at pc={pc:#010x} ({self.name})")
        self.current_address = pc
        self.current_size = ins.size
        fetch = self.fetch_stalls(pc, ins.size)
        self._data_stalls = 0
        condition = self._next_condition(ins)
        outcome = self._execute(ins, condition)
        base = self.instruction_cycles(ins, outcome)
        self.cycles += base + fetch + self._data_stalls
        self.instructions_executed += 1
        if outcome.skipped:
            self.instructions_skipped += 1
        if outcome.taken:
            self.branches_taken += 1
        if not outcome.taken and not self.halted:
            self.regs.pc = pc + ins.size
        return not self.halted

    def _execute(self, ins: Instruction, condition: Condition | None) -> Outcome:
        return execute(self, ins, condition)

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until halt; returns instructions executed.  Raises if the
        instruction budget is exhausted (runaway program guard)."""
        start = self.instructions_executed
        while not self.halted:
            if self.instructions_executed - start >= max_instructions:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions without halting")
            self.step()
        return self.instructions_executed - start

    def run_cycles(self, budget: int) -> None:
        """Run until at least ``budget`` cycles have elapsed (or halt)."""
        target = self.cycles + budget
        while not self.halted and self.cycles < target:
            self.step()

    # ------------------------------------------------------------------
    # conveniences for tests / harnesses
    # ------------------------------------------------------------------
    def call(self, symbol: str, *args: int, max_instructions: int = 1_000_000,
             sp: int | None = None) -> int:
        """Call a labelled routine with up to four register arguments.

        Sets up AAPCS-style r0-r3, points LR at the halt address, runs to
        completion, and returns r0.
        """
        if symbol not in self.program.symbols:
            raise KeyError(f"no symbol {symbol!r} in program")
        if len(args) > 4:
            raise ValueError("only r0-r3 argument passing is supported")
        for index, value in enumerate(args):
            self.regs.write(index, value & MASK32)
        if sp is not None:
            self.regs.sp = sp
        self.regs.lr = HALT_ADDRESS
        self.regs.pc = self.program.symbols[symbol]
        self.halted = False
        self.run(max_instructions=max_instructions)
        return self.regs.read(0)

    def cpi(self) -> float:
        """Cycles per instruction so far."""
        if self.instructions_executed == 0:
            return 0.0
        return self.cycles / self.instructions_executed
