"""Base CPU executor: fetch / predicate / execute / account cycles.

Concrete cores (:class:`~repro.core.arm7.Arm7Core`,
:class:`~repro.core.arm1156.Arm1156Core`,
:class:`~repro.core.cortexm3.CortexM3Core`) subclass this and provide

* ``fetch_stalls(addr, size)`` - instruction-side memory timing,
* ``data_read`` / ``data_write`` - data-side memory path,
* ``instruction_cycles(ins, outcome)`` - microarchitectural base cost,
* ``check_interrupts()`` - their interrupt scheme.

Execution semantics are shared (:mod:`repro.isa.semantics`); only *timing*
and *interrupt architecture* differ between cores, which is precisely the
contrast the paper draws between its two implementations.

Two execution paths produce identical architectural results:

* ``step()`` - the reference interpreter: full decode and dispatch every
  instruction.  Always used for single-stepping, IT-block predication,
  sleep (WFI) ticks, and anything a core defers (restartable LDM/STM).
* ``run()`` - the **fast path**: dispatches through a predecoded micro-op
  table (:mod:`repro.isa.predecode`) with per-core cycle costs prebound by
  :meth:`BaseCpu.compile_cycles`, falling back to ``step()`` whenever the
  architectural state demands it.  Set ``cpu.fastpath = False`` to force
  the reference path (the equivalence benchmarks and property tests do).
"""

from __future__ import annotations

from repro.isa.assembler import Program
from repro.isa.conditions import Condition
from repro.isa.instructions import Instruction
from repro.isa.predecode import MicroOp, compile_exec, predecode
from repro.isa.registers import MASK32, Apsr, RegisterFile
from repro.isa.semantics import Outcome, execute
from repro.core.exceptions import ExecutionError
from repro.sim.trace import TraceRecorder

#: Branching here halts the simulation (the reset value of LR).
HALT_ADDRESS = 0xFFFFFFFE


class BaseCpu:
    """Shared machinery for the three core models."""

    #: human-readable core name, overridden by subclasses
    name = "base"

    #: the live interrupt-controller queue, overridden as a property by
    #: cores: when it is an empty list the fast loop may skip
    #: check_interrupts(), which returns None for an empty queue on every
    #: controller.  None means "no declared controller".
    _irq_queue: list | None = None

    def __init__(self, program: Program, trace: TraceRecorder | None = None) -> None:
        self.program = program
        self.trace = trace or TraceRecorder(enabled=False)
        self.regs = RegisterFile()
        self.apsr = Apsr()
        self.cycles = 0
        self.instructions_executed = 0
        self.instructions_skipped = 0
        self.branches_taken = 0
        self.halted = False
        self.sleeping = False
        self.interrupts_enabled = True
        self.regs.lr = HALT_ADDRESS
        self.regs.pc = program.base
        self._it_queue: list[Condition] = []
        self._data_stalls = 0
        self.current_address = 0
        self.current_size = 4
        self.svc_log: list[int] = []
        #: dispatch through the predecoded micro-op table in run()
        self.fastpath = True
        self._fast_table: dict | None = None
        self._fast_index: dict | None = None
        self._fast_outcome = Outcome()

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------
    def fetch_stalls(self, addr: int, size: int) -> int:
        raise NotImplementedError

    def data_read(self, addr: int, size: int) -> tuple[int, int]:
        raise NotImplementedError

    def data_write(self, addr: int, size: int, value: int) -> int:
        raise NotImplementedError

    def instruction_cycles(self, ins: Instruction, outcome: Outcome) -> int:
        raise NotImplementedError

    def check_interrupts(self) -> bool:
        """Service a pending interrupt if any; True when one was taken."""
        return False

    # ------------------------------------------------------------------
    # ExecutionContext protocol
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> int:
        value, stalls = self.data_read(addr, size)
        self._data_stalls += stalls
        return value

    def write(self, addr: int, size: int, value: int) -> None:
        self._data_stalls += self.data_write(addr, size, value)

    def branch(self, target: int) -> None:
        target &= MASK32
        if target == HALT_ADDRESS:
            self.halted = True
            return
        if self._exception_return_hook(target):
            return
        self.regs.pc = target

    def _exception_return_hook(self, target: int) -> bool:
        """Cores with hardware exception return (M3) override this."""
        return False

    def pc_read_value(self) -> int:
        return self.current_address + (8 if self.program.isa == "arm" else 4)

    def set_interrupts_enabled(self, enabled: bool) -> None:
        self.interrupts_enabled = enabled

    def begin_it_block(self, firstcond: Condition, mask: str) -> None:
        if self._it_queue:
            raise ExecutionError("IT inside an IT block")
        conditions = [firstcond]
        for ch in mask[1:]:
            conditions.append(firstcond if ch == "T" else firstcond.inverse)
        self._it_queue = conditions

    def software_interrupt(self, number: int) -> None:
        self.svc_log.append(number)

    def wait_for_interrupt(self) -> None:
        self.sleeping = True

    # ------------------------------------------------------------------
    # execution loop
    # ------------------------------------------------------------------
    def _next_condition(self, ins: Instruction) -> Condition | None:
        if ins.mnemonic == "IT":
            return None
        if self._it_queue:
            return self._it_queue.pop(0)
        return None

    def in_it_block(self) -> bool:
        return bool(self._it_queue)

    def step(self) -> bool:
        """Execute one instruction; False when halted."""
        if self.halted:
            return False
        if self.sleeping:
            # only an interrupt can resume us; charge one idle cycle
            self.cycles += 1
            self.check_interrupts()
            return not self.halted
        self.check_interrupts()
        if self.halted:
            return False
        pc = self.regs.pc
        ins = self.program.instruction_at(pc)
        if ins is None:
            raise ExecutionError(f"no instruction at pc={pc:#010x} ({self.name})")
        self.current_address = pc
        self.current_size = ins.size
        fetch = self.fetch_stalls(pc, ins.size)
        self._data_stalls = 0
        condition = self._next_condition(ins)
        outcome = self._execute(ins, condition)
        base = self.instruction_cycles(ins, outcome)
        self.cycles += base + fetch + self._data_stalls
        self.instructions_executed += 1
        if outcome.skipped:
            self.instructions_skipped += 1
        if outcome.taken:
            self.branches_taken += 1
        if not outcome.taken and not self.halted:
            self.regs.pc = pc + ins.size
        return not self.halted

    def _execute(self, ins: Instruction, condition: Condition | None) -> Outcome:
        return execute(self, ins, condition)

    # ------------------------------------------------------------------
    # predecoded fast path
    # ------------------------------------------------------------------
    def compile_cycles(self, ins: Instruction):
        """Optionally prebind the cycle cost of ``ins`` for the fast path.

        Subclasses return a closure ``fn(outcome) -> int`` that must agree
        with :meth:`instruction_cycles` for every outcome, or ``None`` to
        fall back to calling :meth:`instruction_cycles` dynamically.
        (``tests/test_fastpath_properties.py`` sweeps the agreement across
        every mnemonic and outcome shape.)
        """
        return None

    @staticmethod
    def _static_cycle_fn(base: int, taken: int):
        """The common compile_cycles shape: cost static per instruction,
        modulated only by the skipped/taken outcome flags."""
        def cycles(outcome):
            if outcome.skipped:
                return 1
            return taken if outcome.taken else base
        return cycles

    def _fastpath_defer(self) -> bool:
        """True when the next instruction must take the reference ``step()``
        (cores with mid-instruction interrupt semantics override this)."""
        return False

    def _bind_uop(self, uop):
        """Close a micro-op over this CPU: one call executes one instruction."""
        ins = uop.ins
        exec_fn = uop.exec
        cond_check = uop.cond_check
        cycle_fn = self.compile_cycles(ins)
        if cycle_fn is None:
            def cycle_fn(outcome, _ins=ins, _dyn=self.instruction_cycles):
                return _dyn(_ins, outcome)
        fetch = self.fetch_stalls
        regs = self.regs
        outcome = self._fast_outcome
        address = uop.address
        size = uop.size
        next_pc = uop.next_pc

        def fast_step() -> None:
            self.current_address = address
            self.current_size = size
            stalls = fetch(address, size)
            self._data_stalls = 0
            # Only taken/skipped are read before being written each step:
            # cycle models consult regs_transferred/div_early_exit solely
            # for mnemonics whose handlers assign them, so those (and the
            # unread read/write tallies) don't need clearing here.
            outcome.taken = False
            outcome.skipped = False
            if cond_check is None or cond_check(self.apsr):
                exec_fn(self, outcome)
            else:
                outcome.skipped = True
            self.cycles += cycle_fn(outcome) + stalls + self._data_stalls
            self.instructions_executed += 1
            if outcome.skipped:
                self.instructions_skipped += 1
            if outcome.taken:
                self.branches_taken += 1
            elif not self.halted:
                regs.values[15] = next_pc

        return fast_step

    def _fast_dispatch_table(self) -> dict:
        index = self.program._by_address
        if self._fast_table is None or self._fast_index is not index:
            # keyed on the index's identity: reassigning _by_address (the
            # merge-two-images pattern) invalidates the bound table
            self._fast_table = {
                addr: self._bind_uop(uop)
                for addr, uop in predecode(self.program).items()
            }
            self._fast_index = index
        return self._fast_table

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until halt; returns instructions executed.  Raises if the
        instruction budget is exhausted (runaway program guard).

        Dispatches through the predecoded fast path unless ``fastpath`` is
        False; results (registers, flags, cycles, traces) are identical
        either way."""
        start = self.instructions_executed
        if not self.fastpath:
            while not self.halted:
                if self.instructions_executed - start >= max_instructions:
                    raise ExecutionError(
                        f"exceeded {max_instructions} instructions without halting")
                self.step()
            return self.instructions_executed - start
        table = self._fast_dispatch_table()
        table_get = table.get
        limit = start + max_instructions
        step = self.step
        check_interrupts = self.check_interrupts
        pc_slot = self.regs.values
        defer = None
        if type(self)._fastpath_defer is not BaseCpu._fastpath_defer:
            defer = self._fastpath_defer
        # Captured per run() so a controller swapped in between runs is
        # honoured; raise_irq() mutates the same list, so storms raised
        # mid-run (or from handlers) stay visible.
        irq_queue = self._irq_queue
        # Unknown interrupt scheme (override without a declared queue):
        # poll unconditionally, as the reference loop does.
        poll_always = (irq_queue is None
                       and type(self).check_interrupts is not BaseCpu.check_interrupts)
        while not self.halted:
            if self.instructions_executed >= limit:
                raise ExecutionError(
                    f"exceeded {max_instructions} instructions without halting")
            if self.sleeping or self._it_queue or (defer is not None and defer()):
                step()
                continue
            if poll_always or irq_queue:
                check_interrupts()
                if self.halted:
                    break
            fast_step = table_get(pc_slot[15])
            if fast_step is None:
                fast_step = self._predecode_missing(table, pc_slot[15])
            fast_step()
        return self.instructions_executed - start

    def _predecode_missing(self, table: dict, pc: int):
        """Lazily bind an address the predecode pass did not see.

        Instructions can join the program's execution index after the pass
        (e.g. a second program image merged in for an ISR); predecode them
        on first dispatch so such programs stay on the fast path."""
        ins = self.program.instruction_at(pc)
        if ins is None:
            raise ExecutionError(
                f"no instruction at pc={pc:#010x} ({self.name})")
        fast_step = self._bind_uop(MicroOp(ins, compile_exec(ins, self.program.isa)))
        table[pc] = fast_step
        return fast_step

    def run_cycles(self, budget: int) -> None:
        """Run until at least ``budget`` cycles have elapsed (or halt)."""
        target = self.cycles + budget
        while not self.halted and self.cycles < target:
            self.step()

    # ------------------------------------------------------------------
    # conveniences for tests / harnesses
    # ------------------------------------------------------------------
    def call(self, symbol: str, *args: int, max_instructions: int = 1_000_000,
             sp: int | None = None) -> int:
        """Call a labelled routine with up to four register arguments.

        Sets up AAPCS-style r0-r3, points LR at the halt address, runs to
        completion, and returns r0.
        """
        if symbol not in self.program.symbols:
            raise KeyError(f"no symbol {symbol!r} in program")
        if len(args) > 4:
            raise ValueError("only r0-r3 argument passing is supported")
        for index, value in enumerate(args):
            self.regs.write(index, value & MASK32)
        if sp is not None:
            self.regs.sp = sp
        self.regs.lr = HALT_ADDRESS
        self.regs.pc = self.program.symbols[symbol]
        self.halted = False
        # A WFI or a dangling IT block from a previous call must not leak
        # into this one: each call starts awake with no predication state.
        self.sleeping = False
        self._it_queue.clear()
        self.run(max_instructions=max_instructions)
        return self.regs.read(0)

    def cpi(self) -> float:
        """Cycles per instruction so far."""
        if self.instructions_executed == 0:
            return 0.0
        return self.cycles / self.instructions_executed
