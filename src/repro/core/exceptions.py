"""Exception and interrupt model shared by the core implementations."""

from __future__ import annotations

from dataclasses import dataclass, field


class ExecutionError(Exception):
    """The simulator reached an unexecutable state (bad PC, bad opcode)."""


class DataAbort(Exception):
    """Precise data abort (MPU violation or unrecoverable memory error)."""

    def __init__(self, address: int, reason: str) -> None:
        super().__init__(f"data abort at {address:#010x}: {reason}")
        self.address = address
        self.reason = reason


class PrefetchAbort(Exception):
    """Instruction-side abort (fetch parity error, MPU execute violation)."""

    def __init__(self, address: int, reason: str) -> None:
        super().__init__(f"prefetch abort at {address:#010x}: {reason}")
        self.address = address
        self.reason = reason


@dataclass
class InterruptRequest:
    """One pending interrupt line."""

    number: int
    priority: int = 0
    nmi: bool = False
    assert_cycle: int = 0        # when the line went high (core cycles)
    handler: int | None = None   # vector target; None = use vector table


@dataclass
class InterruptRecord:
    """Measurement record for one serviced interrupt (experiments E6/E8)."""

    number: int
    assert_cycle: int
    entry_cycle: int             # first handler instruction issues here
    exit_cycle: int | None = None
    tail_chained: bool = False
    preempted_instruction: str | None = None

    @property
    def latency(self) -> int:
        return self.entry_cycle - self.assert_cycle


@dataclass
class InterruptStats:
    """Aggregated controller statistics."""

    serviced: int = 0
    tail_chained: int = 0
    records: list[InterruptRecord] = field(default_factory=list)

    def latencies(self) -> list[int]:
        return [r.latency for r in self.records]

    def worst_latency(self) -> int:
        return max(self.latencies(), default=0)
