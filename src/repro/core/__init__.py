"""Core models: the paper's two Thumb-2 implementations plus the ARM7 baseline.

* :class:`~repro.core.arm7.Arm7Core` - the incumbent: 3-stage von Neumann,
  software interrupt entry.  Runs ARM and Thumb programs (Table 1 rows 1-2).
* :class:`~repro.core.cortexm3.CortexM3Core` - the low end (paper 3.2):
  Harvard, NVIC hardware stacking + tail-chaining, hardware divide,
  bit-banding.  Runs Thumb-2 (Table 1 row 3).
* :class:`~repro.core.arm1156.Arm1156Core` - the high end (paper 3.1):
  cached, fine-grained MPU, interruptible/restartable LDM/STM,
  fault-tolerant memories, NMI.
"""

from repro.core.arm7 import Arm7Core
from repro.core.arm1156 import Arm1156Core
from repro.core.cortexm3 import EXC_RETURN, CortexM3Core
from repro.core.cpu import HALT_ADDRESS, BaseCpu
from repro.core.exceptions import (
    DataAbort,
    ExecutionError,
    InterruptRecord,
    InterruptRequest,
    InterruptStats,
    PrefetchAbort,
)
from repro.core.machines import (
    BITBAND_ALIAS_BASE,
    FLASH_BASE,
    SRAM_BASE,
    Machine,
    build_arm7,
    build_arm1156,
    build_cortexm3,
    build_machine,
)
from repro.core.nvic import TAIL_CHAIN_CYCLES, NvicController
from repro.core.vic import VicController

__all__ = [
    "Arm7Core", "Arm1156Core", "CortexM3Core", "EXC_RETURN",
    "HALT_ADDRESS", "BaseCpu",
    "DataAbort", "ExecutionError", "InterruptRecord", "InterruptRequest",
    "InterruptStats", "PrefetchAbort",
    "BITBAND_ALIAS_BASE", "FLASH_BASE", "SRAM_BASE", "Machine",
    "build_arm7", "build_arm1156", "build_cortexm3", "build_machine",
    "TAIL_CHAIN_CYCLES", "NvicController", "VicController",
]
