"""Cortex-M3-style nested vectored interrupt controller (paper 3.2.1).

The NVIC performs the interrupt preamble and postamble *in hardware*:

* **entry**: eight registers (r0-r3, r12, lr, pc, xPSR) are stacked by the
  hardware while the vector is fetched from the instruction side in
  parallel - handlers are plain C-compatible functions with no assembly
  stub;
* **exit**: the frame is unstacked by hardware on a branch to the magic
  ``EXC_RETURN`` value;
* **tail-chaining**: if another interrupt is pending at exception return,
  the unstack/restack pair is skipped and the next handler is entered
  after a short fixed delay - the paper's "back-to-back handling ... in
  the minimum amount of time" (figure 4).

Priorities are numeric-ascending (lower value = more urgent), as on the
real part.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import InterruptRequest, InterruptStats

#: Cycle constants with zero-wait-state memory (ARM's published numbers).
ENTRY_STACKING_WORDS = 8
VECTOR_FETCH_CYCLES = 1
PIPELINE_REFILL_CYCLES = 3
TAIL_CHAIN_CYCLES = 6


@dataclass
class StackedFrame:
    """What hardware pushed at exception entry."""

    return_pc: int
    apsr_word: int
    regs: tuple[int, ...]  # r0, r1, r2, r3, r12, lr


class NvicController:
    """Pending/active interrupt state machine with tail-chaining."""

    def __init__(self, tail_chaining: bool = True) -> None:
        self.tail_chaining = tail_chaining
        self.queue: list[InterruptRequest] = []
        self.active_stack: list[InterruptRequest] = []
        self.stats = InterruptStats()

    # ------------------------------------------------------------------
    def raise_irq(self, number: int, handler: int, at_cycle: int = 0,
                  priority: int = 0, nmi: bool = False) -> InterruptRequest:
        request = InterruptRequest(number=number, priority=priority, nmi=nmi,
                                   assert_cycle=at_cycle, handler=handler)
        self.queue.append(request)
        self.queue.sort(key=lambda r: (not r.nmi, r.priority, r.assert_cycle, r.number))
        return request

    def current_priority(self) -> int | None:
        if not self.active_stack:
            return None
        return min(r.priority for r in self.active_stack)

    def pending_at(self, cycle: int, masked: bool) -> InterruptRequest | None:
        """Highest-urgency request that may preempt right now."""
        active = self.current_priority()
        for request in self.queue:
            if request.assert_cycle > cycle:
                continue
            if masked and not request.nmi:
                continue
            if active is not None and request.priority >= active and not request.nmi:
                continue  # no preemption at equal/lower urgency
            return request
        return None

    def earliest_assert_in(self, start_cycle: int, end_cycle: int,
                           masked: bool) -> int | None:
        candidates = [
            r.assert_cycle for r in self.queue
            if start_cycle < r.assert_cycle <= end_cycle and (r.nmi or not masked)
        ]
        return min(candidates, default=None)

    def take(self, request: InterruptRequest) -> None:
        self.queue.remove(request)
        self.active_stack.append(request)
        self.stats.serviced += 1

    def complete(self, cycle: int, masked: bool) -> InterruptRequest | None:
        """Finish the active handler; returns the tail-chained successor."""
        if not self.active_stack:
            return None
        self.active_stack.pop()
        if not self.tail_chaining:
            return None
        successor = self.pending_at(cycle, masked)
        if successor is not None:
            self.take(successor)
            self.stats.tail_chained += 1
        return successor

    def has_pending(self) -> bool:
        return bool(self.queue)

    @property
    def nesting_depth(self) -> int:
        return len(self.active_stack)
